//! Quickstart: define a tiny all-pairs application and run it on Rocket.
//!
//! The "application" hashes each input file into a 64-bit fingerprint
//! (the load pipeline ℓ) and compares fingerprints by Hamming distance
//! (the pairwise function f). Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;

use rocket::core::{AppError, Application, NodeSpec, Pair, Scenario, ThreadedBackend};
use rocket::storage::MemStore;

/// Hamming distance between per-file fingerprints.
struct Fingerprint {
    files: u64,
}

impl Application for Fingerprint {
    type Output = u32;

    fn name(&self) -> &str {
        "fingerprint"
    }

    fn item_count(&self) -> u64 {
        self.files
    }

    fn file_for(&self, item: u64) -> String {
        format!("inputs/{item}.bin")
    }

    fn parsed_bytes(&self) -> usize {
        8
    }

    fn item_bytes(&self) -> usize {
        8
    }

    fn result_bytes(&self) -> usize {
        4
    }

    fn has_preprocess(&self) -> bool {
        false // parse output is directly comparable
    }

    /// CPU stage: FNV-hash the raw bytes into a fingerprint.
    fn parse(&self, _item: u64, raw: &[u8], out: &mut [u8]) -> Result<(), AppError> {
        let mut h: u64 = 0xcbf29ce484222325;
        for &b in raw {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        out[..8].copy_from_slice(&h.to_le_bytes());
        Ok(())
    }

    /// "GPU" stage: Hamming distance of the two fingerprints.
    fn compare(
        &self,
        left: (u64, &[u8]),
        right: (u64, &[u8]),
        out: &mut [u8],
    ) -> Result<(), AppError> {
        let l = u64::from_le_bytes(left.1[..8].try_into().unwrap());
        let r = u64::from_le_bytes(right.1[..8].try_into().unwrap());
        out[..4].copy_from_slice(&(l ^ r).count_ones().to_le_bytes());
        Ok(())
    }

    fn postprocess(&self, _pair: Pair, raw: &[u8]) -> u32 {
        u32::from_le_bytes(raw[..4].try_into().unwrap())
    }
}

fn main() {
    // Synthetic inputs: 12 files, three of which are identical copies.
    let store = MemStore::new();
    for i in 0..12u64 {
        let content = if i % 4 == 0 {
            b"the same file content".to_vec()
        } else {
            format!("file number {i} with unique content").into_bytes()
        };
        store.put(format!("inputs/{i}.bin"), content);
    }

    // Declare the run: 12 items on one node with one GPU, a 6-slot device
    // cache, and a 12-slot host cache.
    let scenario = Scenario::builder()
        .items(12)
        .node(NodeSpec::uniform(1, 6, 12))
        .job_limit(8)
        .build();

    let app = Arc::new(Fingerprint { files: 12 });
    let backend = ThreadedBackend::new(app, Arc::new(store));
    let report = backend.run_app(&scenario).expect("run failed");

    println!(
        "processed {} pairs in {:?}",
        report.outputs.len(),
        report.elapsed
    );
    println!(
        "loads: {} (R = {:.2}), device cache hit ratio {:.0}%",
        report.total_loads(),
        report.r_factor(),
        report.device_cache().hit_ratio() * 100.0
    );
    let identical: Vec<_> = report
        .sorted_outputs()
        .into_iter()
        .filter(|(_, d)| *d == 0)
        .map(|(p, _)| (p.left, p.right))
        .collect();
    println!("identical file pairs (Hamming distance 0): {identical:?}");
    assert_eq!(identical, vec![(0, 4), (0, 8), (4, 8)]);
    println!("ok");
}
