//! Localization-microscopy particle fusion (the paper's §5.3 application):
//! all-to-all registration of synthetic particles on the Rocket runtime,
//! verifying pose recovery against the generator's ground truth.
//!
//! ```text
//! cargo run --release --example microscopy
//! ```

use std::sync::Arc;

use rocket::apps::{MicroscopyApp, MicroscopyConfig, MicroscopyDataset};
use rocket::core::{NodeSpec, Scenario, ThreadedBackend};

fn main() {
    let config = MicroscopyConfig {
        particles: 10,
        structures: 1, // one structure: every pair should register
        labelling: 1.0,
        noise: 0.02, // σ = 2·noise stays well under the spiral radial step
        points_min: 80,
        points_max: 140,
        ..Default::default()
    };
    println!("generating {} particles ...", config.particles);
    let dataset = MicroscopyDataset::generate(config.clone());
    let rotation_of = dataset.rotation_of.clone();
    let app = Arc::new(MicroscopyApp::new(&config));

    let scenario = Scenario::builder()
        .items(config.particles)
        .node(NodeSpec::uniform(1, 10, 10))
        .job_limit(4)
        .build();
    let backend = ThreadedBackend::new(app, Arc::new(dataset.store));
    let report = backend.run_app(&scenario).expect("run failed");
    println!(
        "registered {} particle pairs in {:?}",
        report.outputs.len(),
        report.elapsed
    );

    let tau = std::f64::consts::TAU;
    let mut worst = 0.0f64;
    let mut evals = Vec::new();
    for &(pair, reg) in report.sorted_outputs().into_iter() {
        let expected =
            (rotation_of[pair.right as usize] - rotation_of[pair.left as usize]).rem_euclid(tau);
        let mut err = (reg.rotation - expected).abs();
        err = err.min(tau - err);
        worst = worst.max(err);
        evals.push(reg.evaluations);
    }
    println!(
        "worst pose-recovery error: {:.1}° | score evaluations per pair: {}..{}",
        worst.to_degrees(),
        evals.iter().min().unwrap(),
        evals.iter().max().unwrap()
    );
    assert!(worst < 0.3, "registration failed: {worst} rad");
    println!("all relative poses recovered: ok");
}
