//! Phylogeny tree construction (the paper's §5.2 application), end to end:
//! synthetic proteomes → all-pairs composition-vector distances on Rocket →
//! UPGMA tree → Newick output, with a cluster-recovery check.
//!
//! ```text
//! cargo run --release --example phylogeny
//! ```

use std::sync::Arc;

use rocket::apps::phylo;
use rocket::apps::{BioApp, BioConfig, BioDataset};
use rocket::core::{NodeSpec, Scenario, ThreadedBackend};

fn main() {
    let config = BioConfig {
        species: 18,
        clusters: 3,
        proteome_len: 3000,
        ..Default::default()
    };
    println!(
        "generating {} proteomes from {} ancestral clusters ...",
        config.species, config.clusters
    );
    let dataset = BioDataset::generate(config.clone());
    let app = Arc::new(BioApp::new(&config));
    let cluster_of = dataset.cluster_of.clone();

    let scenario = Scenario::builder()
        .items(config.species)
        .node(NodeSpec::uniform(1, 9, 18))
        .job_limit(4)
        .build();
    let backend = ThreadedBackend::new(app, Arc::new(dataset.store));
    let report = backend.run_app(&scenario).expect("run failed");
    println!(
        "computed {} pairwise distances in {:?} (R = {:.2})",
        report.outputs.len(),
        report.elapsed,
        report.r_factor()
    );

    // Assemble the condensed distance matrix in canonical order.
    let n = config.species as usize;
    let mut dist = vec![0.0f64; n * (n - 1) / 2];
    for &(pair, d) in report.sorted_outputs().into_iter() {
        dist[phylo::condensed_index(n, pair.left as usize, pair.right as usize)] = d;
    }

    let tree = phylo::upgma(n, &dist);
    let newick = tree.to_newick(&|leaf| format!("sp{leaf:02}c{}", cluster_of[leaf]));
    println!("UPGMA tree:\n{newick}");

    // Every ancestral cluster must form a clade.
    for c in 0..config.clusters {
        let want: Vec<usize> = (0..n).filter(|&s| cluster_of[s] == c).collect();
        let found = (tree.leaves..tree.leaves + tree.merges.len())
            .any(|node| tree.leaves_under(node) == want);
        assert!(found, "cluster {c} is not a clade");
        println!("cluster {c}: {} species form a clade: ok", want.len());
    }
}
