//! Scaling study on the discrete-event simulator: reproduce the paper's
//! super-linear-speedup effect (Fig 12) interactively, at any size —
//! expressed as a first-class `Sweep` (node count × distributed cache)
//! driven through a `Study`, with a replicated confidence-interval run at
//! the largest point.
//!
//! ```text
//! cargo run --release --example cluster_scaling [max_nodes]
//! ```

use rocket::core::{Axis, NodeSpec, ReplicationPolicy, Scenario, Study, Sweep};
use rocket::gpu::DeviceProfile;
use rocket::sim::{model, SimBackend};

fn main() {
    let max_nodes: usize = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(16)
        .max(1);

    // The paper's forensics workload at 1/10 scale; cache sizes follow the
    // DAS-5 hardware (11 GB usable device memory, 40 GB host cache).
    let scale = 10u64;
    let w = rocket::apps::profiles::forensics().scaled(scale);
    let slots = |gb: f64| ((gb * 1e9 / w.item_bytes as f64 / scale as f64) as usize).max(2);
    let node = NodeSpec {
        gpus: vec![DeviceProfile::titanx_maxwell()],
        device_slots: slots(11.0),
        host_slots: slots(40.0),
    };

    // Node counts 1, 2, 4, … up to max_nodes.
    let node_counts: Vec<usize> = std::iter::successors(Some(1usize), |p| Some(p * 2))
        .take_while(|&p| p <= max_nodes)
        .collect();
    let base = Scenario::builder()
        .workload(w.clone())
        .node(node.clone())
        .build();
    let sweep = Sweep::over(base)
        .axis(Axis::distributed_cache([true, false]))
        .axis(Axis::nodes(node_counts.clone()))
        .try_build()
        .expect("valid sweep");

    println!(
        "forensics (n = {}, {} pairs), 1 TitanX Maxwell per node",
        w.items,
        w.pairs()
    );
    let backend = SimBackend::new();
    let study = Study::new("cluster_scaling")
        .run(&backend, &sweep)
        .expect("study run");

    // The structured grid: every cell knows its coordinates.
    println!(
        "{:>5}  {:>5}  {:>10}  {:>8}  {:>6}  {:>10}",
        "nodes", "dist", "runtime", "speedup", "R", "IO MB/s"
    );
    for dist_cells in study.cells.chunks(node_counts.len()) {
        let t1 = dist_cells[0].run().elapsed;
        for cell in dist_cells {
            let r = cell.run();
            println!(
                "{:>5}  {:>5}  {:>9.1}s  {:>7.2}x  {:>6.2}  {:>10.1}",
                cell.scenario.nodes.len(),
                if cell.scenario.distributed_cache {
                    "on"
                } else {
                    "off"
                },
                r.elapsed,
                t1 / r.elapsed,
                r.r_factor(),
                r.avg_io_mbps()
            );
        }
    }
    let tmin = model::t_min(&w);
    println!("\nmodelled single-GPU lower bound T_min = {tmin:.1}s");

    // Replicate the largest distributed-cache point over 8 seeds: stage
    // times are stochastic, so the honest headline is a mean with a 95%
    // confidence interval — a one-cell study under a fixed(8) policy.
    let largest = &study.cells[node_counts.len() - 1];
    let point = Sweep::over(largest.scenario.clone())
        .try_build()
        .expect("point sweep");
    let reps = Study::new("largest_point")
        .replication(ReplicationPolicy::fixed(8))
        .run(&backend, &point)
        .expect("replications");
    let cell = &reps.cells[0].report;
    println!(
        "\n{} nodes × 8 seeds: runtime {} s | R {}",
        largest.scenario.nodes.len(),
        cell.elapsed.avg_pm_ci95(),
        cell.r_factor.avg_pm_ci95()
    );
    println!("\nsuper-linear speedup with the distributed cache on: the combined\nhost caches hold the whole data set, so R falls as nodes are added.");
}
