//! Scaling study on the discrete-event simulator: reproduce the paper's
//! super-linear-speedup effect (Fig 12) interactively, at any size —
//! driven through the unified `Scenario`/`Backend` API, with a replicated
//! confidence-interval run at the largest point.
//!
//! ```text
//! cargo run --release --example cluster_scaling [max_nodes]
//! ```

use rocket::core::{Backend, NodeSpec, Replications, Scenario};
use rocket::gpu::DeviceProfile;
use rocket::sim::{model, SimBackend};

fn main() {
    let max_nodes: usize = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(16);

    // The paper's forensics workload at 1/10 scale; cache sizes follow the
    // DAS-5 hardware (11 GB usable device memory, 40 GB host cache).
    let scale = 10u64;
    let w = rocket::apps::profiles::forensics().scaled(scale);
    let slots = |gb: f64| ((gb * 1e9 / w.item_bytes as f64 / scale as f64) as usize).max(2);
    let node = NodeSpec {
        gpus: vec![DeviceProfile::titanx_maxwell()],
        device_slots: slots(11.0),
        host_slots: slots(40.0),
    };

    println!(
        "forensics (n = {}, {} pairs), 1 TitanX Maxwell per node",
        w.items,
        w.pairs()
    );
    println!(
        "{:>5}  {:>5}  {:>10}  {:>8}  {:>6}  {:>10}",
        "nodes", "dist", "runtime", "speedup", "R", "IO MB/s"
    );
    let backend = SimBackend::new();
    let mut largest = None;
    for dist in [true, false] {
        let mut t1 = None;
        let mut p = 1;
        while p <= max_nodes {
            let scenario = Scenario::builder()
                .workload(w.clone())
                .nodes(p, node.clone())
                .distributed_cache(dist)
                .build();
            let r = backend.run(&scenario).expect("simulation run");
            let base = *t1.get_or_insert(r.elapsed);
            println!(
                "{p:>5}  {:>5}  {:>9.1}s  {:>7.2}x  {:>6.2}  {:>10.1}",
                if dist { "on" } else { "off" },
                r.elapsed,
                base / r.elapsed,
                r.r_factor(),
                r.avg_io_mbps()
            );
            if dist {
                largest = Some(scenario);
            }
            p *= 2;
        }
    }
    let tmin = model::t_min(&w);
    println!("\nmodelled single-GPU lower bound T_min = {tmin:.1}s");

    // Replicate the largest distributed-cache point over 8 seeds on the
    // thread pool: stage times are stochastic, so the honest headline is a
    // mean with a 95% confidence interval.
    if let Some(scenario) = largest {
        let reps = Replications::new(scenario.seed, 8)
            .run(&backend, &scenario)
            .expect("replications");
        println!(
            "\n{} nodes × 8 seeds: runtime {} s | R {}",
            scenario.nodes.len(),
            reps.elapsed.avg_pm_ci95(),
            reps.r_factor.avg_pm_ci95()
        );
    }
    println!("\nsuper-linear speedup with the distributed cache on: the combined\nhost caches hold the whole data set, so R falls as nodes are added.");
}
