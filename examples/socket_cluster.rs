//! Run a real application over both cluster transports and compare:
//! in-process channels vs loopback TCP sockets — the same `Scenario`, the
//! same results, but the socket run pushes the directory and item-fetch
//! protocols through real length-prefixed frames over real connections.
//!
//! ```text
//! cargo run --release --example socket_cluster [nodes]
//! ```

use std::sync::Arc;

use rocket::apps::{ForensicsApp, ForensicsConfig, ForensicsDataset};
use rocket::core::{Application, NodeSpec, Scenario, ThreadedBackend, TransportKind};

fn main() {
    let nodes: usize = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);

    // A small synthetic forensics data set; every node sees the same
    // shared object store (the paper's central file server).
    let cfg = ForensicsConfig {
        images: 32,
        cameras: 4,
        width: 48,
        height: 48,
        seed: 0xC0FFEE,
        ..Default::default()
    };
    let ds = ForensicsDataset::generate(cfg.clone());
    let app = Arc::new(ForensicsApp::new(&cfg));
    let items = app.item_count();
    let backend = ThreadedBackend::new(app, Arc::new(ds.store));

    println!("forensics, n = {items}, {nodes} nodes × 1 GPU, distributed cache on\n");
    println!(
        "{:<10}  {:>16}  {:>7}  {:>5}  {:>9}  {:>12}  {:>9}",
        "transport", "backend", "pairs", "R", "net msgs", "net bytes", "runtime"
    );
    for kind in [TransportKind::Local, TransportKind::Socket] {
        let scenario = Scenario::builder()
            .items(items)
            .nodes(nodes, NodeSpec::uniform(1, 8, items as usize))
            .job_limit(8)
            .cpu_threads(2)
            .leaf_pairs(8)
            // Static partition: per-node pair counts become deterministic,
            // so the two transports are comparable row by row.
            .static_partition(true)
            .transport(kind)
            .build();
        let report = backend.run_app(&scenario).expect("cluster run");
        let comm = report.comm_totals();
        let unified = report.unified(&scenario);
        println!(
            "{:<10}  {:>16}  {:>7}  {:>5.2}  {:>9}  {:>12}  {:>8.2}s",
            kind.label(),
            unified.backend,
            unified.pairs,
            unified.r_factor(),
            comm.msgs_sent,
            comm.bytes_sent,
            unified.elapsed,
        );
    }
    println!(
        "\nthe socket row names the backend \"threaded+socket\" and pushes\n\
         its traffic through real TCP frames; pair counts are identical —\n\
         the transport changes the wire, never the answer."
    );
}
