//! Common-source camera identification (the paper's §5.1 application).
//!
//! Generates a synthetic image set with genuine per-camera PRNU noise,
//! runs the all-pairs NCC comparison on the Rocket runtime with two
//! virtual GPUs, and checks the scores separate same-camera pairs from
//! different-camera pairs.
//!
//! ```text
//! cargo run --release --example forensics
//! ```

use std::sync::Arc;

use rocket::apps::{ForensicsApp, ForensicsConfig, ForensicsDataset};
use rocket::core::{NodeSpec, Scenario, ThreadedBackend};

fn main() {
    let config = ForensicsConfig {
        images: 32,
        cameras: 4,
        width: 64,
        height: 64,
        ..Default::default()
    };
    println!(
        "generating {} images from {} cameras ({}x{}) ...",
        config.images, config.cameras, config.width, config.height
    );
    let dataset = ForensicsDataset::generate(config.clone());
    let app = Arc::new(ForensicsApp::new(&config));

    let scenario = Scenario::builder()
        .items(config.images)
        // Two virtual GPUs share the node's host cache.
        .node(NodeSpec::uniform(2, 12, 32))
        .job_limit(12)
        .build();
    let camera_of = dataset.camera_of.clone();
    let backend = ThreadedBackend::new(app, Arc::new(dataset.store));
    let report = backend.run_app(&scenario).expect("run failed");

    println!(
        "compared {} pairs in {:?} | loads {} (R = {:.2}) | host hits {:.0}%",
        report.outputs.len(),
        report.elapsed,
        report.total_loads(),
        report.r_factor(),
        report.host_cache().hit_ratio() * 100.0
    );

    // Score separation: the smallest same-camera NCC must exceed the
    // largest different-camera NCC.
    let mut same = Vec::new();
    let mut diff = Vec::new();
    for &(pair, score) in report.sorted_outputs().into_iter() {
        if camera_of[pair.left as usize] == camera_of[pair.right as usize] {
            same.push(score);
        } else {
            diff.push(score);
        }
    }
    let min_same = same.iter().cloned().fold(f64::INFINITY, f64::min);
    let max_diff = diff.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    println!(
        "same-camera NCC range  [{min_same:.4}, {:.4}]  ({} pairs)",
        same.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
        same.len()
    );
    println!(
        "cross-camera NCC range [{:.4}, {max_diff:.4}]  ({} pairs)",
        diff.iter().cloned().fold(f64::INFINITY, f64::min),
        diff.len()
    );
    assert!(min_same > max_diff, "PRNU failed to separate cameras");
    println!("camera attribution is perfectly separable: ok");
}
