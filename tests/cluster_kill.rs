//! The harshest fault-tolerance check there is: real `rocket-node --serve`
//! OS processes join a socket mesh, a `Study` sweeps over the resulting
//! [`ClusterBackend`], and one worker is `SIGKILL`ed mid-sweep. The sweep
//! must still complete, every cell must match a local in-process run
//! bit-for-bit (modulo the `degraded` flag on re-dealt cells), and the
//! loss must be reported in the study notes.

use std::net::{SocketAddr, TcpListener};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use rocket::cluster::{ClusterBackend, ClusterEvent, ClusterOptions};
use rocket::core::{Axis, NodeSpec, Scenario, Study, Sweep, WorkloadProfile};
use rocket::sim::SimBackend;
use rocket::stats::Dist;

const WORKERS: usize = 3;

/// Reserve `n` distinct loopback ports by binding ephemeral listeners,
/// recording their addresses, and releasing them all at once. The usual
/// test-suite trick: a tiny reuse race in exchange for no fixed ports.
fn free_addrs(n: usize) -> Vec<SocketAddr> {
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind ephemeral"))
        .collect();
    listeners
        .iter()
        .map(|l| l.local_addr().expect("local addr"))
        .collect()
}

fn spawn_worker(rank: usize, addrs: &[SocketAddr]) -> Child {
    let peers = addrs
        .iter()
        .map(|a| a.to_string())
        .collect::<Vec<_>>()
        .join(",");
    Command::new(env!("CARGO_BIN_EXE_rocket-node"))
        .args(["--rank", &rank.to_string(), "--peers", &peers, "--serve"])
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn rocket-node --serve")
}

fn base_scenario() -> Scenario {
    let mut workload = WorkloadProfile::items_only(24);
    workload.file_bytes = 1_000_000;
    workload.item_bytes = 10_000_000;
    workload.parse = Dist::Constant(10e-3);
    workload.preprocess = Some(Dist::Constant(5e-3));
    workload.compare = Dist::Constant(1e-3);
    Scenario::builder()
        .workload(workload)
        .nodes(2, NodeSpec::uniform(1, 8, 16))
        .seed(0xDEAD_BEEF)
        .build()
}

fn sweep() -> Sweep {
    Sweep::over(base_scenario())
        .axis(Axis::items([12, 16, 20, 24, 28, 32]))
        .axis(Axis::hops([1, 2]))
        .try_build()
        .expect("12-cell sweep")
}

fn wait_for(mut cond: impl FnMut() -> bool, what: &str) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn sigkilled_worker_does_not_sink_the_sweep() {
    let addrs = free_addrs(WORKERS + 1);
    let mut children: Vec<Child> = (1..=WORKERS).map(|r| spawn_worker(r, &addrs)).collect();

    // Rank 0: the driver. SocketTransport::join retries connects for ~10s,
    // which covers any spawn/accept ordering between us and the children.
    let backend = ClusterBackend::join(
        &addrs,
        ClusterOptions {
            ping_interval: Duration::from_millis(50),
            liveness_timeout: Duration::from_millis(500),
            job_timeout: Duration::from_secs(10),
            quorum: None, // majority of 3 = 2; one loss stays at quorum
            poll: Duration::from_millis(2),
        },
    )
    .expect("driver joins the mesh");
    wait_for(
        || {
            backend
                .events()
                .iter()
                .filter(|e| matches!(e, ClusterEvent::WorkerReady { .. }))
                .count()
                == WORKERS
        },
        "all workers to handshake",
    );

    let study = std::thread::spawn({
        let sweep = sweep();
        move || {
            let report = Study::new("kill-smoke")
                .threads(WORKERS)
                .run(&backend, &sweep)
                .expect("sweep survives the kill");
            (backend, report)
        }
    });

    // kill(2) with SIGKILL — no atexit, no socket shutdown handshake, the
    // kernel just reaps the process. The driver finds out the hard way.
    std::thread::sleep(Duration::from_millis(100));
    children[0].kill().expect("SIGKILL rank 1");

    let (backend, mut report) = study.join().expect("study thread");

    // The sweep completed on the survivors with totals identical to a
    // local, single-process run.
    let mut reference = Study::new("kill-smoke");
    // CI sets ROCKET_PERF_DIR to keep the smoke run's perf logs as an
    // artifact; the reference study is the single-process run, so its
    // logs describe the same cells the cluster executed.
    if let Ok(dir) = std::env::var("ROCKET_PERF_DIR") {
        reference = reference.perf_log_dir(dir);
    }
    let local = reference
        .run(&SimBackend::new(), &sweep())
        .expect("local study");
    assert_eq!(report.cells.len(), local.cells.len());
    for (c, l) in report.cells.iter().zip(&local.cells) {
        let mut run = c.run().clone();
        run.degraded = false; // re-dealt cells are flagged; totals still match
        assert_eq!(format!("{run:?}"), format!("{:?}", l.run()));
    }

    // The loss is always eventually recorded (heartbeats keep running
    // after the sweep), even if the kill landed between jobs.
    wait_for(
        || backend.lost_workers().contains(&1),
        "rank 1 declared lost",
    );
    report.push_notes(&backend.fault_summary());
    assert!(
        report.notes.contains("lost [1]"),
        "loss surfaced in the study report: {}",
        report.notes
    );

    // Dropping the backend broadcasts Shutdown; the survivors exit clean.
    drop(backend);
    let killed = children.remove(0).wait().expect("reap rank 1");
    assert!(!killed.success(), "SIGKILL is not a clean exit");
    for mut child in children {
        let status = child.wait().expect("reap survivor");
        assert!(status.success(), "survivor exited {status:?}");
    }
}
