//! Integration tests of the simulator against the paper's performance
//! model and headline claims (shape, not absolute numbers).

use rocket::apps::profiles;
use rocket::gpu::DeviceProfile;
use rocket::sim::{model, simulate, SimConfig, SimNodeConfig};

fn scaled_forensics() -> rocket::apps::WorkloadProfile {
    profiles::forensics().scaled(40)
}

fn das5_node(w: &rocket::apps::WorkloadProfile, scale: u64) -> SimNodeConfig {
    let slots = |gb: f64| ((gb * 1e9 / w.item_bytes as f64 / scale as f64) as usize).max(2);
    SimNodeConfig {
        gpus: vec![DeviceProfile::titanx_maxwell()],
        device_slots: slots(11.0),
        host_slots: slots(40.0),
    }
}

#[test]
fn perfect_cache_meets_model_lower_bound() {
    for w in profiles::all() {
        let w = w.scaled(40);
        let node = SimNodeConfig::uniform(1, w.items as usize, w.items as usize);
        let r = simulate(&SimConfig::cluster(w.clone(), vec![node]));
        assert!((r.r_factor() - 1.0).abs() < 1e-9, "{}: R != 1", w.name);
        let tmin = model::t_min(&w);
        let ratio = r.makespan / tmin;
        assert!(
            (0.95..1.2).contains(&ratio),
            "{}: makespan {} vs T_min {tmin} (ratio {ratio})",
            w.name,
            r.makespan
        );
    }
}

#[test]
fn super_linear_speedup_with_distributed_cache() {
    // The paper's headline (Fig 12): forensics on 16 nodes is super-linear
    // with the distributed cache, sub-linear without.
    let scale = 40;
    let w = scaled_forensics();
    let node = das5_node(&w, scale);
    let run = |nodes: usize, dist: bool| {
        let mut cfg = SimConfig::cluster(w.clone(), vec![node.clone(); nodes]);
        cfg.distributed_cache = dist;
        simulate(&cfg)
    };
    let t1 = run(1, true);
    let on = run(8, true);
    let off = run(8, false);
    let speedup_on = t1.makespan / on.makespan;
    let speedup_off = t1.makespan / off.makespan;
    assert!(
        speedup_on > 8.0,
        "expected super-linear speedup with distributed cache, got {speedup_on:.2}"
    );
    assert!(speedup_on > speedup_off, "{speedup_on} vs {speedup_off}");
    // R falls with the distributed cache, grows without it.
    assert!(on.r_factor() < t1.r_factor());
    assert!(off.r_factor() >= t1.r_factor() * 0.95);
    // I/O pressure is much lower with the distributed cache.
    assert!(on.io_bytes < off.io_bytes);
}

#[test]
fn heterogeneous_cluster_is_balanced() {
    // §6.5: combined heterogeneous nodes reach at least the sum of parts,
    // and each GPU's share tracks its relative speed.
    let w = profiles::microscopy().scaled(2);
    let slots = w.items as usize;
    let mk = |gpus: Vec<DeviceProfile>| SimNodeConfig {
        gpus,
        device_slots: slots,
        host_slots: slots,
    };
    let nodes = vec![
        mk(vec![DeviceProfile::k20m()]),
        mk(vec![DeviceProfile::rtx2080ti(), DeviceProfile::rtx2080ti()]),
    ];
    let mut sum = 0.0;
    for n in &nodes {
        sum += simulate(&SimConfig::cluster(w.clone(), vec![n.clone()])).throughput();
    }
    let all = simulate(&SimConfig::cluster(w.clone(), nodes));
    assert!(
        all.throughput() > 0.9 * sum,
        "combined {:.1} pairs/s vs sum {sum:.1}",
        all.throughput()
    );
    // Node II (2× RTX) must do far more pairs than node I (1× K20m).
    assert!(all.pairs_per_node[1] > 3 * all.pairs_per_node[0]);
}

#[test]
fn hop_distribution_dominated_by_first_hop() {
    let scale = 40;
    let w = scaled_forensics();
    let mut cfg = SimConfig::cluster(w.clone(), vec![das5_node(&w, scale); 8]);
    cfg.hops = 3;
    let r = simulate(&cfg);
    let lookups = r.directory.lookups();
    assert!(lookups > 0);
    let hop1 = r.directory.hits_at_hop.first().copied().unwrap_or(0);
    let later: u64 = r.directory.hits_at_hop.iter().skip(1).sum();
    assert!(
        hop1 > 3 * later,
        "first hop {hop1} vs later hops {later} of {lookups}"
    );
}

#[test]
fn r_factor_decreases_with_cluster_size() {
    // Fig 15's driving effect: more nodes → larger combined cache → lower R.
    let scale = 40;
    let w = profiles::bioinformatics_large().scaled(scale);
    let slots = |gb: f64| ((gb * 1e9 / w.item_bytes as f64 / scale as f64) as usize).max(2);
    let node = SimNodeConfig {
        gpus: vec![DeviceProfile::k40m(), DeviceProfile::k40m()],
        device_slots: slots(11.0),
        host_slots: slots(80.0),
    };
    let r_of =
        |p: usize| simulate(&SimConfig::cluster(w.clone(), vec![node.clone(); p])).r_factor();
    let r1 = r_of(1);
    let r4 = r_of(4);
    let r8 = r_of(8);
    assert!(
        r1 > r4 && r4 > r8,
        "R sequence {r1:.2} → {r4:.2} → {r8:.2} not decreasing"
    );
    assert!(r1 > 2.0, "single node should thrash: R = {r1:.2}");
}

#[test]
fn simulator_is_deterministic_across_runs() {
    let w = profiles::bioinformatics().scaled(40);
    let cfg = SimConfig::cluster(w.clone(), vec![das5_node(&w, 40); 4]);
    let a = simulate(&cfg);
    let b = simulate(&cfg);
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.loads, b.loads);
    assert_eq!(a.io_bytes, b.io_bytes);
    assert_eq!(a.pairs_per_node, b.pairs_per_node);
}
