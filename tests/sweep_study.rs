//! Integration tests of the first-class `Sweep`/`Study` driver API
//! through the public facade: deterministic ordered grid expansion,
//! `try_build` validation of invalid axis combinations, byte-identical
//! study reports across cell parallelism, and JSON round-trips checked
//! with a real JSON parser.

use rocket::apps::json::Json;
use rocket::core::{
    Axis, AxisValue, Backend, NodeSpec, ReplicationPolicy, Scenario, Study, StudyReport, Sweep,
    TransportKind, WorkloadProfile, MAX_SOCKET_NODES,
};
use rocket::sim::SimBackend;
use rocket::stats::Dist;

/// A stochastic simulation workload, so replication statistics and
/// per-seed results are non-degenerate.
fn stochastic_workload(items: u64) -> WorkloadProfile {
    WorkloadProfile {
        name: "sweep-study",
        items,
        file_bytes: 1_000_000,
        item_bytes: 10_000_000,
        parse: Dist::normal_nonneg(10e-3, 2e-3),
        preprocess: Some(Dist::Constant(5e-3)),
        compare: Dist::LogNormal {
            mean: 1e-3,
            std: 0.4e-3,
        },
        postprocess: Dist::Constant(0.0),
        paper_device_slots: 16,
        paper_host_slots: 32,
    }
}

fn base_scenario() -> Scenario {
    Scenario::builder()
        .workload(stochastic_workload(32))
        .node(NodeSpec::uniform(1, 8, 16))
        .seed(0xC0FFEE)
        .build()
}

fn sweep_2x2() -> Sweep {
    Sweep::over(base_scenario())
        .axis(Axis::nodes([1, 2]))
        .axis(Axis::distributed_cache([true, false]))
        .try_build()
        .expect("2x2 sweep")
}

#[test]
fn grid_expansion_is_deterministic_and_ordered() {
    let sweep = sweep_2x2();
    assert_eq!(sweep.len(), 4);
    assert_eq!(sweep.axis_names(), vec!["nodes", "distributed_cache"]);
    let cells = sweep.cells();
    // Row-major: first axis slowest, last axis fastest.
    let coords: Vec<(u64, bool)> = cells
        .iter()
        .map(|c| {
            let nodes = match c.coords[0].1 {
                AxisValue::U64(v) => v,
                ref other => panic!("unexpected node coord {other:?}"),
            };
            let dist = match c.coords[1].1 {
                AxisValue::Bool(v) => v,
                ref other => panic!("unexpected cache coord {other:?}"),
            };
            (nodes, dist)
        })
        .collect();
    assert_eq!(coords, vec![(1, true), (1, false), (2, true), (2, false)]);
    for (i, cell) in cells.iter().enumerate() {
        assert_eq!(cell.index, i);
        assert_eq!(cell.scenario.nodes.len(), coords[i].0 as usize);
        assert_eq!(cell.scenario.distributed_cache, coords[i].1);
    }
    // Same axes ⇒ same cell order, every time.
    let again = sweep.cells();
    assert_eq!(format!("{cells:?}"), format!("{again:?}"));
}

#[test]
fn invalid_axis_combinations_rejected_by_try_build() {
    // Socket transport × oversized topology: each cell is validated with
    // the full scenario rules, and the error names the coordinates.
    let err = Sweep::over(base_scenario())
        .axis(Axis::transport([
            TransportKind::Local,
            TransportKind::Socket,
        ]))
        .axis(Axis::nodes([2, MAX_SOCKET_NODES + 1]))
        .try_build()
        .unwrap_err();
    assert!(err.contains("socket transport"), "{err}");
    assert!(err.contains("transport=socket"), "{err}");
    assert!(
        err.contains(&format!("nodes={}", MAX_SOCKET_NODES + 1)),
        "{err}"
    );
    // Degenerate knob values are caught cell-by-cell too.
    assert!(Sweep::over(base_scenario())
        .axis(Axis::hops([1, 0]))
        .try_build()
        .is_err());
    // Duplicate axis names and empty axes are structural errors.
    assert!(Sweep::over(base_scenario())
        .axis(Axis::nodes([1]))
        .axis(Axis::nodes([2]))
        .try_build()
        .is_err());
    assert!(Sweep::over(base_scenario())
        .axis(Axis::items(Vec::new()))
        .try_build()
        .is_err());
}

#[test]
fn study_reports_identical_across_cell_parallelism() {
    // A 2×2 sim-backend study must be byte-identical whether cells run
    // sequentially or four at a time.
    let backend = SimBackend::new();
    let run = |threads: usize| {
        Study::new("2x2")
            .threads(threads)
            .run(&backend, &sweep_2x2())
            .expect("study run")
    };
    let serial = run(1);
    assert_eq!(serial.cells.len(), 4);
    let serial_bytes = format!("{serial:?}");
    assert_eq!(
        serial_bytes,
        format!("{:?}", run(4)),
        "threads(4) diverged from threads(1)"
    );
    // Replicated cells hold too (replications nest inside cell slots).
    let rep = |threads: usize| {
        Study::new("2x2")
            .replication(ReplicationPolicy::fixed(3))
            .threads(threads)
            .run(&backend, &sweep_2x2())
            .expect("replicated study")
    };
    assert_eq!(format!("{:?}", rep(1)), format!("{:?}", rep(4)));
}

#[test]
fn once_policy_cells_equal_direct_backend_runs() {
    let backend = SimBackend::new();
    let study = Study::new("direct").run(&backend, &sweep_2x2()).unwrap();
    for cell in &study.cells {
        let direct = backend.run(&cell.scenario).expect("direct run");
        assert_eq!(format!("{:?}", cell.run()), format!("{direct:?}"));
    }
}

#[test]
fn study_json_round_trips_with_a_real_parser() {
    let study = Study::new("roundtrip")
        .replication(ReplicationPolicy::fixed(2))
        .run(&SimBackend::new(), &sweep_2x2())
        .unwrap();
    // Whole-study document: parseable, one cell record per grid cell,
    // coordinates preserved with native JSON types.
    let doc = Json::parse(&study.to_json()).expect("study JSON parses");
    let cells = doc
        .get("cells")
        .and_then(Json::as_arr)
        .expect("cells array");
    assert_eq!(cells.len(), 4);
    for (i, cell) in cells.iter().enumerate() {
        assert_eq!(cell.get("cell").and_then(Json::as_f64), Some(i as f64));
        let coords = cell.get("coords").expect("coords object");
        assert!(matches!(coords.get("nodes"), Some(Json::Num(_))));
        assert!(matches!(
            coords.get("distributed_cache"),
            Some(Json::Bool(_))
        ));
        let report = cell.get("report").expect("replication report");
        assert_eq!(report.get("replications").and_then(Json::as_f64), Some(2.0));
        assert_eq!(
            report.get("runs").and_then(Json::as_arr).map(<[Json]>::len),
            Some(2)
        );
    }
    // JSON-Lines form: one record per cell, each standalone-parseable.
    let lines = study.json_lines();
    assert_eq!(lines.len(), 4);
    for line in &lines {
        let v = Json::parse(line).expect("JSONL record parses");
        assert_eq!(
            v.get("experiment"),
            Some(&Json::Str("roundtrip".to_string()))
        );
        assert!(v.get("coords").is_some() && v.get("report").is_some());
    }
}

#[test]
fn csv_has_one_row_per_cell_with_axis_columns() {
    let study = Study::new("csv")
        .run(&SimBackend::new(), &sweep_2x2())
        .unwrap();
    let csv = study.to_csv();
    let mut lines = csv.lines();
    let header = lines.next().unwrap();
    assert!(
        header.starts_with("experiment,cell,nodes,distributed_cache,replications,pairs,"),
        "{header}"
    );
    let rows: Vec<&str> = lines.collect();
    assert_eq!(rows.len(), 4);
    assert!(rows[0].starts_with("csv,0,1,true,"), "{}", rows[0]);
    assert!(rows[3].starts_with("csv,3,2,false,"), "{}", rows[3]);
}

#[test]
fn concat_builds_multi_policy_studies() {
    let backend = SimBackend::new();
    let tag = |label: &str| {
        Sweep::over(base_scenario())
            .axis(Axis::tag("policy", [label]))
            .try_build()
            .unwrap()
    };
    let once = Study::new("part").run(&backend, &tag("once")).unwrap();
    let fixed = Study::new("part")
        .replication(ReplicationPolicy::fixed(4))
        .run(&backend, &tag("fixed4"))
        .unwrap();
    let merged = StudyReport::concat("multi", vec![once, fixed]).unwrap();
    assert_eq!(merged.cells.len(), 2);
    assert_eq!(merged.cells[0].cell, 0);
    assert_eq!(merged.cells[1].cell, 1);
    assert_eq!(merged.cells[0].report.replications(), 1);
    assert_eq!(merged.cells[1].report.replications(), 4);
    assert_eq!(
        merged.cells[1].coord("policy"),
        Some(&AxisValue::Str("fixed4".into()))
    );
    // Mismatched axes refuse to merge.
    let other = Study::new("part")
        .run(
            &backend,
            &Sweep::over(base_scenario())
                .axis(Axis::nodes([1]))
                .try_build()
                .unwrap(),
        )
        .unwrap();
    let merged = Study::new("part").run(&backend, &tag("once")).unwrap();
    assert!(StudyReport::concat("bad", vec![merged, other]).is_err());
}

#[test]
fn until_ci_policy_is_deterministic_per_cell() {
    let backend = SimBackend::new();
    let sweep = Sweep::over(base_scenario())
        .axis(Axis::nodes([1, 2]))
        .try_build()
        .unwrap();
    let run = || {
        Study::new("adaptive")
            .replication(ReplicationPolicy::until_ci(0.05, 12))
            .run(&backend, &sweep)
            .expect("adaptive study")
    };
    let a = run();
    let b = run();
    assert_eq!(format!("{a:?}"), format!("{b:?}"));
    for cell in &a.cells {
        assert!(cell.report.replications() >= 2, "a CI needs two runs");
        assert!(cell.report.replications() <= 12);
    }
}

#[test]
fn rendered_report_carries_axes_and_cells() {
    let mut study = Study::new("render")
        .run(&SimBackend::new(), &sweep_2x2())
        .unwrap();
    study.push_notes("Shape check: distributed cache reduces runtime at 2 nodes.");
    let text = study.render();
    assert!(text.contains("study render — backend sim, 4 cells"));
    assert!(text.contains("nodes × distributed_cache"));
    assert!(text.contains("Shape check"), "{text}");
    // Root-crate re-exports exist (facade parity).
    let _: &rocket::StudyReport = &study;
}
