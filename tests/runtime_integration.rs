//! Integration tests spanning the whole stack: real applications executed
//! through the threaded runtime, single- and multi-node, validated against
//! sequential oracles and generator ground truth.

use std::sync::Arc;

use rocket::apps::{
    BioApp, BioConfig, BioDataset, ForensicsApp, ForensicsConfig, ForensicsDataset, MicroscopyApp,
    MicroscopyConfig, MicroscopyDataset,
};
use rocket::core::{AppReport, Application, Pair, Rocket, RocketConfig};
use rocket::storage::{FaultStore, MemStore, ObjectStore};

fn small_config() -> RocketConfig {
    RocketConfig::builder()
        .devices(1)
        .device_cache_slots(8)
        .host_cache_slots(16)
        .concurrent_job_limit(6)
        .cpu_threads(2)
        .build()
}

/// Sequential oracle: run the application's stages directly, no runtime.
fn oracle<A: Application>(app: &A, store: &dyn ObjectStore) -> Vec<(Pair, A::Output)> {
    let n = app.item_count();
    let mut items = Vec::new();
    for i in 0..n {
        let raw = store.read(&app.file_for(i)).expect("oracle read");
        let mut parsed = vec![0u8; app.parsed_bytes()];
        app.parse(i, &raw, &mut parsed).expect("oracle parse");
        if app.has_preprocess() {
            let mut item = vec![0u8; app.item_bytes()];
            app.preprocess(i, &parsed, &mut item)
                .expect("oracle preprocess");
            items.push(item);
        } else {
            parsed.resize(app.item_bytes(), 0);
            items.push(parsed);
        }
    }
    let mut out = Vec::new();
    for i in 0..n {
        for j in (i + 1)..n {
            let mut result = vec![0u8; app.result_bytes()];
            app.compare(
                (i, &items[i as usize]),
                (j, &items[j as usize]),
                &mut result,
            )
            .expect("oracle compare");
            let pair = Pair::new(i, j);
            out.push((pair, app.postprocess(pair, &result)));
        }
    }
    out
}

fn assert_outputs_match_oracle<O: PartialEq + std::fmt::Debug>(
    report: &AppReport<O>,
    oracle: &[(Pair, O)],
) {
    assert!(
        report.failed().is_empty(),
        "failed pairs: {:?}",
        report.failed()
    );
    let got = report.sorted_outputs();
    assert_eq!(got.len(), oracle.len(), "pair count mismatch");
    for (g, o) in got.iter().zip(oracle) {
        assert_eq!(g.0, o.0, "pair order mismatch");
        assert!(
            g.1 == o.1,
            "output mismatch at {:?}: {:?} vs {:?}",
            g.0,
            g.1,
            o.1
        );
    }
}

#[test]
fn forensics_matches_sequential_oracle() {
    let cfg = ForensicsConfig {
        images: 14,
        cameras: 3,
        width: 48,
        height: 48,
        ..Default::default()
    };
    let ds = ForensicsDataset::generate(cfg.clone());
    let app = ForensicsApp::new(&cfg);
    let expected = oracle(&app, &ds.store);
    let report = Rocket::new(small_config())
        .run(Arc::new(app), Arc::new(ds.store))
        .expect("run");
    assert_outputs_match_oracle(&report, &expected);
    assert_eq!(report.outputs.len(), 14 * 13 / 2);
}

#[test]
fn bioinformatics_matches_sequential_oracle() {
    let cfg = BioConfig {
        species: 12,
        clusters: 3,
        proteome_len: 2000,
        ..Default::default()
    };
    let ds = BioDataset::generate(cfg.clone());
    let app = BioApp::new(&cfg);
    let expected = oracle(&app, &ds.store);
    let report = Rocket::new(small_config())
        .run(Arc::new(app), Arc::new(ds.store))
        .expect("run");
    assert_outputs_match_oracle(&report, &expected);
    // Distances are symmetric-by-construction and in [0, 1].
    for &(_, d) in report.sorted_outputs().into_iter() {
        assert!((0.0..=1.0).contains(&d));
    }
}

#[test]
fn microscopy_runs_without_preprocess_stage() {
    let cfg = MicroscopyConfig {
        particles: 8,
        ..Default::default()
    };
    let ds = MicroscopyDataset::generate(cfg.clone());
    let app = MicroscopyApp::new(&cfg);
    let expected = oracle(&app, &ds.store);
    let report = Rocket::new(small_config())
        .run(Arc::new(app), Arc::new(ds.store))
        .expect("run");
    assert_outputs_match_oracle(&report, &expected);
}

#[test]
fn multi_node_cluster_produces_identical_results() {
    let cfg = ForensicsConfig {
        images: 12,
        cameras: 3,
        width: 32,
        height: 32,
        ..Default::default()
    };
    let ds = ForensicsDataset::generate(cfg.clone());
    let app = ForensicsApp::new(&cfg);
    let expected = oracle(&app, &ds.store);
    // Three nodes, tiny caches, distributed cache on.
    let node_cfg = RocketConfig::builder()
        .devices(1)
        .device_cache_slots(6)
        .host_cache_slots(8)
        .concurrent_job_limit(4)
        .distributed_cache(true)
        .build();
    let report = Rocket::run_cluster(
        Arc::new(app),
        Arc::new(ds.store),
        vec![node_cfg.clone(), node_cfg.clone(), node_cfg],
    )
    .expect("cluster run");
    assert_outputs_match_oracle(&report, &expected);
    assert_eq!(report.nodes.len(), 3);
    // All nodes participated.
    let active = report
        .steal
        .pairs_per_worker
        .iter()
        .filter(|&&c| c > 0)
        .count();
    assert!(active >= 2, "workers: {:?}", report.steal.pairs_per_worker);
}

#[test]
fn distributed_cache_reduces_cluster_loads() {
    let cfg = ForensicsConfig {
        images: 16,
        cameras: 4,
        width: 32,
        height: 32,
        ..Default::default()
    };
    let make = |dist: bool| {
        let ds = ForensicsDataset::generate(cfg.clone());
        let app = ForensicsApp::new(&cfg);
        let node_cfg = RocketConfig::builder()
            .devices(1)
            .device_cache_slots(8)
            .host_cache_slots(16) // whole set fits per node
            .concurrent_job_limit(4)
            .distributed_cache(dist)
            .build();
        Rocket::run_cluster(
            Arc::new(app),
            Arc::new(ds.store),
            vec![
                node_cfg.clone(),
                node_cfg.clone(),
                node_cfg.clone(),
                node_cfg,
            ],
        )
        .expect("cluster run")
    };
    let with = make(true);
    let without = make(false);
    assert!(with.failed().is_empty() && without.failed().is_empty());
    assert!(
        with.total_loads() < without.total_loads(),
        "distributed cache must reduce loads: {} vs {}",
        with.total_loads(),
        without.total_loads()
    );
    assert!(with.total_remote_fetches() > 0);
    assert_eq!(without.total_remote_fetches(), 0);
}

#[test]
fn transient_storage_faults_are_retried() {
    let cfg = ForensicsConfig {
        images: 8,
        cameras: 2,
        width: 32,
        height: 32,
        ..Default::default()
    };
    let ds = ForensicsDataset::generate(cfg.clone());
    let app = ForensicsApp::new(&cfg);
    let expected = oracle(&app, &ds.store);
    // Every 5th read fails; io_retries handles it transparently.
    let flaky = FaultStore::every(ds.store, 5);
    let config = RocketConfig::builder()
        .devices(1)
        .device_cache_slots(4)
        .host_cache_slots(8)
        .concurrent_job_limit(4)
        .io_retries(3)
        .build();
    let report = Rocket::new(config)
        .run(Arc::new(app), Arc::new(flaky))
        .expect("run");
    assert_outputs_match_oracle(&report, &expected);
}

#[test]
fn missing_files_fail_only_dependent_pairs() {
    // Item 3's file is absent: the 7 pairs touching it fail, the rest run.
    let cfg = ForensicsConfig {
        images: 8,
        cameras: 2,
        width: 32,
        height: 32,
        ..Default::default()
    };
    let ds = ForensicsDataset::generate(cfg.clone());
    let partial = MemStore::new();
    for key in ds.store.list() {
        if key != ForensicsDataset::key(3) {
            partial.put(key.clone(), ds.store.read(&key).unwrap());
        }
    }
    let config = RocketConfig::builder()
        .devices(1)
        .device_cache_slots(4)
        .host_cache_slots(8)
        .concurrent_job_limit(4)
        .io_retries(1)
        .max_item_failures(2)
        .build();
    let report = Rocket::new(config)
        .run(Arc::new(ForensicsApp::new(&cfg)), Arc::new(partial))
        .expect("run");
    assert_eq!(report.failed().len(), 7, "failed: {:?}", report.failed());
    assert!(report
        .failed()
        .iter()
        .all(|(p, _)| p.left == 3 || p.right == 3));
    assert_eq!(report.outputs.len(), 8 * 7 / 2 - 7);
}

#[test]
fn tracing_captures_all_pipeline_stages() {
    let cfg = ForensicsConfig {
        images: 8,
        cameras: 2,
        width: 32,
        height: 32,
        ..Default::default()
    };
    let ds = ForensicsDataset::generate(cfg.clone());
    let report = Rocket::new(small_config())
        .run(Arc::new(ForensicsApp::new(&cfg)), Arc::new(ds.store))
        .expect("run");
    let timeline = report.timeline();
    use rocket::trace::TaskKind;
    assert_eq!(report.outputs.len(), 28);
    assert_eq!(timeline.count_kind(TaskKind::Compare), 28);
    assert_eq!(timeline.count_kind(TaskKind::Postprocess), 28);
    assert!(timeline.count_kind(TaskKind::Read) >= 8);
    assert!(timeline.count_kind(TaskKind::Parse) >= 8);
    assert!(timeline.count_kind(TaskKind::Preprocess) >= 8);
    assert!(!timeline.has_lane_overlap(), "same-lane spans overlap");
    // Chrome export is well-formed and non-trivial.
    let json = rocket::trace::chrome::to_chrome_json(timeline.spans());
    assert!(json.len() > 100);
    assert!(json.starts_with('[') && json.ends_with(']'));
}

#[test]
fn tiny_caches_still_complete() {
    // Stress the back-pressure/livelock protections: minimum legal caches.
    let cfg = ForensicsConfig {
        images: 10,
        cameras: 2,
        width: 32,
        height: 32,
        ..Default::default()
    };
    let ds = ForensicsDataset::generate(cfg.clone());
    let config = RocketConfig::builder()
        .devices(1)
        .device_cache_slots(2)
        .host_cache_slots(2)
        .concurrent_job_limit(8)
        .build();
    let report = Rocket::new(config)
        .run(Arc::new(ForensicsApp::new(&cfg)), Arc::new(ds.store))
        .expect("run");
    assert!(report.failed().is_empty());
    assert_eq!(report.outputs.len(), 45);
    // With 2 slots, items are reloaded constantly.
    assert!(report.r_factor() > 2.0, "R = {}", report.r_factor());
}
