//! Transport-seam integration tests: the socket transport must be
//! observationally equivalent to the in-process transport (same results,
//! different wire), and the framed codec must survive arbitrarily torn
//! TCP reads.

use std::sync::Arc;

use rocket::cache::DirectoryMsg;
use rocket::comm::{encode_frame, FrameDecoder, TransportKind, Wire};
use rocket::core::engine::messages::NodeMsg;
use rocket::core::{AppError, Application, NodeSpec, Pair, RunReport, Scenario, ThreadedBackend};
use rocket::stats::Xoshiro256;
use rocket::storage::MemStore;

/// Toy application: sums bytes, compares sums (deterministic outputs).
struct ByteSum {
    files: u64,
}

impl Application for ByteSum {
    type Output = i64;
    fn name(&self) -> &str {
        "bytesum"
    }
    fn item_count(&self) -> u64 {
        self.files
    }
    fn file_for(&self, item: u64) -> String {
        format!("{item}.bin")
    }
    fn parsed_bytes(&self) -> usize {
        8
    }
    fn item_bytes(&self) -> usize {
        8
    }
    fn result_bytes(&self) -> usize {
        8
    }
    fn has_preprocess(&self) -> bool {
        false
    }
    fn parse(&self, _item: u64, raw: &[u8], out: &mut [u8]) -> Result<(), AppError> {
        let sum: i64 = raw.iter().map(|&b| b as i64).sum();
        out[..8].copy_from_slice(&sum.to_le_bytes());
        Ok(())
    }
    fn compare(
        &self,
        left: (u64, &[u8]),
        right: (u64, &[u8]),
        out: &mut [u8],
    ) -> Result<(), AppError> {
        let l = i64::from_le_bytes(left.1[..8].try_into().unwrap());
        let r = i64::from_le_bytes(right.1[..8].try_into().unwrap());
        out[..8].copy_from_slice(&(l - r).to_le_bytes());
        Ok(())
    }
    fn postprocess(&self, _pair: Pair, raw: &[u8]) -> i64 {
        i64::from_le_bytes(raw[..8].try_into().unwrap())
    }
}

const ITEMS: u64 = 24;

fn run_with(kind: TransportKind, distributed_cache: bool) -> (RunReport, Vec<(Pair, i64)>) {
    // Static partition makes per-node pair counts a pure function of the
    // topology (no timing-dependent stealing), so both transports must
    // produce byte-identical distributions. Host caches hold the full
    // data set: no host evictions, hence deterministic load counts when
    // the distributed cache is off.
    let scenario = Scenario::builder()
        .items(ITEMS)
        .nodes(4, NodeSpec::uniform(1, 6, ITEMS as usize))
        .job_limit(8)
        .cpu_threads(2)
        .leaf_pairs(8)
        .static_partition(true)
        .distributed_cache(distributed_cache)
        .transport(kind)
        .seed(42)
        .build();
    let store =
        MemStore::from_iter((0..ITEMS).map(|i| (format!("{i}.bin"), vec![i as u8 + 1; 32])));
    let backend = ThreadedBackend::new(Arc::new(ByteSum { files: ITEMS }), Arc::new(store));
    let report = backend.run_app(&scenario).expect("cluster run");
    let outputs = report
        .sorted_outputs()
        .into_iter()
        .cloned()
        .collect::<Vec<_>>();
    (report.unified(&scenario), outputs)
}

#[test]
fn socket_matches_local_with_distributed_cache() {
    let (local, local_out) = run_with(TransportKind::Local, true);
    let (socket, socket_out) = run_with(TransportKind::Socket, true);

    // The acceptance bar: byte-identical pair accounting across transports.
    assert_eq!(local.pairs, ITEMS * (ITEMS - 1) / 2);
    assert_eq!(local.pairs, socket.pairs);
    assert_eq!(local.failed_pairs, 0);
    assert_eq!(socket.failed_pairs, 0);
    assert_eq!(local.pairs_per_node, socket.pairs_per_node);
    assert_eq!(local_out, socket_out, "per-pair outputs diverged");

    // Every node computed a share (the partition spans the cluster).
    assert!(local.pairs_per_node.iter().all(|&p| p > 0));
    assert_eq!(local.pairs_per_node.iter().sum::<u64>(), local.pairs);

    // The socket path really ran on sockets: the backend says so and the
    // directory protocol moved payload bytes over TCP.
    assert_eq!(local.backend, "threaded");
    assert_eq!(socket.backend, "threaded+socket");
    assert!(socket.net_bytes > 0, "no bytes crossed the sockets");
    assert!(socket.directory.lookups() > 0, "distributed cache unused");
}

#[test]
fn socket_matches_local_exactly_when_deterministic() {
    // With the distributed cache off and host caches large enough to
    // never evict, load counts are deterministic too — so R and the load
    // pipeline must agree exactly, not just statistically.
    let (local, local_out) = run_with(TransportKind::Local, false);
    let (socket, socket_out) = run_with(TransportKind::Socket, false);
    assert_eq!(local.pairs, socket.pairs);
    assert_eq!(local.failed_pairs, socket.failed_pairs);
    assert_eq!(local.pairs_per_node, socket.pairs_per_node);
    assert_eq!(local.loads, socket.loads);
    assert_eq!(local.r_factor(), socket.r_factor());
    assert_eq!(local_out, socket_out);
}

// ---------------------------------------------------------------------------
// Framed wire codec: NodeMsg round-trips through torn reads
// ---------------------------------------------------------------------------

fn random_msg(rng: &mut Xoshiro256) -> NodeMsg {
    match rng.below(6) {
        0 => NodeMsg::Dir(DirectoryMsg::Request {
            item: rng.next(),
            requester: rng.below(64),
        }),
        1 => {
            let hops = rng.below(rocket::cache::MAX_HOPS);
            NodeMsg::Dir(DirectoryMsg::Probe {
                item: rng.next(),
                requester: rng.below(64),
                rest: (0..hops).map(|_| rng.below(u32::MAX as usize)).collect(),
                hop: rng.below(8) as u8,
            })
        }
        2 => NodeMsg::Dir(DirectoryMsg::Found {
            item: rng.next(),
            holder: rng.below(64),
            hop: rng.below(8) as u8,
        }),
        3 => NodeMsg::Dir(DirectoryMsg::NotFound { item: rng.next() }),
        4 => NodeMsg::Fetch { item: rng.next() },
        _ => {
            let data = rng.chance(0.5).then(|| {
                let len = rng.below(4096);
                bytes::Bytes::from((0..len).map(|_| rng.next() as u8).collect::<Vec<u8>>())
            });
            NodeMsg::FetchReply {
                item: rng.next(),
                data,
            }
        }
    }
}

/// Feeds `stream` to a fresh decoder in chunks drawn by `next_chunk`,
/// decoding every completed frame as a `NodeMsg`.
fn decode_stream(stream: &[u8], mut next_chunk: impl FnMut() -> usize) -> Vec<NodeMsg> {
    let mut dec = FrameDecoder::new();
    let mut out = Vec::new();
    let mut pos = 0;
    while pos < stream.len() {
        let take = next_chunk().clamp(1, stream.len() - pos);
        dec.extend(&stream[pos..pos + take]);
        pos += take;
        while let Some(frame) = dec.next_frame().expect("well-formed stream") {
            out.push(NodeMsg::from_bytes(frame).expect("decodable message"));
        }
    }
    assert_eq!(dec.pending(), 0, "trailing bytes left in the decoder");
    out
}

#[test]
fn node_msgs_survive_one_byte_torn_reads() {
    let mut rng = Xoshiro256::seed_from(0xF4A7);
    let msgs: Vec<NodeMsg> = (0..300).map(|_| random_msg(&mut rng)).collect();
    let mut stream = Vec::new();
    for m in &msgs {
        stream.extend_from_slice(&encode_frame(&m.to_bytes()));
    }
    // Worst case: the stream arrives one byte at a time.
    assert_eq!(decode_stream(&stream, || 1), msgs);
}

#[test]
fn node_msgs_survive_random_chunking() {
    let mut rng = Xoshiro256::seed_from(0xBEEF);
    let msgs: Vec<NodeMsg> = (0..300).map(|_| random_msg(&mut rng)).collect();
    let mut stream = Vec::new();
    for m in &msgs {
        stream.extend_from_slice(&encode_frame(&m.to_bytes()));
    }
    for trial in 0..20u64 {
        let mut chunk_rng = Xoshiro256::seed_from(trial);
        let decoded = decode_stream(&stream, || chunk_rng.below(900) + 1);
        assert_eq!(decoded, msgs, "trial {trial}");
    }
}
