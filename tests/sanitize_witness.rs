//! End-to-end exercise of the lock-witness sanitizer: drive real
//! workloads under instrumentation, dump the witness, cross-check it
//! against the static model in-process, and prove the online cycle
//! assertion fires. Built only with `--features sanitize`.

#![cfg(feature = "sanitize")]

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::Arc;

use rocket::apps::{ForensicsApp, ForensicsConfig, ForensicsDataset};
use rocket::core::sanitize::{self, Mutex};
use rocket::core::{Rocket, RocketConfig};
use rocket::steal::JobLimiter;

/// One test fn: the global witness graph is process-wide, so the phases
/// must run in a fixed order (workloads -> dump -> cross-check -> cycle
/// experiment -> reset).
#[test]
fn witnessed_locks_agree_with_the_static_model() {
    // Phase 1: real workloads under instrumentation. The threaded engine
    // exercises host_slots/outputs/objects; the limiter its semaphore.
    let cfg = ForensicsConfig {
        images: 10,
        cameras: 2,
        width: 32,
        height: 32,
        ..Default::default()
    };
    let ds = ForensicsDataset::generate(cfg.clone());
    let app = ForensicsApp::new(&cfg);
    let report = Rocket::new(
        RocketConfig::builder()
            .devices(1)
            .device_cache_slots(8)
            .host_cache_slots(16)
            .concurrent_job_limit(6)
            .cpu_threads(2)
            .build(),
    )
    .run(Arc::new(app), Arc::new(ds.store))
    .expect("instrumented run");
    assert_eq!(report.outputs.len(), 10 * 9 / 2);

    let limiter = JobLimiter::new(2);
    limiter.acquire();
    limiter.release();

    let locks = sanitize::locks();
    for name in ["available", "host_slots", "outputs", "objects"] {
        assert!(
            locks.iter().any(|l| l == name),
            "lock `{name}` not witnessed: {locks:?}"
        );
    }

    // Phase 2: dump and cross-check against the checked-in lint.toml.
    // Acceptance: no static/dynamic disagreement on the real workspace.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let witness_dir = std::env::temp_dir().join(format!("rocket-witness-{}", std::process::id()));
    std::fs::create_dir_all(&witness_dir).expect("witness dir");
    let witness_file = witness_dir.join("witness-test.json");
    sanitize::write_witness(&witness_file).expect("write witness");

    let lint_cfg = {
        let src = std::fs::read_to_string(root.join("lint.toml")).expect("lint.toml");
        rocket_lint::config::LintConfig::parse(&src).expect("parse lint.toml")
    };
    let diags =
        rocket_lint::cross_check_witness(root, &lint_cfg, &witness_file).expect("cross-check");
    let disagreements: Vec<_> = diags.iter().filter(|d| !d.suppressed).collect();
    assert!(
        disagreements.is_empty(),
        "static/dynamic disagreement:\n{}",
        disagreements
            .iter()
            .map(|d| rocket_lint::diag::render_human(d))
            .collect::<Vec<_>>()
            .join("\n")
    );
    let _ = std::fs::remove_dir_all(&witness_dir);

    // Phase 3: the online cycle assertion. Nest zz_a -> zz_b, then
    // invert; the second nesting must panic with the witnessed cycle
    // instead of deadlocking some future run.
    let a = Mutex::named("zz_a", ());
    let b = Mutex::named("zz_b", ());
    {
        let _ga = a.lock();
        let _gb = b.lock();
    }
    let inverted = catch_unwind(AssertUnwindSafe(|| {
        let _gb = b.lock();
        let _ga = a.lock();
    }));
    let err = inverted.expect_err("lock-order inversion must panic");
    let msg = err.downcast_ref::<String>().cloned().unwrap_or_else(|| {
        err.downcast_ref::<&str>()
            .map(|s| s.to_string())
            .unwrap_or_default()
    });
    assert!(msg.contains("lock-order cycle"), "unexpected panic: {msg}");

    // Phase 4: clear the (now cyclic) graph so nothing after us trips.
    sanitize::reset();
}
