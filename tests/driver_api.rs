//! Integration tests of the unified `Scenario`/`Backend`/`Replications`
//! driver API: replication determinism across thread-pool sizes, backend
//! report parity, and scheduler equivalence — all through the public
//! facade.

use std::sync::Arc;

use rocket::core::{
    AppError, Application, Backend, NodeSpec, Pair, Replications, Scenario, ThreadedBackend,
    WorkloadProfile,
};
use rocket::sim::SimBackend;
use rocket::stats::Dist;
use rocket::storage::MemStore;

/// A stochastic simulation workload: randomized stage times make the
/// replication statistics non-degenerate.
fn stochastic_workload(items: u64) -> WorkloadProfile {
    WorkloadProfile {
        name: "driver-api",
        items,
        file_bytes: 1_000_000,
        item_bytes: 10_000_000,
        parse: Dist::normal_nonneg(10e-3, 2e-3),
        preprocess: Some(Dist::Constant(5e-3)),
        compare: Dist::LogNormal {
            mean: 1e-3,
            std: 0.4e-3,
        },
        postprocess: Dist::Constant(0.0),
        paper_device_slots: 16,
        paper_host_slots: 32,
    }
}

fn sim_scenario() -> Scenario {
    Scenario::builder()
        .workload(stochastic_workload(48))
        .nodes(2, NodeSpec::uniform(1, 12, 24))
        .seed(0xC0FFEE)
        .build()
}

#[test]
fn replication_aggregates_identical_across_thread_counts() {
    // The same seed set must produce byte-identical aggregate reports no
    // matter how the replications were distributed over worker threads.
    let scenario = sim_scenario();
    let backend = SimBackend::new();
    let run = |threads: usize| {
        Replications::new(7, 8)
            .threads(threads)
            .run(&backend, &scenario)
            .expect("replications")
    };
    let serial = run(1);
    assert_eq!(serial.replications(), 8);
    assert!(
        serial.elapsed.ci95_half_width() > 0.0,
        "stochastic runs must vary"
    );
    let serial_bytes = format!("{serial:?}");
    for threads in [2, 4, 8] {
        let parallel = run(threads);
        assert_eq!(
            serial_bytes,
            format!("{parallel:?}"),
            "aggregate diverged at {threads} threads"
        );
    }
}

#[test]
fn replication_seeds_are_distinct_and_reported() {
    let reps = Replications::new(1, 8);
    let mut seeds = reps.seeds().to_vec();
    seeds.sort_unstable();
    seeds.dedup();
    assert_eq!(seeds.len(), 8, "derived seeds must be distinct");

    let report = reps
        .run(&SimBackend::new(), &sim_scenario())
        .expect("replications");
    assert_eq!(report.seeds, reps.seeds());
    assert_eq!(report.runs.len(), 8);
    // Each run actually used its seed: identical seeds would collapse the
    // elapsed-time spread to zero.
    assert!(report.elapsed.min() < report.elapsed.max());
    assert!(report.summary().contains('±'));
}

#[test]
fn explicit_seed_sets_reproduce_single_runs() {
    let scenario = sim_scenario();
    let backend = SimBackend::new();
    let single = backend.run(&scenario.with_seed(99)).expect("run");
    let reps = Replications::from_seeds(vec![99, 99])
        .run(&backend, &scenario)
        .expect("replications");
    assert_eq!(format!("{:?}", reps.runs[0]), format!("{single:?}"));
    assert_eq!(format!("{:?}", reps.runs[1]), format!("{single:?}"));
    assert_eq!(reps.elapsed.ci95_half_width(), 0.0);
}

#[test]
fn calendar_queue_scenario_matches_default_scheduler() {
    let scenario = sim_scenario();
    let mut calendar = scenario.clone();
    calendar.calendar_queue = true;
    let backend = SimBackend::new();
    let a = backend.run(&scenario).expect("heap run");
    let b = backend.run(&calendar).expect("calendar run");
    assert_eq!(format!("{a:?}"), format!("{b:?}"));
}

#[test]
fn adaptive_replications_honor_the_stopping_rule() {
    let scenario = sim_scenario();
    let backend = SimBackend::new();

    // A loose target is met by the very first batch.
    let loose = Replications::until_ci(3, 100.0, 64)
        .run(&backend, &scenario)
        .expect("loose run");
    assert_eq!(loose.replications(), 4, "default batch size runs once");

    // An unattainable target runs to the cap, not forever.
    let capped = Replications::until_ci(3, 1e-12, 7)
        .batch(3)
        .run(&backend, &scenario)
        .expect("capped run");
    assert_eq!(capped.replications(), 7);

    // A realistic target: the rule held at the stopping point.
    let adaptive = Replications::until_ci(3, 0.05, 64)
        .run(&backend, &scenario)
        .expect("adaptive run");
    let (mean, hw) = adaptive.elapsed.mean_ci95();
    assert!(
        hw <= 0.05 * mean || adaptive.replications() == 64,
        "stopped at {} runs with hw {hw} vs mean {mean}",
        adaptive.replications()
    );

    // Deterministic: the same base seed reproduces the whole procedure,
    // and the seed stream is the one `Replications::new` draws from.
    let again = Replications::until_ci(3, 0.05, 64)
        .run(&backend, &scenario)
        .expect("repeat run");
    assert_eq!(adaptive.seeds, again.seeds);
    assert_eq!(format!("{adaptive:?}"), format!("{again:?}"));
    let fixed = Replications::new(3, adaptive.replications());
    assert_eq!(adaptive.seeds, fixed.seeds());
}

#[test]
fn adaptive_replications_reject_bad_targets() {
    assert!(Replications::until_ci(1, 0.0, 8)
        .run(&SimBackend::new(), &sim_scenario())
        .is_err());
    assert!(Replications::until_ci(1, f64::NAN, 8)
        .run(&SimBackend::new(), &sim_scenario())
        .is_err());
    assert!(Replications::until_ci(1, 0.1, 1)
        .run(&SimBackend::new(), &sim_scenario())
        .is_err());
}

#[test]
fn reports_serialize_to_json() {
    let scenario = sim_scenario();
    let backend = SimBackend::new();
    let reps = Replications::new(11, 3)
        .run(&backend, &scenario)
        .expect("replications");
    let json = reps.to_json();
    assert_eq!(json.matches('{').count(), json.matches('}').count());
    assert_eq!(json.matches('[').count(), json.matches(']').count());
    assert!(json.contains("\"replications\":3"));
    assert!(json.contains("\"backend\":\"sim\""));
    assert!(json.contains("\"runs\":["));
    // Per-run reports embed cleanly and agree with the standalone writer.
    let single = backend.run(&scenario.with_seed(reps.seeds[0])).unwrap();
    assert!(json.contains(&single.to_json()));
}

/// Toy application for threaded-backend parity: sums bytes, compares sums.
struct ByteSum {
    files: u64,
}

impl Application for ByteSum {
    type Output = i64;
    fn name(&self) -> &str {
        "bytesum"
    }
    fn item_count(&self) -> u64 {
        self.files
    }
    fn file_for(&self, item: u64) -> String {
        format!("{item}.bin")
    }
    fn parsed_bytes(&self) -> usize {
        8
    }
    fn item_bytes(&self) -> usize {
        8
    }
    fn result_bytes(&self) -> usize {
        8
    }
    fn has_preprocess(&self) -> bool {
        false
    }
    fn parse(&self, _item: u64, raw: &[u8], out: &mut [u8]) -> Result<(), AppError> {
        let sum: i64 = raw.iter().map(|&b| b as i64).sum();
        out[..8].copy_from_slice(&sum.to_le_bytes());
        Ok(())
    }
    fn compare(
        &self,
        left: (u64, &[u8]),
        right: (u64, &[u8]),
        out: &mut [u8],
    ) -> Result<(), AppError> {
        let l = i64::from_le_bytes(left.1[..8].try_into().unwrap());
        let r = i64::from_le_bytes(right.1[..8].try_into().unwrap());
        out[..8].copy_from_slice(&(l - r).to_le_bytes());
        Ok(())
    }
    fn postprocess(&self, _pair: Pair, raw: &[u8]) -> i64 {
        i64::from_le_bytes(raw[..8].try_into().unwrap())
    }
}

#[test]
fn threaded_backend_reports_unified_shape() {
    let store = MemStore::from_iter((0..8u64).map(|i| (format!("{i}.bin"), vec![i as u8; 16])));
    let scenario = Scenario::builder()
        .items(8)
        .node(NodeSpec::uniform(1, 4, 8))
        .job_limit(4)
        .cpu_threads(2)
        .tracing(true)
        .build();
    let backend = ThreadedBackend::new(Arc::new(ByteSum { files: 8 }), Arc::new(store));

    // Typed path: outputs present and correct count.
    let app_report = backend.run_app(&scenario).expect("run_app");
    assert_eq!(app_report.outputs.len(), 28);
    assert!(app_report.failed().is_empty());

    // Unified path: same aggregate shape as the simulator's.
    let report = backend.run(&scenario).expect("unified run");
    assert_eq!(report.backend, "threaded");
    assert_eq!(report.items, 8);
    assert_eq!(report.pairs, 28);
    assert_eq!(report.failed_pairs, 0);
    assert_eq!(report.loads, 8, "full caches load every item once");
    assert!((report.r_factor() - 1.0).abs() < 1e-12);
    assert_eq!(report.pairs_per_node, vec![28]);
    // Tracing was on: the compare busy time is observable.
    assert!(report.busy.compare > 0.0);
    assert!(report.busy.cpu > 0.0);
}

#[test]
fn invalid_scenarios_rejected_by_both_backends() {
    let mut bad = sim_scenario();
    bad.hops = 0;
    assert!(SimBackend::new().run(&bad).is_err());
    let store = MemStore::new();
    let backend = ThreadedBackend::new(Arc::new(ByteSum { files: 4 }), Arc::new(store));
    assert!(backend.run(&bad).is_err());
}

#[test]
fn threaded_backend_rejects_item_count_mismatch() {
    // The runtime sizes everything from the app; a scenario written for a
    // different data-set size is a design error, not a request.
    let store = MemStore::from_iter((0..4u64).map(|i| (format!("{i}.bin"), vec![1u8; 4])));
    let backend = ThreadedBackend::new(Arc::new(ByteSum { files: 4 }), Arc::new(store));
    let scenario = Scenario::builder()
        .items(8) // app has 4
        .node(NodeSpec::uniform(1, 4, 8))
        .build();
    let err = backend.run_app(&scenario).unwrap_err();
    assert!(err.to_string().contains("8 items"), "{err}");
}
