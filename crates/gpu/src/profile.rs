//! Device performance profiles.
//!
//! The constants model the GPUs named in the paper's evaluation (§6.2, §6.5,
//! §6.6). `compute_scale` is relative single-precision throughput normalized
//! to the TitanX Maxwell (the paper's single-node baseline, Table 1);
//! memory sizes are the boards' actual capacities. Bandwidths approximate
//! PCIe 3.0 x16 (the DAS-5 nodes).

use std::time::Duration;

/// Static performance description of one (virtual) GPU.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceProfile {
    /// Marketing name, e.g. "TitanX-Maxwell".
    pub name: String,
    /// Device memory capacity in bytes.
    pub memory_bytes: u64,
    /// Relative compute throughput (1.0 = TitanX Maxwell). A kernel that
    /// takes `t` on the baseline takes `t / compute_scale` here.
    pub compute_scale: f64,
    /// Host-to-device copy bandwidth in bytes/second.
    pub h2d_bytes_per_sec: f64,
    /// Device-to-host copy bandwidth in bytes/second.
    pub d2h_bytes_per_sec: f64,
    /// GPU architecture generation (for reporting).
    pub generation: &'static str,
}

const GB: u64 = 1_000_000_000;
const PCIE3: f64 = 12.0e9; // ~12 GB/s effective PCIe 3.0 x16

impl DeviceProfile {
    fn new(name: &str, memory_bytes: u64, compute_scale: f64, generation: &'static str) -> Self {
        Self {
            name: name.to_string(),
            memory_bytes,
            compute_scale,
            h2d_bytes_per_sec: PCIE3,
            d2h_bytes_per_sec: PCIE3,
            generation,
        }
    }

    /// NVIDIA TitanX (Maxwell) — the paper's Table 1 baseline device.
    pub fn titanx_maxwell() -> Self {
        Self::new("TitanX-Maxwell", 12 * GB, 1.0, "Maxwell")
    }

    /// NVIDIA Tesla K20m (node I of §6.5).
    pub fn k20m() -> Self {
        Self::new("K20m", 5 * GB, 0.52, "Kepler")
    }

    /// NVIDIA GTX Titan (node IV of §6.5).
    pub fn gtx_titan() -> Self {
        Self::new("GTX-Titan", 6 * GB, 0.70, "Kepler")
    }

    /// NVIDIA GTX 980 (node II of §6.5).
    pub fn gtx980() -> Self {
        Self::new("GTX980", 4 * GB, 0.75, "Maxwell")
    }

    /// NVIDIA TitanX (Pascal) (nodes II and IV of §6.5).
    pub fn titanx_pascal() -> Self {
        Self::new("TitanX-Pascal", 12 * GB, 1.64, "Pascal")
    }

    /// NVIDIA RTX 2080 Ti (node III of §6.5).
    pub fn rtx2080ti() -> Self {
        Self::new("RTX2080Ti", 11 * GB, 2.00, "Turing")
    }

    /// NVIDIA Tesla K40m (Cartesius, §6.6).
    pub fn k40m() -> Self {
        Self::new("K40m", 12 * GB, 0.64, "Kepler")
    }

    /// A tiny device for tests: 1 MB of memory, baseline speed.
    pub fn test_tiny() -> Self {
        Self::new("test-tiny", 1_000_000, 1.0, "Test")
    }

    /// Overrides the memory capacity (used by cache-size sweeps).
    pub fn with_memory(mut self, bytes: u64) -> Self {
        self.memory_bytes = bytes;
        self
    }

    /// Overrides the compute scale.
    pub fn with_compute_scale(mut self, scale: f64) -> Self {
        assert!(scale > 0.0);
        self.compute_scale = scale;
        self
    }

    /// Time for this device to run a kernel that takes `baseline` on the
    /// TitanX Maxwell reference.
    pub fn scaled(&self, baseline: Duration) -> Duration {
        Duration::from_secs_f64(baseline.as_secs_f64() / self.compute_scale)
    }

    /// Modelled host-to-device transfer time for `bytes` bytes.
    pub fn h2d_time(&self, bytes: u64) -> Duration {
        Duration::from_secs_f64(bytes as f64 / self.h2d_bytes_per_sec)
    }

    /// Modelled device-to-host transfer time for `bytes` bytes.
    pub fn d2h_time(&self, bytes: u64) -> Duration {
        Duration::from_secs_f64(bytes as f64 / self.d2h_bytes_per_sec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_is_unit_scale() {
        assert_eq!(DeviceProfile::titanx_maxwell().compute_scale, 1.0);
    }

    #[test]
    fn faster_device_runs_kernels_faster() {
        let base = Duration::from_millis(100);
        let fast = DeviceProfile::rtx2080ti().scaled(base);
        let slow = DeviceProfile::k20m().scaled(base);
        assert!(fast < base);
        assert!(slow > base);
        assert!((fast.as_secs_f64() - 0.05).abs() < 1e-9);
    }

    #[test]
    fn transfer_times_scale_with_size() {
        let p = DeviceProfile::titanx_maxwell();
        let t1 = p.h2d_time(12_000_000_000);
        assert!((t1.as_secs_f64() - 1.0).abs() < 1e-9);
        assert!(p.d2h_time(0).is_zero());
    }

    #[test]
    fn paper_device_memories() {
        assert_eq!(DeviceProfile::k20m().memory_bytes, 5 * GB);
        assert_eq!(DeviceProfile::rtx2080ti().memory_bytes, 11 * GB);
        assert_eq!(DeviceProfile::titanx_maxwell().memory_bytes, 12 * GB);
    }

    #[test]
    fn builders_override() {
        let p = DeviceProfile::test_tiny()
            .with_memory(42)
            .with_compute_scale(3.0);
        assert_eq!(p.memory_bytes, 42);
        assert_eq!(p.compute_scale, 3.0);
    }

    #[test]
    fn ordering_of_paper_generations() {
        // §6.5: "more powerful GPUs (e.g., RTX2080Ti) delivering a higher
        // processing rate than others (e.g., GTX980)".
        assert!(DeviceProfile::rtx2080ti().compute_scale > DeviceProfile::gtx980().compute_scale);
        assert!(
            DeviceProfile::titanx_pascal().compute_scale
                > DeviceProfile::titanx_maxwell().compute_scale
        );
        assert!(DeviceProfile::k20m().compute_scale < DeviceProfile::gtx_titan().compute_scale);
    }
}
