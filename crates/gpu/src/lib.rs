//! Virtual GPU device model — the stand-in for CUDA in this reproduction.
//!
//! Rocket treats application kernels as black boxes (§5 of the paper); what
//! the runtime needs from a "GPU" is:
//!
//! * **device memory with a hard capacity** — this is what forces cache
//!   evictions and drives the paper's R (re-load) metric,
//! * **in-order execution per engine** — one kernel queue plus separate
//!   host-to-device and device-to-host copy engines, so transfers overlap
//!   compute (§4.3),
//! * **a performance profile** — relative compute speed and link bandwidth,
//!   which is how the heterogeneity experiments (Fig 13/14) distinguish a
//!   K20m from an RTX 2080 Ti.
//!
//! [`VirtualDevice`] provides all three. Kernels are plain Rust closures
//! executed on host memory standing in for device memory; the runtime's
//! per-device threads serialize engine use exactly like CUDA streams.

#![warn(missing_docs)]

pub mod device;
pub mod profile;

pub use device::{BufferId, DeviceError, EngineKind, VirtualDevice};
pub use profile::DeviceProfile;
