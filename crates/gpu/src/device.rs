//! The virtual device: capacity-accounted buffers plus per-engine bookkeeping.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use crate::profile::DeviceProfile;

/// Handle to a device-memory buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BufferId(u64);

/// Device operation errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeviceError {
    /// Allocation would exceed device memory capacity.
    OutOfMemory {
        /// Bytes requested.
        requested: u64,
        /// Bytes currently free.
        free: u64,
    },
    /// The buffer handle is not live on this device.
    InvalidBuffer(BufferId),
    /// Source data does not fit in the destination buffer.
    SizeMismatch {
        /// Destination capacity in bytes.
        dst: u64,
        /// Source length in bytes.
        src: u64,
    },
}

impl fmt::Display for DeviceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceError::OutOfMemory { requested, free } => {
                write!(
                    f,
                    "device out of memory: requested {requested} B, free {free} B"
                )
            }
            DeviceError::InvalidBuffer(id) => write!(f, "invalid device buffer {id:?}"),
            DeviceError::SizeMismatch { dst, src } => {
                write!(f, "copy size mismatch: dst {dst} B, src {src} B")
            }
        }
    }
}

impl std::error::Error for DeviceError {}

/// Result alias for device operations.
pub type Result<T> = std::result::Result<T, DeviceError>;

/// The three independent engines of a device (§4.3: Rocket runs one thread
/// per engine so kernels and both copy directions overlap).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// Kernel execution engine.
    Compute,
    /// Host-to-device copy engine.
    H2d,
    /// Device-to-host copy engine.
    D2h,
}

#[derive(Default)]
struct MemState {
    buffers: HashMap<u64, Arc<RwLock<Box<[u8]>>>>,
    used: u64,
    next_id: u64,
}

/// A virtual GPU: device memory with a hard capacity, buffer storage backed
/// by host memory, and per-engine busy-time accounting.
///
/// Thread-safe; buffer contents use per-buffer `RwLock`s so a kernel reading
/// two item buffers and writing a result buffer holds exactly the locks it
/// needs (mirroring CUDA's requirement that a buffer not be freed while a
/// kernel uses it).
pub struct VirtualDevice {
    profile: DeviceProfile,
    mem: Mutex<MemState>,
    busy_ns: [AtomicU64; 3],
    ops: [AtomicU64; 3],
}

impl VirtualDevice {
    /// Creates a device with the given profile.
    pub fn new(profile: DeviceProfile) -> Self {
        Self {
            profile,
            mem: Mutex::new(MemState::default()),
            busy_ns: Default::default(),
            ops: Default::default(),
        }
    }

    /// The device profile.
    pub fn profile(&self) -> &DeviceProfile {
        &self.profile
    }

    /// Bytes currently allocated.
    pub fn used_bytes(&self) -> u64 {
        self.mem.lock().used
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.profile.memory_bytes
    }

    /// Bytes still free.
    pub fn free_bytes(&self) -> u64 {
        self.capacity_bytes() - self.used_bytes()
    }

    /// Number of live buffers.
    pub fn buffer_count(&self) -> usize {
        self.mem.lock().buffers.len()
    }

    /// Allocates a zero-initialized buffer of `size` bytes.
    pub fn alloc(&self, size: u64) -> Result<BufferId> {
        let mut mem = self.mem.lock();
        let free = self.profile.memory_bytes - mem.used;
        if size > free {
            return Err(DeviceError::OutOfMemory {
                requested: size,
                free,
            });
        }
        let id = mem.next_id;
        mem.next_id += 1;
        mem.used += size;
        mem.buffers.insert(
            id,
            Arc::new(RwLock::new(vec![0u8; size as usize].into_boxed_slice())),
        );
        Ok(BufferId(id))
    }

    /// Frees a buffer. Blocks until no kernel or copy is using it.
    pub fn free(&self, id: BufferId) -> Result<()> {
        let arc = {
            let mut mem = self.mem.lock();
            let arc = mem
                .buffers
                .remove(&id.0)
                .ok_or(DeviceError::InvalidBuffer(id))?;
            mem.used -= arc.read().len() as u64;
            arc
        };
        // Wait for in-flight users: taking the write lock serializes with them.
        drop(arc.write());
        Ok(())
    }

    fn buffer(&self, id: BufferId) -> Result<Arc<RwLock<Box<[u8]>>>> {
        self.mem
            .lock()
            .buffers
            .get(&id.0)
            .cloned()
            .ok_or(DeviceError::InvalidBuffer(id))
    }

    /// Size of a live buffer.
    pub fn buffer_size(&self, id: BufferId) -> Result<u64> {
        Ok(self.buffer(id)?.read().len() as u64)
    }

    fn engine_index(kind: EngineKind) -> usize {
        match kind {
            EngineKind::Compute => 0,
            EngineKind::H2d => 1,
            EngineKind::D2h => 2,
        }
    }

    fn account(&self, kind: EngineKind, ns: u64) {
        let i = Self::engine_index(kind);
        self.busy_ns[i].fetch_add(ns, Ordering::Relaxed);
        self.ops[i].fetch_add(1, Ordering::Relaxed);
    }

    /// Accumulated busy nanoseconds of an engine (wall-clock in the threaded
    /// runtime; the simulator does its own accounting).
    pub fn engine_busy_ns(&self, kind: EngineKind) -> u64 {
        self.busy_ns[Self::engine_index(kind)].load(Ordering::Relaxed)
    }

    /// Number of operations executed on an engine.
    pub fn engine_ops(&self, kind: EngineKind) -> u64 {
        self.ops[Self::engine_index(kind)].load(Ordering::Relaxed)
    }

    /// Copies host data into a device buffer (H2D engine).
    pub fn copy_h2d(&self, src: &[u8], dst: BufferId) -> Result<()> {
        let buf = self.buffer(dst)?;
        let t0 = std::time::Instant::now();
        {
            let mut guard = buf.write();
            if guard.len() < src.len() {
                return Err(DeviceError::SizeMismatch {
                    dst: guard.len() as u64,
                    src: src.len() as u64,
                });
            }
            guard[..src.len()].copy_from_slice(src);
        }
        self.account(EngineKind::H2d, t0.elapsed().as_nanos() as u64);
        Ok(())
    }

    /// Copies a device buffer back to host memory (D2H engine), returning the
    /// full buffer contents.
    pub fn copy_d2h(&self, src: BufferId, dst: &mut Vec<u8>) -> Result<()> {
        let buf = self.buffer(src)?;
        let t0 = std::time::Instant::now();
        {
            let guard = buf.read();
            dst.clear();
            dst.extend_from_slice(&guard);
        }
        self.account(EngineKind::D2h, t0.elapsed().as_nanos() as u64);
        Ok(())
    }

    /// Copies between two device buffers (device-to-device, charged to the
    /// compute engine like CUDA's default-stream `cudaMemcpyDtoD`).
    pub fn copy_d2d(&self, src: BufferId, dst: BufferId) -> Result<()> {
        if src == dst {
            return Ok(());
        }
        let sbuf = self.buffer(src)?;
        let dbuf = self.buffer(dst)?;
        let t0 = std::time::Instant::now();
        {
            let s = sbuf.read();
            let mut d = dbuf.write();
            if d.len() < s.len() {
                return Err(DeviceError::SizeMismatch {
                    dst: d.len() as u64,
                    src: s.len() as u64,
                });
            }
            d[..s.len()].copy_from_slice(&s);
        }
        self.account(EngineKind::Compute, t0.elapsed().as_nanos() as u64);
        Ok(())
    }

    /// Launches a kernel: `f` receives read-only views of `inputs` and a
    /// mutable view of `output`, all resident in device memory.
    ///
    /// `output` must not appear in `inputs` (that would deadlock, exactly as
    /// aliased buffers are undefined on a real device — here it is detected).
    pub fn launch<R>(
        &self,
        inputs: &[BufferId],
        output: BufferId,
        f: impl FnOnce(&[&[u8]], &mut [u8]) -> R,
    ) -> Result<R> {
        if inputs.contains(&output) {
            return Err(DeviceError::InvalidBuffer(output));
        }
        let in_arcs: Vec<_> = inputs
            .iter()
            .map(|&id| self.buffer(id))
            .collect::<Result<_>>()?;
        let out_arc = self.buffer(output)?;
        let t0 = std::time::Instant::now();
        let result = {
            let in_guards: Vec<_> = in_arcs.iter().map(|a| a.read()).collect();
            let in_slices: Vec<&[u8]> = in_guards.iter().map(|g| &g[..]).collect();
            let mut out_guard = out_arc.write();
            f(&in_slices, &mut out_guard)
        };
        self.account(EngineKind::Compute, t0.elapsed().as_nanos() as u64);
        Ok(result)
    }
}

impl fmt::Debug for VirtualDevice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("VirtualDevice")
            .field("profile", &self.profile.name)
            .field("used", &self.used_bytes())
            .field("capacity", &self.capacity_bytes())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> VirtualDevice {
        VirtualDevice::new(DeviceProfile::test_tiny())
    }

    #[test]
    fn alloc_accounts_capacity() {
        let d = tiny();
        let a = d.alloc(400_000).unwrap();
        assert_eq!(d.used_bytes(), 400_000);
        assert_eq!(d.free_bytes(), 600_000);
        d.free(a).unwrap();
        assert_eq!(d.used_bytes(), 0);
        assert_eq!(d.buffer_count(), 0);
    }

    #[test]
    fn oom_when_capacity_exceeded() {
        let d = tiny();
        let _a = d.alloc(900_000).unwrap();
        match d.alloc(200_000) {
            Err(DeviceError::OutOfMemory { requested, free }) => {
                assert_eq!(requested, 200_000);
                assert_eq!(free, 100_000);
            }
            other => panic!("expected OOM, got {other:?}"),
        }
    }

    #[test]
    fn free_invalid_buffer_errors() {
        let d = tiny();
        let a = d.alloc(10).unwrap();
        d.free(a).unwrap();
        assert!(matches!(d.free(a), Err(DeviceError::InvalidBuffer(_))));
    }

    #[test]
    fn h2d_d2h_roundtrip() {
        let d = tiny();
        let b = d.alloc(8).unwrap();
        d.copy_h2d(&[1, 2, 3, 4, 5, 6, 7, 8], b).unwrap();
        let mut out = Vec::new();
        d.copy_d2h(b, &mut out).unwrap();
        assert_eq!(out, vec![1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(d.engine_ops(EngineKind::H2d), 1);
        assert_eq!(d.engine_ops(EngineKind::D2h), 1);
    }

    #[test]
    fn h2d_size_mismatch() {
        let d = tiny();
        let b = d.alloc(4).unwrap();
        assert!(matches!(
            d.copy_h2d(&[0u8; 8], b),
            Err(DeviceError::SizeMismatch { dst: 4, src: 8 })
        ));
    }

    #[test]
    fn kernel_reads_inputs_writes_output() {
        let d = tiny();
        let x = d.alloc(4).unwrap();
        let y = d.alloc(4).unwrap();
        let out = d.alloc(4).unwrap();
        d.copy_h2d(&[1, 2, 3, 4], x).unwrap();
        d.copy_h2d(&[10, 20, 30, 40], y).unwrap();
        let sum = d
            .launch(&[x, y], out, |inputs, output| {
                let mut total = 0u32;
                for i in 0..4 {
                    output[i] = inputs[0][i] + inputs[1][i];
                    total += output[i] as u32;
                }
                total
            })
            .unwrap();
        assert_eq!(sum, 11 + 22 + 33 + 44);
        let mut host = Vec::new();
        d.copy_d2h(out, &mut host).unwrap();
        assert_eq!(host, vec![11, 22, 33, 44]);
        assert_eq!(d.engine_ops(EngineKind::Compute), 1);
    }

    #[test]
    fn kernel_rejects_aliased_output() {
        let d = tiny();
        let x = d.alloc(4).unwrap();
        assert!(d.launch(&[x], x, |_, _| ()).is_err());
    }

    #[test]
    fn d2d_copy() {
        let d = tiny();
        let a = d.alloc(4).unwrap();
        let b = d.alloc(4).unwrap();
        d.copy_h2d(&[9, 9, 9, 9], a).unwrap();
        d.copy_d2d(a, b).unwrap();
        let mut out = Vec::new();
        d.copy_d2h(b, &mut out).unwrap();
        assert_eq!(out, vec![9, 9, 9, 9]);
    }

    #[test]
    fn engine_busy_time_accumulates() {
        let d = tiny();
        let b = d.alloc(1000).unwrap();
        for _ in 0..10 {
            d.copy_h2d(&[0u8; 1000], b).unwrap();
        }
        assert_eq!(d.engine_ops(EngineKind::H2d), 10);
        // busy_ns is wall-clock and may be tiny, but must be recorded.
        assert!(d.engine_busy_ns(EngineKind::H2d) > 0 || cfg!(miri));
    }

    #[test]
    fn concurrent_kernels_on_distinct_buffers() {
        let d = Arc::new(tiny());
        let bufs: Vec<_> = (0..4).map(|_| d.alloc(16).unwrap()).collect();
        let outs: Vec<_> = (0..4).map(|_| d.alloc(16).unwrap()).collect();
        let mut handles = Vec::new();
        for i in 0..4 {
            let d = Arc::clone(&d);
            let (inp, out) = (bufs[i], outs[i]);
            handles.push(std::thread::spawn(move || {
                for _ in 0..50 {
                    d.launch(&[inp], out, |ins, o| {
                        o[0] = ins[0][0].wrapping_add(1);
                    })
                    .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(d.engine_ops(EngineKind::Compute), 200);
    }
}
