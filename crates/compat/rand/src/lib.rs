//! Offline stand-in for the `rand` crate.
//!
//! Provides the trait surface Rocket implements ([`RngCore`],
//! [`SeedableRng`], [`Rng`]) and a deterministic [`rngs::StdRng`]. The real
//! crate documents `StdRng`'s algorithm as unspecified and explicitly not
//! reproducible across versions, so substituting a xoshiro256++ generator
//! here is within contract; everything Rocket relies on for determinism goes
//! through its own seeded `Xoshiro256` in `rocket-stats` anyway.

use std::ops::Range;

/// Error type for fallible RNG operations (never produced by Rocket's
/// deterministic generators; present for trait compatibility).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "rng error")
    }
}

impl std::error::Error for Error {}

/// Core random-number generation: raw 32/64-bit words and byte filling.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible byte filling (infallible for in-memory generators).
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding via SplitMix64 like the
    /// real crate.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Convenience sampling methods layered over [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform `usize` in `range` (Lemire rejection, unbiased).
    fn gen_range(&mut self, range: Range<usize>) -> usize {
        assert!(range.start < range.end, "empty range");
        let span = (range.end - range.start) as u64;
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(span as u128);
            let low = m as u64;
            if low >= span || low >= span.wrapping_neg() % span {
                return range.start + (m >> 64) as usize;
            }
        }
    }

    /// Uniform `f64` in `[0, 1)`.
    fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic standard generator: xoshiro256++ (Blackman & Vigna).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            let mut chunks = dest.chunks_exact_mut(8);
            for chunk in &mut chunks {
                chunk.copy_from_slice(&self.next_u64().to_le_bytes());
            }
            let rem = chunks.into_remainder();
            if !rem.is_empty() {
                let bytes = self.next_u64().to_le_bytes();
                rem.copy_from_slice(&bytes[..rem.len()]);
            }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                *word = u64::from_le_bytes(seed[i * 8..(i + 1) * 8].try_into().unwrap());
            }
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            Self { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = rng.gen_range(5..17);
            assert!((5..17).contains(&x));
        }
    }

    #[test]
    fn fill_bytes_covers_remainder() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
