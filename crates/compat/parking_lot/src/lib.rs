//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind the `parking_lot` API surface Rocket
//! uses: guards come back directly from `lock()`/`read()`/`write()` (no
//! `Result`), and poisoning is transparently ignored — a panicking holder
//! does not poison the lock for everyone else, matching `parking_lot`
//! semantics.

use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::{Duration, Instant};

/// A mutual-exclusion lock. `lock()` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait` can move the std guard out and back.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.0.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

/// A reader-writer lock. `read()`/`write()` return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);
/// Exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub const fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(PoisonError::into_inner))
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(PoisonError::into_inner))
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// Result of a timed condition-variable wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True if the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable operating on [`MutexGuard`]s in place.
#[derive(Debug, Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Creates a condition variable.
    pub const fn new() -> Self {
        Self(std::sync::Condvar::new())
    }

    /// Blocks until notified, atomically releasing and reacquiring the lock.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard present");
        guard.inner = Some(self.0.wait(inner).unwrap_or_else(PoisonError::into_inner));
    }

    /// Blocks while `condition` returns true.
    pub fn wait_while<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        mut condition: impl FnMut(&mut T) -> bool,
    ) {
        while condition(&mut *guard) {
            self.wait(guard);
        }
    }

    /// Blocks until notified or `deadline` passes.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let timeout = deadline.saturating_duration_since(Instant::now());
        self.wait_for(guard, timeout)
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard present");
        let (inner, result) = self
            .0
            .wait_timeout(inner, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(inner);
        WaitTimeoutResult(result.timed_out())
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn condvar_wait_while() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (lock, cv) = &*p2;
            *lock.lock() = true;
            cv.notify_one();
        });
        let (lock, cv) = &*pair;
        let mut ready = lock.lock();
        cv.wait_while(&mut ready, |r| !*r);
        assert!(*ready);
        drop(ready);
        h.join().unwrap();
    }

    #[test]
    fn condvar_timeout() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(res.timed_out());
    }
}
