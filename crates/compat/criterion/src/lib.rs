//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the subset of the criterion API Rocket's benches use —
//! benchmark groups, `Bencher::iter`, throughput annotation, and the
//! `criterion_group!`/`criterion_main!` macros — with a simple but honest
//! measurement loop: warm-up, then timed batches until a target measurement
//! window is filled, reporting the median batch time per iteration.
//!
//! Command-line compatibility: `--test` (and `cargo bench -- --test`) runs
//! every benchmark body exactly once for a fast compile-and-smoke check;
//! any bare argument is a substring filter on `group/name` ids; all other
//! criterion flags are accepted and ignored.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation: converts per-iteration time into a rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Throughput {
    /// Iterations process this many logical elements.
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

/// Top-level harness state shared by every group in a bench binary.
#[derive(Debug, Clone)]
pub struct Criterion {
    test_mode: bool,
    filter: Option<String>,
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            test_mode: false,
            filter: None,
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Builds harness configuration from `std::env::args`.
    pub fn configure_from_args() -> Self {
        let mut c = Self::default();
        let mut args = std::env::args().skip(1).peekable();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--test" => c.test_mode = true,
                // Flags (criterion-compatible) that take a value: skip it.
                "--sample-size"
                | "--measurement-time"
                | "--warm-up-time"
                | "--save-baseline"
                | "--baseline"
                | "--load-baseline"
                | "--significance-level"
                | "--noise-threshold"
                | "--color"
                | "--output-format"
                | "--plotting-backend" => {
                    args.next();
                }
                // Boolean flags: accepted and ignored.
                s if s.starts_with("--") => {}
                // Bare argument: benchmark id filter.
                other => c.filter = Some(other.to_string()),
            }
        }
        // Make filtering visible: a value swallowed by an unrecognized flag
        // would otherwise silently skip every benchmark.
        if let Some(filter) = &c.filter {
            println!("benchmark filter: {filter:?} (ids not containing it are skipped)");
        }
        c
    }

    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            harness: self,
            name: name.into(),
            throughput: None,
            sample_size: None,
        }
    }
}

/// A group of related benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    harness: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Overrides the number of measurement samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Accepted for compatibility; the shim sizes its own windows.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function(
        &mut self,
        name: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, name.into());
        if let Some(filter) = &self.harness.filter {
            if !id.contains(filter.as_str()) {
                return self;
            }
        }
        let mut b = Bencher {
            test_mode: self.harness.test_mode,
            samples: self.sample_size.unwrap_or(self.harness.default_sample_size),
            ns_per_iter: None,
        };
        f(&mut b);
        match b.ns_per_iter {
            None => println!("{id}: test mode, ran once, ok"),
            Some(ns) => {
                let rate = self.throughput.map(|t| match t {
                    Throughput::Elements(n) => {
                        format!(" ({:.3} Melem/s)", n as f64 / ns * 1e3)
                    }
                    Throughput::Bytes(n) => {
                        format!(" ({:.3} MiB/s)", n as f64 / ns * 1e9 / (1 << 20) as f64)
                    }
                });
                println!("{id}: {}{}", fmt_time(ns), rate.unwrap_or_default());
            }
        }
        self
    }

    /// Ends the group (prints nothing extra; exists for API compatibility).
    pub fn finish(self) {}
}

fn fmt_time(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns/iter")
    } else if ns < 1e6 {
        format!("{:.2} µs/iter", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.3} ms/iter", ns / 1e6)
    } else {
        format!("{:.3} s/iter", ns / 1e9)
    }
}

/// Per-benchmark measurement driver passed to the closure.
pub struct Bencher {
    test_mode: bool,
    samples: usize,
    ns_per_iter: Option<f64>,
}

impl Bencher {
    /// Measures `f`, storing the median time per iteration.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        if self.test_mode {
            black_box(f());
            return;
        }
        // Warm-up: run for ~50 ms to fault caches in and size batches so a
        // single timed batch costs ≳ 1 µs (amortizing Instant overhead).
        let warmup = Duration::from_millis(50);
        let start = Instant::now();
        let mut warm_iters: u64 = 0;
        while start.elapsed() < warmup {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = warmup.as_nanos() as f64 / warm_iters.max(1) as f64;
        let batch = ((1_000.0 / per_iter).ceil() as u64).max(1);
        // Measurement: `samples` batches, median of per-iteration times.
        let mut times: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            times.push(t0.elapsed().as_nanos() as f64 / batch as f64);
        }
        times.sort_by(|a, b| a.total_cmp(b));
        self.ns_per_iter = Some(times[times.len() / 2]);
    }
}

/// Declares a benchmark group runner function, criterion style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_in_test_and_timed_modes() {
        let mut b = Bencher {
            test_mode: true,
            samples: 3,
            ns_per_iter: None,
        };
        let mut runs = 0;
        b.iter(|| runs += 1);
        assert_eq!(runs, 1);
        assert!(b.ns_per_iter.is_none());

        let mut b = Bencher {
            test_mode: false,
            samples: 3,
            ns_per_iter: None,
        };
        b.iter(|| black_box(1 + 1));
        assert!(b.ns_per_iter.unwrap() > 0.0);
    }

    #[test]
    fn groups_filter_and_run() {
        let mut c = Criterion {
            test_mode: true,
            filter: Some("keep".into()),
            ..Default::default()
        };
        let mut ran = Vec::new();
        {
            let mut g = c.benchmark_group("g");
            g.throughput(Throughput::Elements(1));
            g.bench_function("keep_me", |b| b.iter(|| ran.push("keep")));
            g.bench_function("skip_me", |b| b.iter(|| ran.push("skip")));
            g.finish();
        }
        assert_eq!(ran, vec!["keep"]);
    }
}
