//! Offline stand-in for the `crossbeam` crate.
//!
//! Implements the two facilities Rocket uses — [`channel`] (mpmc unbounded
//! channels with timeouts and disconnect detection) and [`deque`]
//! (owner-LIFO / thief-FIFO work-stealing deques) — on top of plain mutexes
//! and condition variables. Correctness and API compatibility over raw
//! scalability: the threaded runtime's channels carry coarse-grained events,
//! not per-pair messages, so lock-based queues are not a bottleneck.

pub mod channel {
    //! Multi-producer multi-consumer unbounded channels.

    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex, PoisonError};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        queue: Mutex<State<T>>,
        ready: Condvar,
    }

    struct State<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone; holds
    /// the rejected message.
    #[derive(Clone, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "SendError(..)")
        }
    }

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message available right now.
        Empty,
        /// Channel empty and all senders dropped.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The timeout elapsed with no message.
        Timeout,
        /// Channel empty and all senders dropped.
        Disconnected,
    }

    /// The sending half. Clonable; the channel disconnects when the last
    /// clone drops.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half. Clonable (mpmc): each message goes to exactly one
    /// receiver.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Creates an unbounded mpmc channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State {
                items: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Sends a message, failing only if every receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            state.items.push_back(value);
            drop(state);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .senders += 1;
            Self {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            state.senders -= 1;
            let disconnect = state.senders == 0;
            drop(state);
            if disconnect {
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(v) = state.items.pop_front() {
                    return Ok(v);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self
                    .shared
                    .ready
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }

        /// Blocks up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut state = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(v) = state.items.pop_front() {
                    return Ok(v);
                }
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let left = deadline.saturating_duration_since(Instant::now());
                if left.is_zero() {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (s, timed_out) = self
                    .shared
                    .ready
                    .wait_timeout(state, left)
                    .unwrap_or_else(PoisonError::into_inner);
                state = s;
                if timed_out.timed_out() && state.items.is_empty() {
                    return if state.senders == 0 {
                        Err(RecvTimeoutError::Disconnected)
                    } else {
                        Err(RecvTimeoutError::Timeout)
                    };
                }
            }
        }

        /// Returns a message if one is immediately available.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            match state.items.pop_front() {
                Some(v) => Ok(v),
                None if state.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .receivers += 1;
            Self {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .receivers -= 1;
        }
    }
}

pub mod deque {
    //! Work-stealing deques: the owner pops LIFO, thieves steal FIFO.

    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex, PoisonError};

    /// Outcome of a steal attempt.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Steal<T> {
        /// The deque was empty.
        Empty,
        /// One task was stolen.
        Success(T),
        /// Transient contention; try again.
        Retry,
    }

    /// The owning half of a deque.
    pub struct Worker<T> {
        shared: Arc<Mutex<VecDeque<T>>>,
    }

    /// A handle thieves use to steal from the other end.
    pub struct Stealer<T> {
        shared: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Worker<T> {
        /// Creates a deque whose owner pops in LIFO order (depth-first).
        pub fn new_lifo() -> Self {
            Self {
                shared: Arc::new(Mutex::new(VecDeque::new())),
            }
        }

        /// Creates a deque whose owner pops in FIFO order.
        pub fn new_fifo() -> Self {
            // The lock-based queue serves both disciplines; owner pop order
            // is decided in `pop` by construction (LIFO) which is what
            // Rocket uses. FIFO owners are not needed; keep LIFO semantics.
            Self::new_lifo()
        }

        /// Pushes a task onto the owner's end.
        pub fn push(&self, task: T) {
            self.shared
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push_back(task);
        }

        /// Pops the most recently pushed task (depth-first descent).
        pub fn pop(&self) -> Option<T> {
            self.shared
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .pop_back()
        }

        /// Creates a stealer handle for this deque.
        pub fn stealer(&self) -> Stealer<T> {
            Stealer {
                shared: Arc::clone(&self.shared),
            }
        }

        /// True if no tasks are queued.
        pub fn is_empty(&self) -> bool {
            self.shared
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .is_empty()
        }
    }

    impl<T> Stealer<T> {
        /// Steals the oldest task (highest block in the quadrant tree).
        pub fn steal(&self) -> Steal<T> {
            match self
                .shared
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .pop_front()
            {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            }
        }
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Self {
                shared: Arc::clone(&self.shared),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, RecvTimeoutError, TryRecvError};
    use super::deque::{Steal, Worker};
    use std::time::Duration;

    #[test]
    fn channel_roundtrip_and_disconnect() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        drop(tx);
        assert!(rx.recv().is_err());
    }

    #[test]
    fn channel_timeout() {
        let (tx, rx) = unbounded::<i32>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn channel_crosses_threads() {
        let (tx, rx) = unbounded();
        let h = std::thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        let mut sum = 0;
        for _ in 0..100 {
            sum += rx.recv().unwrap();
        }
        h.join().unwrap();
        assert_eq!(sum, 4950);
    }

    #[test]
    fn deque_owner_lifo_thief_fifo() {
        let w = Worker::new_lifo();
        let s = w.stealer();
        w.push(1);
        w.push(2);
        w.push(3);
        assert_eq!(w.pop(), Some(3)); // owner: depth-first
        assert_eq!(s.steal(), Steal::Success(1)); // thief: oldest
        assert_eq!(w.pop(), Some(2));
        assert_eq!(s.steal(), Steal::Empty);
    }
}
