//! Offline stand-in for the `bytes` crate.
//!
//! The build environment has no network registry, so the workspace vendors
//! the small API subset Rocket actually uses: [`Bytes`] (cheaply clonable,
//! sliceable immutable buffers over an `Arc`), [`BytesMut`] (a growable
//! builder), and the [`Buf`]/[`BufMut`] cursor traits. Semantics match the
//! real crate for this subset — `Bytes::clone` and `Bytes::slice` are O(1)
//! reference bumps, never copies — so swapping the real dependency back in
//! requires only a manifest change.

use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply clonable, contiguous, immutable byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// A buffer over a static byte string (copied once; the real crate
    /// borrows, but the observable behaviour is identical).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Self::from(bytes.to_vec())
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True if the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// O(1) sub-slice sharing the same backing allocation.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(
            lo <= hi && hi <= self.len(),
            "slice {lo}..{hi} out of range"
        );
        Self {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Splits off and returns the first `at` bytes; `self` keeps the rest.
    pub fn split_to(&mut self, at: usize) -> Self {
        assert!(at <= self.len(), "split_to out of range");
        let head = self.slice(..at);
        self.start += at;
        head
    }

    /// Copies the contents into a fresh vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let len = v.len();
        Self {
            data: v.into(),
            start: 0,
            end: len,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Self::from(s.to_vec())
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Self::from(s.as_bytes().to_vec())
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Self::from(s.into_bytes())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_ref() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_ref() == other.as_slice()
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state);
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

/// A growable byte buffer used to build up a [`Bytes`].
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty builder with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing was written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Freezes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }

    /// Appends a byte slice.
    pub fn extend_from_slice(&mut self, extend: &[u8]) {
        self.buf.extend_from_slice(extend);
    }

    /// Splits off and returns the first `at` bytes; `self` keeps the rest.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        let rest = self.buf.split_off(at);
        BytesMut {
            buf: std::mem::replace(&mut self.buf, rest),
        }
    }

    /// Splits off and returns the bytes from `at` on; `self` keeps the
    /// first `at` bytes.
    pub fn split_off(&mut self, at: usize) -> BytesMut {
        BytesMut {
            buf: self.buf.split_off(at),
        }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

/// Read cursor over a byte buffer: every `get_*` consumes from the front.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;
    /// Consumes and returns the next byte. Panics if empty.
    fn get_u8(&mut self) -> u8;
    /// Consumes a little-endian `u32`. Panics on underflow.
    fn get_u32_le(&mut self) -> u32;
    /// Consumes a little-endian `u64`. Panics on underflow.
    fn get_u64_le(&mut self) -> u64;
    /// Skips `n` bytes. Panics on underflow.
    fn advance(&mut self, n: usize);
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn get_u8(&mut self) -> u8 {
        let v = self[0];
        self.start += 1;
        v
    }

    fn get_u32_le(&mut self) -> u32 {
        let v = u32::from_le_bytes(self[..4].try_into().unwrap());
        self.start += 4;
        v
    }

    fn get_u64_le(&mut self) -> u64 {
        let v = u64::from_le_bytes(self[..8].try_into().unwrap());
        self.start += 8;
        v
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end");
        self.start += n;
    }
}

/// Write cursor appending to the end of a buffer.
pub trait BufMut {
    /// Appends one byte.
    fn put_u8(&mut self, v: u8);
    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32);
    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64);
    /// Appends a byte slice.
    fn put_slice(&mut self, v: &[u8]);
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn put_u32_le(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn put_slice(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_slicing() {
        let mut w = BytesMut::new();
        w.put_u8(7);
        w.put_u32_le(0xDEADBEEF);
        w.put_u64_le(42);
        w.put_slice(b"xyz");
        let mut b = w.freeze();
        assert_eq!(b.len(), 1 + 4 + 8 + 3);
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u32_le(), 0xDEADBEEF);
        assert_eq!(b.get_u64_le(), 42);
        assert_eq!(b.as_ref(), b"xyz");
    }

    #[test]
    fn split_and_slice_share_backing() {
        let mut b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        let head = b.split_to(2);
        assert_eq!(head.as_ref(), &[1, 2]);
        assert_eq!(b.as_ref(), &[3, 4, 5]);
        let mid = b.slice(1..2);
        assert_eq!(mid.as_ref(), &[4]);
    }

    #[test]
    fn clone_is_cheap_and_equal() {
        let a = Bytes::from(vec![9u8; 1000]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(b[999], 9);
    }
}
