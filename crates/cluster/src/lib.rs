//! Multi-process cluster execution for Rocket sweeps.
//!
//! This crate turns the in-process `Scenario`/`Backend` driver API into a
//! real distributed deployment: a **driver** process (rank 0) owning a
//! [`ClusterBackend`], and **worker** processes (ranks 1..p) running
//! [`serve`] around any in-process backend — the simulator, typically.
//! Scenarios and reports travel over the length-prefixed wire protocol
//! (`rocket_core::codec`), so a `Study` drives a multi-process sweep
//! exactly as it drives a local one.
//!
//! The point of the crate is surviving worker loss: heartbeat liveness,
//! bounded-retry connects, re-dealing of lost workers' jobs with
//! duplicate suppression, per-job timeouts, and graceful degradation to
//! partial (flagged) reports below quorum. See [`driver`] for the exact
//! ordering of those mechanisms.
//!
//! | module | contents |
//! |---|---|
//! | [`protocol`] | the driver ↔ worker frame protocol |
//! | [`driver`] | [`ClusterBackend`], options, fault events |
//! | [`worker`] | [`serve`]: the worker process main loop |

#![warn(missing_docs)]

pub mod driver;
pub mod protocol;
pub mod worker;

pub use driver::{ClusterBackend, ClusterEvent, ClusterOptions};
pub use protocol::{ToDriver, ToWorker, DRIVER_RANK, PROTOCOL_VERSION};
pub use worker::{serve, ServeReport};
