//! The driver side: [`ClusterBackend`], a fault-tolerant [`Backend`]
//! over worker processes.
//!
//! The backend owns the driver endpoint of a cluster mesh (rank 0; the
//! workers are ranks 1..p) and a dispatcher thread that multiplexes any
//! number of concurrent [`Backend::run`] calls over the workers — which
//! is exactly what a parallel `Study` produces. Each `run` call ships the
//! scenario as a [`ToWorker::Job`] frame, and blocks until the
//! dispatcher folds the worker's [`ToDriver::Done`] report back to it.
//!
//! Failure handling, in the order the dispatcher applies it each tick:
//!
//! 1. **Positive disconnects** — [`Transport::peer_alive`] turning false
//!    (a reader thread saw the connection die) loses the worker at the
//!    next tick, far faster than any timeout.
//! 2. **Heartbeats** — [`rocket_comm::Liveness`] pings every worker each
//!    `ping_interval`; a worker silent past `liveness_timeout` is lost
//!    even if its TCP connection still looks healthy (`kill -9`,
//!    network partition).
//! 3. **Re-dealing** — a lost worker's unacknowledged job returns to the
//!    queue and is re-sent to a surviving worker. Job ids make delivery
//!    idempotent: a late duplicate report for a completed id is dropped,
//!    never double-counted.
//! 4. **Job timeouts** — a job outstanding past `job_timeout` is re-dealt
//!    too; the original worker keeps its busy mark (a stuck worker gets
//!    no new work) until it reports something or is lost.
//! 5. **Degradation** — a report whose job needed more than one dispatch,
//!    or that completed with fewer live workers than the quorum, is
//!    flagged [`RunReport::degraded`]. Only when *every* worker is gone
//!    do outstanding runs fail, with [`RocketError::WorkerLost`].

use std::collections::{HashMap, HashSet, VecDeque};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender};
use rocket_comm::wire::Wire;
use rocket_comm::{Liveness, RecvError, SocketTransport, Transport};
use rocket_core::{Backend, RocketError, RunReport, Scenario};
use rocket_sanitize::Mutex;

use crate::protocol::{ToDriver, ToWorker, DRIVER_RANK, PROTOCOL_VERSION};

/// Tuning knobs of the [`ClusterBackend`] dispatcher.
#[derive(Debug, Clone)]
pub struct ClusterOptions {
    /// Heartbeat ping cadence per worker.
    pub ping_interval: Duration,
    /// Silence after which a worker is declared lost.
    pub liveness_timeout: Duration,
    /// Time a single job may stay outstanding before it is re-dealt.
    pub job_timeout: Duration,
    /// Minimum live workers for non-degraded reports; `None` means a
    /// majority of the configured workers. Falling below the quorum does
    /// not stop the sweep — completions are flagged degraded instead.
    pub quorum: Option<usize>,
    /// Dispatcher tick (transport receive timeout).
    pub poll: Duration,
}

impl Default for ClusterOptions {
    fn default() -> Self {
        Self {
            ping_interval: Duration::from_millis(200),
            liveness_timeout: Duration::from_secs(2),
            job_timeout: Duration::from_secs(60),
            quorum: None,
            poll: Duration::from_millis(10),
        }
    }
}

/// Noteworthy dispatcher occurrences, in order (for reports and tests).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterEvent {
    /// A worker completed the handshake.
    WorkerReady {
        /// The worker's rank.
        worker: usize,
    },
    /// A worker was declared lost.
    WorkerLost {
        /// The worker's rank.
        worker: usize,
        /// What betrayed the loss (disconnect, heartbeat silence…).
        cause: String,
        /// The job re-queued from the worker, if it was running one.
        requeued: Option<u64>,
    },
    /// A previously dispatched job was sent to another worker.
    Redealt {
        /// The job's identifier.
        job: u64,
        /// Dispatch count including this one (2 = first re-deal).
        attempt: u32,
        /// The worker now running it.
        to: usize,
    },
    /// A late report for an already-completed job was discarded.
    DuplicateDropped {
        /// The completed job.
        job: u64,
        /// The worker whose report arrived late.
        from: usize,
    },
    /// A job stayed outstanding past the timeout and was re-queued.
    JobTimedOut {
        /// The job's identifier.
        job: u64,
        /// The worker it was outstanding on.
        worker: usize,
    },
    /// Live workers fell below the quorum; reports are degraded from here.
    BelowQuorum {
        /// Workers still live.
        live: usize,
        /// The configured (or majority) quorum.
        quorum: usize,
    },
}

/// A [`Backend`] that executes scenarios on worker processes over a
/// cluster transport, surviving worker loss. See the module docs for the
/// failure semantics.
pub struct ClusterBackend {
    jobs_tx: Sender<JobRequest>,
    shared: Arc<Shared>,
    dispatcher: Option<JoinHandle<()>>,
    shutdown: Arc<AtomicBool>,
    workers: usize,
}

struct Shared {
    next_id: AtomicU64,
    events: Mutex<Vec<ClusterEvent>>,
}

struct JobRequest {
    id: u64,
    scenario: Scenario,
    reply: Sender<Result<RunReport, RocketError>>,
}

impl ClusterBackend {
    /// Wraps an established driver endpoint (rank 0 of a mesh whose other
    /// ranks run [`crate::serve`]) in a fault-tolerant backend.
    pub fn over(transport: Box<dyn Transport>, opts: ClusterOptions) -> Result<Self, RocketError> {
        if transport.node() != DRIVER_RANK {
            return Err(RocketError::Config(format!(
                "the driver must be rank {DRIVER_RANK}, endpoint has rank {}",
                transport.node()
            )));
        }
        let workers = transport.cluster_size().saturating_sub(1);
        if workers == 0 {
            return Err(RocketError::Config(
                "a cluster backend needs at least one worker".into(),
            ));
        }
        if opts.liveness_timeout <= opts.ping_interval {
            return Err(RocketError::Config(
                "liveness_timeout must outlast ping_interval".into(),
            ));
        }
        let shared = Arc::new(Shared {
            next_id: AtomicU64::new(1),
            events: Mutex::named("events", Vec::new()),
        });
        let shutdown = Arc::new(AtomicBool::new(false));
        let (jobs_tx, jobs_rx) = unbounded();
        let dispatcher = {
            let shared = Arc::clone(&shared);
            let shutdown = Arc::clone(&shutdown);
            std::thread::Builder::new()
                .name("rocket-cluster-driver".into())
                .spawn(move || Dispatcher::new(transport, opts, shared, shutdown, jobs_rx).run())
                .map_err(|e| RocketError::Config(format!("spawn dispatcher: {e}")))?
        };
        Ok(Self {
            jobs_tx,
            shared,
            dispatcher: Some(dispatcher),
            shutdown,
            workers,
        })
    }

    /// Joins a socket mesh as the driver: binds `addrs[0]`, connects to
    /// every worker process (each of which called
    /// [`SocketTransport::join`] with its own rank — the `rocket-node
    /// --serve` entry point), and wraps the endpoint via
    /// [`ClusterBackend::over`].
    pub fn join(addrs: &[SocketAddr], opts: ClusterOptions) -> Result<Self, RocketError> {
        let transport = SocketTransport::join(DRIVER_RANK, addrs)
            .map_err(|e| RocketError::Config(format!("joining the cluster mesh failed: {e}")))?;
        Self::over(Box::new(transport), opts)
    }

    /// Number of workers the mesh was built with (live or not).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Everything noteworthy the dispatcher has recorded so far.
    pub fn events(&self) -> Vec<ClusterEvent> {
        self.shared.events.lock().clone()
    }

    /// Ranks of workers declared lost so far.
    pub fn lost_workers(&self) -> Vec<usize> {
        self.events()
            .iter()
            .filter_map(|e| match e {
                ClusterEvent::WorkerLost { worker, .. } => Some(*worker),
                _ => None,
            })
            .collect()
    }

    /// One-line summary of the fault history (for `StudyReport` notes).
    pub fn fault_summary(&self) -> String {
        let events = self.events();
        let lost: Vec<usize> = events
            .iter()
            .filter_map(|e| match e {
                ClusterEvent::WorkerLost { worker, .. } => Some(*worker),
                _ => None,
            })
            .collect();
        let redeals = events
            .iter()
            .filter(|e| matches!(e, ClusterEvent::Redealt { .. }))
            .count();
        let duplicates = events
            .iter()
            .filter(|e| matches!(e, ClusterEvent::DuplicateDropped { .. }))
            .count();
        if lost.is_empty() && redeals == 0 && duplicates == 0 {
            format!("cluster: {} workers, no faults", self.workers)
        } else {
            format!(
                "cluster: {} workers, lost {:?}, {} job(s) re-dealt, {} duplicate report(s) dropped",
                self.workers, lost, redeals, duplicates
            )
        }
    }
}

impl Backend for ClusterBackend {
    fn name(&self) -> &'static str {
        "cluster"
    }

    fn run(&self, scenario: &Scenario) -> Result<RunReport, RocketError> {
        scenario.validate().map_err(RocketError::Config)?;
        let id = self.shared.next_id.fetch_add(1, Ordering::Relaxed);
        let (reply, result) = unbounded();
        self.jobs_tx
            .send(JobRequest {
                id,
                scenario: scenario.clone(),
                reply,
            })
            .map_err(|_| RocketError::WorkerLost {
                worker: DRIVER_RANK,
                cause: "cluster dispatcher is shut down".into(),
            })?;
        result.recv().unwrap_or_else(|_| {
            Err(RocketError::WorkerLost {
                worker: DRIVER_RANK,
                cause: "cluster dispatcher exited before the job completed".into(),
            })
        })
    }
}

impl Drop for ClusterBackend {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(handle) = self.dispatcher.take() {
            let _ = handle.join();
        }
    }
}

/// One outstanding `run` call inside the dispatcher.
struct Inflight {
    scenario: Scenario,
    reply: Sender<Result<RunReport, RocketError>>,
    /// Dispatches so far (1 = first send; >1 = re-dealt).
    attempts: u32,
    /// The worker currently responsible, if dispatched.
    assigned_to: Option<usize>,
    deadline: Instant,
}

struct Dispatcher {
    transport: Box<dyn Transport>,
    opts: ClusterOptions,
    shared: Arc<Shared>,
    shutdown: Arc<AtomicBool>,
    jobs_rx: Receiver<JobRequest>,
    workers: usize,
    quorum: usize,
    liveness: Liveness,
    inflight: HashMap<u64, Inflight>,
    /// Job ids waiting for a worker.
    pending: VecDeque<u64>,
    /// Workers that are handshaken and idle.
    ready: HashSet<usize>,
    /// Worker → job it is (believed to be) running.
    busy: HashMap<usize, u64>,
    lost: HashSet<usize>,
    completed: HashSet<u64>,
    /// Set once every worker is gone: `(last worker, cause)`.
    all_lost: Option<(usize, String)>,
    below_quorum_reported: bool,
    nonce: u64,
}

impl Dispatcher {
    fn new(
        transport: Box<dyn Transport>,
        opts: ClusterOptions,
        shared: Arc<Shared>,
        shutdown: Arc<AtomicBool>,
        jobs_rx: Receiver<JobRequest>,
    ) -> Self {
        let workers = transport.cluster_size().saturating_sub(1);
        let quorum = opts.quorum.unwrap_or(workers / 2 + 1).max(1);
        let liveness = Liveness::new(
            1..=workers,
            opts.ping_interval,
            opts.liveness_timeout,
            Instant::now(),
        );
        Self {
            transport,
            opts,
            shared,
            shutdown,
            jobs_rx,
            workers,
            quorum,
            liveness,
            inflight: HashMap::new(),
            pending: VecDeque::new(),
            ready: HashSet::new(),
            busy: HashMap::new(),
            lost: HashSet::new(),
            completed: HashSet::new(),
            all_lost: None,
            below_quorum_reported: false,
            nonce: 0,
        }
    }

    fn run(mut self) {
        while !self.shutdown.load(Ordering::SeqCst) {
            self.ingest_requests();
            self.pump_transport();
            let now = Instant::now();
            self.detect_disconnects();
            self.heartbeat(now);
            self.requeue_timed_out(now);
            self.dispatch(now);
        }
        // Graceful exit: tell surviving workers to stop, fail anything
        // still outstanding.
        for w in 1..=self.workers {
            if !self.lost.contains(&w) {
                let _ = self.transport.send(w, ToWorker::Shutdown.to_bytes());
            }
        }
        for (_, job) in self.inflight.drain() {
            let _ = job.reply.send(Err(RocketError::WorkerLost {
                worker: DRIVER_RANK,
                cause: "cluster backend dropped with the job outstanding".into(),
            }));
        }
    }

    fn event(&self, e: ClusterEvent) {
        self.shared.events.lock().push(e);
    }

    fn ingest_requests(&mut self) {
        while let Ok(req) = self.jobs_rx.try_recv() {
            if let Some((worker, cause)) = &self.all_lost {
                let _ = req.reply.send(Err(RocketError::WorkerLost {
                    worker: *worker,
                    cause: cause.clone(),
                }));
                continue;
            }
            self.inflight.insert(
                req.id,
                Inflight {
                    scenario: req.scenario,
                    reply: req.reply,
                    attempts: 0,
                    assigned_to: None,
                    deadline: Instant::now() + self.opts.job_timeout,
                },
            );
            self.pending.push_back(req.id);
        }
    }

    fn pump_transport(&mut self) {
        // Drain everything queued, then block one poll interval so the
        // loop is quiet when the cluster is.
        let mut blocked = false;
        loop {
            let msg = if blocked {
                break;
            } else {
                match self.transport.try_recv() {
                    Some(m) => m,
                    None => {
                        blocked = true;
                        match self.transport.recv_timeout(self.opts.poll) {
                            Ok(m) => m,
                            Err(RecvError::Timeout) => break,
                            Err(RecvError::Disconnected) => {
                                // Every connection is gone and the inbox
                                // is drained.
                                for w in 1..=self.workers {
                                    self.mark_lost(w, "transport disconnected".into());
                                }
                                break;
                            }
                        }
                    }
                }
            };
            let now = Instant::now();
            let from = msg.from;
            self.liveness.observe(from, now);
            match ToDriver::from_bytes(msg.payload) {
                Ok(frame) => self.handle_frame(from, frame),
                Err(_) => { /* undecodable frame: ignore, liveness noted */ }
            }
        }
    }

    fn handle_frame(&mut self, from: usize, frame: ToDriver) {
        match frame {
            ToDriver::Ready { version } => {
                if version != PROTOCOL_VERSION {
                    self.mark_lost(
                        from,
                        format!("speaks protocol v{version}, driver speaks v{PROTOCOL_VERSION}"),
                    );
                } else if !self.lost.contains(&from) && !self.busy.contains_key(&from) {
                    self.ready.insert(from);
                    self.event(ClusterEvent::WorkerReady { worker: from });
                }
            }
            ToDriver::Pong { .. } => { /* the observe() above was the point */ }
            ToDriver::Done { id, report } => self.complete(from, id, Ok(report)),
            ToDriver::Failed { id, error } => self.complete(
                from,
                id,
                Err(RocketError::Config(format!("worker {from}: {error}"))),
            ),
        }
    }

    /// Folds a worker's report into the matching `run` call, deduplicating
    /// by job id, and returns the worker to the idle pool.
    fn complete(&mut self, from: usize, id: u64, result: Result<RunReport, RocketError>) {
        if self.busy.get(&from) == Some(&id) {
            self.busy.remove(&from);
            if !self.lost.contains(&from) {
                self.ready.insert(from);
            }
        }
        if self.completed.contains(&id) {
            self.event(ClusterEvent::DuplicateDropped { job: id, from });
            return;
        }
        let Some(job) = self.inflight.remove(&id) else {
            return; // unknown id (e.g. from a previous backend instance)
        };
        self.completed.insert(id);
        self.pending.retain(|&p| p != id);
        let result = result.map(|mut report| {
            let live = self.workers - self.lost.len();
            report.degraded |= job.attempts > 1 || live < self.quorum;
            report
        });
        let _ = job.reply.send(result);
    }

    /// Losses the transport can prove without waiting for a heartbeat.
    fn detect_disconnects(&mut self) {
        for w in 1..=self.workers {
            if !self.lost.contains(&w) && !self.transport.peer_alive(w) {
                self.mark_lost(w, "connection dropped".into());
            }
        }
    }

    fn heartbeat(&mut self, now: Instant) {
        for w in self.liveness.newly_lost(now) {
            self.mark_lost(
                w,
                format!(
                    "silent past the {:?} heartbeat deadline",
                    self.opts.liveness_timeout
                ),
            );
        }
        for w in self.liveness.peers_to_ping(now) {
            if self.lost.contains(&w) {
                continue;
            }
            self.nonce += 1;
            let ping = ToWorker::Ping { nonce: self.nonce };
            if self.transport.send(w, ping.to_bytes()).is_err() {
                self.mark_lost(w, "heartbeat send failed".into());
            }
        }
    }

    fn mark_lost(&mut self, worker: usize, cause: String) {
        if !self.lost.insert(worker) {
            return;
        }
        self.liveness.mark_lost(worker);
        self.ready.remove(&worker);
        // Return the worker's unacknowledged job to the queue — unless it
        // was already re-dealt elsewhere (then the re-deal owns it).
        let mut requeued = None;
        if let Some(id) = self.busy.remove(&worker) {
            if let Some(job) = self.inflight.get_mut(&id) {
                if job.assigned_to == Some(worker) {
                    job.assigned_to = None;
                    self.pending.push_front(id);
                    requeued = Some(id);
                }
            }
        }
        self.event(ClusterEvent::WorkerLost {
            worker,
            cause: cause.clone(),
            requeued,
        });
        let live = self.workers - self.lost.len();
        if live < self.quorum && !self.below_quorum_reported {
            self.below_quorum_reported = true;
            self.event(ClusterEvent::BelowQuorum {
                live,
                quorum: self.quorum,
            });
        }
        if live == 0 {
            self.all_lost = Some((worker, cause.clone()));
            // Nobody is left to run anything: fail every outstanding job.
            self.pending.clear();
            for (_, job) in self.inflight.drain() {
                let _ = job.reply.send(Err(RocketError::WorkerLost {
                    worker,
                    cause: cause.clone(),
                }));
            }
        }
    }

    /// Re-queues jobs outstanding past the deadline. The worker keeps its
    /// busy mark: a stuck worker gets no new work until it reports
    /// something (then dedup settles who counted) or is declared lost.
    fn requeue_timed_out(&mut self, now: Instant) {
        let expired: Vec<(u64, usize)> = self
            .inflight
            .iter()
            .filter_map(|(&id, job)| match job.assigned_to {
                Some(w) if now >= job.deadline => Some((id, w)),
                _ => None,
            })
            .collect();
        for (id, worker) in expired {
            if let Some(job) = self.inflight.get_mut(&id) {
                job.assigned_to = None;
                self.pending.push_back(id);
                self.event(ClusterEvent::JobTimedOut { job: id, worker });
            }
        }
    }

    fn dispatch(&mut self, now: Instant) {
        // Lowest rank first: deterministic placement when no faults
        // occur, which keeps no-fault runs reproducible.
        while let Some(&worker) = self.ready.iter().min() {
            let Some(id) = self.pending.pop_front() else {
                break;
            };
            let Some(job) = self.inflight.get_mut(&id) else {
                continue;
            };
            job.attempts += 1;
            let frame = ToWorker::Job {
                id,
                scenario: job.scenario.clone(),
            };
            match self.transport.send(worker, frame.to_bytes()) {
                Ok(()) => {
                    job.assigned_to = Some(worker);
                    job.deadline = now + self.opts.job_timeout;
                    let attempt = job.attempts;
                    self.ready.remove(&worker);
                    self.busy.insert(worker, id);
                    if attempt > 1 {
                        self.event(ClusterEvent::Redealt {
                            job: id,
                            attempt,
                            to: worker,
                        });
                    }
                }
                Err(_) => {
                    job.attempts -= 1;
                    self.pending.push_front(id);
                    self.mark_lost(worker, "job send failed".into());
                    if self.all_lost.is_some() {
                        break;
                    }
                }
            }
        }
    }
}
