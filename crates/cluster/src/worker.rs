//! The worker side of the cluster protocol: a serve loop around any
//! in-process [`Backend`].
//!
//! [`serve`] announces readiness, then pumps the transport: pings are
//! answered immediately, jobs run on their own threads (so heartbeats
//! keep flowing during long cells — a busy worker is not a dead worker),
//! and results stream back as [`ToDriver::Done`] / [`ToDriver::Failed`]
//! frames. The loop exits on [`ToWorker::Shutdown`] or when the driver's
//! connection drops, joining in-flight jobs before returning.

use std::time::Duration;

use crossbeam::channel::unbounded;
use rocket_comm::wire::Wire;
use rocket_comm::{RecvError, Transport};
use rocket_core::{Backend, RocketError, RunReport};

use crate::protocol::{ToDriver, ToWorker, DRIVER_RANK, PROTOCOL_VERSION};

/// How often the serve loop wakes to flush finished jobs when the
/// transport is quiet.
const POLL: Duration = Duration::from_millis(20);

/// What a serve loop did before exiting (for logs and tests).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeReport {
    /// Jobs accepted and executed.
    pub jobs: u64,
    /// Pings answered.
    pub pings: u64,
    /// True when the loop exited on [`ToWorker::Shutdown`] (as opposed to
    /// the driver's connection dropping).
    pub clean_exit: bool,
}

/// Runs the worker protocol on `transport` until the driver shuts it
/// down or disappears, executing every received job on `backend`.
///
/// This call owns the transport's receive side (the single-consumer
/// convention); run it on a dedicated thread — or as the main loop of a
/// worker process, which is what `rocket-node --serve` does.
pub fn serve(transport: &dyn Transport, backend: &dyn Backend) -> ServeReport {
    let mut out = ServeReport::default();
    let (done_tx, done_rx) = unbounded::<(u64, Result<RunReport, RocketError>)>();
    let _ = send(
        transport,
        &ToDriver::Ready {
            version: PROTOCOL_VERSION,
        },
    );
    std::thread::scope(|scope| {
        'serve: loop {
            // Flush finished jobs first so results are never starved by a
            // chatty driver.
            while let Ok((id, result)) = done_rx.try_recv() {
                let frame = match result {
                    Ok(report) => ToDriver::Done { id, report },
                    Err(e) => ToDriver::Failed {
                        id,
                        error: e.to_string(),
                    },
                };
                if send(transport, &frame).is_err() {
                    break 'serve;
                }
            }
            match transport.recv_timeout(POLL) {
                Ok(msg) => match ToWorker::from_bytes(msg.payload) {
                    Ok(ToWorker::Ping { nonce }) => {
                        out.pings += 1;
                        if send(transport, &ToDriver::Pong { nonce }).is_err() {
                            break 'serve;
                        }
                    }
                    Ok(ToWorker::Job { id, scenario }) => {
                        out.jobs += 1;
                        let tx = done_tx.clone();
                        scope.spawn(move || {
                            let _ = tx.send((id, backend.run(&scenario)));
                        });
                    }
                    Ok(ToWorker::Shutdown) => {
                        out.clean_exit = true;
                        break 'serve;
                    }
                    // A frame this revision cannot decode is dropped, not
                    // fatal: the driver's version check keeps genuinely
                    // incompatible peers out.
                    Err(_) => {}
                },
                Err(RecvError::Timeout) => {}
                Err(RecvError::Disconnected) => break 'serve,
            }
        }
    });
    // The scope joined all job threads; flush any results that finished
    // after the loop broke (best effort — the driver may be gone).
    while let Ok((id, result)) = done_rx.try_recv() {
        let frame = match result {
            Ok(report) => ToDriver::Done { id, report },
            Err(e) => ToDriver::Failed {
                id,
                error: e.to_string(),
            },
        };
        if send(transport, &frame).is_err() {
            break;
        }
    }
    out
}

fn send(transport: &dyn Transport, frame: &ToDriver) -> Result<(), RecvError> {
    transport.send(DRIVER_RANK, frame.to_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rocket_comm::TransportKind;
    use rocket_core::{NodeSpec, Scenario};
    use rocket_sim::SimBackend;

    fn scenario(seed: u64) -> Scenario {
        Scenario::builder()
            .items(12)
            .node(NodeSpec::uniform(1, 4, 8))
            .seed(seed)
            .build()
    }

    fn recv_frame(t: &dyn Transport) -> ToDriver {
        let msg = t.recv_timeout(Duration::from_secs(10)).expect("frame");
        ToDriver::from_bytes(msg.payload).expect("decode")
    }

    #[test]
    fn serves_jobs_pings_and_shuts_down() {
        let mut eps = TransportKind::Local.connect(2).unwrap();
        let worker_ep = eps.pop().unwrap();
        let driver = eps.pop().unwrap();
        let handle = std::thread::spawn(move || serve(worker_ep.as_ref(), &SimBackend::new()));

        assert!(
            matches!(recv_frame(driver.as_ref()), ToDriver::Ready { version }
            if version == PROTOCOL_VERSION)
        );

        driver
            .send(1, ToWorker::Ping { nonce: 77 }.to_bytes())
            .unwrap();
        assert!(matches!(
            recv_frame(driver.as_ref()),
            ToDriver::Pong { nonce: 77 }
        ));

        driver
            .send(
                1,
                ToWorker::Job {
                    id: 5,
                    scenario: scenario(1),
                }
                .to_bytes(),
            )
            .unwrap();
        match recv_frame(driver.as_ref()) {
            ToDriver::Done { id, report } => {
                assert_eq!(id, 5);
                assert_eq!(report.pairs, 12 * 11 / 2);
            }
            other => panic!("expected Done, got {other:?}"),
        }

        driver.send(1, ToWorker::Shutdown.to_bytes()).unwrap();
        let report = handle.join().unwrap();
        assert_eq!(report.jobs, 1);
        assert_eq!(report.pings, 1);
        assert!(report.clean_exit);
    }

    #[test]
    fn invalid_scenario_reports_failed_not_crash() {
        let mut eps = TransportKind::Local.connect(2).unwrap();
        let worker_ep = eps.pop().unwrap();
        let driver = eps.pop().unwrap();
        let handle = std::thread::spawn(move || serve(worker_ep.as_ref(), &SimBackend::new()));
        assert!(matches!(
            recv_frame(driver.as_ref()),
            ToDriver::Ready { .. }
        ));

        let mut bad = scenario(1);
        bad.nodes.clear();
        driver
            .send(
                1,
                ToWorker::Job {
                    id: 9,
                    scenario: bad,
                }
                .to_bytes(),
            )
            .unwrap();
        match recv_frame(driver.as_ref()) {
            ToDriver::Failed { id, error } => {
                assert_eq!(id, 9);
                assert!(error.contains("node"), "{error}");
            }
            other => panic!("expected Failed, got {other:?}"),
        }
        driver.send(1, ToWorker::Shutdown.to_bytes()).unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn driver_vanishing_ends_the_loop() {
        // Socket transport: dropping the driver endpoint closes its
        // connections, so the worker's receive side reports Disconnected.
        // (Local channels cannot observe a vanished peer passively.)
        let mut eps = TransportKind::Socket.connect(2).unwrap();
        let worker_ep = eps.pop().unwrap();
        let driver = eps.pop().unwrap();
        let handle = std::thread::spawn(move || serve(worker_ep.as_ref(), &SimBackend::new()));
        assert!(matches!(
            recv_frame(driver.as_ref()),
            ToDriver::Ready { .. }
        ));
        drop(driver);
        let report = handle.join().unwrap();
        assert!(!report.clean_exit);
    }

    #[test]
    fn garbage_frames_are_ignored() {
        let mut eps = TransportKind::Local.connect(2).unwrap();
        let worker_ep = eps.pop().unwrap();
        let driver = eps.pop().unwrap();
        let handle = std::thread::spawn(move || serve(worker_ep.as_ref(), &SimBackend::new()));
        assert!(matches!(
            recv_frame(driver.as_ref()),
            ToDriver::Ready { .. }
        ));
        driver
            .send(1, bytes::Bytes::from_static(&[0xEE; 7]))
            .unwrap();
        driver
            .send(1, ToWorker::Ping { nonce: 1 }.to_bytes())
            .unwrap();
        assert!(matches!(
            recv_frame(driver.as_ref()),
            ToDriver::Pong { nonce: 1 }
        ));
        driver.send(1, ToWorker::Shutdown.to_bytes()).unwrap();
        handle.join().unwrap();
    }
}
