//! The driver ↔ worker frame protocol.
//!
//! Every frame is one transport message: a tag byte followed by the
//! payload fields in [`rocket_comm::Wire`] layout. The driver (rank 0)
//! sends [`ToWorker`] frames; workers (ranks ≥ 1) answer with
//! [`ToDriver`] frames. Scenarios and reports travel through the core
//! codec (`rocket_core::codec`), so a worker process reconstructs the
//! exact scenario the driver built — including bit-exact `f64`
//! distribution parameters, which is what makes a re-dealt job
//! deterministic on its new worker.

use rocket_comm::wire::{Wire, WireError, WireReader, WireWriter};
use rocket_core::{RunReport, Scenario};

/// Protocol revision carried in [`ToDriver::Ready`]; the driver refuses
/// workers that speak a different revision (mixed deployments fail fast
/// instead of mis-decoding frames).
pub const PROTOCOL_VERSION: u32 = 2;

/// Rank of the driver process in the cluster mesh.
pub const DRIVER_RANK: usize = 0;

/// Frames the driver sends to a worker.
// Frames are ephemeral (built, encoded, dropped); the payload variants
// dwarfing Ping/Shutdown costs nothing worth an indirection.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum ToWorker {
    /// Execute `scenario` and report back under `id`.
    Job {
        /// Driver-unique job identifier (dedups late duplicate reports).
        id: u64,
        /// The scenario to execute.
        scenario: Scenario,
    },
    /// Liveness probe; answer with [`ToDriver::Pong`] echoing the nonce.
    Ping {
        /// Echoed verbatim in the pong.
        nonce: u64,
    },
    /// Finish in-flight work and exit the serve loop.
    Shutdown,
}

impl Wire for ToWorker {
    fn encode(&self, w: &mut WireWriter) {
        match self {
            ToWorker::Job { id, scenario } => {
                w.put_u8(0);
                w.put_u64(*id);
                scenario.encode(w);
            }
            ToWorker::Ping { nonce } => {
                w.put_u8(1);
                w.put_u64(*nonce);
            }
            ToWorker::Shutdown => w.put_u8(2),
        }
    }

    fn decode(r: &mut WireReader) -> Result<Self, WireError> {
        Ok(match r.get_u8()? {
            0 => ToWorker::Job {
                id: r.get_u64()?,
                scenario: Scenario::decode(r)?,
            },
            1 => ToWorker::Ping {
                nonce: r.get_u64()?,
            },
            2 => ToWorker::Shutdown,
            t => return Err(WireError::BadTag(t)),
        })
    }
}

/// Frames a worker sends to the driver.
#[allow(clippy::large_enum_variant)] // same as ToWorker: transient frames
#[derive(Debug, Clone)]
pub enum ToDriver {
    /// Handshake: the worker is up and accepting jobs.
    Ready {
        /// The protocol revision the worker speaks.
        version: u32,
    },
    /// Answer to [`ToWorker::Ping`].
    Pong {
        /// The nonce of the ping being answered.
        nonce: u64,
    },
    /// A job completed successfully.
    Done {
        /// The job's identifier.
        id: u64,
        /// The report the worker's backend produced.
        report: RunReport,
    },
    /// A job failed on the worker (deterministic failures are not
    /// re-dealt — they would fail identically everywhere).
    Failed {
        /// The job's identifier.
        id: u64,
        /// Rendered error message.
        error: String,
    },
}

impl Wire for ToDriver {
    fn encode(&self, w: &mut WireWriter) {
        match self {
            ToDriver::Ready { version } => {
                w.put_u8(0);
                w.put_u32(*version);
            }
            ToDriver::Pong { nonce } => {
                w.put_u8(1);
                w.put_u64(*nonce);
            }
            ToDriver::Done { id, report } => {
                w.put_u8(2);
                w.put_u64(*id);
                report.encode(w);
            }
            ToDriver::Failed { id, error } => {
                w.put_u8(3);
                w.put_u64(*id);
                w.put_str(error);
            }
        }
    }

    fn decode(r: &mut WireReader) -> Result<Self, WireError> {
        Ok(match r.get_u8()? {
            0 => ToDriver::Ready {
                version: r.get_u32()?,
            },
            1 => ToDriver::Pong {
                nonce: r.get_u64()?,
            },
            2 => ToDriver::Done {
                id: r.get_u64()?,
                report: RunReport::decode(r)?,
            },
            3 => ToDriver::Failed {
                id: r.get_u64()?,
                error: r.get_str()?,
            },
            t => return Err(WireError::BadTag(t)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rocket_core::{Backend as _, NodeSpec};

    fn scenario() -> Scenario {
        Scenario::builder()
            .items(16)
            .node(NodeSpec::uniform(1, 4, 8))
            .seed(7)
            .build()
    }

    #[test]
    fn to_worker_roundtrips() {
        let frames = [
            ToWorker::Job {
                id: 42,
                scenario: scenario(),
            },
            ToWorker::Ping { nonce: 0xABCD },
            ToWorker::Shutdown,
        ];
        for f in &frames {
            let back = ToWorker::from_bytes(f.to_bytes()).expect("decode");
            assert_eq!(&back, f);
        }
    }

    #[test]
    fn to_driver_roundtrips() {
        let report = rocket_sim::SimBackend::new().run(&scenario()).unwrap();
        let frames = [
            ToDriver::Ready {
                version: PROTOCOL_VERSION,
            },
            ToDriver::Pong { nonce: 9 },
            ToDriver::Done { id: 3, report },
            ToDriver::Failed {
                id: 4,
                error: "invalid configuration: no devices".into(),
            },
        ];
        for f in &frames {
            let back = ToDriver::from_bytes(f.to_bytes()).expect("decode");
            assert_eq!(format!("{back:?}"), format!("{f:?}"));
        }
    }

    #[test]
    fn unknown_tags_rejected() {
        assert!(matches!(
            ToWorker::from_bytes(bytes::Bytes::from_static(&[9])),
            Err(WireError::BadTag(9))
        ));
        assert!(matches!(
            ToDriver::from_bytes(bytes::Bytes::from_static(&[7])),
            Err(WireError::BadTag(7))
        ));
    }
}
