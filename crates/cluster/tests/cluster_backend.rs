//! Integration tests for [`ClusterBackend`]: equivalence with in-process
//! backends, and the worker-failure matrix (killed before handshake /
//! during a cell / duplicate late reports / job timeouts / total loss /
//! below-quorum degradation), over both transports.

use std::time::{Duration, Instant};

use rocket_cluster::{
    serve, ClusterBackend, ClusterEvent, ClusterOptions, ToDriver, ToWorker, PROTOCOL_VERSION,
};
use rocket_comm::wire::Wire;
use rocket_comm::TransportKind;
use rocket_core::{Axis, Backend, NodeSpec, RocketError, Scenario, Study, Sweep};
use rocket_sim::SimBackend;
use rocket_stats::Dist;

fn toy_scenario(seed: u64) -> Scenario {
    let mut workload = rocket_core::WorkloadProfile::items_only(12);
    workload.file_bytes = 1_000_000;
    workload.item_bytes = 10_000_000;
    workload.parse = Dist::Constant(10e-3);
    workload.preprocess = Some(Dist::Constant(5e-3));
    workload.compare = Dist::Constant(1e-3);
    Scenario::builder()
        .workload(workload)
        .nodes(2, NodeSpec::uniform(1, 8, 16))
        .seed(seed)
        .build()
}

/// Aggressive timings so faults surface within milliseconds, not seconds.
fn fast() -> ClusterOptions {
    ClusterOptions {
        ping_interval: Duration::from_millis(25),
        liveness_timeout: Duration::from_millis(150),
        job_timeout: Duration::from_secs(30),
        quorum: None,
        poll: Duration::from_millis(2),
    }
}

fn wait_for(mut cond: impl FnMut() -> bool, what: &str) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

fn ready_workers(backend: &ClusterBackend) -> usize {
    backend
        .events()
        .iter()
        .filter(|e| matches!(e, ClusterEvent::WorkerReady { .. }))
        .count()
}

/// A driver plus `workers` real serve loops over local channels.
fn local_cluster(
    workers: usize,
    opts: ClusterOptions,
) -> (ClusterBackend, Vec<std::thread::JoinHandle<()>>) {
    let mut eps = TransportKind::Local.connect(workers + 1).unwrap();
    let driver_ep = eps.remove(0);
    let handles = eps
        .into_iter()
        .map(|ep| {
            std::thread::spawn(move || {
                serve(ep.as_ref(), &SimBackend::new());
            })
        })
        .collect();
    let backend = ClusterBackend::over(driver_ep, opts).unwrap();
    (backend, handles)
}

#[test]
fn study_on_cluster_matches_local_sim() {
    let (backend, handles) = local_cluster(3, fast());
    let sweep = Sweep::over(toy_scenario(11))
        .axis(Axis::items([8, 10, 12]))
        .axis(Axis::hops([1, 2]))
        .try_build()
        .unwrap();
    let on_cluster = Study::new("equiv")
        .threads(3)
        .run(&backend, &sweep)
        .expect("cluster study");
    let local = Study::new("equiv")
        .run(&SimBackend::new(), &sweep)
        .expect("local study");

    assert_eq!(on_cluster.cells.len(), local.cells.len());
    for (c, l) in on_cluster.cells.iter().zip(&local.cells) {
        // Byte-identical per cell: the worker ran the same deterministic
        // engine on the bit-exact decoded scenario.
        assert_eq!(format!("{:?}", c.run()), format!("{:?}", l.run()));
        assert!(!c.degraded());
    }
    assert!(on_cluster.degraded_cells().is_empty());
    assert_eq!(on_cluster.backend, "cluster");
    assert!(backend.lost_workers().is_empty());
    assert!(backend.fault_summary().contains("no faults"));

    drop(backend);
    for h in handles {
        h.join().unwrap();
    }
}

#[test]
fn worker_killed_before_handshake_is_tolerated() {
    let mut eps = TransportKind::Local.connect(4).unwrap();
    let driver_ep = eps.remove(0);
    let dead = eps.pop().unwrap(); // rank 3: never handshakes
    let handles: Vec<_> = eps
        .into_iter()
        .map(|ep| {
            std::thread::spawn(move || {
                serve(ep.as_ref(), &SimBackend::new());
            })
        })
        .collect();
    drop(dead);
    let backend = ClusterBackend::over(driver_ep, fast()).unwrap();

    let report = backend.run(&toy_scenario(5)).expect("run succeeds");
    let local = SimBackend::new().run(&toy_scenario(5)).unwrap();
    assert_eq!(format!("{report:?}"), format!("{local:?}"));
    assert!(!report.degraded, "2 of 3 workers is still at quorum");

    wait_for(
        || backend.lost_workers().contains(&3),
        "rank 3 declared lost",
    );
    assert_eq!(backend.lost_workers(), vec![3]);

    drop(backend);
    for h in handles {
        h.join().unwrap();
    }
}

#[test]
fn worker_dying_mid_cell_gets_redealt() {
    let mut eps = TransportKind::Local.connect(3).unwrap();
    let driver_ep = eps.remove(0);
    let w1 = eps.remove(0);
    let w2 = eps.remove(0);

    // Rank 1 handshakes, answers pings — then dies on its first job.
    let h1 = std::thread::spawn(move || {
        w1.send(
            0,
            ToDriver::Ready {
                version: PROTOCOL_VERSION,
            }
            .to_bytes(),
        )
        .unwrap();
        loop {
            match w1.recv_timeout(Duration::from_secs(10)) {
                Ok(msg) => match ToWorker::from_bytes(msg.payload).unwrap() {
                    ToWorker::Job { .. } => return, // endpoint drops: mid-cell death
                    ToWorker::Ping { nonce } => {
                        let _ = w1.send(0, ToDriver::Pong { nonce }.to_bytes());
                    }
                    ToWorker::Shutdown => return,
                },
                Err(_) => return,
            }
        }
    });
    let h2 = std::thread::spawn(move || {
        serve(w2.as_ref(), &SimBackend::new());
    });
    let backend = ClusterBackend::over(driver_ep, fast()).unwrap();
    // Both ready first, so dispatch deterministically picks rank 1.
    wait_for(|| ready_workers(&backend) == 2, "both workers ready");

    let mut report = backend.run(&toy_scenario(21)).expect("survivor finishes");
    assert!(report.degraded, "re-dealt work is flagged");
    report.degraded = false;
    let local = SimBackend::new().run(&toy_scenario(21)).unwrap();
    assert_eq!(
        format!("{report:?}"),
        format!("{local:?}"),
        "totals identical to the no-fault run"
    );

    let events = backend.events();
    assert!(
        events.iter().any(|e| matches!(
            e,
            ClusterEvent::WorkerLost {
                worker: 1,
                requeued: Some(_),
                ..
            }
        )),
        "loss with requeue recorded: {events:?}"
    );
    assert!(
        events.iter().any(|e| matches!(
            e,
            ClusterEvent::Redealt {
                attempt: 2,
                to: 2,
                ..
            }
        )),
        "re-deal to rank 2 recorded: {events:?}"
    );
    assert!(backend.fault_summary().contains("re-dealt"));

    drop(backend);
    h1.join().unwrap();
    h2.join().unwrap();
}

#[test]
fn duplicate_late_reports_are_dropped() {
    let mut eps = TransportKind::Local.connect(2).unwrap();
    let driver_ep = eps.remove(0);
    let w1 = eps.remove(0);

    // Rank 1 reports every job twice — byte-identical frames.
    let h1 = std::thread::spawn(move || {
        w1.send(
            0,
            ToDriver::Ready {
                version: PROTOCOL_VERSION,
            }
            .to_bytes(),
        )
        .unwrap();
        loop {
            match w1.recv_timeout(Duration::from_secs(10)) {
                Ok(msg) => match ToWorker::from_bytes(msg.payload).unwrap() {
                    ToWorker::Job { id, scenario } => {
                        let report = SimBackend::new().run(&scenario).unwrap();
                        let frame = ToDriver::Done { id, report }.to_bytes();
                        w1.send(0, frame.clone()).unwrap();
                        w1.send(0, frame).unwrap();
                    }
                    ToWorker::Ping { nonce } => {
                        let _ = w1.send(0, ToDriver::Pong { nonce }.to_bytes());
                    }
                    ToWorker::Shutdown => return,
                },
                Err(_) => return,
            }
        }
    });
    let backend = ClusterBackend::over(
        driver_ep,
        ClusterOptions {
            quorum: Some(1),
            ..fast()
        },
    )
    .unwrap();

    let first = backend.run(&toy_scenario(31)).expect("first job");
    let second = backend.run(&toy_scenario(32)).expect("second job");
    assert!(!first.degraded && !second.degraded);
    assert_eq!(first.pairs, 12 * 11 / 2);
    assert_eq!(second.pairs, 12 * 11 / 2);

    wait_for(
        || {
            backend
                .events()
                .iter()
                .filter(|e| matches!(e, ClusterEvent::DuplicateDropped { .. }))
                .count()
                >= 2
        },
        "both duplicates observed and dropped",
    );
    assert!(backend.fault_summary().contains("duplicate"));

    drop(backend);
    h1.join().unwrap();
}

#[test]
fn stuck_worker_times_out_and_job_is_redealt() {
    let mut eps = TransportKind::Local.connect(3).unwrap();
    let driver_ep = eps.remove(0);
    let w1 = eps.remove(0);
    let w2 = eps.remove(0);

    // Rank 1 stays perfectly alive but swallows every job.
    let h1 = std::thread::spawn(move || {
        w1.send(
            0,
            ToDriver::Ready {
                version: PROTOCOL_VERSION,
            }
            .to_bytes(),
        )
        .unwrap();
        loop {
            match w1.recv_timeout(Duration::from_secs(10)) {
                Ok(msg) => match ToWorker::from_bytes(msg.payload).unwrap() {
                    ToWorker::Job { .. } => { /* accept silently, never report */ }
                    ToWorker::Ping { nonce } => {
                        let _ = w1.send(0, ToDriver::Pong { nonce }.to_bytes());
                    }
                    ToWorker::Shutdown => return,
                },
                Err(_) => return,
            }
        }
    });
    let h2 = std::thread::spawn(move || {
        serve(w2.as_ref(), &SimBackend::new());
    });
    let backend = ClusterBackend::over(
        driver_ep,
        ClusterOptions {
            job_timeout: Duration::from_millis(200),
            quorum: Some(1),
            ..fast()
        },
    )
    .unwrap();
    wait_for(|| ready_workers(&backend) == 2, "both workers ready");

    let mut report = backend
        .run(&toy_scenario(41))
        .expect("redealt job finishes");
    assert!(report.degraded, "timeout-triggered re-deal is flagged");
    report.degraded = false;
    let local = SimBackend::new().run(&toy_scenario(41)).unwrap();
    assert_eq!(format!("{report:?}"), format!("{local:?}"));

    let events = backend.events();
    assert!(
        events
            .iter()
            .any(|e| matches!(e, ClusterEvent::JobTimedOut { worker: 1, .. })),
        "timeout recorded: {events:?}"
    );
    assert!(
        events
            .iter()
            .any(|e| matches!(e, ClusterEvent::Redealt { to: 2, .. })),
        "re-deal recorded: {events:?}"
    );
    assert!(
        backend.lost_workers().is_empty(),
        "a slow worker is not a dead worker"
    );

    drop(backend);
    h1.join().unwrap();
    h2.join().unwrap();
}

#[test]
fn losing_every_worker_fails_with_typed_error() {
    let mut eps = TransportKind::Local.connect(3).unwrap();
    let driver_ep = eps.remove(0);
    drop(eps); // both workers die before handshaking
    let backend = ClusterBackend::over(driver_ep, fast()).unwrap();

    match backend.run(&toy_scenario(51)) {
        Err(RocketError::WorkerLost { worker, cause }) => {
            assert!(worker == 1 || worker == 2);
            assert!(!cause.is_empty());
        }
        other => panic!("expected WorkerLost, got {other:?}"),
    }
    // Later submissions fail fast instead of hanging.
    assert!(matches!(
        backend.run(&toy_scenario(52)),
        Err(RocketError::WorkerLost { .. })
    ));
}

#[test]
fn below_quorum_completions_are_degraded_and_reported() {
    let mut eps = TransportKind::Local.connect(4).unwrap();
    let driver_ep = eps.remove(0);
    let w1 = eps.remove(0);
    drop(eps); // ranks 2 and 3 die before handshaking
    let h1 = std::thread::spawn(move || {
        serve(w1.as_ref(), &SimBackend::new());
    });
    let backend = ClusterBackend::over(driver_ep, fast()).unwrap();
    wait_for(|| backend.lost_workers().len() == 2, "ranks 2 and 3 lost");

    let sweep = Sweep::over(toy_scenario(61))
        .axis(Axis::items([8, 10]))
        .try_build()
        .unwrap();
    let mut study = Study::new("degraded")
        .threads(2)
        .run(&backend, &sweep)
        .expect("partial capacity still completes the sweep");
    assert_eq!(study.degraded_cells(), vec![0, 1]);
    for line in study.to_csv().lines().skip(1) {
        assert!(line.ends_with(",true"), "degraded column set: {line}");
    }
    study.push_notes(&backend.fault_summary());
    assert!(study.notes.contains("lost [2, 3]"), "{}", study.notes);

    let events = backend.events();
    assert!(
        events
            .iter()
            .any(|e| matches!(e, ClusterEvent::BelowQuorum { live: 1, quorum: 2 })),
        "quorum transition recorded: {events:?}"
    );

    drop(backend);
    h1.join().unwrap();
}

#[test]
fn socket_mesh_survives_mid_cell_disconnect() {
    let mut eps = TransportKind::Socket.connect(3).unwrap();
    let driver_ep = eps.remove(0);
    let w1 = eps.remove(0);
    let w2 = eps.remove(0);

    // Rank 1 dies on its first job by dropping its socket endpoint; the
    // driver sees the connection reset (peer_alive turns false) without
    // waiting for a heartbeat deadline.
    let h1 = std::thread::spawn(move || {
        w1.send(
            0,
            ToDriver::Ready {
                version: PROTOCOL_VERSION,
            }
            .to_bytes(),
        )
        .unwrap();
        loop {
            match w1.recv_timeout(Duration::from_secs(10)) {
                Ok(msg) => match ToWorker::from_bytes(msg.payload) {
                    Ok(ToWorker::Job { .. }) => return,
                    Ok(ToWorker::Ping { nonce }) => {
                        let _ = w1.send(0, ToDriver::Pong { nonce }.to_bytes());
                    }
                    Ok(ToWorker::Shutdown) => return,
                    Err(_) => {}
                },
                Err(_) => return,
            }
        }
    });
    let h2 = std::thread::spawn(move || {
        serve(w2.as_ref(), &SimBackend::new());
    });
    let backend = ClusterBackend::over(
        driver_ep,
        ClusterOptions {
            quorum: Some(1),
            ..fast()
        },
    )
    .unwrap();
    wait_for(|| ready_workers(&backend) == 2, "both workers ready");

    let mut report = backend.run(&toy_scenario(71)).expect("survivor finishes");
    assert!(report.degraded);
    report.degraded = false;
    let local = SimBackend::new().run(&toy_scenario(71)).unwrap();
    assert_eq!(format!("{report:?}"), format!("{local:?}"));
    assert_eq!(backend.lost_workers(), vec![1]);

    // The mesh keeps working after the loss.
    let after = backend.run(&toy_scenario(72)).expect("post-loss job");
    assert_eq!(after.pairs, 12 * 11 / 2);

    drop(backend);
    h1.join().unwrap();
    h2.join().unwrap();
}
