//! The simulated Rocket cluster.
//!
//! Drives the *same policy code* as the threaded runtime — the
//! [`SlotCache`] WRITE/READ state machine, the candidates-array
//! [`Directory`], and the quadrant [`TaskDeque`] — but advances virtual
//! time through resource servers instead of real threads, which makes
//! 96-GPU experiments deterministic and laptop-fast. Stage durations are
//! sampled from a [`WorkloadProfile`] (Table 1 / Fig 7 of the paper);
//! transfer and I/O times come from device profiles and the storage /
//! network model.
//!
//! The job and fill state machines mirror `rocket-core`'s conductor
//! one-to-one (acquire-left-then-right with release-on-busy, device fill →
//! host fill → distributed lookup → load pipeline), so simulator results
//! are explanatory for the real runtime.
//!
//! # Dense-table state layout
//!
//! The per-event handlers run millions of times per simulation, so all
//! mutable simulator state is laid out for O(1) array indexing instead of
//! hashing:
//!
//! * **Jobs** live in a per-node free-list slab (`SimNode::jobs` +
//!   `SimNode::free_jobs`); a job id *is* its slab slot. Slots recycle only
//!   after `Sim::on_post_done`, and a completed job can have no parked
//!   waiter tokens (it must have held both leases to reach the compare
//!   stage), so recycled ids can never be reached by stale wake-ups.
//! * **Device-fill state** is per-GPU × per-item: `SimGpu::fills[item]`
//!   holds the WRITE-reserved device slot, the host-slot lease of the
//!   in-flight H2D copy, and the parked waiter tokens — replacing three
//!   `HashMap<(gpu, item), _>` tables with one indexed row per item.
//! * **Host-fill state** is per-node × per-item: `SimNode::host_fill[item]`
//!   packs the origin GPU and the reserved host slot of an in-flight load.
//! * **Stage distributions** are resolved once at construction into
//!   `StageDists`; handlers sample through `&Dist` without cloning.
//!
//! The dense tables cost `O(nodes × gpus × items)` machine words of memory
//! — a few MB for the largest scenario sweeps — in exchange for removing
//! every hash and every `Dist` clone from the per-event path.

use std::collections::VecDeque;

use rocket_cache::{
    CacheStats, Directory, DirectoryMsg, DirectoryStats, Lookup, Resolution, SlotCache, SlotIdx,
};
use rocket_core::WorkloadProfile;
use rocket_gpu::DeviceProfile;
use rocket_stats::{Dist, Distribution, Xoshiro256};
use rocket_steal::{Block, Pair, TaskDeque};
use rocket_trace::ThroughputSeries;

use crate::engine::{
    ns_to_secs, secs_to_ns, CalendarQueue, EventQueue, Scheduler, SimTime, SlabEventQueue,
};
use crate::server::{Engine, Pool};

/// Configuration of one simulated node.
#[derive(Debug, Clone)]
pub struct SimNodeConfig {
    /// The GPUs of this node.
    pub gpus: Vec<DeviceProfile>,
    /// Device-cache slots per GPU.
    pub device_slots: usize,
    /// Host-cache slots for the node.
    pub host_slots: usize,
}

impl SimNodeConfig {
    /// `gpus` identical baseline GPUs with the given cache sizes.
    pub fn uniform(gpus: usize, device_slots: usize, host_slots: usize) -> Self {
        Self {
            gpus: (0..gpus).map(|_| DeviceProfile::titanx_maxwell()).collect(),
            device_slots,
            host_slots,
        }
    }
}

/// Full simulation configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// The workload (items, sizes, stage-time distributions).
    pub workload: WorkloadProfile,
    /// One entry per node.
    pub nodes: Vec<SimNodeConfig>,
    /// Level-3 distributed cache on/off (Fig 12 compares both).
    pub distributed_cache: bool,
    /// Maximum lookup hops `h`.
    pub hops: usize,
    /// Concurrent job limit per node.
    pub job_limit: usize,
    /// CPU pool size per node.
    pub cpu_threads: usize,
    /// Pairs per leaf task.
    pub leaf_pairs: u64,
    /// Central storage bandwidth, bytes/second (shared by all nodes).
    pub storage_bandwidth: f64,
    /// Per-request storage latency, seconds.
    pub storage_latency: f64,
    /// Inter-node network bandwidth per NIC, bytes/second.
    pub net_bandwidth: f64,
    /// One-way network message latency, seconds.
    pub net_latency: f64,
    /// RNG seed.
    pub seed: u64,
    /// Record per-GPU completion timestamps (Fig 14).
    pub record_completions: bool,
    /// Event-scheduling structure (results are identical either way; the
    /// calendar queue targets very large clusters).
    pub scheduler: Scheduler,
}

impl SimConfig {
    /// A single-node configuration with paper-style defaults: DAS-5-like
    /// storage (InfiniBand MinIO) and network.
    pub fn single_node(workload: WorkloadProfile, node: SimNodeConfig) -> Self {
        Self::cluster(workload, vec![node])
    }

    /// A multi-node configuration with paper-style defaults.
    pub fn cluster(workload: WorkloadProfile, nodes: Vec<SimNodeConfig>) -> Self {
        Self {
            workload,
            nodes,
            distributed_cache: true,
            hops: 1,
            job_limit: 64,
            cpu_threads: 16,
            leaf_pairs: 64,
            storage_bandwidth: 1.2e9, // ~10 Gb/s effective object store
            storage_latency: 2e-3,
            net_bandwidth: 7.0e9, // 56 Gb/s InfiniBand FDR
            net_latency: 20e-6,
            seed: 0x9E3779B97F4A7C15,
            record_completions: false,
            scheduler: Scheduler::default(),
        }
    }

    /// Total GPUs in the cluster.
    pub fn total_gpus(&self) -> usize {
        self.nodes.iter().map(|n| n.gpus.len()).sum()
    }

    /// All device profiles, flattened (for the performance model).
    pub fn all_gpus(&self) -> Vec<DeviceProfile> {
        self.nodes
            .iter()
            .flat_map(|n| n.gpus.iter().cloned())
            .collect()
    }
}

/// Outcome of one simulated run.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Virtual run time, seconds.
    pub makespan: f64,
    /// Items in the data set.
    pub items: u64,
    /// Pairs processed.
    pub pairs: u64,
    /// Executions of the load pipeline cluster-wide.
    pub loads: u64,
    /// Items fetched from remote host caches.
    pub remote_fetches: u64,
    /// Bytes read from central storage.
    pub io_bytes: u64,
    /// Bytes moved between nodes (item fetches).
    pub net_bytes: u64,
    /// Work-steal count (blocks moved between nodes).
    pub steals: u64,
    /// Busy seconds: GPU pre-processing.
    pub busy_preprocess: f64,
    /// Busy seconds: GPU comparisons.
    pub busy_compare: f64,
    /// Busy seconds: H2D copy engines.
    pub busy_h2d: f64,
    /// Busy seconds: D2H copy engines.
    pub busy_d2h: f64,
    /// Busy seconds: CPU pools.
    pub busy_cpu: f64,
    /// Busy seconds: storage pipe.
    pub busy_io: f64,
    /// Merged device-cache counters.
    pub device_cache: CacheStats,
    /// Merged host-cache counters.
    pub host_cache: CacheStats,
    /// Merged distributed-lookup counters (Fig 11).
    pub directory: DirectoryStats,
    /// Pairs completed per node.
    pub pairs_per_node: Vec<u64>,
    /// Per-GPU completion timestamps (only when recorded; Fig 14).
    pub completions: Option<ThroughputSeries>,
}

impl SimResult {
    /// The paper's R metric.
    pub fn r_factor(&self) -> f64 {
        if self.items == 0 {
            0.0
        } else {
            self.loads as f64 / self.items as f64
        }
    }

    /// Average I/O usage in MB/s (Fig 12 bottom row).
    pub fn avg_io_mbps(&self) -> f64 {
        if self.makespan <= 0.0 {
            0.0
        } else {
            self.io_bytes as f64 / 1e6 / self.makespan
        }
    }

    /// Average throughput in pairs/second (Fig 13's metric).
    pub fn throughput(&self) -> f64 {
        if self.makespan <= 0.0 {
            0.0
        } else {
            self.pairs as f64 / self.makespan
        }
    }
}

/// Waiter token: which state machine to resume on wake-up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Tok {
    Job(u64),
    DevFill { gpu: usize, item: u64 },
}

#[derive(Debug)]
struct SimJob {
    pair: Pair,
    gpu: usize,
    left: Option<SlotIdx>,
    right: Option<SlotIdx>,
    /// The item this job last stalled on (capacity). Retries acquire it
    /// first: the retry then consumes the slot freed by our own release,
    /// guaranteeing progress instead of live-locking on the other item.
    stalled: Option<u64>,
    /// Set once the compare kernel is scheduled; guards against duplicate
    /// scheduling from redundant wake-ups.
    comparing: bool,
}

/// The device-profile numbers a simulated GPU actually consumes on the hot
/// path, denormalized out of [`DeviceProfile`] so handlers never chase the
/// profile struct (or clone its name) per event.
#[derive(Debug, Clone, Copy)]
struct GpuRates {
    compute_scale: f64,
    h2d_bytes_per_sec: f64,
    d2h_bytes_per_sec: f64,
}

impl From<&DeviceProfile> for GpuRates {
    fn from(p: &DeviceProfile) -> Self {
        Self {
            compute_scale: p.compute_scale,
            h2d_bytes_per_sec: p.h2d_bytes_per_sec,
            d2h_bytes_per_sec: p.d2h_bytes_per_sec,
        }
    }
}

/// Per-item device-fill row (see the module docs' dense-table layout).
///
/// Replaces the tuple-keyed `dev_fills` / `h2d_leases` / `fill_waiters`
/// hash maps: `SimGpu::fills[item]` is the single source of truth for one
/// GPU's in-flight fill of one item.
#[derive(Debug, Default, Clone)]
struct DevFill {
    /// Device slot reserved in WRITE state (`Some` while a fill is in
    /// flight for this item on this GPU).
    dev_slot: Option<SlotIdx>,
    /// Host slot leased by the in-flight H2D copy, if one is running.
    h2d_lease: Option<SlotIdx>,
    /// Tokens to wake when the fill publishes.
    waiters: Vec<Tok>,
}

/// Per-item host-fill row: origin GPU and the host slot reserved in WRITE
/// state. Replaces the `host_fills` + `host_fill_slot` hash maps.
#[derive(Debug, Clone, Copy)]
struct HostFill {
    origin_gpu: u32,
    slot: SlotIdx,
}

#[derive(Debug)]
struct SimGpu {
    rates: GpuRates,
    cache: SlotCache<Tok>,
    compute: Engine,
    h2d: Engine,
    d2h: Engine,
    in_flight: usize,
    pre_busy_ns: u64,
    cmp_busy_ns: u64,
    /// Dense per-item device-fill table, indexed by item id.
    fills: Vec<DevFill>,
}

struct SimNode {
    deque: TaskDeque,
    pending: VecDeque<Pair>,
    gpus: Vec<SimGpu>,
    host_cache: SlotCache<Tok>,
    cpu: Pool,
    nic: Engine,
    directory: Directory,
    /// Job slab; a job id is its slot index here.
    jobs: Vec<Option<SimJob>>,
    /// Recycled slots of `jobs`.
    free_jobs: Vec<u32>,
    jobs_in_flight: usize,
    /// Dense per-item host-fill table, indexed by item id.
    host_fill: Vec<Option<HostFill>>,
    pairs_done: u64,
    loads: u64,
    remote_fetches: u64,
    retry_pending: bool,
}

impl SimNode {
    #[inline]
    fn job(&self, id: u64) -> Option<&SimJob> {
        self.jobs[id as usize].as_ref()
    }

    #[inline]
    fn job_mut(&mut self, id: u64) -> Option<&mut SimJob> {
        self.jobs[id as usize].as_mut()
    }

    fn alloc_job(&mut self, job: SimJob) -> u64 {
        match self.free_jobs.pop() {
            Some(slot) => {
                debug_assert!(self.jobs[slot as usize].is_none());
                self.jobs[slot as usize] = Some(job);
                slot as u64
            }
            None => {
                self.jobs.push(Some(job));
                (self.jobs.len() - 1) as u64
            }
        }
    }

    fn free_job(&mut self, id: u64) -> SimJob {
        let job = self.jobs[id as usize].take().expect("job");
        self.free_jobs.push(id as u32);
        job
    }

    /// Live jobs (diagnostics; the slab may hold free slots).
    fn live_jobs(&self) -> usize {
        self.jobs.iter().flatten().count()
    }
}

#[derive(Debug)]
enum Msg {
    Dir(DirectoryMsg),
    Fetch { item: u64, requester: usize },
    FetchReply { item: u64, ok: bool },
}

#[derive(Debug)]
enum Ev {
    Pull { node: usize },
    IoDone { node: usize, item: u64 },
    ParseDone { node: usize, item: u64 },
    StagingDone { node: usize, gpu: usize, item: u64 },
    PreprocessDone { node: usize, gpu: usize, item: u64 },
    WritebackDone { node: usize, item: u64 },
    FillCopyDone { node: usize, gpu: usize, item: u64 },
    CompareDone { node: usize, job: u64 },
    ResultDone { node: usize, job: u64 },
    PostDone { node: usize, job: u64 },
    Net { to: usize, from: usize, msg: Msg },
    StealRetry { node: usize },
}

/// Runs one simulation to completion on the configured scheduler.
pub fn simulate(config: &SimConfig) -> SimResult {
    match config.scheduler {
        Scheduler::SlabHeap => Sim::new(config, SlabEventQueue::new()).run(),
        Scheduler::Calendar => Sim::new(config, CalendarQueue::new()).run(),
    }
}

/// Workload stage-time distributions, resolved once at construction so the
/// per-event handlers sample through `&Dist` with zero clones.
struct StageDists {
    parse: Dist,
    preprocess: Option<Dist>,
    compare: Dist,
    postprocess: Dist,
}

/// Samples a stage duration in nanoseconds. A free function over disjoint
/// borrows (`&mut rng`, `&Dist`) — the shape that lets callers sample from
/// `self.stages` while mutating `self.rng` without cloning the
/// distribution.
#[inline]
fn sample_ns(rng: &mut Xoshiro256, dist: &Dist) -> u64 {
    secs_to_ns(dist.sample(rng))
}

/// Time to move `bytes` at `bytes_per_sec`.
#[inline]
fn transfer_ns(bytes: u64, bytes_per_sec: f64) -> u64 {
    secs_to_ns(bytes as f64 / bytes_per_sec)
}

struct Sim<'a, Q: EventQueue<Ev>> {
    cfg: &'a SimConfig,
    stages: StageDists,
    queue: Q,
    nodes: Vec<SimNode>,
    storage: Engine,
    rng: Xoshiro256,
    wakes: VecDeque<(usize, Tok)>,
    /// Scratch buffer for steal-victim selection (avoids a per-steal alloc).
    victims: Vec<usize>,
    total_pairs: u64,
    pairs_started: u64,
    pairs_done: u64,
    io_bytes: u64,
    net_bytes: u64,
    steals: u64,
    makespan_ns: SimTime,
    ev_counts: [u64; 12],
    completions: Option<ThroughputSeries>,
    gpu_gid_base: Vec<usize>,
}

impl<'a, Q: EventQueue<Ev>> Sim<'a, Q> {
    fn new(cfg: &'a SimConfig, queue: Q) -> Self {
        assert!(!cfg.nodes.is_empty(), "cluster needs nodes");
        let n = cfg.workload.items;
        let p = cfg.nodes.len();
        let mut gpu_gid_base = Vec::with_capacity(p);
        let mut base = 0usize;
        let nodes: Vec<SimNode> = cfg
            .nodes
            .iter()
            .enumerate()
            .map(|(rank, nc)| {
                gpu_gid_base.push(base);
                base += nc.gpus.len();
                // Slots beyond the item count never get used: clamp to keep
                // huge Fig 9 sweeps cheap without changing behaviour.
                let dev_slots = nc.device_slots.min(n as usize).max(2);
                let host_slots = nc.host_slots.min(n as usize).max(2);
                SimNode {
                    deque: TaskDeque::new(),
                    pending: VecDeque::new(),
                    gpus: nc
                        .gpus
                        .iter()
                        .map(|profile| SimGpu {
                            rates: GpuRates::from(profile),
                            cache: SlotCache::with_item_space(dev_slots, n as usize),
                            compute: Engine::new(),
                            h2d: Engine::new(),
                            d2h: Engine::new(),
                            in_flight: 0,
                            pre_busy_ns: 0,
                            cmp_busy_ns: 0,
                            fills: vec![DevFill::default(); n as usize],
                        })
                        .collect(),
                    host_cache: SlotCache::with_item_space(host_slots, n as usize),
                    cpu: Pool::new(cfg.cpu_threads),
                    nic: Engine::new(),
                    directory: Directory::new(rank, p, cfg.hops),
                    jobs: Vec::new(),
                    free_jobs: Vec::new(),
                    jobs_in_flight: 0,
                    host_fill: vec![None; n as usize],
                    pairs_done: 0,
                    loads: 0,
                    remote_fetches: 0,
                    retry_pending: false,
                }
            })
            .collect();
        Self {
            cfg,
            stages: StageDists {
                parse: cfg.workload.parse.clone(),
                preprocess: cfg.workload.preprocess.clone(),
                compare: cfg.workload.compare.clone(),
                postprocess: cfg.workload.postprocess.clone(),
            },
            queue,
            nodes,
            storage: Engine::new(),
            rng: Xoshiro256::seed_from(cfg.seed),
            wakes: VecDeque::new(),
            victims: Vec::with_capacity(p),
            total_pairs: n * n.saturating_sub(1) / 2,
            pairs_started: 0,
            pairs_done: 0,
            io_bytes: 0,
            net_bytes: 0,
            steals: 0,
            makespan_ns: 0,
            ev_counts: [0; 12],
            completions: cfg.record_completions.then(ThroughputSeries::new),
            gpu_gid_base,
        }
    }

    fn run(mut self) -> SimResult {
        // The master node spawns the root task (§4.2).
        if self.total_pairs > 0 {
            self.nodes[0]
                .deque
                .push(Block::root(self.cfg.workload.items));
        }
        for node in 0..self.nodes.len() {
            self.queue.schedule_at(0, Ev::Pull { node });
        }
        let mut last_progress = (0u64, 0u64); // (pairs_done, virtual ns)
        while self.pairs_done < self.total_pairs {
            // Steal retries keep the queue non-empty forever, so a stuck
            // cluster shows up as virtual time racing ahead without pair
            // completions — treat an hour of virtual silence as a deadlock.
            if self.pairs_done != last_progress.0 {
                last_progress = (self.pairs_done, self.queue.now());
            } else if self.queue.now() > last_progress.1 + 300_000_000_000 {
                self.stall_panic("no progress for 5min of virtual time");
            }
            let Some((_, ev)) = self.queue.pop() else {
                self.stall_panic("event queue drained");
            };
            self.handle(ev);
            self.drain_wakes();
            #[cfg(debug_assertions)]
            self.validate();
        }
        self.finish()
    }

    /// Debug-build cross-check: every device-cache read lease is owned by
    /// exactly one job lease, every host lease by one in-flight H2D copy.
    #[cfg(debug_assertions)]
    fn validate(&self) {
        // Dense per-slot tables (slot indices are 0..capacity): no hashed
        // collections anywhere in the simulator, even debug-only ones.
        for (ni, node) in self.nodes.iter().enumerate() {
            let mut dev_readers: Vec<Vec<u32>> = node
                .gpus
                .iter()
                .map(|g| vec![0u32; g.cache.capacity()])
                .collect();
            for job in node.jobs.iter().flatten() {
                for slot in [job.left, job.right].into_iter().flatten() {
                    dev_readers[job.gpu][slot] += 1;
                }
            }
            for (g, gpu) in node.gpus.iter().enumerate() {
                for (slot, &expected) in dev_readers[g].iter().enumerate() {
                    assert_eq!(
                        gpu.cache.readers(slot),
                        expected,
                        "node {ni} gpu {g} slot {slot}: reader-count leak"
                    );
                }
                gpu.cache
                    .check_invariants()
                    .expect("device cache invariants");
            }
            let mut host_readers = vec![0u32; node.host_cache.capacity()];
            for gpu in &node.gpus {
                for hslot in gpu.fills.iter().filter_map(|f| f.h2d_lease) {
                    host_readers[hslot] += 1;
                }
            }
            for (slot, &expected) in host_readers.iter().enumerate() {
                assert_eq!(
                    node.host_cache.readers(slot),
                    expected,
                    "node {ni} host slot {slot}: reader-count leak"
                );
            }
            node.host_cache
                .check_invariants()
                .expect("host cache invariants");
        }
    }

    fn stall_panic(&self, why: &str) -> ! {
        let mut diag = String::new();
        for (i, node) in self.nodes.iter().enumerate() {
            let dev_fills: usize = node
                .gpus
                .iter()
                .map(|g| g.fills.iter().filter(|f| f.dev_slot.is_some()).count())
                .sum();
            let h2d_leases: usize = node
                .gpus
                .iter()
                .map(|g| g.fills.iter().filter(|f| f.h2d_lease.is_some()).count())
                .sum();
            diag.push_str(&format!(
                "\n node {i}: jobs={} inflight={} pending={} deque={} hostfills={} devfills={} \
                 h2d_leases={} host(cap_waiters={} evictable={} occ={}/{})",
                node.live_jobs(),
                node.jobs_in_flight,
                node.pending.len(),
                node.deque.len(),
                node.host_fill.iter().flatten().count(),
                dev_fills,
                h2d_leases,
                node.host_cache.parked_capacity_waiters(),
                node.host_cache.evictable(),
                node.host_cache.occupied(),
                node.host_cache.capacity(),
            ));
            for (g, gpu) in node.gpus.iter().enumerate() {
                diag.push_str(&format!(
                    "\n   gpu {g}: inflight={} cap_waiters={} evictable={} occ={}/{} resident={:?}",
                    gpu.in_flight,
                    gpu.cache.parked_capacity_waiters(),
                    gpu.cache.evictable(),
                    gpu.cache.occupied(),
                    gpu.cache.capacity(),
                    gpu.cache.resident_items(),
                ));
            }
            if i == 0 {
                for (id, j) in node.jobs.iter().enumerate() {
                    let Some(j) = j else { continue };
                    diag.push_str(&format!(
                        "\n   job {id}: pair=({},{}) left={:?} right={:?} stalled={:?} comparing={}",
                        j.pair.left, j.pair.right, j.left, j.right, j.stalled, j.comparing
                    ));
                }
                let dev_fill_keys: Vec<(usize, usize)> = node
                    .gpus
                    .iter()
                    .enumerate()
                    .flat_map(|(g, gpu)| {
                        gpu.fills
                            .iter()
                            .enumerate()
                            .filter(|(_, f)| f.dev_slot.is_some())
                            .map(move |(item, _)| (g, item))
                    })
                    .collect();
                let waiter_keys: Vec<(usize, usize)> = node
                    .gpus
                    .iter()
                    .enumerate()
                    .flat_map(|(g, gpu)| {
                        gpu.fills
                            .iter()
                            .enumerate()
                            .filter(|(_, f)| !f.waiters.is_empty())
                            .map(move |(item, _)| (g, item))
                    })
                    .collect();
                diag.push_str(&format!(
                    "\n   dev_fills={dev_fill_keys:?} fill_waiter_keys={waiter_keys:?}"
                ));
            }
        }
        panic!(
            "simulation stalled ({why}): {}/{} pairs done (started {}){diag}\n              event counts [pull,io,parse,staging,pre,writeback,fillcopy,cmp,res,post,net,steal]: {:?}\n              queue len {}",
            self.pairs_done,
            self.total_pairs,
            self.pairs_started,
            self.ev_counts,
            self.queue.len(),
        );
    }

    fn finish(self) -> SimResult {
        let mut r = SimResult {
            makespan: ns_to_secs(self.makespan_ns),
            items: self.cfg.workload.items,
            pairs: self.pairs_done,
            loads: self.nodes.iter().map(|n| n.loads).sum(),
            remote_fetches: self.nodes.iter().map(|n| n.remote_fetches).sum(),
            io_bytes: self.io_bytes,
            net_bytes: self.net_bytes,
            steals: self.steals,
            busy_preprocess: 0.0,
            busy_compare: 0.0,
            busy_h2d: 0.0,
            busy_d2h: 0.0,
            busy_cpu: 0.0,
            busy_io: ns_to_secs(self.storage.busy_ns()),
            device_cache: CacheStats::default(),
            host_cache: CacheStats::default(),
            directory: DirectoryStats::default(),
            pairs_per_node: self.nodes.iter().map(|n| n.pairs_done).collect(),
            completions: self.completions,
        };
        for node in &self.nodes {
            r.busy_cpu += ns_to_secs(node.cpu.busy_ns());
            r.host_cache.merge(&node.host_cache.stats());
            r.directory.merge(node.directory.stats());
            for gpu in &node.gpus {
                r.busy_preprocess += ns_to_secs(gpu.pre_busy_ns);
                r.busy_compare += ns_to_secs(gpu.cmp_busy_ns);
                r.busy_h2d += ns_to_secs(gpu.h2d.busy_ns());
                r.busy_d2h += ns_to_secs(gpu.d2h.busy_ns());
                r.device_cache.merge(&gpu.cache.stats());
            }
        }
        r
    }

    fn handle(&mut self, ev: Ev) {
        let idx = match &ev {
            Ev::Pull { .. } => 0,
            Ev::IoDone { .. } => 1,
            Ev::ParseDone { .. } => 2,
            Ev::StagingDone { .. } => 3,
            Ev::PreprocessDone { .. } => 4,
            Ev::WritebackDone { .. } => 5,
            Ev::FillCopyDone { .. } => 6,
            Ev::CompareDone { .. } => 7,
            Ev::ResultDone { .. } => 8,
            Ev::PostDone { .. } => 9,
            Ev::Net { .. } => 10,
            Ev::StealRetry { .. } => 11,
        };
        self.ev_counts[idx] += 1;
        match ev {
            Ev::Pull { node } => self.pull_work(node),
            Ev::IoDone { node, item } => self.on_io_done(node, item),
            Ev::ParseDone { node, item } => self.on_parse_done(node, item),
            Ev::StagingDone { node, gpu, item } => self.schedule_preprocess(node, gpu, item),
            Ev::PreprocessDone { node, gpu, item } => self.on_preprocess_done(node, gpu, item),
            Ev::WritebackDone { node, item } => self.publish_host(node, item),
            Ev::FillCopyDone { node, gpu, item } => self.on_fill_copy_done(node, gpu, item),
            Ev::CompareDone { node, job } => self.on_compare_done(node, job),
            Ev::ResultDone { node, job } => self.on_result_done(node, job),
            Ev::PostDone { node, job } => self.on_post_done(node, job),
            Ev::Net { to, from, msg } => self.on_net(to, from, msg),
            Ev::StealRetry { node } => {
                self.nodes[node].retry_pending = false;
                self.pull_work(node);
            }
        }
    }

    // ---- work acquisition ------------------------------------------------

    /// Per-GPU in-flight cap: each job pins up to two device slots, so
    /// keeping jobs ≤ slots/2 per GPU guarantees every in-flight job's
    /// leases fit simultaneously — the counting argument that makes the
    /// pipeline deadlock- and livelock-free even for tiny caches. (The
    /// paper relies on generous slot counts for the same property; see
    /// §4.1.1's note that waiting on WRITE slots is unproblematic "because
    /// Rocket ensures that a sufficient number of concurrent jobs are in
    /// progress".)
    fn gpu_cap(&self, node: usize, gpu: usize) -> usize {
        (self.nodes[node].gpus[gpu].cache.capacity() / 2).max(1)
    }

    fn has_gpu_slack(&self, node: usize) -> bool {
        (0..self.nodes[node].gpus.len())
            .any(|g| self.nodes[node].gpus[g].in_flight < self.gpu_cap(node, g))
    }

    fn pull_work(&mut self, node: usize) {
        loop {
            if self.nodes[node].jobs_in_flight >= self.cfg.job_limit || !self.has_gpu_slack(node) {
                return;
            }
            if let Some(pair) = self.next_pair(node) {
                self.start_job(node, pair);
            } else {
                // No work reachable right now; retry while undone pairs may
                // still show up in stealable form.
                if self.pairs_started < self.total_pairs && !self.nodes[node].retry_pending {
                    self.nodes[node].retry_pending = true;
                    self.queue
                        .schedule_in(secs_to_ns(500e-6), Ev::StealRetry { node });
                }
                return;
            }
        }
    }

    fn next_pair(&mut self, node: usize) -> Option<Pair> {
        loop {
            if let Some(pair) = self.nodes[node].pending.pop_front() {
                return Some(pair);
            }
            // Depth-first descent into the quadrant tree.
            if let Some(block) = self.nodes[node].deque.pop() {
                if block.count() <= self.cfg.leaf_pairs {
                    self.nodes[node].pending.extend(block.pairs());
                } else {
                    for child in block.split() {
                        self.nodes[node].deque.push(child);
                    }
                }
                continue;
            }
            // Steal the highest-level block from a random busy peer.
            self.victims.clear();
            for v in 0..self.nodes.len() {
                if v != node && !self.nodes[v].deque.is_empty() {
                    self.victims.push(v);
                }
            }
            if self.victims.is_empty() {
                return None;
            }
            let victim = *self.rng.pick(&self.victims);
            let block = self.nodes[victim].deque.steal().expect("victim non-empty");
            self.steals += 1;
            self.nodes[node].deque.push(block);
        }
    }

    fn start_job(&mut self, node: usize, pair: Pair) {
        self.pairs_started += 1;
        // Bind to the least-loaded GPU of the node (per-GPU workers) that
        // still has lease headroom.
        let gpu = (0..self.nodes[node].gpus.len())
            .filter(|&g| self.nodes[node].gpus[g].in_flight < self.gpu_cap(node, g))
            .min_by_key(|&g| self.nodes[node].gpus[g].in_flight)
            .expect("caller checked gpu slack");
        self.nodes[node].gpus[gpu].in_flight += 1;
        self.nodes[node].jobs_in_flight += 1;
        let id = self.nodes[node].alloc_job(SimJob {
            pair,
            gpu,
            left: None,
            right: None,
            stalled: None,
            comparing: false,
        });
        self.try_acquire(node, id);
    }

    // ---- job lease acquisition (mirrors the threaded conductor) ----------

    fn try_acquire(&mut self, node: usize, id: u64) {
        let Some(job) = self.nodes[node].job(id) else {
            return;
        };
        if job.comparing {
            return;
        }
        let (pair, gpu, stalled) = (job.pair, job.gpu, job.stalled);
        // Acquire the previously stalled item first (see `SimJob::stalled`).
        let mut order = [(0usize, pair.left), (1usize, pair.right)];
        if stalled == Some(pair.right) {
            order.swap(0, 1);
        }
        for (which, item) in order {
            let held = {
                let job = self.nodes[node].job(id).expect("job");
                if which == 0 {
                    job.left
                } else {
                    job.right
                }
            };
            if held.is_some() {
                continue;
            }
            match self.nodes[node].gpus[gpu].cache.get(item, || Tok::Job(id)) {
                Lookup::Hit(slot) => {
                    let job = self.nodes[node].job_mut(id).expect("job");
                    if which == 0 {
                        job.left = Some(slot);
                    } else {
                        job.right = Some(slot);
                    }
                }
                Lookup::Pending => return,
                Lookup::MustLoad(slot) => {
                    let fill = &mut self.nodes[node].gpus[gpu].fills[item as usize];
                    fill.dev_slot = Some(slot);
                    fill.waiters.push(Tok::Job(id));
                    self.continue_dev_fill(node, gpu, item);
                    return;
                }
                Lookup::Busy => {
                    self.nodes[node].job_mut(id).expect("job").stalled = Some(item);
                    self.release_leases(node, id);
                    return;
                }
            }
        }
        let job = self.nodes[node].job_mut(id).expect("job");
        job.stalled = None;
        job.comparing = true;
        self.schedule_compare(node, id);
    }

    fn release_leases(&mut self, node: usize, id: u64) {
        let Some(job) = self.nodes[node].job_mut(id) else {
            return;
        };
        let gpu = job.gpu;
        let leases = [job.left.take(), job.right.take()];
        for slot in leases.into_iter().flatten() {
            if let Some(tok) = self.nodes[node].gpus[gpu].cache.release(slot) {
                self.wake(node, tok);
            }
        }
    }

    /// Queues a wake-up. Wakes are drained iteratively after each event:
    /// recursion here would overflow the stack on long waiter chains.
    fn wake(&mut self, node: usize, tok: Tok) {
        self.wakes.push_back((node, tok));
    }

    fn drain_wakes(&mut self) {
        while let Some((node, tok)) = self.wakes.pop_front() {
            match tok {
                Tok::Job(id) => self.try_acquire(node, id),
                Tok::DevFill { gpu, item } => self.continue_dev_fill(node, gpu, item),
            }
        }
    }

    // ---- compare / result / post ------------------------------------------

    fn schedule_compare(&mut self, node: usize, id: u64) {
        let gpu = self.nodes[node].job(id).expect("job").gpu;
        let base = sample_ns(&mut self.rng, &self.stages.compare);
        let now = self.queue.now();
        let g = &mut self.nodes[node].gpus[gpu];
        let dur = (base as f64 / g.rates.compute_scale) as u64;
        let done = g.compute.submit(now, dur);
        g.cmp_busy_ns += dur;
        self.queue
            .schedule_at(done, Ev::CompareDone { node, job: id });
    }

    fn on_compare_done(&mut self, node: usize, id: u64) {
        // Leases can be dropped as soon as the kernel finishes.
        self.release_leases(node, id);
        let gpu = self.nodes[node].job(id).expect("job").gpu;
        let now = self.queue.now();
        let g = &mut self.nodes[node].gpus[gpu];
        let dur = transfer_ns(
            self.cfg.workload.item_bytes.min(1024),
            g.rates.d2h_bytes_per_sec,
        );
        let done = g.d2h.submit(now, dur);
        self.queue
            .schedule_at(done, Ev::ResultDone { node, job: id });
    }

    fn on_result_done(&mut self, node: usize, id: u64) {
        let dur = sample_ns(&mut self.rng, &self.stages.postprocess);
        let now = self.queue.now();
        let done = self.nodes[node].cpu.submit(now, dur);
        self.queue.schedule_at(done, Ev::PostDone { node, job: id });
    }

    fn on_post_done(&mut self, node: usize, id: u64) {
        let job = self.nodes[node].free_job(id);
        self.nodes[node].gpus[job.gpu].in_flight -= 1;
        self.nodes[node].jobs_in_flight -= 1;
        self.nodes[node].pairs_done += 1;
        self.pairs_done += 1;
        let now = self.queue.now();
        self.makespan_ns = self.makespan_ns.max(now);
        if let Some(series) = &mut self.completions {
            let gid = self.gpu_gid_base[node] + job.gpu;
            series.record(gid as u32, now);
        }
        self.pull_work(node);
    }

    // ---- device fill -------------------------------------------------------

    fn continue_dev_fill(&mut self, node: usize, gpu: usize, item: u64) {
        let fill = &self.nodes[node].gpus[gpu].fills[item as usize];
        if fill.dev_slot.is_none() {
            return;
        }
        // An H2D copy is already filling this slot: a second wake (e.g. a
        // parked token plus the origin-continuation of `publish_host`)
        // must not take a second host lease.
        if fill.h2d_lease.is_some() {
            return;
        }
        match self.nodes[node]
            .host_cache
            .get(item, || Tok::DevFill { gpu, item })
        {
            Lookup::Hit(hslot) => {
                let now = self.queue.now();
                let g = &mut self.nodes[node].gpus[gpu];
                g.fills[item as usize].h2d_lease = Some(hslot);
                let dur = transfer_ns(self.cfg.workload.item_bytes, g.rates.h2d_bytes_per_sec);
                let done = g.h2d.submit(now, dur);
                self.queue
                    .schedule_at(done, Ev::FillCopyDone { node, gpu, item });
            }
            Lookup::Pending | Lookup::Busy => {}
            Lookup::MustLoad(hslot) => {
                self.nodes[node].host_fill[item as usize] = Some(HostFill {
                    origin_gpu: gpu as u32,
                    slot: hslot,
                });
                if self.cfg.distributed_cache && self.nodes.len() > 1 {
                    let (to, msg) = self.nodes[node].directory.begin_lookup(item);
                    self.send(node, to, Msg::Dir(msg));
                } else {
                    self.local_load(node, item);
                }
            }
        }
    }

    fn on_fill_copy_done(&mut self, node: usize, gpu: usize, item: u64) {
        if let Some(hslot) = self.nodes[node].gpus[gpu].fills[item as usize]
            .h2d_lease
            .take()
        {
            if let Some(tok) = self.nodes[node].host_cache.release(hslot) {
                self.wake(node, tok);
            }
        }
        self.complete_dev_fill(node, gpu, item);
    }

    fn complete_dev_fill(&mut self, node: usize, gpu: usize, item: u64) {
        let fill = &mut self.nodes[node].gpus[gpu].fills[item as usize];
        let Some(dslot) = fill.dev_slot.take() else {
            return;
        };
        let ws = std::mem::take(&mut fill.waiters);
        let waiters = self.nodes[node].gpus[gpu].cache.publish(dslot);
        for w in waiters {
            self.wake(node, w);
        }
        for w in ws {
            self.wake(node, w);
        }
        // The published slot is evictable until a reader takes it: that is
        // fresh capacity, so a parked capacity waiter must get a retry.
        if let Some(w) = self.nodes[node].gpus[gpu].cache.pop_capacity_waiter() {
            self.wake(node, w);
        }
    }

    // ---- host fill / load pipeline ------------------------------------------

    fn local_load(&mut self, node: usize, item: u64) {
        let bytes = self.cfg.workload.file_bytes;
        self.io_bytes += bytes;
        let service = secs_to_ns(bytes as f64 / self.cfg.storage_bandwidth);
        let latency = secs_to_ns(self.cfg.storage_latency);
        let now = self.queue.now();
        let done = self.storage.submit(now, service) + latency;
        self.queue.schedule_at(done, Ev::IoDone { node, item });
    }

    fn on_io_done(&mut self, node: usize, item: u64) {
        let dur = sample_ns(&mut self.rng, &self.stages.parse);
        let now = self.queue.now();
        let done = self.nodes[node].cpu.submit(now, dur);
        self.queue.schedule_at(done, Ev::ParseDone { node, item });
    }

    fn on_parse_done(&mut self, node: usize, item: u64) {
        let Some(fill) = self.nodes[node].host_fill[item as usize] else {
            return;
        };
        let gpu = fill.origin_gpu as usize;
        if self.stages.preprocess.is_some() {
            // Stage parsed bytes to the device, pre-process there, write the
            // item back to the host slot (Fig 4's ℓ path).
            let now = self.queue.now();
            let g = &mut self.nodes[node].gpus[gpu];
            let dur = transfer_ns(self.cfg.workload.item_bytes, g.rates.h2d_bytes_per_sec);
            let done = g.h2d.submit(now, dur);
            self.queue
                .schedule_at(done, Ev::StagingDone { node, gpu, item });
        } else {
            // No GPU pre-processing: the parsed bytes are the item.
            self.nodes[node].loads += 1;
            self.publish_host(node, item);
        }
    }

    fn schedule_preprocess(&mut self, node: usize, gpu: usize, item: u64) {
        let base = sample_ns(
            &mut self.rng,
            self.stages.preprocess.as_ref().expect("preprocess stage"),
        );
        let now = self.queue.now();
        let g = &mut self.nodes[node].gpus[gpu];
        let dur = (base as f64 / g.rates.compute_scale) as u64;
        let done = g.compute.submit(now, dur);
        g.pre_busy_ns += dur;
        self.queue
            .schedule_at(done, Ev::PreprocessDone { node, gpu, item });
    }

    fn on_preprocess_done(&mut self, node: usize, gpu: usize, item: u64) {
        self.nodes[node].loads += 1;
        // Publish the device slot first (jobs can compare immediately), then
        // write back to the host slot.
        self.complete_dev_fill(node, gpu, item);
        let now = self.queue.now();
        let g = &mut self.nodes[node].gpus[gpu];
        let dur = transfer_ns(self.cfg.workload.item_bytes, g.rates.d2h_bytes_per_sec);
        let done = g.d2h.submit(now, dur);
        self.queue
            .schedule_at(done, Ev::WritebackDone { node, item });
    }

    fn publish_host(&mut self, node: usize, item: u64) {
        let Some(fill) = self.nodes[node].host_fill[item as usize].take() else {
            return;
        };
        let origin_gpu = fill.origin_gpu as usize;
        let waiters = self.nodes[node].host_cache.publish(fill.slot);
        for w in waiters {
            self.wake(node, w);
        }
        // Fresh capacity (see complete_dev_fill): retry one parked waiter.
        if let Some(w) = self.nodes[node].host_cache.pop_capacity_waiter() {
            self.wake(node, w);
        }
        if self.nodes[node].gpus[origin_gpu].fills[item as usize]
            .dev_slot
            .is_some()
        {
            self.continue_dev_fill(node, origin_gpu, item);
        }
    }

    // ---- distributed cache ----------------------------------------------------

    fn send(&mut self, from: usize, to: usize, msg: Msg) {
        let latency = secs_to_ns(self.cfg.net_latency);
        self.queue.schedule_in(latency, Ev::Net { to, from, msg });
    }

    fn on_net(&mut self, to: usize, from: usize, msg: Msg) {
        match msg {
            Msg::Dir(dir_msg) => {
                let lookup_item = match &dir_msg {
                    DirectoryMsg::Found { item, .. } | DirectoryMsg::NotFound { item } => {
                        Some(*item)
                    }
                    _ => None,
                };
                let node = &mut self.nodes[to];
                let host_cache = &node.host_cache;
                let (outgoing, resolution) = node
                    .directory
                    .handle(dir_msg, |i| host_cache.contains_ready(i));
                for (peer, m) in outgoing {
                    self.send(to, peer, Msg::Dir(m));
                }
                match resolution {
                    Resolution::InFlight => {}
                    Resolution::Found { holder, .. } => {
                        let item = lookup_item.expect("found carries item");
                        if self.nodes[to].host_fill[item as usize].is_some() {
                            self.send(
                                to,
                                holder,
                                Msg::Fetch {
                                    item,
                                    requester: to,
                                },
                            );
                        }
                    }
                    Resolution::LoadLocally => {
                        let item = lookup_item.expect("not-found carries item");
                        if self.nodes[to].host_fill[item as usize].is_some() {
                            self.local_load(to, item);
                        }
                    }
                }
            }
            Msg::Fetch { item, requester } => {
                // Serve from the host cache if still resident; transfer
                // occupies this node's NIC.
                let served = self.nodes[to].host_cache.try_read(item);
                match served {
                    Some(hslot) => {
                        if let Some(tok) = self.nodes[to].host_cache.release(hslot) {
                            self.wake(to, tok);
                        }
                        let bytes = self.cfg.workload.item_bytes;
                        self.net_bytes += bytes;
                        let dur = secs_to_ns(bytes as f64 / self.cfg.net_bandwidth);
                        let now = self.queue.now();
                        let done =
                            self.nodes[to].nic.submit(now, dur) + secs_to_ns(self.cfg.net_latency);
                        self.queue.schedule_at(
                            done,
                            Ev::Net {
                                to: requester,
                                from: to,
                                msg: Msg::FetchReply { item, ok: true },
                            },
                        );
                    }
                    None => {
                        self.send(to, requester, Msg::FetchReply { item, ok: false });
                    }
                }
            }
            Msg::FetchReply { item, ok } => {
                let _ = from;
                if self.nodes[to].host_fill[item as usize].is_none() {
                    return;
                }
                if ok {
                    self.nodes[to].remote_fetches += 1;
                    self.publish_host(to, item);
                } else {
                    self.local_load(to, item);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rocket_stats::Dist;

    /// A tiny regular workload with constant service times for exact math.
    fn toy_workload(items: u64) -> WorkloadProfile {
        WorkloadProfile {
            name: "toy",
            items,
            file_bytes: 1_000_000,
            item_bytes: 10_000_000,
            parse: Dist::Constant(10e-3),
            preprocess: Some(Dist::Constant(5e-3)),
            compare: Dist::Constant(1e-3),
            postprocess: Dist::Constant(0.0),
            paper_device_slots: 8,
            paper_host_slots: 16,
        }
    }

    fn toy_config(items: u64, nodes: usize, slots: usize) -> SimConfig {
        let node = SimNodeConfig::uniform(1, slots, slots * 2);
        SimConfig::cluster(toy_workload(items), vec![node; nodes])
    }

    #[test]
    fn all_pairs_complete() {
        let cfg = toy_config(20, 1, 32);
        let r = simulate(&cfg);
        assert_eq!(r.pairs, 190);
        assert!(r.makespan > 0.0);
    }

    #[test]
    fn perfect_cache_gives_r_one() {
        // Slots >= items on one node: every item loads exactly once.
        let cfg = toy_config(16, 1, 64);
        let r = simulate(&cfg);
        assert_eq!(r.loads, 16);
        assert!((r.r_factor() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn makespan_close_to_model_when_r_is_one() {
        use crate::model;
        let cfg = toy_config(24, 1, 64);
        let r = simulate(&cfg);
        let tmin = model::t_min(&cfg.workload);
        // Asynchronous overlap should put the makespan within ~15% of the
        // GPU-bound lower bound.
        assert!(
            r.makespan < tmin * 1.15 && r.makespan >= tmin * 0.99,
            "makespan {} vs tmin {tmin}",
            r.makespan
        );
    }

    #[test]
    fn small_cache_increases_r() {
        let big = simulate(&toy_config(32, 1, 64));
        let small = simulate(&toy_config(32, 1, 4));
        assert!(small.loads > big.loads, "{} vs {}", small.loads, big.loads);
        assert!(small.r_factor() > 1.5);
        assert!(small.makespan > big.makespan);
    }

    #[test]
    fn multi_node_splits_work() {
        let r = simulate(&toy_config(32, 4, 32));
        assert_eq!(r.pairs, 32 * 31 / 2);
        let active = r.pairs_per_node.iter().filter(|&&c| c > 0).count();
        assert!(active >= 3, "pairs per node: {:?}", r.pairs_per_node);
        assert!(r.steals > 0);
    }

    #[test]
    fn distributed_cache_reduces_loads() {
        let mut with = toy_config(32, 4, 8);
        with.distributed_cache = true;
        let mut without = with.clone();
        without.distributed_cache = false;
        let rw = simulate(&with);
        let ro = simulate(&without);
        assert!(
            rw.loads < ro.loads,
            "distributed cache must reduce loads: {} vs {}",
            rw.loads,
            ro.loads
        );
        assert!(rw.remote_fetches > 0);
        assert_eq!(ro.remote_fetches, 0);
        assert!(rw.io_bytes < ro.io_bytes);
    }

    #[test]
    fn speedup_with_more_nodes() {
        // Large enough that comparisons dominate over the fixed load cost;
        // tiny instances genuinely do not scale (quadratic work, linear
        // loads — the paper's premise).
        let mut c1 = toy_config(64, 1, 64);
        c1.leaf_pairs = 16;
        let mut c4 = toy_config(64, 4, 64);
        c4.leaf_pairs = 16;
        let t1 = simulate(&c1).makespan;
        let t4 = simulate(&c4).makespan;
        let speedup = t1 / t4;
        assert!(speedup > 3.0, "4-node speedup only {speedup:.2}");
    }

    #[test]
    fn faster_gpu_does_more_pairs() {
        let w = toy_workload(24);
        let nodes = vec![
            SimNodeConfig {
                gpus: vec![DeviceProfile::k20m()],
                device_slots: 24,
                host_slots: 24,
            },
            SimNodeConfig {
                gpus: vec![DeviceProfile::rtx2080ti()],
                device_slots: 24,
                host_slots: 24,
            },
        ];
        let r = simulate(&SimConfig::cluster(w, nodes));
        // RTX (scale 2.0) should process clearly more pairs than K20m (0.52).
        assert!(
            r.pairs_per_node[1] > r.pairs_per_node[0],
            "pairs: {:?}",
            r.pairs_per_node
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = toy_config(20, 2, 16);
        let a = simulate(&cfg);
        let b = simulate(&cfg);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.loads, b.loads);
        assert_eq!(a.pairs_per_node, b.pairs_per_node);
    }

    #[test]
    fn completions_recorded_when_asked() {
        let mut cfg = toy_config(10, 1, 16);
        cfg.record_completions = true;
        let r = simulate(&cfg);
        let series = r.completions.expect("completions");
        assert_eq!(series.total(0), 45);
    }

    #[test]
    fn busy_times_accounted() {
        let cfg = toy_config(16, 1, 64);
        let r = simulate(&cfg);
        // 16 loads × 5 ms preprocess; 120 pairs × 1 ms compare.
        assert!((r.busy_preprocess - 16.0 * 5e-3).abs() < 1e-9);
        assert!((r.busy_compare - 120.0 * 1e-3).abs() < 1e-9);
        assert!(r.busy_cpu > 0.0);
        assert!(r.busy_io > 0.0);
    }

    #[test]
    fn hop_stats_populate_with_multiple_nodes() {
        let mut cfg = toy_config(24, 4, 6);
        cfg.hops = 3;
        let r = simulate(&cfg);
        assert!(r.directory.lookups() > 0);
        // With h=3 the hits_at_hop vector never exceeds 3 entries.
        assert!(r.directory.hits_at_hop.len() <= 3);
    }

    #[test]
    fn forensics_like_8_nodes_small_caches_completes() {
        // Regression: reproduces the fig12 configuration that once
        // deadlocked (small caches, many nodes, distributed cache on).
        let w = WorkloadProfile {
            name: "forensics-like",
            items: 80,
            file_bytes: 3_900_000,
            item_bytes: 38_100_000,
            parse: Dist::Constant(130.8e-3),
            preprocess: Some(Dist::Constant(20.5e-3)),
            compare: Dist::Constant(11e-3),
            postprocess: Dist::Constant(0.0),
            paper_device_slots: 28,
            paper_host_slots: 104,
        };
        let node = SimNodeConfig {
            gpus: vec![DeviceProfile::titanx_maxwell()],
            device_slots: 7,
            host_slots: 25,
        };
        let cfg = SimConfig::cluster(w, vec![node; 4]);
        let r = simulate(&cfg);
        assert_eq!(r.pairs, 80 * 79 / 2);
    }

    #[test]
    fn no_preprocess_workload_runs() {
        let mut w = toy_workload(12);
        w.preprocess = None;
        let node = SimNodeConfig::uniform(1, 16, 16);
        let r = simulate(&SimConfig::cluster(w, vec![node]));
        assert_eq!(r.pairs, 66);
        assert_eq!(r.busy_preprocess, 0.0);
        assert_eq!(r.loads, 12);
    }
}
