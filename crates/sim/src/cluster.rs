//! The simulated Rocket cluster.
//!
//! Drives the *same policy code* as the threaded runtime — the
//! [`SlotCache`] WRITE/READ state machine, the candidates-array
//! [`Directory`], and the quadrant [`TaskDeque`] — but advances virtual
//! time through resource servers instead of real threads, which makes
//! 96-GPU experiments deterministic and laptop-fast. Stage durations are
//! sampled from a [`WorkloadProfile`] (Table 1 / Fig 7 of the paper);
//! transfer and I/O times come from device profiles and the storage /
//! network model.
//!
//! The job and fill state machines mirror `rocket-core`'s conductor
//! one-to-one (acquire-left-then-right with release-on-busy, device fill →
//! host fill → distributed lookup → load pipeline), so simulator results
//! are explanatory for the real runtime.
//!
//! This module owns the *model*: configuration, per-node state tables, and
//! the result fold. The event engine lives in `crate::shard` — a
//! conservative time-window design that runs the same model on one shard
//! (sequential) or many (parallel over the steal pool) with byte-identical
//! results; see `SimConfig::shards`.
//!
//! # Dense-table state layout
//!
//! The per-event handlers run millions of times per simulation, so all
//! mutable simulator state is laid out for O(1) array indexing instead of
//! hashing:
//!
//! * **Jobs** live in a per-node free-list slab (`SimNode::jobs` +
//!   `SimNode::free_jobs`); a job id *is* its slab slot. Slots recycle only
//!   after post-processing completes, and a completed job can have no
//!   parked waiter tokens (it must have held both leases to reach the
//!   compare stage), so recycled ids can never be reached by stale
//!   wake-ups.
//! * **Device-fill state** is per-GPU × per-item: `SimGpu::fills[item]`
//!   holds the WRITE-reserved device slot, the host-slot lease of the
//!   in-flight H2D copy, and the parked waiter tokens — replacing three
//!   `HashMap<(gpu, item), _>` tables with one indexed row per item.
//! * **Host-fill state** is per-node × per-item: `SimNode::host_fill[item]`
//!   packs the origin GPU and the reserved host slot of an in-flight load.
//! * **Stage distributions** are resolved once at construction into
//!   `StageDists`; handlers sample through `&Dist` without cloning.
//!
//! The dense tables cost `O(nodes × gpus × items)` machine words of memory
//! — a few MB for the largest scenario sweeps — in exchange for removing
//! every hash and every `Dist` clone from the per-event path.

use rocket_cache::{CacheStats, Directory, DirectoryMsg, DirectoryStats, SlotCache, SlotIdx};
use rocket_core::WorkloadProfile;
use rocket_gpu::DeviceProfile;
use rocket_stats::{Dist, Distribution, Xoshiro256};
use rocket_steal::{Block, Pair, TaskDeque};
use rocket_trace::{PerfLog, ThroughputSeries};

use crate::engine::{secs_to_ns, CalendarQueue, Scheduler, SimTime, SlabEventQueue};
use crate::server::{Engine, Pool};
use crate::shard;

/// Configuration of one simulated node.
#[derive(Debug, Clone)]
pub struct SimNodeConfig {
    /// The GPUs of this node.
    pub gpus: Vec<DeviceProfile>,
    /// Device-cache slots per GPU.
    pub device_slots: usize,
    /// Host-cache slots for the node.
    pub host_slots: usize,
}

impl SimNodeConfig {
    /// `gpus` identical baseline GPUs with the given cache sizes.
    pub fn uniform(gpus: usize, device_slots: usize, host_slots: usize) -> Self {
        Self {
            gpus: (0..gpus).map(|_| DeviceProfile::titanx_maxwell()).collect(),
            device_slots,
            host_slots,
        }
    }
}

/// Full simulation configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// The workload (items, sizes, stage-time distributions).
    pub workload: WorkloadProfile,
    /// One entry per node.
    pub nodes: Vec<SimNodeConfig>,
    /// Level-3 distributed cache on/off (Fig 12 compares both).
    pub distributed_cache: bool,
    /// Maximum lookup hops `h`.
    pub hops: usize,
    /// Concurrent job limit per node.
    pub job_limit: usize,
    /// CPU pool size per node.
    pub cpu_threads: usize,
    /// Pairs per leaf task.
    pub leaf_pairs: u64,
    /// Central storage bandwidth, bytes/second (shared by all nodes).
    pub storage_bandwidth: f64,
    /// Per-request storage latency, seconds.
    pub storage_latency: f64,
    /// Inter-node network bandwidth per NIC, bytes/second.
    pub net_bandwidth: f64,
    /// One-way network message latency, seconds.
    pub net_latency: f64,
    /// RNG seed.
    pub seed: u64,
    /// Record per-GPU completion timestamps (Fig 14).
    pub record_completions: bool,
    /// Event-scheduling structure (results are identical either way; the
    /// calendar queue targets very large clusters).
    pub scheduler: Scheduler,
    /// Event-engine shards for the conservative time-window parallel DES.
    /// `1` runs sequentially; `k > 1` partitions nodes over `k` shards
    /// advancing in lock-step windows on the steal pool. Results are
    /// byte-identical for every value (clamped to the node count).
    pub shards: usize,
    /// Worker threads for sharded runs. `0` picks the machine's available
    /// parallelism, capped at the shard count.
    pub shard_threads: usize,
    /// Perf-sample sink. Disabled by default; when enabled the engine
    /// buffers records per shard and folds them in after the result is
    /// final, so enabling it never changes [`SimResult`].
    pub perf: PerfLog,
}

impl SimConfig {
    /// A single-node configuration with paper-style defaults: DAS-5-like
    /// storage (InfiniBand MinIO) and network.
    pub fn single_node(workload: WorkloadProfile, node: SimNodeConfig) -> Self {
        Self::cluster(workload, vec![node])
    }

    /// A multi-node configuration with paper-style defaults.
    pub fn cluster(workload: WorkloadProfile, nodes: Vec<SimNodeConfig>) -> Self {
        Self {
            workload,
            nodes,
            distributed_cache: true,
            hops: 1,
            job_limit: 64,
            cpu_threads: 16,
            leaf_pairs: 64,
            storage_bandwidth: 1.2e9, // ~10 Gb/s effective object store
            storage_latency: 2e-3,
            net_bandwidth: 7.0e9, // 56 Gb/s InfiniBand FDR
            net_latency: 20e-6,
            seed: 0x9E3779B97F4A7C15,
            record_completions: false,
            scheduler: Scheduler::default(),
            shards: 1,
            shard_threads: 0,
            perf: PerfLog::disabled(),
        }
    }

    /// Total GPUs in the cluster.
    pub fn total_gpus(&self) -> usize {
        self.nodes.iter().map(|n| n.gpus.len()).sum()
    }

    /// All device profiles, flattened (for the performance model).
    pub fn all_gpus(&self) -> Vec<DeviceProfile> {
        self.nodes
            .iter()
            .flat_map(|n| n.gpus.iter().cloned())
            .collect()
    }

    /// The shard count actually used: at least 1, at most one shard per
    /// node (empty shards would only pay barrier overhead).
    pub fn effective_shards(&self) -> usize {
        self.shards.max(1).min(self.nodes.len().max(1))
    }
}

/// Outcome of one simulated run.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Virtual run time, seconds.
    pub makespan: f64,
    /// Items in the data set.
    pub items: u64,
    /// Pairs processed.
    pub pairs: u64,
    /// Executions of the load pipeline cluster-wide.
    pub loads: u64,
    /// Items fetched from remote host caches.
    pub remote_fetches: u64,
    /// Bytes read from central storage.
    pub io_bytes: u64,
    /// Bytes moved between nodes (item fetches).
    pub net_bytes: u64,
    /// Work-steal count (blocks moved between nodes).
    pub steals: u64,
    /// Lock-step time windows the event engine executed. Invariant under
    /// the shard count: one shard counts the same windows many would run.
    pub windows: u64,
    /// Busy seconds: GPU pre-processing.
    pub busy_preprocess: f64,
    /// Busy seconds: GPU comparisons.
    pub busy_compare: f64,
    /// Busy seconds: H2D copy engines.
    pub busy_h2d: f64,
    /// Busy seconds: D2H copy engines.
    pub busy_d2h: f64,
    /// Busy seconds: CPU pools.
    pub busy_cpu: f64,
    /// Busy seconds: storage pipe.
    pub busy_io: f64,
    /// Merged device-cache counters.
    pub device_cache: CacheStats,
    /// Merged host-cache counters.
    pub host_cache: CacheStats,
    /// Merged distributed-lookup counters (Fig 11).
    pub directory: DirectoryStats,
    /// Pairs completed per node.
    pub pairs_per_node: Vec<u64>,
    /// Per-GPU completion timestamps (only when recorded; Fig 14).
    pub completions: Option<ThroughputSeries>,
}

impl SimResult {
    /// The paper's R metric.
    pub fn r_factor(&self) -> f64 {
        if self.items == 0 {
            0.0
        } else {
            self.loads as f64 / self.items as f64
        }
    }

    /// Average I/O usage in MB/s (Fig 12 bottom row).
    pub fn avg_io_mbps(&self) -> f64 {
        if self.makespan <= 0.0 {
            0.0
        } else {
            self.io_bytes as f64 / 1e6 / self.makespan
        }
    }

    /// Average throughput in pairs/second (Fig 13's metric).
    pub fn throughput(&self) -> f64 {
        if self.makespan <= 0.0 {
            0.0
        } else {
            self.pairs as f64 / self.makespan
        }
    }
}

/// Waiter token: which state machine to resume on wake-up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Tok {
    Job(u64),
    DevFill { gpu: usize, item: u64 },
}

#[derive(Debug)]
pub(crate) struct SimJob {
    pub(crate) pair: Pair,
    pub(crate) gpu: usize,
    pub(crate) left: Option<SlotIdx>,
    pub(crate) right: Option<SlotIdx>,
    /// The item this job last stalled on (capacity). Retries acquire it
    /// first: the retry then consumes the slot freed by our own release,
    /// guaranteeing progress instead of live-locking on the other item.
    pub(crate) stalled: Option<u64>,
    /// Set once the compare kernel is scheduled; guards against duplicate
    /// scheduling from redundant wake-ups.
    pub(crate) comparing: bool,
}

/// The device-profile numbers a simulated GPU actually consumes on the hot
/// path, denormalized out of [`DeviceProfile`] so handlers never chase the
/// profile struct (or clone its name) per event.
#[derive(Debug, Clone, Copy)]
pub(crate) struct GpuRates {
    pub(crate) compute_scale: f64,
    pub(crate) h2d_bytes_per_sec: f64,
    pub(crate) d2h_bytes_per_sec: f64,
}

impl From<&DeviceProfile> for GpuRates {
    fn from(p: &DeviceProfile) -> Self {
        Self {
            compute_scale: p.compute_scale,
            h2d_bytes_per_sec: p.h2d_bytes_per_sec,
            d2h_bytes_per_sec: p.d2h_bytes_per_sec,
        }
    }
}

/// Per-item device-fill row (see the module docs' dense-table layout).
///
/// Replaces the tuple-keyed `dev_fills` / `h2d_leases` / `fill_waiters`
/// hash maps: `SimGpu::fills[item]` is the single source of truth for one
/// GPU's in-flight fill of one item.
#[derive(Debug, Default, Clone)]
pub(crate) struct DevFill {
    /// Device slot reserved in WRITE state (`Some` while a fill is in
    /// flight for this item on this GPU).
    pub(crate) dev_slot: Option<SlotIdx>,
    /// Host slot leased by the in-flight H2D copy, if one is running.
    pub(crate) h2d_lease: Option<SlotIdx>,
    /// Tokens to wake when the fill publishes.
    pub(crate) waiters: Vec<Tok>,
}

/// Per-item host-fill row: origin GPU and the host slot reserved in WRITE
/// state. Replaces the `host_fills` + `host_fill_slot` hash maps.
#[derive(Debug, Clone, Copy)]
pub(crate) struct HostFill {
    pub(crate) origin_gpu: u32,
    pub(crate) slot: SlotIdx,
}

#[derive(Debug)]
pub(crate) struct SimGpu {
    pub(crate) rates: GpuRates,
    pub(crate) cache: SlotCache<Tok>,
    pub(crate) compute: Engine,
    pub(crate) h2d: Engine,
    pub(crate) d2h: Engine,
    pub(crate) in_flight: usize,
    pub(crate) pre_busy_ns: u64,
    pub(crate) cmp_busy_ns: u64,
    /// Dense per-item device-fill table, indexed by item id.
    pub(crate) fills: Vec<DevFill>,
}

pub(crate) struct SimNode {
    /// Queued work, kept as blocks all the way down to single pairs so the
    /// whole backlog (minus in-flight jobs) stays stealable: the owner pops
    /// one pair at a time off the newest block and pushes the remainder
    /// back, so a straggler's tail can still migrate to idle nodes.
    pub(crate) deque: TaskDeque,
    /// Open row the owner is streaming pairs from, kept out of the deque so
    /// consuming a pair costs no deque traffic. Always a single-row block.
    /// Normalized (pushed back) before any steal snapshot so the tail stays
    /// stealable and deque state matches the one-block-per-pair scheme.
    pub(crate) cursor: Option<Block>,
    pub(crate) gpus: Vec<SimGpu>,
    pub(crate) host_cache: SlotCache<Tok>,
    pub(crate) cpu: Pool,
    pub(crate) nic: Engine,
    pub(crate) directory: Directory,
    /// Job slab; a job id is its slot index here.
    pub(crate) jobs: Vec<Option<SimJob>>,
    /// Recycled slots of `jobs`.
    pub(crate) free_jobs: Vec<u32>,
    pub(crate) jobs_in_flight: usize,
    /// Dense per-item host-fill table, indexed by item id.
    pub(crate) host_fill: Vec<Option<HostFill>>,
    pub(crate) pairs_done: u64,
    pub(crate) loads: u64,
    pub(crate) remote_fetches: u64,
    /// Deterministic per-node stream for stage sampling. Per-node (not
    /// global) so a node's draws are invariant under the shard count.
    pub(crate) rng: Xoshiro256,
    /// Out of reachable work; candidate for a window-boundary steal.
    pub(crate) hungry: bool,
    /// Virtual time `hungry` was last set (steal-cadence gate).
    pub(crate) hungry_since: SimTime,
    /// Bytes this node requested from central storage.
    pub(crate) io_bytes: u64,
    /// Bytes this node served to remote fetchers.
    pub(crate) net_bytes: u64,
    /// Latest pair completion on this node.
    pub(crate) makespan_ns: SimTime,
}

impl SimNode {
    #[inline]
    pub(crate) fn job(&self, id: u64) -> Option<&SimJob> {
        self.jobs[id as usize].as_ref()
    }

    #[inline]
    pub(crate) fn job_mut(&mut self, id: u64) -> Option<&mut SimJob> {
        self.jobs[id as usize].as_mut()
    }

    pub(crate) fn alloc_job(&mut self, job: SimJob) -> u64 {
        match self.free_jobs.pop() {
            Some(slot) => {
                debug_assert!(self.jobs[slot as usize].is_none());
                self.jobs[slot as usize] = Some(job);
                slot as u64
            }
            None => {
                self.jobs.push(Some(job));
                (self.jobs.len() - 1) as u64
            }
        }
    }

    pub(crate) fn free_job(&mut self, id: u64) -> SimJob {
        let job = self.jobs[id as usize].take().expect("job");
        self.free_jobs.push(id as u32);
        job
    }

    /// Live jobs (diagnostics; the slab may hold free slots).
    pub(crate) fn live_jobs(&self) -> usize {
        self.jobs.iter().flatten().count()
    }
}

#[derive(Debug)]
pub(crate) enum Msg {
    Dir(DirectoryMsg),
    Fetch { item: u64, requester: usize },
    FetchReply { item: u64, ok: bool },
}

#[derive(Debug)]
pub(crate) enum Ev {
    Pull { node: usize },
    IoDone { node: usize, item: u64 },
    ParseDone { node: usize, item: u64 },
    StagingDone { node: usize, gpu: usize, item: u64 },
    PreprocessDone { node: usize, gpu: usize, item: u64 },
    WritebackDone { node: usize, item: u64 },
    FillCopyDone { node: usize, gpu: usize, item: u64 },
    CompareDone { node: usize, job: u64 },
    ResultDone { node: usize, job: u64 },
    PostDone { node: usize, job: u64 },
    Net { to: usize, from: usize, msg: Msg },
}

/// Runs one simulation to completion on the configured scheduler and
/// shard count (see `crate::shard` for the engine).
pub fn simulate(config: &SimConfig) -> SimResult {
    match config.scheduler {
        Scheduler::SlabHeap => shard::run::<SlabEventQueue<Ev>>(config),
        Scheduler::Calendar => shard::run::<CalendarQueue<Ev>>(config),
    }
}

/// Workload stage-time distributions, resolved once at construction so the
/// per-event handlers sample through `&Dist` with zero clones.
pub(crate) struct StageDists {
    pub(crate) parse: Dist,
    pub(crate) preprocess: Option<Dist>,
    pub(crate) compare: Dist,
    pub(crate) postprocess: Dist,
}

/// Samples a stage duration in nanoseconds. A free function over disjoint
/// borrows (`&mut rng`, `&Dist`) — the shape that lets handlers sample
/// from shared stage tables while mutating a node's RNG without cloning
/// the distribution.
#[inline]
pub(crate) fn sample_ns(rng: &mut Xoshiro256, dist: &Dist) -> u64 {
    secs_to_ns(dist.sample(rng))
}

/// Time to move `bytes` at `bytes_per_sec`.
#[inline]
pub(crate) fn transfer_ns(bytes: u64, bytes_per_sec: f64) -> u64 {
    secs_to_ns(bytes as f64 / bytes_per_sec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rocket_stats::Dist;

    /// A tiny regular workload with constant service times for exact math.
    fn toy_workload(items: u64) -> WorkloadProfile {
        WorkloadProfile {
            name: "toy",
            items,
            file_bytes: 1_000_000,
            item_bytes: 10_000_000,
            parse: Dist::Constant(10e-3),
            preprocess: Some(Dist::Constant(5e-3)),
            compare: Dist::Constant(1e-3),
            postprocess: Dist::Constant(0.0),
            paper_device_slots: 8,
            paper_host_slots: 16,
        }
    }

    fn toy_config(items: u64, nodes: usize, slots: usize) -> SimConfig {
        let node = SimNodeConfig::uniform(1, slots, slots * 2);
        SimConfig::cluster(toy_workload(items), vec![node; nodes])
    }

    #[test]
    fn all_pairs_complete() {
        let cfg = toy_config(20, 1, 32);
        let r = simulate(&cfg);
        assert_eq!(r.pairs, 190);
        assert!(r.makespan > 0.0);
        assert!(r.windows > 0);
    }

    #[test]
    fn perfect_cache_gives_r_one() {
        // Slots >= items on one node: every item loads exactly once.
        let cfg = toy_config(16, 1, 64);
        let r = simulate(&cfg);
        assert_eq!(r.loads, 16);
        assert!((r.r_factor() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn makespan_close_to_model_when_r_is_one() {
        use crate::model;
        let cfg = toy_config(24, 1, 64);
        let r = simulate(&cfg);
        let tmin = model::t_min(&cfg.workload);
        // Asynchronous overlap should put the makespan within ~15% of the
        // GPU-bound lower bound.
        assert!(
            r.makespan < tmin * 1.15 && r.makespan >= tmin * 0.99,
            "makespan {} vs tmin {tmin}",
            r.makespan
        );
    }

    #[test]
    fn small_cache_increases_r() {
        let big = simulate(&toy_config(32, 1, 64));
        let small = simulate(&toy_config(32, 1, 4));
        assert!(small.loads > big.loads, "{} vs {}", small.loads, big.loads);
        assert!(small.r_factor() > 1.5);
        assert!(small.makespan > big.makespan);
    }

    #[test]
    fn multi_node_splits_work() {
        let r = simulate(&toy_config(32, 4, 32));
        assert_eq!(r.pairs, 32 * 31 / 2);
        let active = r.pairs_per_node.iter().filter(|&&c| c > 0).count();
        assert!(active >= 3, "pairs per node: {:?}", r.pairs_per_node);
        assert!(r.steals > 0);
    }

    #[test]
    fn distributed_cache_reduces_loads() {
        let mut with = toy_config(32, 4, 8);
        with.distributed_cache = true;
        let mut without = with.clone();
        without.distributed_cache = false;
        let rw = simulate(&with);
        let ro = simulate(&without);
        assert!(
            rw.loads < ro.loads,
            "distributed cache must reduce loads: {} vs {}",
            rw.loads,
            ro.loads
        );
        assert!(rw.remote_fetches > 0);
        assert_eq!(ro.remote_fetches, 0);
        assert!(rw.io_bytes < ro.io_bytes);
    }

    #[test]
    fn speedup_with_more_nodes() {
        // Large enough that comparisons dominate over the fixed load cost;
        // tiny instances genuinely do not scale (quadratic work, linear
        // loads — the paper's premise).
        let mut c1 = toy_config(64, 1, 64);
        c1.leaf_pairs = 16;
        let mut c4 = toy_config(64, 4, 64);
        c4.leaf_pairs = 16;
        let t1 = simulate(&c1).makespan;
        let t4 = simulate(&c4).makespan;
        let speedup = t1 / t4;
        assert!(speedup > 3.0, "4-node speedup only {speedup:.2}");
    }

    #[test]
    fn faster_gpu_does_more_pairs() {
        let w = toy_workload(24);
        let nodes = vec![
            SimNodeConfig {
                gpus: vec![DeviceProfile::k20m()],
                device_slots: 24,
                host_slots: 24,
            },
            SimNodeConfig {
                gpus: vec![DeviceProfile::rtx2080ti()],
                device_slots: 24,
                host_slots: 24,
            },
        ];
        let r = simulate(&SimConfig::cluster(w, nodes));
        // RTX (scale 2.0) should process clearly more pairs than K20m (0.52).
        assert!(
            r.pairs_per_node[1] > r.pairs_per_node[0],
            "pairs: {:?}",
            r.pairs_per_node
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = toy_config(20, 2, 16);
        let a = simulate(&cfg);
        let b = simulate(&cfg);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.loads, b.loads);
        assert_eq!(a.pairs_per_node, b.pairs_per_node);
    }

    #[test]
    fn completions_recorded_when_asked() {
        let mut cfg = toy_config(10, 1, 16);
        cfg.record_completions = true;
        let r = simulate(&cfg);
        let series = r.completions.expect("completions");
        assert_eq!(series.total(0), 45);
    }

    #[test]
    fn busy_times_accounted() {
        let cfg = toy_config(16, 1, 64);
        let r = simulate(&cfg);
        // 16 loads × 5 ms preprocess; 120 pairs × 1 ms compare.
        assert!((r.busy_preprocess - 16.0 * 5e-3).abs() < 1e-9);
        assert!((r.busy_compare - 120.0 * 1e-3).abs() < 1e-9);
        assert!(r.busy_cpu > 0.0);
        assert!(r.busy_io > 0.0);
    }

    #[test]
    fn hop_stats_populate_with_multiple_nodes() {
        let mut cfg = toy_config(24, 4, 6);
        cfg.hops = 3;
        let r = simulate(&cfg);
        assert!(r.directory.lookups() > 0);
        // With h=3 the hits_at_hop vector never exceeds 3 entries.
        assert!(r.directory.hits_at_hop.len() <= 3);
    }

    #[test]
    fn forensics_like_8_nodes_small_caches_completes() {
        // Regression: reproduces the fig12 configuration that once
        // deadlocked (small caches, many nodes, distributed cache on).
        let w = WorkloadProfile {
            name: "forensics-like",
            items: 80,
            file_bytes: 3_900_000,
            item_bytes: 38_100_000,
            parse: Dist::Constant(130.8e-3),
            preprocess: Some(Dist::Constant(20.5e-3)),
            compare: Dist::Constant(11e-3),
            postprocess: Dist::Constant(0.0),
            paper_device_slots: 28,
            paper_host_slots: 104,
        };
        let node = SimNodeConfig {
            gpus: vec![DeviceProfile::titanx_maxwell()],
            device_slots: 7,
            host_slots: 25,
        };
        let cfg = SimConfig::cluster(w, vec![node; 4]);
        let r = simulate(&cfg);
        assert_eq!(r.pairs, 80 * 79 / 2);
    }

    #[test]
    fn no_preprocess_workload_runs() {
        let mut w = toy_workload(12);
        w.preprocess = None;
        let node = SimNodeConfig::uniform(1, 16, 16);
        let r = simulate(&SimConfig::cluster(w, vec![node]));
        assert_eq!(r.pairs, 66);
        assert_eq!(r.busy_preprocess, 0.0);
        assert_eq!(r.loads, 12);
    }
}
