//! Conservative time-window parallel engine for the cluster simulator.
//!
//! The sequential simulator pops one global event queue. This module shards
//! that queue: nodes are partitioned into `K` contiguous shards, each with
//! its own [`EventQueue`] and its own slice of per-node state, and all
//! shards advance in lock-step *time windows* on
//! [`StealPool::run_rounds`].
//!
//! # Why the window width is safe
//!
//! A shard may only execute events it can prove no other shard will still
//! influence. Cross-shard influence travels exactly three ways, and each is
//! barrier-mediated:
//!
//! * **Network messages** ([`Ev::Net`]) arrive at least `net_latency` after
//!   they are sent; cross-shard sends park in the sender's outbox and merge
//!   into the destination queue at the barrier.
//! * **Storage completions** ([`Ev::IoDone`]) arrive at least
//!   `service + storage_latency` after the request; requests defer to the
//!   barrier, where they are submitted to the shared storage engine in
//!   global `(time, prio)` order.
//! * **Work stealing** happens only at barriers, matched deterministically
//!   over a snapshot of every node's deque.
//!
//! With windows of width `min(net_latency, service + storage_latency)`,
//! every cross-shard event produced inside window `W` lands at or after the
//! barrier that ends `W` — before any shard enters `W+1`.
//!
//! # Why results are byte-identical to the sequential engine
//!
//! Every event carries priority `(node << 40) | seq` drawn from a monotonic
//! per-node counter, and queues order by `(time, prio, slot)`. Priorities
//! are globally unique, so the slot tie-break never fires and the relative
//! order of any two events is a pure function of their keys — independent
//! of which queue holds them or how events were interleaved at insertion.
//! Per-node RNG streams (stage sampling), per-node resource engines, and
//! per-node counters make each node's handler sequence invariant under the
//! shard count; the shared storage engine and the steal RNG are driven only
//! from barriers, in a schedule that the sequential engine replays exactly
//! (it flushes storage requests whenever virtual time advances past them —
//! the same sorted batches, concatenated). `tests/shard_equivalence.rs`
//! fuzzes the claim over shard counts, thread counts, and both queue
//! implementations.

use rocket_sanitize::Mutex;
use std::collections::VecDeque;

use rocket_cache::{CacheStats, Directory, DirectoryMsg, DirectoryStats, Lookup, Resolution};
use rocket_stats::SeedSequence;
use rocket_steal::{Block, Pair, StealPool, TaskDeque};
use rocket_trace::{PerfKind, PerfRecord, ThroughputSeries};

use crate::cluster::{
    sample_ns, transfer_ns, DevFill, Ev, GpuRates, HostFill, Msg, SimConfig, SimGpu, SimJob,
    SimNode, SimResult, StageDists, Tok,
};
use crate::engine::{ns_to_secs, secs_to_ns, EventQueue, SimTime};
use crate::server::{Engine, Pool};

/// Virtual nanoseconds without a pair completion before declaring deadlock.
const STALL_NS: u64 = 300_000_000_000;

/// A node must have been hungry this long (virtual) before a boundary
/// steal match will hand it a sub-leaf remnant. Remnant steals drag the
/// victim's items to the thief for a handful of pairs, so they only pay
/// off against genuine stragglers (a slow node grinding a tail while fast
/// nodes idle); un-started whole-leaf backlog is always fair game. The
/// gate is virtual-time based, so it is invariant under shard and thread
/// counts. Tuned together with `RICH_BACKLOG_DIVISOR` on both bench
/// anchors: on the 16-node anchor, 30 ms + the scaled rich threshold give
/// makespan 0.849 s with 655 loads and 70 steals, vs 0.863 s / 651 loads
/// for the greedy policy (steal anything, immediately) it replaced; the
/// 1024-node anchor stays within 0.6% of greedy.
const REMNANT_STEAL_DELAY_NS: u64 = 30_000_000;

/// A victim counts as "rich" — stealable without any hunger delay — only
/// while its un-started backlog is at least a tenth of the average initial
/// per-node backlog (quantized to whole leaves, floor one leaf). Below
/// that, taking its front block mostly reshuffles cache locality for no
/// balance win. The threshold must scale with the workload: on the
/// 16-node anchor (~32 leaves/node) it lands at 3 leaves, while on the
/// 1024-node anchor (~8 leaves/node) it relaxes to 1 — a fixed 3-leaf bar
/// there starves thieves into the remnant path and costs 8% makespan.
const RICH_BACKLOG_DIVISOR: u64 = 10;

/// Low bits of an event priority hold the per-node sequence number; the
/// node id sits above them.
const PRIO_SEQ_BITS: u32 = 40;

/// Read-only run context shared by every shard (and the barrier driver).
pub(crate) struct Ctx<'a> {
    cfg: &'a SimConfig,
    stages: StageDists,
    total_pairs: u64,
    /// Lock-step window width in ns: the conservative lookahead.
    window_ns: u64,
    net_lat_ns: u64,
    storage_lat_ns: u64,
    /// Storage service time of one file load (constant per run).
    load_service_ns: u64,
    /// First global GPU id of each node (Fig 14 completion sources).
    gpu_gid_base: Vec<usize>,
    /// Owning shard of each global node.
    node_shard: Vec<usize>,
}

/// One shard: a contiguous slice of nodes plus its own event queue.
pub(crate) struct ShardState<Q> {
    id: usize,
    /// Global index of `nodes[0]`.
    base: usize,
    nodes: Vec<SimNode>,
    queue: Q,
    /// Same-node wake tokens, drained after every event (global node ids).
    wakes: VecDeque<(usize, Tok)>,
    /// Cross-shard messages produced this window: `(at, prio, to, from, msg)`.
    outbox: Vec<(SimTime, u64, usize, usize, Msg)>,
    /// Deferred storage requests: `(at, prio, node, item)`.
    load_reqs: Vec<(SimTime, u64, usize, u64)>,
    ev_counts: [u64; 11],
    completions: Option<ThroughputSeries>,
    /// End (exclusive) of the window this shard may currently execute.
    window_end: SimTime,
    /// Nodes of this shard with `hungry` set (steal candidates).
    hungry_count: usize,
    pairs_done: u64,
    pairs_started: u64,
    /// Per-node event-priority counters (`nodes[i]` ↔ `seqs[i]`), kept as
    /// a dense side array: `next_prio` runs on every schedule, and two hot
    /// cache lines beat a scattered read into each node's struct.
    seqs: Vec<u64>,
    /// Deque blocks plus open row cursors across this shard's nodes. Zero
    /// means nothing here is stealable, letting `steal_match` skip its
    /// whole-cluster snapshot — which is most boundaries late in a run,
    /// when all remaining work is in flight and hungry nodes can only wait.
    work_blocks: usize,
    /// Perf-sample buffer (`Some` iff `cfg.perf` is enabled). Records stay
    /// shard-local during the run and fold into `cfg.perf` in `finish`,
    /// after the result is final — so instrumentation can never perturb
    /// `SimResult`, and the fold order (shard order, then driver) is
    /// byte-stable across thread counts.
    perf: Option<Vec<PerfRecord>>,
}

/// Barrier-side state: everything shards must never touch concurrently.
struct Driver {
    storage: Engine,
    steal_rng: rocket_stats::Xoshiro256,
    steals: u64,
    windows: u64,
    /// Scratch: merged storage requests, sorted by `(at, prio)`.
    loads: Vec<(SimTime, u64, usize, u64)>,
    /// Scratch: merged cross-shard messages, sorted by `(at, prio)`.
    msgs: Vec<(SimTime, u64, usize, usize, Msg)>,
    /// Scratch: deque depth per global node for steal matching.
    lens: Vec<usize>,
    /// Scratch: pending pairs per global node for steal matching.
    pair_lens: Vec<u64>,
    /// Perf samples produced at barriers (storage reads, boundary steals).
    perf: Option<Vec<PerfRecord>>,
}

impl Driver {
    /// Appends a barrier-side perf record when instrumentation is on.
    #[inline]
    fn perf(&mut self, t_ns: SimTime, kind: PerfKind, node: usize, value: u64) {
        if let Some(buf) = &mut self.perf {
            buf.push(PerfRecord {
                t_ns,
                kind,
                node: node as u32,
                value,
            });
        }
    }
}

/// Runs one simulation to completion on `K = cfg.effective_shards()`
/// shards (sequentially for `K = 1`, on the steal pool otherwise).
pub(crate) fn run<Q>(cfg: &SimConfig) -> SimResult
where
    Q: EventQueue<Ev> + Default + Send,
{
    let k = cfg.effective_shards();
    let ctx = build_ctx(cfg, k);
    let mut shards = build_shards::<Q>(cfg, &ctx, k);
    let mut drv = Driver {
        storage: Engine::new(),
        steal_rng: SeedSequence::new(cfg.seed).rng("steal"),
        steals: 0,
        windows: 0,
        loads: Vec::new(),
        msgs: Vec::new(),
        lens: Vec::new(),
        pair_lens: Vec::new(),
        perf: cfg.perf.is_enabled().then(Vec::new),
    };
    if ctx.total_pairs > 0 {
        if k == 1 {
            run_sequential(&ctx, &mut shards[0], &mut drv);
        } else {
            shards = run_windowed(&ctx, shards, &mut drv);
        }
    }
    finish(&ctx, shards, drv)
}

/// Contiguous node ranges: the first `p % k` shards get one extra node.
fn shard_ranges(p: usize, k: usize) -> Vec<std::ops::Range<usize>> {
    let (div, rem) = (p / k, p % k);
    let mut out = Vec::with_capacity(k);
    let mut start = 0;
    for s in 0..k {
        let len = div + usize::from(s < rem);
        out.push(start..start + len);
        start += len;
    }
    out
}

fn build_ctx(cfg: &SimConfig, k: usize) -> Ctx<'_> {
    assert!(!cfg.nodes.is_empty(), "cluster needs nodes");
    let n = cfg.workload.items;
    let p = cfg.nodes.len();
    let mut gpu_gid_base = Vec::with_capacity(p);
    let mut base = 0usize;
    for nc in &cfg.nodes {
        gpu_gid_base.push(base);
        base += nc.gpus.len();
    }
    let mut node_shard = vec![0usize; p];
    for (s, range) in shard_ranges(p, k).into_iter().enumerate() {
        for g in range {
            node_shard[g] = s;
        }
    }
    let net_lat_ns = secs_to_ns(cfg.net_latency);
    let storage_lat_ns = secs_to_ns(cfg.storage_latency);
    let load_service_ns = secs_to_ns(cfg.workload.file_bytes as f64 / cfg.storage_bandwidth);
    // The safe lookahead: both cross-shard channels (network messages and
    // barrier-routed storage completions) must outrun one full window.
    let window_ns = net_lat_ns
        .max(1)
        .min((load_service_ns + storage_lat_ns).max(1));
    Ctx {
        cfg,
        stages: StageDists {
            parse: cfg.workload.parse.clone(),
            preprocess: cfg.workload.preprocess.clone(),
            compare: cfg.workload.compare.clone(),
            postprocess: cfg.workload.postprocess.clone(),
        },
        total_pairs: n * n.saturating_sub(1) / 2,
        window_ns,
        net_lat_ns,
        storage_lat_ns,
        load_service_ns,
        gpu_gid_base,
        node_shard,
    }
}

fn build_shards<Q>(cfg: &SimConfig, ctx: &Ctx, k: usize) -> Vec<ShardState<Q>>
where
    Q: EventQueue<Ev> + Default,
{
    let n = cfg.workload.items;
    let p = cfg.nodes.len();
    let seeds = SeedSequence::new(cfg.seed);
    let mut shards = Vec::with_capacity(k);
    for (sid, range) in shard_ranges(p, k).into_iter().enumerate() {
        let base = range.start;
        let nodes: Vec<SimNode> = range
            .map(|rank| {
                let nc = &cfg.nodes[rank];
                // Slots beyond the item count never get used: clamp to keep
                // huge Fig 9 sweeps cheap without changing behaviour.
                let dev_slots = nc.device_slots.min(n as usize).max(2);
                let host_slots = nc.host_slots.min(n as usize).max(2);
                SimNode {
                    deque: TaskDeque::new(),
                    cursor: None,
                    gpus: nc
                        .gpus
                        .iter()
                        .map(|profile| SimGpu {
                            rates: GpuRates::from(profile),
                            cache: rocket_cache::SlotCache::with_item_space(dev_slots, n as usize),
                            compute: Engine::new(),
                            h2d: Engine::new(),
                            d2h: Engine::new(),
                            in_flight: 0,
                            pre_busy_ns: 0,
                            cmp_busy_ns: 0,
                            fills: vec![DevFill::default(); n as usize],
                        })
                        .collect(),
                    host_cache: rocket_cache::SlotCache::with_item_space(host_slots, n as usize),
                    cpu: Pool::new(cfg.cpu_threads),
                    nic: Engine::new(),
                    directory: Directory::new(rank, p, cfg.hops),
                    jobs: Vec::new(),
                    free_jobs: Vec::new(),
                    jobs_in_flight: 0,
                    host_fill: vec![None; n as usize],
                    pairs_done: 0,
                    loads: 0,
                    remote_fetches: 0,
                    rng: seeds.rng_indexed("node", rank as u64),
                    hungry: false,
                    hungry_since: 0,
                    io_bytes: 0,
                    net_bytes: 0,
                    makespan_ns: 0,
                }
            })
            .collect();
        let seqs = vec![0; nodes.len()];
        let mut shard = ShardState {
            id: sid,
            base,
            nodes,
            queue: Q::default(),
            wakes: VecDeque::new(),
            outbox: Vec::new(),
            load_reqs: Vec::new(),
            ev_counts: [0; 11],
            completions: cfg.record_completions.then(ThroughputSeries::new),
            window_end: 0,
            hungry_count: 0,
            pairs_done: 0,
            pairs_started: 0,
            seqs,
            work_blocks: 0,
            perf: cfg.perf.is_enabled().then(Vec::new),
        };
        if ctx.total_pairs > 0 {
            // The master node spawns the root task (§4.2); every node
            // starts with a keyed Pull at t = 0.
            if base == 0 {
                shard.nodes[0].deque.push(Block::root(n));
                shard.work_blocks += 1;
            }
            for g in shard.base..shard.base + shard.nodes.len() {
                let prio = shard.next_prio(g);
                shard.queue.schedule_keyed(0, prio, Ev::Pull { node: g });
            }
        }
        shards.push(shard);
    }
    shards
}

// ---- drivers --------------------------------------------------------------

/// `K = 1`: a plain sequential event loop that still replays the exact
/// barrier schedule of the windowed driver (same storage submission order,
/// same boundary steals, same window count) so results stay byte-identical.
fn run_sequential<Q: EventQueue<Ev>>(ctx: &Ctx, shard: &mut ShardState<Q>, drv: &mut Driver) {
    let win = ctx.window_ns;
    let mut last = (0u64, 0u64); // (pairs_done, virtual ns)
    while shard.pairs_done < ctx.total_pairs {
        if shard.pairs_done != last.0 {
            last = (shard.pairs_done, shard.queue.now());
        } else if shard.queue.now() > last.1 + STALL_NS {
            stall_panic(
                ctx,
                &mut [&mut *shard],
                drv,
                "no progress for 5min of virtual time",
            );
        }
        if shard.hungry_count == 0 && shard.load_reqs.is_empty() {
            // Fast path: nothing is waiting on a barrier, so pop without
            // peeking; only track which windows we enter so the count
            // matches the windowed driver.
            let Some((t, ev)) = shard.queue.pop() else {
                stall_panic(ctx, &mut [&mut *shard], drv, "event queue drained");
            };
            if t >= shard.window_end {
                drv.windows += 1;
                shard.window_end = (t / win + 1) * win;
            }
            shard.handle(ctx, ev);
            shard.drain_wakes(ctx);
            #[cfg(debug_assertions)]
            shard.validate();
            continue;
        }
        // Bounded mode: deferred storage requests flush as soon as virtual
        // time moves past them — the same per-timestamp batches, in the
        // same `(at, prio)` order, that window barriers would concatenate.
        let t = shard.queue.peek_time();
        if let Some(&(req_t, ..)) = shard.load_reqs.first() {
            if t.is_none_or(|t| t > req_t) {
                flush_loads(ctx, &mut [&mut *shard], drv);
                continue; // an IoDone may now be the earliest event
            }
        }
        let Some(t) = t else {
            stall_panic(ctx, &mut [&mut *shard], drv, "event queue drained");
        };
        if t >= shard.window_end {
            // Window boundary: run the barrier's steal match, then enter
            // the next non-empty window.
            let boundary = shard.window_end;
            steal_match(ctx, &mut [&mut *shard], drv, boundary);
            drv.windows += 1;
            record_gauges(&mut [&mut *shard], boundary);
            let t2 = shard.queue.peek_time().unwrap_or(t);
            shard.window_end = (t2 / win + 1) * win;
            continue;
        }
        let (_, ev) = shard.queue.pop().expect("peeked event");
        shard.handle(ctx, ev);
        shard.drain_wakes(ctx);
        #[cfg(debug_assertions)]
        shard.validate();
    }
}

/// `K > 1`: lock-step windows on [`StealPool::run_rounds`]. Each round runs
/// every shard's current window in parallel; `between` holds all shard
/// locks and plays the barrier (deliver, flush, steal, advance).
fn run_windowed<Q>(ctx: &Ctx, shards: Vec<ShardState<Q>>, drv: &mut Driver) -> Vec<ShardState<Q>>
where
    Q: EventQueue<Ev> + Send,
{
    let k = shards.len();
    let threads = if ctx.cfg.shard_threads == 0 {
        std::thread::available_parallelism().map_or(1, usize::from)
    } else {
        ctx.cfg.shard_threads
    }
    .min(k)
    .max(1);
    let cells: Vec<Mutex<ShardState<Q>>> = shards
        .into_iter()
        .map(|s| Mutex::named("cells", s))
        .collect();
    // First window: fast-forward to the earliest event (t = 0 here, since
    // every node schedules a Pull at zero).
    {
        let mut min_t: Option<SimTime> = None;
        for c in &cells {
            if let Some(t) = c.lock().queue.peek_time() {
                min_t = Some(min_t.map_or(t, |m| m.min(t)));
            }
        }
        let w_end = (min_t.unwrap_or(0) / ctx.window_ns + 1) * ctx.window_ns;
        for c in &cells {
            c.lock().window_end = w_end;
        }
    }
    let mut last = (0u64, 0u64); // (pairs_done, virtual ns)
    StealPool::run_rounds(
        k,
        threads,
        |i| {
            // lint:allow(blocking) — the cell lock is per-shard and taken
            // only by the worker that owns the shard this window, so the
            // modeled IO inside run_window blocks nobody else.
            // lint:allow(lock-order) — the static edges out of `cells`
            // here are name-merge artifacts (`handle` resolves to every
            // in-scope fn of that name); the runtime witness records no
            // nesting under a cell lock, and RL-X001 confirms the gap.
            cells[i].lock().run_window(ctx);
        },
        || {
            let mut guards: Vec<_> = cells.iter().map(|c| c.lock()).collect();
            let mut sh: Vec<&mut ShardState<Q>> = guards.iter_mut().map(|g| &mut **g).collect();
            let boundary = sh[0].window_end;
            barrier_step(ctx, &mut sh, drv, boundary);
            let done: u64 = sh.iter().map(|s| s.pairs_done).sum();
            if done >= ctx.total_pairs {
                return false;
            }
            let min_t = sh.iter_mut().filter_map(|s| s.queue.peek_time()).min();
            let Some(t) = min_t else {
                stall_panic(ctx, &mut sh, drv, "event queue drained");
            };
            if done != last.0 {
                last = (done, t);
            } else if t > last.1 + STALL_NS {
                stall_panic(ctx, &mut sh, drv, "no progress for 5min of virtual time");
            }
            let w_end = (t / ctx.window_ns + 1) * ctx.window_ns;
            for s in sh {
                s.window_end = w_end;
            }
            true
        },
    );
    cells.into_iter().map(Mutex::into_inner).collect()
}

/// The window barrier, identical for the sequential replay and the
/// parallel driver: merge cross-shard messages, submit deferred storage
/// requests in global order, match steals, count the window.
fn barrier_step<Q: EventQueue<Ev>>(
    ctx: &Ctx,
    shards: &mut [&mut ShardState<Q>],
    drv: &mut Driver,
    boundary: SimTime,
) {
    deliver_messages(ctx, shards, drv);
    flush_loads(ctx, shards, drv);
    steal_match(ctx, shards, drv, boundary);
    drv.windows += 1;
    record_gauges(shards, boundary);
}

/// Per-shard engine gauges, sampled at executed barriers: queue depth and
/// cumulative events handled (diff consecutive `Window` records for a
/// per-window event cost). Barriers that the sequential fast path skips
/// (no hungry nodes, no pending loads) record nothing, so gauge *timing*
/// is a property of the engine configuration — unlike node-level records,
/// which are identical for every shard count.
fn record_gauges<Q: EventQueue<Ev>>(shards: &mut [&mut ShardState<Q>], boundary: SimTime) {
    for s in shards.iter_mut() {
        if s.perf.is_some() {
            let sid = s.id;
            let depth = s.queue.len() as u64;
            let events: u64 = s.ev_counts.iter().sum();
            s.perf(boundary, PerfKind::QueueDepth, sid, depth);
            s.perf(boundary, PerfKind::Window, sid, events);
        }
    }
}

fn deliver_messages<Q: EventQueue<Ev>>(
    ctx: &Ctx,
    shards: &mut [&mut ShardState<Q>],
    drv: &mut Driver,
) {
    let mut msgs = std::mem::take(&mut drv.msgs);
    for s in shards.iter_mut() {
        msgs.append(&mut s.outbox);
    }
    if !msgs.is_empty() {
        // Priorities are globally unique, so the sort fully determines
        // delivery (and therefore payload-slot assignment) order.
        msgs.sort_unstable_by_key(|&(at, p, ..)| (at, p));
        for (at, p, to, from, msg) in msgs.drain(..) {
            shards[ctx.node_shard[to]]
                .queue
                .schedule_keyed(at, p, Ev::Net { to, from, msg });
        }
    }
    drv.msgs = msgs;
}

fn flush_loads<Q: EventQueue<Ev>>(ctx: &Ctx, shards: &mut [&mut ShardState<Q>], drv: &mut Driver) {
    let mut loads = std::mem::take(&mut drv.loads);
    for s in shards.iter_mut() {
        loads.append(&mut s.load_reqs);
    }
    if !loads.is_empty() {
        loads.sort_unstable_by_key(|&(at, p, ..)| (at, p));
        for &(at, p, node, item) in &loads {
            let done = drv.storage.submit(at, ctx.load_service_ns) + ctx.storage_lat_ns;
            // Read latency as the node observes it: queueing at the shared
            // storage engine plus service plus delivery latency.
            drv.perf(done, PerfKind::Read, node, done - at);
            shards[ctx.node_shard[node]]
                .queue
                .schedule_keyed(done, p, Ev::IoDone { node, item });
        }
        loads.clear();
    }
    drv.loads = loads;
}

/// Matches hungry nodes (out of local work) with victims over a snapshot
/// of every deque's depth, in ascending global node order. The thief's
/// fresh block is not re-offered within the same boundary; a robbed
/// victim's depth drops immediately. The RNG advances only on a match, so
/// boundaries without steal pressure cost no randomness.
fn steal_match<Q: EventQueue<Ev>>(
    ctx: &Ctx,
    shards: &mut [&mut ShardState<Q>],
    drv: &mut Driver,
    boundary: SimTime,
) {
    if shards.iter().map(|s| s.hungry_count).sum::<usize>() == 0 {
        return;
    }
    // No block anywhere means no possible victim: the full scan below
    // would normalize nothing, see every deque empty, and match nobody.
    // Skipping it is therefore result-identical (and state-based, so
    // shard-count-invariant) — and it is the common case late in a run,
    // when every remaining pair is in flight and thieves just wait.
    if shards.iter().map(|s| s.work_blocks).sum::<usize>() == 0 {
        return;
    }
    // Fold every open row cursor back into its deque before snapshotting,
    // so remnants are visible (and stealable) exactly as if each pair had
    // gone through the deque. Hunger is shard-count-invariant, so every K
    // normalizes at the same boundaries and deque states stay identical.
    for s in shards.iter_mut() {
        s.normalize_cursors();
    }
    drv.lens.clear();
    drv.pair_lens.clear();
    for s in shards.iter() {
        for n in &s.nodes {
            drv.lens.push(n.deque.len());
            drv.pair_lens.push(n.deque.pending_pairs());
        }
    }
    debug_assert_eq!(
        drv.lens.iter().sum::<usize>(),
        shards.iter().map(|s| s.work_blocks).sum::<usize>(),
        "work_blocks counter drifted from actual deque contents"
    );
    let leaf = ctx.cfg.leaf_pairs;
    let rich_pairs =
        leaf * (ctx.total_pairs / (drv.lens.len() as u64 * RICH_BACKLOG_DIVISOR * leaf)).max(1);
    for g in 0..drv.lens.len() {
        let sg = ctx.node_shard[g];
        let node = &shards[sg].nodes[g - shards[sg].base];
        if !node.hungry {
            continue;
        }
        // Victim tiers. Rich victims ([`RICH_STEAL_MIN_LEAVES`] whole
        // leaves of un-started backlog) are always fair game — moving
        // whole quadrants is what stealing is for. Sub-leaf remnants only
        // feed thieves starved for REMNANT_STEAL_DELAY_NS: remnant steals
        // drag the victim's items along for a handful of pairs, so they
        // must stay a last resort against genuine stragglers, not fire at
        // every boundary. See `RICH_BACKLOG_DIVISOR` for the threshold.
        let rich = |v: usize, l: usize| v != g && l > 0 && drv.pair_lens[v] >= rich_pairs;
        let any = |v: usize, l: usize| v != g && l > 0;
        let mut count = drv
            .lens
            .iter()
            .enumerate()
            .filter(|&(v, &l)| rich(v, l))
            .count();
        let mut eligible: &dyn Fn(usize, usize) -> bool = &rich;
        if count == 0 {
            if boundary < node.hungry_since + REMNANT_STEAL_DELAY_NS {
                continue;
            }
            count = drv
                .lens
                .iter()
                .enumerate()
                .filter(|&(v, &l)| any(v, l))
                .count();
            if count == 0 {
                continue;
            }
            eligible = &any;
        }
        let pick = drv.steal_rng.below(count);
        let victim = drv
            .lens
            .iter()
            .enumerate()
            .filter(|&(v, &l)| eligible(v, l))
            .nth(pick)
            .expect("pick < count")
            .0;
        let sv = ctx.node_shard[victim];
        let block = shards[sv].nodes[victim - shards[sv].base]
            .deque
            .steal()
            .expect("victim deque non-empty");
        shards[sv].work_blocks -= 1;
        drv.lens[victim] -= 1;
        drv.pair_lens[victim] -= block.count();
        drv.steals += 1;
        // Thief's node id, pairs moved.
        drv.perf(boundary, PerfKind::Steal, g, block.count());
        let s = &mut shards[sg];
        s.nodes[g - s.base].deque.push(block);
        s.work_blocks += 1;
        s.set_hungry(g, false);
        let p = s.next_prio(g);
        s.queue.schedule_keyed(boundary, p, Ev::Pull { node: g });
    }
}

fn stall_panic<Q: EventQueue<Ev>>(
    ctx: &Ctx,
    shards: &mut [&mut ShardState<Q>],
    drv: &Driver,
    why: &str,
) -> ! {
    let mut diag = String::new();
    let mut ev_counts = [0u64; 11];
    let mut queue_len = 0usize;
    let (mut done, mut started) = (0u64, 0u64);
    for s in shards.iter() {
        for (i, c) in s.ev_counts.iter().enumerate() {
            ev_counts[i] += c;
        }
        queue_len += s.queue.len();
        done += s.pairs_done;
        started += s.pairs_started;
        for (li, node) in s.nodes.iter().enumerate() {
            let i = s.base + li;
            let dev_fills: usize = node
                .gpus
                .iter()
                .map(|g| g.fills.iter().filter(|f| f.dev_slot.is_some()).count())
                .sum();
            let h2d_leases: usize = node
                .gpus
                .iter()
                .map(|g| g.fills.iter().filter(|f| f.h2d_lease.is_some()).count())
                .sum();
            diag.push_str(&format!(
                "\n node {i}: jobs={} inflight={} deque={} ({} pairs) hungry={} hostfills={} \
                 devfills={} h2d_leases={} host(cap_waiters={} evictable={} occ={}/{})",
                node.live_jobs(),
                node.jobs_in_flight,
                node.deque.len(),
                node.deque.pending_pairs(),
                node.hungry,
                node.host_fill.iter().flatten().count(),
                dev_fills,
                h2d_leases,
                node.host_cache.parked_capacity_waiters(),
                node.host_cache.evictable(),
                node.host_cache.occupied(),
                node.host_cache.capacity(),
            ));
            for (g, gpu) in node.gpus.iter().enumerate() {
                diag.push_str(&format!(
                    "\n   gpu {g}: inflight={} cap_waiters={} evictable={} occ={}/{} resident={:?}",
                    gpu.in_flight,
                    gpu.cache.parked_capacity_waiters(),
                    gpu.cache.evictable(),
                    gpu.cache.occupied(),
                    gpu.cache.capacity(),
                    gpu.cache.resident_items(),
                ));
            }
            if i == 0 {
                for (id, j) in node.jobs.iter().enumerate() {
                    let Some(j) = j else { continue };
                    diag.push_str(&format!(
                        "\n   job {id}: pair=({},{}) left={:?} right={:?} stalled={:?} comparing={}",
                        j.pair.left, j.pair.right, j.left, j.right, j.stalled, j.comparing
                    ));
                }
            }
        }
    }
    panic!(
        "simulation stalled ({why}): {done}/{} pairs done (started {started}){diag}\n              event counts [pull,io,parse,staging,pre,writeback,fillcopy,cmp,res,post,net]: {ev_counts:?}\n              windows {} queue len {queue_len}",
        ctx.total_pairs, drv.windows,
    );
}

/// Folds per-node state in global node order into a [`SimResult`] — the
/// fold never depends on the shard count, only on the node order.
fn finish<Q: EventQueue<Ev>>(ctx: &Ctx, shards: Vec<ShardState<Q>>, drv: Driver) -> SimResult {
    let mut r = SimResult {
        makespan: 0.0,
        items: ctx.cfg.workload.items,
        pairs: 0,
        loads: 0,
        remote_fetches: 0,
        io_bytes: 0,
        net_bytes: 0,
        steals: drv.steals,
        windows: drv.windows,
        busy_preprocess: 0.0,
        busy_compare: 0.0,
        busy_h2d: 0.0,
        busy_d2h: 0.0,
        busy_cpu: 0.0,
        busy_io: ns_to_secs(drv.storage.busy_ns()),
        device_cache: CacheStats::default(),
        host_cache: CacheStats::default(),
        directory: DirectoryStats::default(),
        pairs_per_node: Vec::with_capacity(ctx.node_shard.len()),
        completions: ctx.cfg.record_completions.then(ThroughputSeries::new),
    };
    let mut makespan_ns: SimTime = 0;
    let mut perf_records = ctx.cfg.perf.is_enabled().then(Vec::new);
    for mut shard in shards {
        // Shards are ordered by `base`, so this walks global node order —
        // and folds perf buffers in the same order, making the record
        // sequence byte-stable across thread counts at a fixed shard count.
        if let (Some(acc), Some(buf)) = (&mut perf_records, &mut shard.perf) {
            acc.append(buf);
        }
        if let (Some(acc), Some(s)) = (&mut r.completions, &shard.completions) {
            acc.merge(s);
        }
        r.pairs += shard.pairs_done;
        for node in &shard.nodes {
            makespan_ns = makespan_ns.max(node.makespan_ns);
            r.loads += node.loads;
            r.remote_fetches += node.remote_fetches;
            r.io_bytes += node.io_bytes;
            r.net_bytes += node.net_bytes;
            r.pairs_per_node.push(node.pairs_done);
            r.busy_cpu += ns_to_secs(node.cpu.busy_ns());
            r.host_cache.merge(&node.host_cache.stats());
            r.directory.merge(node.directory.stats());
            for gpu in &node.gpus {
                r.busy_preprocess += ns_to_secs(gpu.pre_busy_ns);
                r.busy_compare += ns_to_secs(gpu.cmp_busy_ns);
                r.busy_h2d += ns_to_secs(gpu.h2d.busy_ns());
                r.busy_d2h += ns_to_secs(gpu.d2h.busy_ns());
                r.device_cache.merge(&gpu.cache.stats());
            }
        }
    }
    r.makespan = ns_to_secs(makespan_ns);
    if let Some(mut records) = perf_records {
        if let Some(barrier) = drv.perf {
            records.extend(barrier);
        }
        ctx.cfg.perf.extend(records);
    }
    r
}

// ---- per-shard event handlers --------------------------------------------
//
// These are the sequential simulator's handlers with three systematic
// changes: nodes are addressed by *global* id (`g - self.base` indexes the
// shard's slice), every schedule draws a keyed priority from the target
// node's monotonic sequence, and the three cross-shard channels (messages,
// storage, steals) defer to the barrier instead of acting inline.

impl<Q: EventQueue<Ev>> ShardState<Q> {
    /// Executes every event strictly before `window_end`.
    fn run_window(&mut self, ctx: &Ctx) {
        while let Some(t) = self.queue.peek_time() {
            if t >= self.window_end {
                break;
            }
            let (_, ev) = self.queue.pop().expect("peeked event");
            self.handle(ctx, ev);
            self.drain_wakes(ctx);
            #[cfg(debug_assertions)]
            self.validate();
        }
    }

    /// Draws the next event priority for global node `g`: unique across
    /// the whole run, ordered by `(node, draw index)` within a timestamp.
    #[inline]
    fn next_prio(&mut self, g: usize) -> u64 {
        let slot = &mut self.seqs[g - self.base];
        let seq = *slot;
        *slot += 1;
        debug_assert!(seq < 1 << PRIO_SEQ_BITS, "per-node event seq overflow");
        ((g as u64) << PRIO_SEQ_BITS) | seq
    }

    /// Pushes every open row cursor back onto its owner's deque (at the
    /// tail, where the one-block-per-pair scheme would have left it).
    /// Called before steal snapshots; the owner simply pops it back off
    /// on its next pull, so consumption order is unaffected.
    fn normalize_cursors(&mut self) {
        for node in &mut self.nodes {
            if let Some(row) = node.cursor.take() {
                node.deque.push(row);
            }
        }
    }

    /// Appends a perf record when instrumentation is on — one branch, no
    /// allocation, when it is off.
    #[inline]
    fn perf(&mut self, t_ns: SimTime, kind: PerfKind, node: usize, value: u64) {
        if let Some(buf) = &mut self.perf {
            buf.push(PerfRecord {
                t_ns,
                kind,
                node: node as u32,
                value,
            });
        }
    }

    #[inline]
    fn set_hungry(&mut self, g: usize, flag: bool) {
        let now = self.queue.now();
        let node = &mut self.nodes[g - self.base];
        if node.hungry != flag {
            node.hungry = flag;
            if flag {
                node.hungry_since = now;
                self.hungry_count += 1;
            } else {
                self.hungry_count -= 1;
            }
        }
    }

    fn handle(&mut self, ctx: &Ctx, ev: Ev) {
        let idx = match &ev {
            Ev::Pull { .. } => 0,
            Ev::IoDone { .. } => 1,
            Ev::ParseDone { .. } => 2,
            Ev::StagingDone { .. } => 3,
            Ev::PreprocessDone { .. } => 4,
            Ev::WritebackDone { .. } => 5,
            Ev::FillCopyDone { .. } => 6,
            Ev::CompareDone { .. } => 7,
            Ev::ResultDone { .. } => 8,
            Ev::PostDone { .. } => 9,
            Ev::Net { .. } => 10,
        };
        self.ev_counts[idx] += 1;
        match ev {
            Ev::Pull { node } => self.pull_work(ctx, node),
            Ev::IoDone { node, item } => self.on_io_done(ctx, node, item),
            Ev::ParseDone { node, item } => self.on_parse_done(ctx, node, item),
            Ev::StagingDone { node, gpu, item } => self.schedule_preprocess(ctx, node, gpu, item),
            Ev::PreprocessDone { node, gpu, item } => self.on_preprocess_done(ctx, node, gpu, item),
            Ev::WritebackDone { node, item } => self.publish_host(ctx, node, item),
            Ev::FillCopyDone { node, gpu, item } => self.on_fill_copy_done(ctx, node, gpu, item),
            Ev::CompareDone { node, job } => self.on_compare_done(ctx, node, job),
            Ev::ResultDone { node, job } => self.on_result_done(ctx, node, job),
            Ev::PostDone { node, job } => self.on_post_done(ctx, node, job),
            Ev::Net { to, from, msg } => self.on_net(ctx, to, from, msg),
        }
    }

    // ---- work acquisition ------------------------------------------------

    /// Per-GPU in-flight cap: each job pins up to two device slots, so
    /// keeping jobs ≤ slots/2 per GPU guarantees every in-flight job's
    /// leases fit simultaneously — the counting argument that makes the
    /// pipeline deadlock- and livelock-free even for tiny caches.
    fn gpu_cap(&self, l: usize, gpu: usize) -> usize {
        (self.nodes[l].gpus[gpu].cache.capacity() / 2).max(1)
    }

    #[inline]
    fn has_gpu_slack(&self, l: usize) -> bool {
        (0..self.nodes[l].gpus.len()).any(|g| self.nodes[l].gpus[g].in_flight < self.gpu_cap(l, g))
    }

    fn pull_work(&mut self, ctx: &Ctx, node: usize) {
        let l = node - self.base;
        loop {
            if self.nodes[l].jobs_in_flight >= ctx.cfg.job_limit || !self.has_gpu_slack(l) {
                // Capacity-limited, not starved: job completions re-pull.
                self.set_hungry(node, false);
                return;
            }
            if let Some(pair) = self.next_pair(ctx, node) {
                self.start_job(ctx, node, pair);
            } else {
                // Out of reachable work: flag for the next window-boundary
                // steal match.
                self.set_hungry(node, true);
                return;
            }
        }
    }

    #[inline]
    fn next_pair(&mut self, ctx: &Ctx, node: usize) -> Option<Pair> {
        let l = node - self.base;
        // Stream from the open row first: the cursor is exactly the
        // rest-of-row block the one-block-per-pair scheme would have
        // pushed to (and immediately popped back off) the deque tail, so
        // consumption order is unchanged while each pair costs an
        // increment instead of deque traffic. `normalize_cursors` pushes
        // the remnant back before any steal snapshot reads the deques.
        if let Some(row) = self.nodes[l].cursor.as_mut() {
            let pair = Pair {
                left: row.row_lo,
                right: row.col_lo,
            };
            row.col_lo += 1;
            if row.col_lo == row.col_hi {
                self.nodes[l].cursor = None;
                self.work_blocks -= 1;
            }
            return Some(pair);
        }
        loop {
            // Depth-first descent into the quadrant tree. No inline
            // stealing: hungry nodes wait for the deterministic boundary
            // match (`steal_match`).
            let block = self.nodes[l].deque.pop()?;
            self.work_blocks -= 1;
            if block.count() <= ctx.cfg.leaf_pairs {
                // Take the first pair (row-major, matching `Block::pairs`),
                // push the rows below back as a block, and keep the rest of
                // the current row as the owner's cursor — row-major order
                // for the owner while the un-started tail of the leaf
                // remains stealable at window boundaries (a straggler's
                // backlog can still migrate instead of being locked in).
                let pair = block.pairs().next().expect("queued blocks are non-empty");
                let below = Block {
                    row_lo: pair.left + 1,
                    ..block
                };
                if below.count() > 0 {
                    self.nodes[l].deque.push(below);
                    self.work_blocks += 1;
                }
                let row = Block {
                    row_lo: pair.left,
                    row_hi: pair.left + 1,
                    col_lo: pair.right + 1,
                    col_hi: block.col_hi,
                };
                if row.count() > 0 {
                    self.nodes[l].cursor = Some(row);
                    self.work_blocks += 1;
                }
                return Some(pair);
            }
            for child in block.split() {
                self.nodes[l].deque.push(child);
                self.work_blocks += 1;
            }
        }
    }

    fn start_job(&mut self, ctx: &Ctx, node: usize, pair: Pair) {
        self.pairs_started += 1;
        let l = node - self.base;
        // Bind to the least-loaded GPU of the node (per-GPU workers) that
        // still has lease headroom.
        let gpu = (0..self.nodes[l].gpus.len())
            .filter(|&g| self.nodes[l].gpus[g].in_flight < self.gpu_cap(l, g))
            .min_by_key(|&g| self.nodes[l].gpus[g].in_flight)
            .expect("caller checked gpu slack");
        self.nodes[l].gpus[gpu].in_flight += 1;
        self.nodes[l].jobs_in_flight += 1;
        let id = self.nodes[l].alloc_job(SimJob {
            pair,
            gpu,
            left: None,
            right: None,
            stalled: None,
            comparing: false,
        });
        self.try_acquire(ctx, node, id);
    }

    // ---- job lease acquisition (mirrors the threaded conductor) ----------

    fn try_acquire(&mut self, ctx: &Ctx, node: usize, id: u64) {
        let l = node - self.base;
        let Some(job) = self.nodes[l].job(id) else {
            return;
        };
        if job.comparing {
            return;
        }
        let (pair, gpu, stalled) = (job.pair, job.gpu, job.stalled);
        // Acquire the previously stalled item first (see `SimJob::stalled`).
        let mut order = [(0usize, pair.left), (1usize, pair.right)];
        if stalled == Some(pair.right) {
            order.swap(0, 1);
        }
        for (which, item) in order {
            let held = {
                let job = self.nodes[l].job(id).expect("job");
                if which == 0 {
                    job.left
                } else {
                    job.right
                }
            };
            if held.is_some() {
                continue;
            }
            match self.nodes[l].gpus[gpu].cache.get(item, || Tok::Job(id)) {
                Lookup::Hit(slot) => {
                    let job = self.nodes[l].job_mut(id).expect("job");
                    if which == 0 {
                        job.left = Some(slot);
                    } else {
                        job.right = Some(slot);
                    }
                    let now = self.queue.now();
                    self.perf(now, PerfKind::DevHit, node, item);
                }
                Lookup::Pending => return,
                Lookup::MustLoad(slot) => {
                    let now = self.queue.now();
                    self.perf(now, PerfKind::DevMiss, node, item);
                    let fill = &mut self.nodes[l].gpus[gpu].fills[item as usize];
                    fill.dev_slot = Some(slot);
                    fill.waiters.push(Tok::Job(id));
                    self.continue_dev_fill(ctx, node, gpu, item);
                    return;
                }
                Lookup::Busy => {
                    self.nodes[l].job_mut(id).expect("job").stalled = Some(item);
                    self.release_leases(node, id);
                    return;
                }
            }
        }
        let job = self.nodes[l].job_mut(id).expect("job");
        job.stalled = None;
        job.comparing = true;
        self.schedule_compare(ctx, node, id);
    }

    fn release_leases(&mut self, node: usize, id: u64) {
        let l = node - self.base;
        let Some(job) = self.nodes[l].job_mut(id) else {
            return;
        };
        let gpu = job.gpu;
        let leases = [job.left.take(), job.right.take()];
        for slot in leases.into_iter().flatten() {
            if let Some(tok) = self.nodes[l].gpus[gpu].cache.release(slot) {
                self.wake(node, tok);
            }
        }
    }

    /// Queues a wake-up. Wakes are drained iteratively after each event:
    /// recursion here would overflow the stack on long waiter chains.
    #[inline]
    fn wake(&mut self, node: usize, tok: Tok) {
        self.wakes.push_back((node, tok));
    }

    #[inline]
    fn drain_wakes(&mut self, ctx: &Ctx) {
        while let Some((node, tok)) = self.wakes.pop_front() {
            match tok {
                Tok::Job(id) => self.try_acquire(ctx, node, id),
                Tok::DevFill { gpu, item } => self.continue_dev_fill(ctx, node, gpu, item),
            }
        }
    }

    // ---- compare / result / post -----------------------------------------

    fn schedule_compare(&mut self, ctx: &Ctx, node: usize, id: u64) {
        let l = node - self.base;
        let gpu = self.nodes[l].job(id).expect("job").gpu;
        let base = sample_ns(&mut self.nodes[l].rng, &ctx.stages.compare);
        let now = self.queue.now();
        let g = &mut self.nodes[l].gpus[gpu];
        let dur = (base as f64 / g.rates.compute_scale) as u64;
        let done = g.compute.submit(now, dur);
        g.cmp_busy_ns += dur;
        let p = self.next_prio(node);
        self.queue
            .schedule_keyed(done, p, Ev::CompareDone { node, job: id });
        self.perf(done, PerfKind::Compare, node, dur);
    }

    fn on_compare_done(&mut self, ctx: &Ctx, node: usize, id: u64) {
        // Leases can be dropped as soon as the kernel finishes.
        self.release_leases(node, id);
        let l = node - self.base;
        let gpu = self.nodes[l].job(id).expect("job").gpu;
        let now = self.queue.now();
        let g = &mut self.nodes[l].gpus[gpu];
        let dur = transfer_ns(
            ctx.cfg.workload.item_bytes.min(1024),
            g.rates.d2h_bytes_per_sec,
        );
        let done = g.d2h.submit(now, dur);
        let p = self.next_prio(node);
        self.queue
            .schedule_keyed(done, p, Ev::ResultDone { node, job: id });
        self.perf(done, PerfKind::CopyOut, node, dur);
    }

    fn on_result_done(&mut self, ctx: &Ctx, node: usize, id: u64) {
        let l = node - self.base;
        let dur = sample_ns(&mut self.nodes[l].rng, &ctx.stages.postprocess);
        let now = self.queue.now();
        let done = self.nodes[l].cpu.submit(now, dur);
        let p = self.next_prio(node);
        self.queue
            .schedule_keyed(done, p, Ev::PostDone { node, job: id });
        self.perf(done, PerfKind::Postprocess, node, dur);
    }

    fn on_post_done(&mut self, ctx: &Ctx, node: usize, id: u64) {
        let l = node - self.base;
        let job = self.nodes[l].free_job(id);
        self.nodes[l].gpus[job.gpu].in_flight -= 1;
        self.nodes[l].jobs_in_flight -= 1;
        self.nodes[l].pairs_done += 1;
        self.pairs_done += 1;
        let now = self.queue.now();
        self.nodes[l].makespan_ns = self.nodes[l].makespan_ns.max(now);
        if let Some(series) = &mut self.completions {
            let gid = ctx.gpu_gid_base[node] + job.gpu;
            series.record(gid as u32, now);
        }
        self.pull_work(ctx, node);
    }

    // ---- device fill ------------------------------------------------------

    fn continue_dev_fill(&mut self, ctx: &Ctx, node: usize, gpu: usize, item: u64) {
        let l = node - self.base;
        let fill = &self.nodes[l].gpus[gpu].fills[item as usize];
        if fill.dev_slot.is_none() {
            return;
        }
        // An H2D copy is already filling this slot: a second wake (e.g. a
        // parked token plus the origin-continuation of `publish_host`)
        // must not take a second host lease.
        if fill.h2d_lease.is_some() {
            return;
        }
        match self.nodes[l]
            .host_cache
            .get(item, || Tok::DevFill { gpu, item })
        {
            Lookup::Hit(hslot) => {
                let now = self.queue.now();
                let g = &mut self.nodes[l].gpus[gpu];
                g.fills[item as usize].h2d_lease = Some(hslot);
                let dur = transfer_ns(ctx.cfg.workload.item_bytes, g.rates.h2d_bytes_per_sec);
                let done = g.h2d.submit(now, dur);
                let p = self.next_prio(node);
                self.queue
                    .schedule_keyed(done, p, Ev::FillCopyDone { node, gpu, item });
                self.perf(now, PerfKind::HostHit, node, item);
                self.perf(done, PerfKind::CopyIn, node, dur);
            }
            Lookup::Pending | Lookup::Busy => {}
            Lookup::MustLoad(hslot) => {
                let now = self.queue.now();
                self.perf(now, PerfKind::HostMiss, node, item);
                self.nodes[l].host_fill[item as usize] = Some(HostFill {
                    origin_gpu: gpu as u32,
                    slot: hslot,
                });
                if ctx.cfg.distributed_cache && ctx.node_shard.len() > 1 {
                    let (to, msg) = self.nodes[l].directory.begin_lookup(item);
                    self.send(ctx, node, to, Msg::Dir(msg));
                    self.perf(now, PerfKind::Probe, node, item);
                } else {
                    self.request_load(ctx, node, item);
                }
            }
        }
    }

    fn on_fill_copy_done(&mut self, ctx: &Ctx, node: usize, gpu: usize, item: u64) {
        let l = node - self.base;
        if let Some(hslot) = self.nodes[l].gpus[gpu].fills[item as usize]
            .h2d_lease
            .take()
        {
            if let Some(tok) = self.nodes[l].host_cache.release(hslot) {
                self.wake(node, tok);
            }
        }
        let _ = ctx;
        self.complete_dev_fill(node, gpu, item);
    }

    fn complete_dev_fill(&mut self, node: usize, gpu: usize, item: u64) {
        let l = node - self.base;
        let fill = &mut self.nodes[l].gpus[gpu].fills[item as usize];
        let Some(dslot) = fill.dev_slot.take() else {
            return;
        };
        let ws = std::mem::take(&mut fill.waiters);
        let waiters = self.nodes[l].gpus[gpu].cache.publish(dslot);
        for w in waiters {
            self.wake(node, w);
        }
        for w in ws {
            self.wake(node, w);
        }
        // The published slot is evictable until a reader takes it: that is
        // fresh capacity, so a parked capacity waiter must get a retry.
        if let Some(w) = self.nodes[l].gpus[gpu].cache.pop_capacity_waiter() {
            self.wake(node, w);
        }
    }

    // ---- host fill / load pipeline ----------------------------------------

    /// Defers a storage load. The request is priced (`io_bytes`) here but
    /// submitted to the shared storage engine only at the next flush —
    /// time advance when sequential, window barrier when sharded — in
    /// global `(time, prio)` order, which is exactly the serialization the
    /// sequential engine sees.
    fn request_load(&mut self, ctx: &Ctx, node: usize, item: u64) {
        let l = node - self.base;
        self.nodes[l].io_bytes += ctx.cfg.workload.file_bytes;
        let now = self.queue.now();
        let p = self.next_prio(node);
        self.load_reqs.push((now, p, node, item));
    }

    fn on_io_done(&mut self, ctx: &Ctx, node: usize, item: u64) {
        let l = node - self.base;
        let dur = sample_ns(&mut self.nodes[l].rng, &ctx.stages.parse);
        let now = self.queue.now();
        let done = self.nodes[l].cpu.submit(now, dur);
        let p = self.next_prio(node);
        self.queue
            .schedule_keyed(done, p, Ev::ParseDone { node, item });
        self.perf(done, PerfKind::Parse, node, dur);
    }

    fn on_parse_done(&mut self, ctx: &Ctx, node: usize, item: u64) {
        let l = node - self.base;
        let Some(fill) = self.nodes[l].host_fill[item as usize] else {
            return;
        };
        let gpu = fill.origin_gpu as usize;
        if ctx.stages.preprocess.is_some() {
            // Stage parsed bytes to the device, pre-process there, write the
            // item back to the host slot (Fig 4's ℓ path).
            let now = self.queue.now();
            let g = &mut self.nodes[l].gpus[gpu];
            let dur = transfer_ns(ctx.cfg.workload.item_bytes, g.rates.h2d_bytes_per_sec);
            let done = g.h2d.submit(now, dur);
            let p = self.next_prio(node);
            self.queue
                .schedule_keyed(done, p, Ev::StagingDone { node, gpu, item });
            self.perf(done, PerfKind::CopyIn, node, dur);
        } else {
            // No GPU pre-processing: the parsed bytes are the item.
            self.nodes[l].loads += 1;
            self.publish_host(ctx, node, item);
        }
    }

    fn schedule_preprocess(&mut self, ctx: &Ctx, node: usize, gpu: usize, item: u64) {
        let l = node - self.base;
        let base = sample_ns(
            &mut self.nodes[l].rng,
            ctx.stages.preprocess.as_ref().expect("preprocess stage"),
        );
        let now = self.queue.now();
        let g = &mut self.nodes[l].gpus[gpu];
        let dur = (base as f64 / g.rates.compute_scale) as u64;
        let done = g.compute.submit(now, dur);
        g.pre_busy_ns += dur;
        let p = self.next_prio(node);
        self.queue
            .schedule_keyed(done, p, Ev::PreprocessDone { node, gpu, item });
        self.perf(done, PerfKind::Preprocess, node, dur);
    }

    fn on_preprocess_done(&mut self, ctx: &Ctx, node: usize, gpu: usize, item: u64) {
        let l = node - self.base;
        self.nodes[l].loads += 1;
        // Publish the device slot first (jobs can compare immediately), then
        // write back to the host slot.
        self.complete_dev_fill(node, gpu, item);
        let now = self.queue.now();
        let g = &mut self.nodes[l].gpus[gpu];
        let dur = transfer_ns(ctx.cfg.workload.item_bytes, g.rates.d2h_bytes_per_sec);
        let done = g.d2h.submit(now, dur);
        let p = self.next_prio(node);
        self.queue
            .schedule_keyed(done, p, Ev::WritebackDone { node, item });
        self.perf(done, PerfKind::CopyOut, node, dur);
    }

    fn publish_host(&mut self, ctx: &Ctx, node: usize, item: u64) {
        let l = node - self.base;
        let Some(fill) = self.nodes[l].host_fill[item as usize].take() else {
            return;
        };
        let origin_gpu = fill.origin_gpu as usize;
        let waiters = self.nodes[l].host_cache.publish(fill.slot);
        for w in waiters {
            self.wake(node, w);
        }
        // Fresh capacity (see complete_dev_fill): retry one parked waiter.
        if let Some(w) = self.nodes[l].host_cache.pop_capacity_waiter() {
            self.wake(node, w);
        }
        if self.nodes[l].gpus[origin_gpu].fills[item as usize]
            .dev_slot
            .is_some()
        {
            self.continue_dev_fill(ctx, node, origin_gpu, item);
        }
    }

    // ---- distributed cache ------------------------------------------------

    /// Routes a message from `from` (a node of this shard) to `to`,
    /// arriving at absolute time `at`. The priority is drawn from the
    /// *sender's* sequence — K-invariant, unlike anything involving the
    /// receiving queue. Cross-shard messages park in the outbox until the
    /// barrier.
    #[inline]
    fn route_at(&mut self, ctx: &Ctx, at: SimTime, from: usize, to: usize, msg: Msg) {
        let p = self.next_prio(from);
        if ctx.node_shard[to] == self.id {
            self.queue.schedule_keyed(at, p, Ev::Net { to, from, msg });
        } else {
            self.outbox.push((at, p, to, from, msg));
        }
    }

    #[inline]
    fn send(&mut self, ctx: &Ctx, from: usize, to: usize, msg: Msg) {
        let at = self.queue.now() + ctx.net_lat_ns;
        self.route_at(ctx, at, from, to, msg);
    }

    fn on_net(&mut self, ctx: &Ctx, to: usize, from: usize, msg: Msg) {
        let l = to - self.base;
        match msg {
            Msg::Dir(dir_msg) => {
                let lookup_item = match &dir_msg {
                    DirectoryMsg::Found { item, .. } | DirectoryMsg::NotFound { item } => {
                        Some(*item)
                    }
                    _ => None,
                };
                let node = &mut self.nodes[l];
                let host_cache = &node.host_cache;
                let (outgoing, resolution) = node
                    .directory
                    .handle(dir_msg, |i| host_cache.contains_ready(i));
                for (peer, m) in outgoing {
                    self.send(ctx, to, peer, Msg::Dir(m));
                }
                match resolution {
                    Resolution::InFlight => {}
                    Resolution::Found { holder, .. } => {
                        let item = lookup_item.expect("found carries item");
                        let now = self.queue.now();
                        self.perf(now, PerfKind::ProbeHit, to, item);
                        if self.nodes[l].host_fill[item as usize].is_some() {
                            self.send(
                                ctx,
                                to,
                                holder,
                                Msg::Fetch {
                                    item,
                                    requester: to,
                                },
                            );
                        }
                    }
                    Resolution::LoadLocally => {
                        let item = lookup_item.expect("not-found carries item");
                        let now = self.queue.now();
                        self.perf(now, PerfKind::ProbeMiss, to, item);
                        if self.nodes[l].host_fill[item as usize].is_some() {
                            self.request_load(ctx, to, item);
                        }
                    }
                }
            }
            Msg::Fetch { item, requester } => {
                // Serve from the host cache if still resident; transfer
                // occupies this node's NIC.
                let served = self.nodes[l].host_cache.try_read(item);
                match served {
                    Some(hslot) => {
                        if let Some(tok) = self.nodes[l].host_cache.release(hslot) {
                            self.wake(to, tok);
                        }
                        let bytes = ctx.cfg.workload.item_bytes;
                        self.nodes[l].net_bytes += bytes;
                        let dur = secs_to_ns(bytes as f64 / ctx.cfg.net_bandwidth);
                        let now = self.queue.now();
                        let done = self.nodes[l].nic.submit(now, dur) + ctx.net_lat_ns;
                        self.route_at(ctx, done, to, requester, Msg::FetchReply { item, ok: true });
                    }
                    None => {
                        self.send(ctx, to, requester, Msg::FetchReply { item, ok: false });
                    }
                }
            }
            Msg::FetchReply { item, ok } => {
                let _ = from;
                if self.nodes[l].host_fill[item as usize].is_none() {
                    return;
                }
                if ok {
                    self.nodes[l].remote_fetches += 1;
                    self.publish_host(ctx, to, item);
                } else {
                    self.request_load(ctx, to, item);
                }
            }
        }
    }

    /// Debug-build cross-check: every device-cache read lease is owned by
    /// exactly one job lease, every host lease by one in-flight H2D copy.
    #[cfg(debug_assertions)]
    fn validate(&self) {
        for (li, node) in self.nodes.iter().enumerate() {
            let ni = self.base + li;
            let mut dev_readers: Vec<Vec<u32>> = node
                .gpus
                .iter()
                .map(|g| vec![0u32; g.cache.capacity()])
                .collect();
            for job in node.jobs.iter().flatten() {
                for slot in [job.left, job.right].into_iter().flatten() {
                    dev_readers[job.gpu][slot] += 1;
                }
            }
            for (g, gpu) in node.gpus.iter().enumerate() {
                for (slot, &expected) in dev_readers[g].iter().enumerate() {
                    assert_eq!(
                        gpu.cache.readers(slot),
                        expected,
                        "node {ni} gpu {g} slot {slot}: reader-count leak"
                    );
                }
                gpu.cache
                    .check_invariants()
                    .expect("device cache invariants");
            }
            let mut host_readers = vec![0u32; node.host_cache.capacity()];
            for gpu in &node.gpus {
                for hslot in gpu.fills.iter().filter_map(|f| f.h2d_lease) {
                    host_readers[hslot] += 1;
                }
            }
            for (slot, &expected) in host_readers.iter().enumerate() {
                assert_eq!(
                    node.host_cache.readers(slot),
                    expected,
                    "node {ni} host slot {slot}: reader-count leak"
                );
            }
            node.host_cache
                .check_invariants()
                .expect("host cache invariants");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{simulate, SimNodeConfig};
    use crate::engine::SlabEventQueue;
    use rocket_core::WorkloadProfile;
    use rocket_stats::Dist;

    fn toy_workload(items: u64) -> WorkloadProfile {
        WorkloadProfile {
            name: "toy",
            items,
            file_bytes: 1_000_000,
            item_bytes: 10_000_000,
            parse: Dist::Constant(10e-3),
            preprocess: Some(Dist::Constant(5e-3)),
            compare: Dist::Constant(1e-3),
            postprocess: Dist::Constant(0.0),
            paper_device_slots: 8,
            paper_host_slots: 16,
        }
    }

    fn toy_config(items: u64, nodes: usize, slots: usize) -> SimConfig {
        let node = SimNodeConfig::uniform(1, slots, slots * 2);
        SimConfig::cluster(toy_workload(items), vec![node; nodes])
    }

    #[test]
    fn shard_ranges_are_contiguous_and_balanced() {
        for (p, k) in [(4, 2), (5, 2), (13, 4), (7, 7), (3, 1)] {
            let ranges = shard_ranges(p, k);
            assert_eq!(ranges.len(), k);
            assert_eq!(ranges[0].start, 0);
            assert_eq!(ranges.last().unwrap().end, p);
            for w in ranges.windows(2) {
                assert_eq!(w[0].end, w[1].start);
                assert!(w[0].len() >= w[1].len());
                assert!(w[0].len() - w[1].len() <= 1);
            }
        }
    }

    #[test]
    fn window_width_respects_both_lookahead_channels() {
        let cfg = toy_config(4, 2, 4);
        let ctx = build_ctx(&cfg, 2);
        let net = secs_to_ns(cfg.net_latency);
        let storage = secs_to_ns(cfg.workload.file_bytes as f64 / cfg.storage_bandwidth)
            + secs_to_ns(cfg.storage_latency);
        assert_eq!(ctx.window_ns, net.min(storage).max(1));
        // A storage-latency-free config must shrink the window to the
        // storage floor, not trust net_latency alone.
        let mut fast_storage = toy_config(4, 2, 4);
        fast_storage.storage_latency = 0.0;
        fast_storage.storage_bandwidth = 1e15;
        let ctx2 = build_ctx(&fast_storage, 2);
        assert!(ctx2.window_ns <= secs_to_ns(1e-9).max(1) || ctx2.window_ns < net);
    }

    /// A message scheduled exactly *on* a window boundary must not execute
    /// in that window (windows are half-open) and must execute once the
    /// window advances past it.
    #[test]
    fn boundary_event_lands_in_the_next_window() {
        // items = 0: no root work, so Pull handlers are inert and the
        // queues start empty.
        let cfg = toy_config(0, 2, 4);
        let ctx = build_ctx(&cfg, 2);
        let mut shards = build_shards::<SlabEventQueue<Ev>>(&cfg, &ctx, 2);
        let win = ctx.window_ns;
        let s = &mut shards[0];
        s.window_end = win;
        let p_in = s.next_prio(0);
        s.queue.schedule_keyed(win - 1, p_in, Ev::Pull { node: 0 });
        let p_on = s.next_prio(0);
        s.queue.schedule_keyed(win, p_on, Ev::Pull { node: 0 });
        s.run_window(&ctx);
        assert_eq!(s.ev_counts[0], 1, "in-window event must run");
        assert_eq!(
            s.queue.peek_time(),
            Some(win),
            "boundary event must wait for the next window"
        );
        s.window_end = 2 * win;
        s.run_window(&ctx);
        assert_eq!(s.ev_counts[0], 2, "boundary event runs in next window");
        assert_eq!(s.queue.peek_time(), None);
    }

    #[test]
    fn sharded_toy_run_matches_sequential_byte_for_byte() {
        let seq = toy_config(24, 4, 12);
        let mut sharded = seq.clone();
        sharded.shards = 4;
        sharded.shard_threads = 2;
        let a = format!("{:?}", simulate(&seq));
        let b = format!("{:?}", simulate(&sharded));
        assert_eq!(a, b);
    }

    #[test]
    fn shard_count_beyond_nodes_is_clamped() {
        let mut cfg = toy_config(12, 2, 16);
        cfg.shards = 64;
        assert_eq!(cfg.effective_shards(), 2);
        let r = simulate(&cfg);
        assert_eq!(r.pairs, 66);
    }
}
