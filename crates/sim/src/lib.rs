//! Discrete-event cluster simulator and performance model for Rocket.
//!
//! The paper's evaluation runs on DAS-5 and the Cartesius supercomputer
//! with up to 96 GPUs — hardware this reproduction does not have. The
//! simulator substitutes for that testbed: it executes the *same* policy
//! code as the threaded runtime (slot caches, distributed-cache directory,
//! quadrant work-stealing) over a modelled cluster — GPUs with relative
//! compute scales and PCIe links, a shared central storage pipe, per-node
//! NICs — in deterministic virtual time. Stage durations are sampled from
//! the paper's Table 1 / Fig 7 statistics (`rocket_apps::profiles`).
//!
//! Modules:
//!
//! * [`engine`] — deterministic event scheduling over virtual nanoseconds:
//!   the [`EventQueue`] trait with slab-heap and calendar-queue
//!   implementations,
//! * [`server`] — FIFO engines and k-server pools,
//! * [`cluster`] — the simulated Rocket cluster: [`cluster::simulate`]
//!   turns a [`cluster::SimConfig`] into a [`cluster::SimResult`] with the
//!   run time, R factor, per-resource busy times, hop statistics, and I/O
//!   usage that the paper's figures report,
//! * `shard` — the conservative time-window parallel event engine:
//!   nodes partition into `SimConfig::shards` shards advancing in
//!   lock-step windows of the network-latency lookahead on the steal
//!   pool, with results byte-identical to the sequential engine,
//! * [`backend`] — [`SimBackend`], the [`rocket_core::Backend`]
//!   implementation that runs a [`rocket_core::Scenario`] on the simulator
//!   and reports a unified [`rocket_core::RunReport`],
//! * [`model`] — §6.1's Equations 1–5 (T_GPU, T_CPU, T_IO, T_min, system
//!   efficiency).

#![warn(missing_docs)]

pub mod backend;
pub mod cluster;
pub mod engine;
pub mod model;
pub mod server;
mod shard;

pub use backend::SimBackend;
pub use cluster::{simulate, SimConfig, SimNodeConfig, SimResult};
pub use engine::{
    ns_to_secs, secs_to_ns, CalendarQueue, EventQueue, Scheduler, SimTime, SlabEventQueue,
};
pub use model::{capacity, system_efficiency, t_cpu, t_gpu, t_io, t_min, t_model};
pub use server::{Engine, Pool};
