//! Resource servers: FIFO engines and k-server pools.
//!
//! Each modelled resource (a GPU's compute queue, its two copy engines, a
//! node's NIC, the shared storage pipe, the CPU pool) serializes its tasks.
//! Because service times are known at submission, a server does not need an
//! explicit queue: it tracks the time at which it drains and hands back the
//! completion timestamp — identical semantics to a FIFO queue.

use crate::engine::SimTime;

/// Single FIFO server (one GPU engine, one NIC, the storage pipe).
#[derive(Debug, Clone, Default)]
pub struct Engine {
    free_at: SimTime,
    busy_ns: u64,
    tasks: u64,
}

impl Engine {
    /// Creates an idle engine.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enqueues a task of `duration` ns submitted at `now`; returns its
    /// completion time.
    pub fn submit(&mut self, now: SimTime, duration: u64) -> SimTime {
        let start = self.free_at.max(now);
        self.free_at = start + duration;
        self.busy_ns += duration;
        self.tasks += 1;
        self.free_at
    }

    /// Total busy nanoseconds.
    pub fn busy_ns(&self) -> u64 {
        self.busy_ns
    }

    /// Number of tasks served.
    pub fn tasks(&self) -> u64 {
        self.tasks
    }

    /// The earliest time a new task could start.
    pub fn free_at(&self) -> SimTime {
        self.free_at
    }
}

/// k-server pool (the CPU worker pool): each task runs on the server that
/// frees first.
#[derive(Debug, Clone)]
pub struct Pool {
    free_at: Vec<SimTime>,
    busy_ns: u64,
    tasks: u64,
}

impl Pool {
    /// Creates a pool with `servers` workers.
    pub fn new(servers: usize) -> Self {
        assert!(servers >= 1);
        Self {
            free_at: vec![0; servers],
            busy_ns: 0,
            tasks: 0,
        }
    }

    /// Enqueues a task of `duration` ns at `now`; returns completion time.
    pub fn submit(&mut self, now: SimTime, duration: u64) -> SimTime {
        let (idx, _) = self
            .free_at
            .iter()
            .enumerate()
            .min_by_key(|&(_, &t)| t)
            .expect("non-empty pool");
        let start = self.free_at[idx].max(now);
        self.free_at[idx] = start + duration;
        self.busy_ns += duration;
        self.tasks += 1;
        self.free_at[idx]
    }

    /// Total busy nanoseconds across all servers.
    pub fn busy_ns(&self) -> u64 {
        self.busy_ns
    }

    /// Number of tasks served.
    pub fn tasks(&self) -> u64 {
        self.tasks
    }

    /// Number of servers.
    pub fn servers(&self) -> usize {
        self.free_at.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_serializes() {
        let mut e = Engine::new();
        assert_eq!(e.submit(0, 10), 10);
        assert_eq!(e.submit(0, 5), 15); // queued behind the first
        assert_eq!(e.submit(100, 5), 105); // idle gap
        assert_eq!(e.busy_ns(), 20);
        assert_eq!(e.tasks(), 3);
    }

    #[test]
    fn pool_runs_k_in_parallel() {
        let mut p = Pool::new(2);
        assert_eq!(p.submit(0, 10), 10);
        assert_eq!(p.submit(0, 10), 10); // second server
        assert_eq!(p.submit(0, 10), 20); // queues behind first free
        assert_eq!(p.busy_ns(), 30);
    }

    #[test]
    fn pool_picks_earliest_free_server() {
        let mut p = Pool::new(2);
        p.submit(0, 100); // server 0 busy until 100
        p.submit(0, 10); // server 1 busy until 10
        assert_eq!(p.submit(20, 5), 25); // runs on server 1
    }

    #[test]
    #[should_panic]
    fn empty_pool_rejected() {
        let _ = Pool::new(0);
    }
}
