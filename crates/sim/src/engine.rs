//! Deterministic discrete-event core.
//!
//! Event scheduling is abstracted behind the [`EventQueue`] trait so the
//! simulator can swap scheduling structures without touching the cluster
//! model. Two implementations ship:
//!
//! * [`SlabEventQueue`] — the slab-backed binary heap (the default): heap
//!   sift operations compare and move compact `(time, seq, slot)` keys
//!   while payloads stay parked in a free-list slab,
//! * [`CalendarQueue`] — a classic calendar queue (Brown 1988): events
//!   hash into time buckets, giving amortized O(1) schedule/pop when the
//!   event population is large and time-dense — the regime of very large
//!   (Cartesius-scale, 96-GPU) cluster simulations.
//!
//! Determinism: both implementations order events by `(time, seq)` where
//! `seq` increments on every insertion, so ties in time break by insertion
//! order and a simulation remains a pure function of its configuration and
//! seed — *identical* across queue implementations, which the test suite
//! asserts.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Virtual time in nanoseconds.
pub type SimTime = u64;

/// A deterministic event scheduler: ties in time break by insertion order
/// (FIFO), past-dated events clamp to `now`.
pub trait EventQueue<E> {
    /// Current virtual time (the timestamp of the last popped event).
    fn now(&self) -> SimTime;

    /// Schedules `event` at absolute time `at` (clamped to now for
    /// past-dated events).
    fn schedule_at(&mut self, at: SimTime, event: E);

    /// Schedules `event` at `at` under an explicit tie-break priority:
    /// events at equal times pop in ascending `prio` order instead of
    /// insertion order. Callers that need an ordering independent of
    /// *when* an event was inserted (the sharded engine derives `prio`
    /// from stable simulation state) use this; `prio` values should be
    /// unique per timestamp, since equal `(at, prio)` keys fall back to
    /// an insertion-dependent tie-break.
    fn schedule_keyed(&mut self, at: SimTime, prio: u64, event: E);

    /// Schedules `event` `delay` nanoseconds from now.
    fn schedule_in(&mut self, delay: SimTime, event: E) {
        self.schedule_at(self.now().saturating_add(delay), event);
    }

    /// Pops the next event, advancing virtual time.
    fn pop(&mut self) -> Option<(SimTime, E)>;

    /// Timestamp of the next event without popping it (and without
    /// advancing virtual time). Takes `&mut self` so implementations may
    /// reposition internal cursors; repeated calls are idempotent.
    fn peek_time(&mut self) -> Option<SimTime>;

    /// Number of pending events.
    fn len(&self) -> usize;

    /// True if no events remain.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Scheduling structure selector for a simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scheduler {
    /// Slab-backed binary heap ([`SlabEventQueue`]); the default.
    #[default]
    SlabHeap,
    /// Calendar queue ([`CalendarQueue`]) for very large clusters.
    Calendar,
}

/// Parks a payload in the free-list slab layout both queues share,
/// returning its slot (new or recycled).
fn park_payload<E>(slab: &mut Vec<Option<E>>, free: &mut Vec<u32>, event: E) -> u32 {
    match free.pop() {
        Some(s) => {
            debug_assert!(slab[s as usize].is_none());
            slab[s as usize] = Some(event);
            s
        }
        None => {
            let s = u32::try_from(slab.len()).expect("event slab overflow");
            slab.push(Some(event));
            s
        }
    }
}

// ---------------------------------------------------------------------------
// Slab-backed binary heap
// ---------------------------------------------------------------------------

/// The slab-backed binary-heap scheduler.
///
/// Event payloads are parked in a free-list slab and never move after
/// insertion, while the binary heap orders only compact
/// `(SimTime, seq, slot)` keys (24 bytes, `Copy`). Heap sift operations
/// therefore compare and move small integer triples instead of full event
/// payloads. The slab
/// slot index participates in the key only as an inert third component (a
/// given `seq` is unique, so it never actually decides an ordering).
#[derive(Debug)]
pub struct SlabEventQueue<E> {
    /// Min-heap over `(time, seq, slot)`; payloads live in `slab`.
    heap: BinaryHeap<Reverse<(SimTime, u64, u32)>>,
    /// Parked payloads, addressed by the key's slot component.
    slab: Vec<Option<E>>,
    /// Reusable slab slots.
    free: Vec<u32>,
    seq: u64,
    now: SimTime,
}

impl<E> Default for SlabEventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> SlabEventQueue<E> {
    /// Creates an empty queue at time 0.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            slab: Vec::new(),
            free: Vec::new(),
            seq: 0,
            now: 0,
        }
    }
}

impl<E> EventQueue<E> for SlabEventQueue<E> {
    fn now(&self) -> SimTime {
        self.now
    }

    fn schedule_at(&mut self, at: SimTime, event: E) {
        let prio = self.seq;
        self.seq += 1;
        self.schedule_keyed(at, prio, event);
    }

    fn schedule_keyed(&mut self, at: SimTime, prio: u64, event: E) {
        let at = at.max(self.now);
        let slot = park_payload(&mut self.slab, &mut self.free, event);
        self.heap.push(Reverse((at, prio, slot)));
    }

    fn pop(&mut self) -> Option<(SimTime, E)> {
        let Reverse((at, _, slot)) = self.heap.pop()?;
        let event = self.slab[slot as usize]
            .take()
            .expect("heap key without parked payload");
        self.free.push(slot);
        self.now = at;
        Some((at, event))
    }

    fn peek_time(&mut self) -> Option<SimTime> {
        self.heap.peek().map(|&Reverse((t, _, _))| t)
    }

    fn len(&self) -> usize {
        self.heap.len()
    }
}

// ---------------------------------------------------------------------------
// Calendar queue
// ---------------------------------------------------------------------------

/// A deterministic calendar queue.
///
/// Events hash into `(t / width) mod buckets` time buckets; a pop scans
/// the current "day" forward. Each bucket keeps its keys sorted in
/// *descending* `(time, seq)` order so the bucket minimum is `Vec::pop`
/// away. The bucket count and width resize automatically to track the
/// event population (target ≈ one event per bucket per day), giving
/// amortized O(1) schedule/pop for large, time-dense event populations.
///
/// Payloads live in the same free-list slab layout as
/// [`SlabEventQueue`]; only `(time, seq, slot)` keys move through the
/// calendar. Ordering is by `(time, seq)` exactly like the heap queue, so
/// simulations produce identical results on either scheduler.
#[derive(Debug)]
pub struct CalendarQueue<E> {
    /// `buckets[i]` holds keys sorted descending; `last()` is the minimum.
    buckets: Vec<Vec<(SimTime, u64, u32)>>,
    /// Power-of-two bucket count minus one.
    mask: usize,
    /// Bucket time width, ns (≥ 1).
    width: SimTime,
    /// Bucket the next pop starts scanning from.
    cur: usize,
    /// Exclusive upper time bound of `cur` within the current day.
    bucket_top: SimTime,
    slab: Vec<Option<E>>,
    free: Vec<u32>,
    len: usize,
    seq: u64,
    now: SimTime,
}

impl<E> Default for CalendarQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> CalendarQueue<E> {
    const MIN_BUCKETS: usize = 4;

    /// Creates an empty queue at time 0.
    pub fn new() -> Self {
        let width = 1;
        Self {
            buckets: (0..Self::MIN_BUCKETS).map(|_| Vec::new()).collect(),
            mask: Self::MIN_BUCKETS - 1,
            width,
            cur: 0,
            bucket_top: width,
            slab: Vec::new(),
            free: Vec::new(),
            len: 0,
            seq: 0,
            now: 0,
        }
    }

    #[inline]
    fn bucket_of(&self, t: SimTime) -> usize {
        ((t / self.width) as usize) & self.mask
    }

    fn insert_key(&mut self, key: (SimTime, u64, u32)) {
        let b = self.bucket_of(key.0);
        let bucket = &mut self.buckets[b];
        // Descending order: everything greater than `key` stays in front.
        let pos = bucket.partition_point(|&e| e > key);
        bucket.insert(pos, key);
    }

    /// Re-buckets every pending key for a new size/width (O(n), amortized
    /// away by the doubling/halving triggers).
    fn resize(&mut self) {
        let target = self.len.next_power_of_two().max(Self::MIN_BUCKETS);
        let keys: Vec<(SimTime, u64, u32)> =
            self.buckets.iter_mut().flat_map(std::mem::take).collect();
        let (mut min_t, mut max_t) = (SimTime::MAX, 0);
        for &(t, _, _) in &keys {
            min_t = min_t.min(t);
            max_t = max_t.max(t);
        }
        // Width ≈ the average inter-event gap, so a day holds the whole
        // population at about one event per bucket.
        self.width = if keys.len() >= 2 {
            ((max_t - min_t) / keys.len() as u64).max(1)
        } else {
            self.width.max(1)
        };
        if self.buckets.len() != target {
            self.buckets = (0..target).map(|_| Vec::new()).collect();
            self.mask = target - 1;
        }
        for key in keys {
            self.insert_key(key);
        }
        self.align_to(if self.len == 0 { self.now } else { min_t });
    }

    /// Points the scan cursor at the bucket containing `t`.
    fn align_to(&mut self, t: SimTime) {
        self.cur = self.bucket_of(t);
        self.bucket_top = (t / self.width + 1) * self.width;
    }

    /// Locates the global minimum by comparing every bucket's minimum
    /// (used when a full day's scan comes up empty — far-future events).
    fn seek_global_min(&mut self) {
        let mut best: Option<(SimTime, u64, u32)> = None;
        for bucket in &self.buckets {
            if let Some(&key) = bucket.last() {
                if best.is_none_or(|b| key < b) {
                    best = Some(key);
                }
            }
        }
        let (t, _, _) = best.expect("seek on non-empty queue");
        self.align_to(t);
    }

    /// Positions the scan cursor on the bucket holding the global minimum
    /// key and returns that key without removing it. Idempotent: repeated
    /// calls re-find the same key at the (already aligned) cursor.
    fn position_min(&mut self) -> Option<(SimTime, u64, u32)> {
        if self.len == 0 {
            return None;
        }
        let mut scanned = 0;
        loop {
            if let Some(&key) = self.buckets[self.cur].last() {
                if key.0 < self.bucket_top {
                    return Some(key);
                }
            }
            self.cur = (self.cur + 1) & self.mask;
            self.bucket_top += self.width;
            scanned += 1;
            if scanned > self.mask {
                // A full day without a hit: every event lives in a later
                // year. Jump straight to the earliest one.
                self.seek_global_min();
                scanned = 0;
            }
        }
    }
}

impl<E> EventQueue<E> for CalendarQueue<E> {
    fn now(&self) -> SimTime {
        self.now
    }

    fn schedule_at(&mut self, at: SimTime, event: E) {
        let prio = self.seq;
        self.seq += 1;
        self.schedule_keyed(at, prio, event);
    }

    fn schedule_keyed(&mut self, at: SimTime, prio: u64, event: E) {
        let at = at.max(self.now);
        let slot = park_payload(&mut self.slab, &mut self.free, event);
        self.insert_key((at, prio, slot));
        self.len += 1;
        // The scan cursor may sit far ahead of `now` (aligned to a
        // far-future minimum); a new event earlier than the cursor's
        // window would then never be scanned. Pull the cursor back —
        // re-scanning forward is always safe.
        if at < self.bucket_top.saturating_sub(self.width) {
            self.align_to(at);
        }
        if self.len > 2 * self.buckets.len() {
            self.resize();
        }
    }

    fn pop(&mut self) -> Option<(SimTime, E)> {
        let (at, _, slot) = self.position_min()?;
        self.buckets[self.cur].pop();
        let event = self.slab[slot as usize]
            .take()
            .expect("calendar key without parked payload");
        self.free.push(slot);
        self.len -= 1;
        self.now = at;
        if self.buckets.len() > Self::MIN_BUCKETS && self.len < self.buckets.len() / 2 {
            self.resize();
        }
        Some((at, event))
    }

    fn peek_time(&mut self) -> Option<SimTime> {
        self.position_min().map(|(t, _, _)| t)
    }

    fn len(&self) -> usize {
        self.len
    }
}

/// Converts seconds to [`SimTime`] nanoseconds (non-negative).
pub fn secs_to_ns(seconds: f64) -> SimTime {
    (seconds.max(0.0) * 1e9).round() as SimTime
}

/// Converts [`SimTime`] nanoseconds to seconds.
pub fn ns_to_secs(ns: SimTime) -> f64 {
    ns as f64 / 1e9
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Runs every queue-semantics check against one implementation.
    fn check_queue_semantics<Q: EventQueue<i64> + Default>() {
        // Pops in time order.
        let mut q = Q::default();
        q.schedule_at(30, 3);
        q.schedule_at(10, 1);
        q.schedule_at(20, 2);
        let order: Vec<i64> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);

        // Ties break by insertion order.
        let mut q = Q::default();
        q.schedule_at(5, 1);
        q.schedule_at(5, 2);
        q.schedule_at(5, 3);
        let order: Vec<i64> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);

        // FIFO survives slot reuse.
        let mut q = Q::default();
        for i in 0..8 {
            q.schedule_at(1, i);
        }
        for expect in 0..8 {
            assert_eq!(q.pop().unwrap().1, expect);
        }
        for i in 100..108 {
            q.schedule_at(50, i);
        }
        let order: Vec<i64> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (100..108).collect::<Vec<_>>());

        // `now` advances with pops; schedule_in is relative.
        let mut q = Q::default();
        q.schedule_at(100, 0);
        assert_eq!(q.now(), 0);
        q.pop();
        assert_eq!(q.now(), 100);
        q.schedule_in(50, 0);
        assert_eq!(q.pop().unwrap().0, 150);

        // Past events clamp to now and queue FIFO behind concurrent ones.
        let mut q = Q::default();
        q.schedule_at(100, 0);
        q.pop();
        q.schedule_at(100, 1);
        q.schedule_at(5, 2);
        assert_eq!(q.pop().unwrap(), (100, 1));
        assert_eq!(q.pop().unwrap(), (100, 2));

        // len / is_empty.
        let mut q = Q::default();
        assert!(q.is_empty());
        q.schedule_at(1, 0);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn slab_heap_semantics() {
        check_queue_semantics::<SlabEventQueue<i64>>();
    }

    #[test]
    fn calendar_semantics() {
        check_queue_semantics::<CalendarQueue<i64>>();
    }

    /// Keyed scheduling orders equal-time events by priority, not by
    /// insertion order, and `peek_time` observes without consuming.
    fn check_keyed_semantics<Q: EventQueue<i64> + Default>() {
        // Reverse-priority insertion still pops in ascending prio order.
        let mut q = Q::default();
        q.schedule_keyed(10, 30, 3);
        q.schedule_keyed(10, 10, 1);
        q.schedule_keyed(10, 20, 2);
        q.schedule_keyed(5, 99, 0);
        let order: Vec<i64> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![0, 1, 2, 3]);

        // peek_time is idempotent and pop confirms it.
        let mut q = Q::default();
        assert_eq!(q.peek_time(), None);
        q.schedule_keyed(70, 1, 7);
        q.schedule_keyed(40, 1, 4);
        assert_eq!(q.peek_time(), Some(40));
        assert_eq!(q.peek_time(), Some(40));
        assert_eq!(q.now(), 0, "peek must not advance time");
        assert_eq!(q.pop().unwrap(), (40, 4));
        assert_eq!(q.peek_time(), Some(70));
        // Scheduling an earlier event after a peek is still observed.
        q.schedule_keyed(50, 1, 5);
        assert_eq!(q.peek_time(), Some(50));
        assert_eq!(q.pop().unwrap(), (50, 5));
        assert_eq!(q.pop().unwrap(), (70, 7));
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn slab_heap_keyed_semantics() {
        check_keyed_semantics::<SlabEventQueue<i64>>();
    }

    #[test]
    fn calendar_keyed_semantics() {
        check_keyed_semantics::<CalendarQueue<i64>>();
    }

    #[test]
    fn keyed_order_identical_across_implementations() {
        let mut lcg: u64 = 0xBADC0FFEE;
        let mut step = move || {
            lcg = lcg
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            lcg >> 33
        };
        let inserts: Vec<(SimTime, u64)> = (0..400).map(|_| (step() % 64, step())).collect();
        let drain = |q: &mut dyn EventQueue<u64>| -> Vec<(SimTime, u64)> {
            for (i, &(at, prio)) in inserts.iter().enumerate() {
                q.schedule_keyed(at, prio, i as u64);
            }
            std::iter::from_fn(|| q.pop()).collect()
        };
        let mut heap = SlabEventQueue::new();
        let mut cal = CalendarQueue::new();
        assert_eq!(drain(&mut heap), drain(&mut cal));
    }

    /// Property-style: a deterministic pseudo-random interleaving of
    /// schedules and pops must drain in nondecreasing time order with FIFO
    /// ties, exercising slab reuse (and calendar resizing) throughout.
    fn check_random_interleaving<Q: EventQueue<u64> + Default>(spread: u64) {
        let mut lcg: u64 = 0x2545F4914F6CDD1D;
        let mut step = move || {
            lcg = lcg
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            lcg >> 33
        };
        let mut q = Q::default();
        let mut drained: Vec<(SimTime, u64)> = Vec::new();
        for round in 0u64..2000 {
            let at = q.now() + step() % spread;
            q.schedule_at(at, round);
            if round % 2 == 1 {
                if let Some(ev) = q.pop() {
                    drained.push(ev);
                }
            }
        }
        while let Some(ev) = q.pop() {
            drained.push(ev);
        }
        assert_eq!(drained.len(), 2000);
        for pair in drained.windows(2) {
            let ((t0, s0), (t1, s1)) = (pair[0], pair[1]);
            assert!(t0 <= t1, "time went backwards: {t0} -> {t1}");
            if t0 == t1 {
                assert!(s0 < s1, "FIFO violated at t={t0}: {s0} before {s1}");
            }
        }
        let mut ids: Vec<u64> = drained.iter().map(|&(_, s)| s).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..2000).collect::<Vec<_>>());
    }

    #[test]
    fn slab_heap_drains_any_multiset_in_order() {
        check_random_interleaving::<SlabEventQueue<u64>>(50);
    }

    #[test]
    fn calendar_drains_any_multiset_in_order() {
        // Narrow and wide spreads stress dense buckets and year-skips.
        check_random_interleaving::<CalendarQueue<u64>>(50);
        check_random_interleaving::<CalendarQueue<u64>>(5_000_000);
    }

    #[test]
    fn calendar_event_behind_far_future_cursor() {
        // Regression: a shrink-resize aligns the cursor to a far-future
        // minimum; scheduling a new event earlier than that minimum (but
        // ≥ now) must pull the cursor back, not orphan the event.
        let mut q: CalendarQueue<u32> = CalendarQueue::new();
        // Grow the population so a later drain shrinks with a wide width.
        for i in 0..32 {
            q.schedule_at(i * 7, i as u32);
        }
        q.schedule_at(98_000_000, 100);
        q.schedule_at(105_000_000, 101);
        q.schedule_at(252_000_000, 102);
        // Drain the near events; the shrink leaves the cursor aligned to
        // the 98e6 minimum with a multi-million-ns bucket width.
        for i in 0..32 {
            assert_eq!(q.pop().unwrap().1, i as u32);
        }
        // New near-term event, far behind the cursor's window.
        q.schedule_at(q.now() + 50, 200);
        assert_eq!(q.pop().unwrap().1, 200, "near event must come first");
        assert_eq!(q.pop().unwrap().1, 100);
        assert_eq!(q.pop().unwrap().1, 101);
        assert_eq!(q.pop().unwrap().1, 102);
    }

    #[test]
    fn calendar_handles_far_future_gaps() {
        let mut q: CalendarQueue<u32> = CalendarQueue::new();
        // Cluster of near events, then a lone event years of buckets away.
        for i in 0..16 {
            q.schedule_at(i, i as u32);
        }
        q.schedule_at(1_000_000_000, 99);
        for i in 0..16 {
            assert_eq!(q.pop().unwrap().1, i as u32);
        }
        assert_eq!(q.pop().unwrap(), (1_000_000_000, 99));
        assert!(q.pop().is_none());
        // And the queue stays usable afterwards.
        q.schedule_in(5, 7);
        assert_eq!(q.pop().unwrap(), (1_000_000_005, 7));
    }

    #[test]
    fn identical_drain_order_across_implementations() {
        let mut lcg: u64 = 0xDEADBEEFCAFE;
        let mut step = move || {
            lcg = lcg
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            lcg >> 33
        };
        let schedule: Vec<u64> = (0..500).map(|_| step() % 1000).collect();
        let drain = |q: &mut dyn EventQueue<u64>| -> Vec<(SimTime, u64)> {
            for (i, &dt) in schedule.iter().enumerate() {
                q.schedule_in(dt, i as u64);
                if i % 3 == 0 {
                    q.pop();
                }
            }
            std::iter::from_fn(|| q.pop()).collect()
        };
        let mut heap = SlabEventQueue::new();
        let mut cal = CalendarQueue::new();
        assert_eq!(drain(&mut heap), drain(&mut cal));
    }

    #[test]
    fn time_conversions_roundtrip() {
        assert_eq!(secs_to_ns(1.5), 1_500_000_000);
        assert_eq!(secs_to_ns(-1.0), 0);
        assert!((ns_to_secs(secs_to_ns(0.1308)) - 0.1308).abs() < 1e-9);
    }

    #[test]
    fn slab_reuses_slots() {
        let mut q = SlabEventQueue::new();
        for i in 0..100 {
            q.schedule_at(i, i);
            q.pop();
        }
        // Steady-state schedule/pop churn must not grow the slab.
        assert!(q.slab.len() <= 2, "slab grew to {}", q.slab.len());
    }
}
