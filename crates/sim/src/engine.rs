//! Deterministic discrete-event core.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Virtual time in nanoseconds.
pub type SimTime = u64;

/// A deterministic event queue: ties in time break by insertion order, so a
/// simulation is a pure function of its configuration and seed.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<(SimTime, u64, EventSlot<E>)>>,
    seq: u64,
    now: SimTime,
}

/// Wrapper making the payload inert for ordering purposes.
#[derive(Debug)]
struct EventSlot<E>(E);

impl<E> PartialEq for EventSlot<E> {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}
impl<E> Eq for EventSlot<E> {}
impl<E> PartialOrd for EventSlot<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for EventSlot<E> {
    fn cmp(&self, _: &Self) -> std::cmp::Ordering {
        std::cmp::Ordering::Equal
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time 0.
    pub fn new() -> Self {
        Self { heap: BinaryHeap::new(), seq: 0, now: 0 }
    }

    /// Current virtual time (the timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` at absolute time `at` (clamped to now for
    /// past-dated events).
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        let at = at.max(self.now);
        self.heap.push(Reverse((at, self.seq, EventSlot(event))));
        self.seq += 1;
    }

    /// Schedules `event` `delay` nanoseconds from now.
    pub fn schedule_in(&mut self, delay: SimTime, event: E) {
        self.schedule_at(self.now.saturating_add(delay), event);
    }

    /// Pops the next event, advancing virtual time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let Reverse((at, _, EventSlot(event))) = self.heap.pop()?;
        self.now = at;
        Some((at, event))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events remain.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// Converts seconds to [`SimTime`] nanoseconds (non-negative).
pub fn secs_to_ns(seconds: f64) -> SimTime {
    (seconds.max(0.0) * 1e9).round() as SimTime
}

/// Converts [`SimTime`] nanoseconds to seconds.
pub fn ns_to_secs(ns: SimTime) -> f64 {
    ns as f64 / 1e9
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(30, "c");
        q.schedule_at(10, "a");
        q.schedule_at(20, "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_by_insertion() {
        let mut q = EventQueue::new();
        q.schedule_at(5, 1);
        q.schedule_at(5, 2);
        q.schedule_at(5, 3);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn now_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule_at(100, ());
        assert_eq!(q.now(), 0);
        q.pop();
        assert_eq!(q.now(), 100);
        // schedule_in is relative to the new now.
        q.schedule_in(50, ());
        assert_eq!(q.pop().unwrap().0, 150);
    }

    #[test]
    fn past_events_clamped_to_now() {
        let mut q = EventQueue::new();
        q.schedule_at(100, "late");
        q.pop();
        q.schedule_at(10, "early");
        assert_eq!(q.pop().unwrap().0, 100);
    }

    #[test]
    fn time_conversions_roundtrip() {
        assert_eq!(secs_to_ns(1.5), 1_500_000_000);
        assert_eq!(secs_to_ns(-1.0), 0);
        assert!((ns_to_secs(secs_to_ns(0.1308)) - 0.1308).abs() < 1e-9);
    }

    #[test]
    fn len_and_empty() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        q.schedule_at(1, ());
        assert_eq!(q.len(), 1);
    }
}
