//! Deterministic discrete-event core.
//!
//! # Hot-path layout
//!
//! The queue is **slab-backed**: event payloads are parked in a free-list
//! slab and never move after insertion, while the binary heap orders only
//! compact `(SimTime, seq, slot)` keys (24 bytes, `Copy`). Heap sift
//! operations therefore compare and move small integer triples instead of
//! full event payloads — for the cluster simulator's `Ev` enum (which
//! embeds directory messages with heap-allocated hop lists) this removes
//! both the payload moves and the padding traffic from every push/pop.
//!
//! Determinism: `seq` increments on every insertion and is the second key
//! component, so ties in time break by insertion order and a simulation
//! remains a pure function of its configuration and seed. The slab slot
//! index participates in the key only as an inert third component (a
//! given `seq` is unique, so it never actually decides an ordering).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Virtual time in nanoseconds.
pub type SimTime = u64;

/// A deterministic event queue: ties in time break by insertion order, so a
/// simulation is a pure function of its configuration and seed.
#[derive(Debug)]
pub struct EventQueue<E> {
    /// Min-heap over `(time, seq, slot)`; payloads live in `slab`.
    heap: BinaryHeap<Reverse<(SimTime, u64, u32)>>,
    /// Parked payloads, addressed by the key's slot component.
    slab: Vec<Option<E>>,
    /// Reusable slab slots.
    free: Vec<u32>,
    seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time 0.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            slab: Vec::new(),
            free: Vec::new(),
            seq: 0,
            now: 0,
        }
    }

    /// Current virtual time (the timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` at absolute time `at` (clamped to now for
    /// past-dated events).
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        let at = at.max(self.now);
        let slot = match self.free.pop() {
            Some(s) => {
                debug_assert!(self.slab[s as usize].is_none());
                self.slab[s as usize] = Some(event);
                s
            }
            None => {
                let s = u32::try_from(self.slab.len()).expect("event slab overflow");
                self.slab.push(Some(event));
                s
            }
        };
        self.heap.push(Reverse((at, self.seq, slot)));
        self.seq += 1;
    }

    /// Schedules `event` `delay` nanoseconds from now.
    pub fn schedule_in(&mut self, delay: SimTime, event: E) {
        self.schedule_at(self.now.saturating_add(delay), event);
    }

    /// Pops the next event, advancing virtual time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let Reverse((at, _, slot)) = self.heap.pop()?;
        let event = self.slab[slot as usize]
            .take()
            .expect("heap key without parked payload");
        self.free.push(slot);
        self.now = at;
        Some((at, event))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events remain.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// Converts seconds to [`SimTime`] nanoseconds (non-negative).
pub fn secs_to_ns(seconds: f64) -> SimTime {
    (seconds.max(0.0) * 1e9).round() as SimTime
}

/// Converts [`SimTime`] nanoseconds to seconds.
pub fn ns_to_secs(ns: SimTime) -> f64 {
    ns as f64 / 1e9
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(30, "c");
        q.schedule_at(10, "a");
        q.schedule_at(20, "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_by_insertion() {
        let mut q = EventQueue::new();
        q.schedule_at(5, 1);
        q.schedule_at(5, 2);
        q.schedule_at(5, 3);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_by_insertion_after_slot_reuse() {
        // Slab slots recycle in LIFO order; the FIFO tie-break must come
        // from `seq`, never from slot indices.
        let mut q = EventQueue::new();
        for i in 0..8 {
            q.schedule_at(1, i);
        }
        for expect in 0..8 {
            assert_eq!(q.pop().unwrap().1, expect);
        }
        // All eight slots are now on the free list (7 on top). Re-insert at
        // one shared timestamp and require insertion order again.
        for i in 100..108 {
            q.schedule_at(50, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (100..108).collect::<Vec<_>>());
    }

    #[test]
    fn now_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule_at(100, ());
        assert_eq!(q.now(), 0);
        q.pop();
        assert_eq!(q.now(), 100);
        // schedule_in is relative to the new now.
        q.schedule_in(50, ());
        assert_eq!(q.pop().unwrap().0, 150);
    }

    #[test]
    fn past_events_clamped_to_now() {
        let mut q = EventQueue::new();
        q.schedule_at(100, "late");
        q.pop();
        q.schedule_at(10, "early");
        assert_eq!(q.pop().unwrap().0, 100);
    }

    #[test]
    fn past_events_preserve_fifo_with_concurrent_now_events() {
        // A past-dated event is clamped to `now`; it must queue behind
        // events already scheduled at `now` (insertion order).
        let mut q = EventQueue::new();
        q.schedule_at(100, "first");
        q.pop();
        q.schedule_at(100, "second");
        q.schedule_at(5, "clamped");
        assert_eq!(q.pop().unwrap(), (100, "second"));
        assert_eq!(q.pop().unwrap(), (100, "clamped"));
    }

    #[test]
    fn time_conversions_roundtrip() {
        assert_eq!(secs_to_ns(1.5), 1_500_000_000);
        assert_eq!(secs_to_ns(-1.0), 0);
        assert!((ns_to_secs(secs_to_ns(0.1308)) - 0.1308).abs() < 1e-9);
    }

    #[test]
    fn len_and_empty() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        q.schedule_at(1, ());
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn drains_any_multiset_in_nondecreasing_fifo_order() {
        // Property-style: a deterministic pseudo-random interleaving of
        // schedules and pops must drain in nondecreasing time order with
        // FIFO ties, exercising slab reuse throughout.
        let mut lcg: u64 = 0x2545F4914F6CDD1D;
        let mut step = move || {
            lcg = lcg
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            lcg >> 33
        };
        let mut q = EventQueue::new();
        let mut drained: Vec<(SimTime, u64)> = Vec::new();
        // The loop index doubles as the payload: an insertion counter.
        for round in 0u64..2000 {
            let at = q.now() + step() % 50;
            q.schedule_at(at, round);
            // Pop roughly half the time to interleave slab reuse.
            if round % 2 == 1 {
                if let Some(ev) = q.pop() {
                    drained.push(ev);
                }
            }
        }
        while let Some(ev) = q.pop() {
            drained.push(ev);
        }
        assert_eq!(drained.len(), 2000);
        for pair in drained.windows(2) {
            let ((t0, s0), (t1, s1)) = (pair[0], pair[1]);
            assert!(t0 <= t1, "time went backwards: {t0} -> {t1}");
            if t0 == t1 {
                assert!(s0 < s1, "FIFO violated at t={t0}: {s0} before {s1}");
            }
        }
        // Every scheduled event came out exactly once.
        let mut ids: Vec<u64> = drained.iter().map(|&(_, s)| s).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..2000).collect::<Vec<_>>());
    }

    #[test]
    fn slab_reuses_slots() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule_at(i, i);
            q.pop();
        }
        // Steady-state schedule/pop churn must not grow the slab.
        assert!(q.slab.len() <= 2, "slab grew to {}", q.slab.len());
    }
}
