//! The discrete-event simulator as a [`Backend`].
//!
//! [`SimBackend`] turns a [`Scenario`] into the simulator's internal
//! [`SimConfig`], runs [`crate::simulate`], and folds the [`SimResult`]
//! into the unified [`RunReport`] — the same shape the threaded runtime
//! reports, so experiment drivers and the replication runner treat both
//! engines interchangeably.

use rocket_core::{Backend, BusyTimes, PerfLog, RocketError, RunReport, Scenario};

use crate::cluster::{simulate, SimConfig, SimNodeConfig, SimResult};
use crate::engine::Scheduler;

/// The DES execution engine (stateless; share one instance freely).
///
/// By default the shard count comes from the scenario's `sim_shards` knob;
/// [`SimBackend::sharded`] overrides it for every scenario the instance
/// runs (handy for benches that sweep shard counts over a fixed scenario).
/// Results are byte-identical either way — sharding changes wall-clock
/// time only.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimBackend {
    /// When set, overrides `Scenario::sim_shards`.
    shards: Option<usize>,
}

impl SimBackend {
    /// A backend that honours each scenario's own `sim_shards` knob.
    pub fn new() -> Self {
        Self::default()
    }

    /// A backend that runs every scenario on `shards` shards, ignoring the
    /// scenario's `sim_shards` knob.
    pub fn sharded(shards: usize) -> Self {
        Self {
            shards: Some(shards),
        }
    }
}

impl From<&Scenario> for SimConfig {
    fn from(s: &Scenario) -> Self {
        SimConfig {
            workload: s.workload.clone(),
            nodes: s
                .nodes
                .iter()
                .map(|n| SimNodeConfig {
                    gpus: n.gpus.clone(),
                    device_slots: n.device_slots,
                    host_slots: n.host_slots,
                })
                .collect(),
            distributed_cache: s.distributed_cache,
            hops: s.hops,
            job_limit: s.job_limit,
            cpu_threads: s.cpu_threads,
            leaf_pairs: s.leaf_pairs,
            storage_bandwidth: s.storage_bandwidth,
            storage_latency: s.storage_latency,
            net_bandwidth: s.net_bandwidth,
            net_latency: s.net_latency,
            seed: s.seed,
            record_completions: s.record_completions,
            scheduler: if s.calendar_queue {
                Scheduler::Calendar
            } else {
                Scheduler::SlabHeap
            },
            shards: s.sim_shards,
            shard_threads: 0,
            perf: PerfLog::disabled(),
        }
    }
}

/// Folds a [`SimResult`] into the unified report shape.
fn unified(r: SimResult, sim_shards: u32) -> RunReport {
    RunReport {
        backend: "sim",
        elapsed: r.makespan,
        items: r.items,
        pairs: r.pairs,
        failed_pairs: 0, // the simulator models no storage faults
        loads: r.loads,
        remote_fetches: r.remote_fetches,
        io_bytes: r.io_bytes,
        net_bytes: r.net_bytes,
        net_msgs: r.directory.messages_sent,
        steals: r.steals,
        busy: BusyTimes {
            preprocess: r.busy_preprocess,
            compare: r.busy_compare,
            h2d: r.busy_h2d,
            d2h: r.busy_d2h,
            cpu: r.busy_cpu,
            io: r.busy_io,
        },
        device_cache: r.device_cache,
        host_cache: r.host_cache,
        directory: r.directory,
        pairs_per_node: r.pairs_per_node,
        completions: r.completions,
        sim_shards,
        sim_windows: r.windows,
        degraded: false,
    }
}

impl Backend for SimBackend {
    fn name(&self) -> &'static str {
        "sim"
    }

    fn run(&self, scenario: &Scenario) -> Result<RunReport, RocketError> {
        self.run_with_perf(scenario, &PerfLog::disabled())
    }

    /// Same run, with the engine's perf instrumentation streaming into
    /// `perf`. The simulator buffers records out-of-band and folds them
    /// in after [`SimResult`] is final, so the report is byte-identical
    /// with recording on or off (`crates/sim/tests/perflog.rs` pins it).
    fn run_with_perf(&self, scenario: &Scenario, perf: &PerfLog) -> Result<RunReport, RocketError> {
        scenario.validate().map_err(RocketError::Config)?;
        let mut cfg = SimConfig::from(scenario);
        if let Some(shards) = self.shards {
            cfg.shards = shards;
        }
        cfg.perf = perf.clone();
        let shards = cfg.effective_shards() as u32;
        Ok(unified(simulate(&cfg), shards))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rocket_core::NodeSpec;
    use rocket_stats::Dist;

    fn toy_scenario() -> Scenario {
        let mut workload = rocket_core::WorkloadProfile::items_only(16);
        workload.file_bytes = 1_000_000;
        workload.item_bytes = 10_000_000;
        workload.parse = Dist::Constant(10e-3);
        workload.preprocess = Some(Dist::Constant(5e-3));
        workload.compare = Dist::Constant(1e-3);
        Scenario::builder()
            .workload(workload)
            .nodes(2, NodeSpec::uniform(1, 8, 16))
            .build()
    }

    #[test]
    fn scenario_round_trips_into_sim_config() {
        let s = toy_scenario();
        let cfg = SimConfig::from(&s);
        assert_eq!(cfg.nodes.len(), 2);
        assert_eq!(cfg.workload.items, 16);
        assert_eq!(cfg.seed, s.seed);
        assert_eq!(cfg.scheduler, Scheduler::SlabHeap);
        let cal = SimConfig::from(&{
            let mut s = s.clone();
            s.calendar_queue = true;
            s
        });
        assert_eq!(cal.scheduler, Scheduler::Calendar);
    }

    #[test]
    fn backend_runs_and_reports() {
        let s = toy_scenario();
        let r = SimBackend::new().run(&s).expect("sim run");
        assert_eq!(r.backend, "sim");
        assert_eq!(r.pairs, 16 * 15 / 2);
        assert!(r.elapsed > 0.0);
        assert!(r.r_factor() >= 1.0);
        assert_eq!(r.pairs_per_node.len(), 2);
    }

    #[test]
    fn invalid_scenario_rejected() {
        let mut s = toy_scenario();
        s.nodes.clear();
        assert!(SimBackend::new().run(&s).is_err());
    }

    #[test]
    fn sharded_backend_matches_sequential() {
        let s = toy_scenario();
        let seq = SimBackend::new().run(&s).unwrap();
        assert_eq!(seq.sim_shards, 1);
        assert!(seq.sim_windows > 0);
        let mut par = SimBackend::sharded(2).run(&s).unwrap();
        assert_eq!(par.sim_shards, 2);
        // Everything but the shard count itself is byte-identical.
        par.sim_shards = seq.sim_shards;
        assert_eq!(format!("{seq:?}"), format!("{par:?}"));
    }

    #[test]
    fn scenario_shard_knob_flows_through() {
        let mut s = toy_scenario();
        s.sim_shards = 2;
        let cfg = SimConfig::from(&s);
        assert_eq!(cfg.shards, 2);
        let r = SimBackend::new().run(&s).unwrap();
        assert_eq!(r.sim_shards, 2);
    }

    #[test]
    fn calendar_and_heap_schedulers_agree() {
        let s = toy_scenario();
        let heap = SimBackend::new().run(&s).unwrap();
        let cal = SimBackend::new()
            .run(&{
                let mut s = s.clone();
                s.calendar_queue = true;
                s
            })
            .unwrap();
        assert_eq!(format!("{heap:?}"), format!("{cal:?}"));
    }
}
