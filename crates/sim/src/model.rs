//! The paper's performance model (§6.1, Equations 1–5).
//!
//! A lower bound on the run time of an all-pairs workload on a hypothetical
//! system with infinite memory (perfect reuse, R = 1), infinite I/O
//! bandwidth, and perfectly overlapped processing:
//!
//! * Eq 1: `T_GPU = R·n·t_pre + C(n,2)·t_cmp`
//! * Eq 2: `T_CPU = R·n·t_parse + C(n,2)·t_post`
//! * Eq 3: `T_IO ≈ R·n·file_size / io_bandwidth`
//! * Eq 4: `T_min = n·t_pre + C(n,2)·t_cmp` (T_GPU at R = 1)
//! * Eq 5: `system efficiency = (T_min / p) / T_measured`
//!
//! All times are seconds on the baseline GPU (TitanX Maxwell); for
//! heterogeneous platforms `p` generalizes to the sum of relative compute
//! scales.

use rocket_core::WorkloadProfile;
use rocket_gpu::DeviceProfile;
use rocket_stats::Distribution;

/// Eq 1: total GPU processing time for a given reuse factor R.
pub fn t_gpu(w: &WorkloadProfile, r: f64) -> f64 {
    let pre = w.preprocess.as_ref().map_or(0.0, |d| d.mean());
    r * w.items as f64 * pre + w.pairs() as f64 * w.compare.mean()
}

/// Eq 2: total CPU processing time for a given reuse factor R.
pub fn t_cpu(w: &WorkloadProfile, r: f64) -> f64 {
    r * w.items as f64 * w.parse.mean() + w.pairs() as f64 * w.postprocess.mean()
}

/// Eq 3: I/O time estimate for a given reuse factor R and bandwidth
/// (bytes/second).
pub fn t_io(w: &WorkloadProfile, r: f64, io_bandwidth: f64) -> f64 {
    if !io_bandwidth.is_finite() || io_bandwidth <= 0.0 {
        return 0.0;
    }
    r * w.items as f64 * w.file_bytes as f64 / io_bandwidth
}

/// Eq 4: the lower bound on run time (`T_GPU` at `R = 1`), single baseline
/// GPU.
pub fn t_min(w: &WorkloadProfile) -> f64 {
    t_gpu(w, 1.0)
}

/// Aggregate compute capacity of a set of GPUs relative to the baseline
/// (1.0 per TitanX Maxwell).
pub fn capacity(gpus: &[DeviceProfile]) -> f64 {
    gpus.iter().map(|g| g.compute_scale).sum()
}

/// Eq 5: system efficiency of a measured run time on `gpus`.
pub fn system_efficiency(w: &WorkloadProfile, gpus: &[DeviceProfile], measured_secs: f64) -> f64 {
    if measured_secs <= 0.0 {
        return 0.0;
    }
    (t_min(w) / capacity(gpus)) / measured_secs
}

/// The modelled best-case run time: max of the three resource times, with
/// GPU capacity `cap` (Eq "perfect overlap" paragraph).
pub fn t_model(w: &WorkloadProfile, r: f64, cap: f64, io_bandwidth: f64) -> f64 {
    let gpu = t_gpu(w, r) / cap;
    let cpu = t_cpu(w, r); // CPU pool capacity folded into caller if needed
    let io = t_io(w, r, io_bandwidth);
    gpu.max(cpu).max(io)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rocket_apps::profiles;

    #[test]
    fn tmin_matches_hand_computation() {
        let w = profiles::forensics();
        // n·20.5ms + C(n,2)·1.1ms
        let expect = 4980.0 * 20.5e-3 + 12_397_710.0 * 1.1e-3;
        assert!((t_min(&w) - expect).abs() / expect < 1e-6);
    }

    #[test]
    fn forensics_single_node_runtime_magnitude() {
        // §6.3/Fig 8: the forensics run on one TitanX takes ~4 hours.
        let w = profiles::forensics();
        let t = t_min(&w);
        assert!(t > 3.0 * 3600.0 && t < 5.0 * 3600.0, "T_min = {t} s");
    }

    #[test]
    fn microscopy_tmin_is_compare_only() {
        let w = profiles::microscopy();
        assert!((t_min(&w) - w.pairs() as f64 * 564.3e-3).abs() < 1.0);
    }

    #[test]
    fn higher_r_increases_all_times() {
        let w = profiles::bioinformatics();
        assert!(t_gpu(&w, 5.0) > t_gpu(&w, 1.0));
        assert!(t_cpu(&w, 5.0) > t_cpu(&w, 1.0));
        assert!(t_io(&w, 5.0, 1e9) > t_io(&w, 1.0, 1e9));
    }

    #[test]
    fn efficiency_of_perfect_run_is_one() {
        let w = profiles::microscopy();
        let gpus = vec![DeviceProfile::titanx_maxwell(); 4];
        let perfect = t_min(&w) / 4.0;
        let eff = system_efficiency(&w, &gpus, perfect);
        assert!((eff - 1.0).abs() < 1e-12);
        // Slower measured run → lower efficiency.
        assert!(system_efficiency(&w, &gpus, perfect * 2.0) < 0.51);
    }

    #[test]
    fn heterogeneous_capacity_sums_scales() {
        let gpus = vec![DeviceProfile::k20m(), DeviceProfile::rtx2080ti()];
        assert!((capacity(&gpus) - 2.52).abs() < 1e-12);
    }

    #[test]
    fn infinite_bandwidth_makes_io_free() {
        let w = profiles::forensics();
        assert_eq!(t_io(&w, 3.0, f64::INFINITY), 0.0);
    }

    #[test]
    fn model_takes_binding_resource() {
        let w = profiles::forensics();
        // With massive R and slow storage, I/O dominates.
        let io_bound = t_model(&w, 100.0, 1.0, 1e6);
        assert!((io_bound - t_io(&w, 100.0, 1e6)).abs() < 1e-6);
        // With R = 1 and fast storage, the GPU dominates.
        let gpu_bound = t_model(&w, 1.0, 1.0, f64::INFINITY);
        assert!((gpu_bound - t_gpu(&w, 1.0)).abs() < 1e-6);
    }
}
