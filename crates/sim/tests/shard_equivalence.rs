//! Sequential vs sharded engine: byte-identical results, always.
//!
//! The conservative time-window parallel engine (`SimConfig::shards > 1`)
//! promises results byte-identical to the sequential engine for *every*
//! shard count and thread count, on both event-queue implementations.
//! These tests pin that promise on the benchmarked configurations
//! (`rocket_bench::anchors` builds the same clusters through the
//! `Scenario` API) and fuzz it over the full knob grid on a stochastic
//! heterogeneous cluster — the case most likely to expose ordering
//! divergence, since stage times come from per-node RNG streams.

use rocket_apps::WorkloadProfile;
use rocket_sim::{simulate, Scheduler, SimConfig, SimNodeConfig, SimResult};
use rocket_stats::Dist;

/// The `benches/des.rs` anchor workload, duplicated at the `SimConfig`
/// level (rocket-bench depends on rocket-sim, so this crate cannot import
/// the anchors module without a cycle).
fn bench_workload(items: u64) -> WorkloadProfile {
    WorkloadProfile {
        name: "bench",
        items,
        file_bytes: 1_000_000,
        item_bytes: 10_000_000,
        parse: Dist::Constant(10e-3),
        preprocess: Some(Dist::Constant(5e-3)),
        compare: Dist::Constant(1e-3),
        postprocess: Dist::Constant(0.0),
        paper_device_slots: 16,
        paper_host_slots: 64,
    }
}

/// A workload with stochastic stage times: shard-order bugs that constant
/// stage times mask (ties everywhere) show up as RNG-stream divergence.
fn noisy_workload(items: u64) -> WorkloadProfile {
    WorkloadProfile {
        name: "noisy",
        items,
        file_bytes: 1_000_000,
        item_bytes: 10_000_000,
        parse: Dist::Uniform {
            lo: 5e-3,
            hi: 15e-3,
        },
        preprocess: Some(Dist::Normal {
            mean: 5e-3,
            std: 1e-3,
        }),
        compare: Dist::Uniform {
            lo: 0.5e-3,
            hi: 1.5e-3,
        },
        postprocess: Dist::Constant(0.1e-3),
        paper_device_slots: 16,
        paper_host_slots: 64,
    }
}

/// Debug covers every field of the result — counters, busy times,
/// per-node series, window count — so equality here is byte-identical
/// results, not just matching headline numbers.
fn run_bytes(mut cfg: SimConfig, shards: usize, threads: usize, scheduler: Scheduler) -> String {
    cfg.shards = shards;
    cfg.shard_threads = threads;
    cfg.scheduler = scheduler;
    format!("{:?}", simulate(&cfg))
}

fn assert_equivalent(cfg: &SimConfig, label: &str) {
    let baseline = run_bytes(cfg.clone(), 1, 1, Scheduler::SlabHeap);
    for scheduler in [Scheduler::SlabHeap, Scheduler::Calendar] {
        for shards in [1usize, 2, 4, 8, 13] {
            for threads in [1usize, 4] {
                let got = run_bytes(cfg.clone(), shards, threads, scheduler);
                assert_eq!(
                    got, baseline,
                    "{label}: K = {shards}, threads = {threads}, {scheduler:?} \
                     diverged from the sequential engine"
                );
            }
        }
    }
}

#[test]
fn four_node_bench_anchor_is_shard_invariant() {
    // The four-node bench anchor's cluster at n = 48 — the 20-cell knob
    // grid keeps the full anchor (n = 96) out of debug-build reach, and
    // shard invariance does not depend on the item count.
    let cfg = SimConfig::cluster(
        bench_workload(48),
        vec![SimNodeConfig::uniform(1, 16, 32); 4],
    );
    assert_equivalent(&cfg, "four_nodes_n48_distcache");
}

#[test]
fn heterogeneous_noisy_cluster_is_shard_invariant() {
    // 13 nodes of three shapes: shard counts {2, 4, 8, 13} all split this
    // cluster unevenly, and 13 shards means one node per shard.
    let mut nodes = Vec::new();
    for i in 0..13usize {
        nodes.push(match i % 3 {
            0 => SimNodeConfig::uniform(1, 8, 16),
            1 => SimNodeConfig::uniform(2, 12, 24),
            _ => SimNodeConfig::uniform(4, 16, 32),
        });
    }
    let mut cfg = SimConfig::cluster(noisy_workload(64), nodes);
    cfg.net_latency = 200e-6; // cloud-scale lookahead, many short windows
    assert_equivalent(&cfg, "heterogeneous_noisy_13_nodes");
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "heavy: runs in release (CI tests --release)"
)]
fn sixteen_node_anchor_spot_check() {
    // The large bench anchor (64 GPUs, n = 256, 32 640 pairs) once at
    // K = 8: too heavy for the full grid in debug builds, but the headline
    // configuration deserves a direct sequential-vs-sharded comparison.
    let cfg = SimConfig::cluster(
        bench_workload(256),
        vec![SimNodeConfig::uniform(4, 24, 96); 16],
    );
    let seq = run_bytes(cfg.clone(), 1, 1, Scheduler::SlabHeap);
    let par = run_bytes(cfg.clone(), 8, 4, Scheduler::SlabHeap);
    assert_eq!(par, seq, "sixteen-node anchor diverged at K = 8");
}

#[test]
fn window_count_is_shard_invariant_and_reported() {
    let cfg = SimConfig::cluster(
        bench_workload(32),
        vec![SimNodeConfig::uniform(1, 8, 16); 4],
    );
    let count = |shards: usize| -> SimResult {
        let mut c = cfg.clone();
        c.shards = shards;
        c.shard_threads = 1;
        simulate(&c)
    };
    let seq = count(1);
    assert!(seq.windows > 0, "sequential run counted no windows");
    for shards in [2usize, 4, 13] {
        assert_eq!(count(shards).windows, seq.windows, "K = {shards}");
    }
}
