//! Same-seed ⇒ identical-report regression tests for the refactored engine.
//!
//! The hot-path overhaul (slab-backed event queue, dense state tables,
//! zero-clone samplers) must not perturb simulation results: a run is a
//! pure function of its `SimConfig` + seed. These tests lock that in by
//! requiring *byte-identical* full reports — every counter, busy time, and
//! per-node series — across repeated runs of the exact configurations the
//! `des` criterion benchmarks measure.

use rocket_apps::WorkloadProfile;
use rocket_sim::{simulate, SimConfig, SimNodeConfig, SimResult};
use rocket_stats::Dist;

/// The `benches/des.rs` workload, duplicated here so the regression pins
/// the benchmarked configuration byte-for-byte.
fn bench_workload(items: u64) -> WorkloadProfile {
    WorkloadProfile {
        name: "bench",
        items,
        file_bytes: 1_000_000,
        item_bytes: 10_000_000,
        parse: Dist::Constant(10e-3),
        preprocess: Some(Dist::Constant(5e-3)),
        compare: Dist::Constant(1e-3),
        postprocess: Dist::Constant(0.0),
        paper_device_slots: 16,
        paper_host_slots: 64,
    }
}

/// Renders every field of the report (Debug covers the whole struct) so a
/// comparison is sensitive to any divergence, not just headline numbers.
fn report_bytes(r: &SimResult) -> String {
    format!("{r:?}")
}

#[test]
fn single_node_n96_same_seed_identical_report() {
    let cfg = SimConfig::cluster(bench_workload(96), vec![SimNodeConfig::uniform(1, 32, 64)]);
    let a = simulate(&cfg);
    let b = simulate(&cfg);
    assert_eq!(a.pairs, 96 * 95 / 2);
    assert_eq!(report_bytes(&a), report_bytes(&b));
}

#[test]
fn four_nodes_n96_distcache_same_seed_identical_report() {
    let cfg = SimConfig::cluster(
        bench_workload(96),
        vec![SimNodeConfig::uniform(1, 16, 32); 4],
    );
    assert!(
        cfg.distributed_cache,
        "cluster defaults enable the distcache"
    );
    let a = simulate(&cfg);
    let b = simulate(&cfg);
    assert_eq!(a.pairs, 96 * 95 / 2);
    assert!(a.steals > 0, "multi-node run must exercise work stealing");
    assert_eq!(report_bytes(&a), report_bytes(&b));
}

#[test]
fn stochastic_stage_times_same_seed_identical_report() {
    // Randomized stage distributions exercise the RNG-dependent paths; a
    // different seed must (overwhelmingly) give a different report, while
    // the same seed reproduces it exactly.
    let mut workload = bench_workload(48);
    workload.parse = Dist::normal_nonneg(10e-3, 2e-3);
    workload.compare = Dist::LogNormal {
        mean: 1e-3,
        std: 0.4e-3,
    };
    workload.postprocess = Dist::Exponential { mean: 0.2e-3 };
    let mut cfg = SimConfig::cluster(workload, vec![SimNodeConfig::uniform(2, 16, 32); 2]);
    let a = simulate(&cfg);
    let b = simulate(&cfg);
    assert_eq!(report_bytes(&a), report_bytes(&b));

    cfg.seed ^= 1;
    let c = simulate(&cfg);
    assert_ne!(
        report_bytes(&a),
        report_bytes(&c),
        "different seed should perturb a stochastic run"
    );
}

#[test]
fn calendar_queue_reproduces_slab_heap_reports() {
    // The scheduler is a pure implementation detail: the calendar queue
    // must reproduce the slab heap's report byte-for-byte on the bench
    // configurations (single-node, multi-node, stochastic stage times).
    use rocket_sim::Scheduler;
    let mut stochastic = bench_workload(48);
    stochastic.parse = Dist::normal_nonneg(10e-3, 2e-3);
    stochastic.compare = Dist::LogNormal {
        mean: 1e-3,
        std: 0.4e-3,
    };
    let configs = [
        SimConfig::cluster(bench_workload(96), vec![SimNodeConfig::uniform(1, 32, 64)]),
        SimConfig::cluster(
            bench_workload(96),
            vec![SimNodeConfig::uniform(1, 16, 32); 4],
        ),
        SimConfig::cluster(stochastic, vec![SimNodeConfig::uniform(2, 16, 32); 2]),
    ];
    for mut cfg in configs {
        cfg.scheduler = Scheduler::SlabHeap;
        let heap = simulate(&cfg);
        cfg.scheduler = Scheduler::Calendar;
        let calendar = simulate(&cfg);
        assert_eq!(report_bytes(&heap), report_bytes(&calendar));
    }
}

#[test]
fn completions_recorded_runs_identically() {
    // `record_completions` adds the per-GPU timestamp series to the report;
    // it must be deterministic too (Fig 14 reproductions depend on it).
    let mut cfg = SimConfig::cluster(
        bench_workload(32),
        vec![SimNodeConfig::uniform(2, 16, 32); 2],
    );
    cfg.record_completions = true;
    let a = simulate(&cfg);
    let b = simulate(&cfg);
    assert!(a.completions.is_some());
    assert_eq!(report_bytes(&a), report_bytes(&b));
}
