//! Perf-log pipeline through the simulator: recording never changes
//! results, the record stream is deterministic across thread counts, and
//! the JSONL → query-API → rollup chain round-trips a real run.
//!
//! The determinism bar matches `shard_equivalence.rs`: Debug formatting
//! covers every field, so string equality is byte-identical data.

use rocket_apps::WorkloadProfile;
use rocket_core::{Axis, Backend, NodeSpec, PerfKind, PerfLog, PerfRollup, Scenario, Study, Sweep};
use rocket_sim::{simulate, SimBackend, SimConfig, SimNodeConfig};
use rocket_stats::Dist;
use rocket_trace::perflog::{parse_jsonl, write_jsonl};
use rocket_trace::PerfMeta;

/// Stochastic stage times (same rationale as the shard-equivalence
/// suite): constant-time workloads tie everywhere and mask ordering bugs
/// that would perturb either the results or the record stream.
fn noisy_workload(items: u64) -> WorkloadProfile {
    WorkloadProfile {
        name: "noisy",
        items,
        file_bytes: 1_000_000,
        item_bytes: 10_000_000,
        parse: Dist::Uniform {
            lo: 5e-3,
            hi: 15e-3,
        },
        preprocess: Some(Dist::Normal {
            mean: 5e-3,
            std: 1e-3,
        }),
        compare: Dist::Uniform {
            lo: 0.5e-3,
            hi: 1.5e-3,
        },
        postprocess: Dist::Constant(0.1e-3),
        paper_device_slots: 16,
        paper_host_slots: 64,
    }
}

/// A 4-node distributed-cache scenario small enough for debug builds but
/// busy enough to exercise every record site (loads, probes, steals).
fn scenario() -> Scenario {
    Scenario::builder()
        .workload(noisy_workload(32))
        .nodes(4, NodeSpec::uniform(1, 8, 16))
        .build()
}

#[test]
fn enabling_perf_logging_never_changes_results() {
    let s = scenario();
    for backend in [SimBackend::new(), SimBackend::sharded(4)] {
        let plain = backend.run(&s).expect("plain run");
        let perf = PerfLog::enabled();
        let logged = backend.run_with_perf(&s, &perf).expect("logged run");
        assert_eq!(
            format!("{plain:?}"),
            format!("{logged:?}"),
            "perf logging changed the report"
        );
        assert!(!perf.is_empty(), "enabled log collected nothing");
    }
}

#[test]
fn record_stream_is_thread_invariant() {
    // Same shard count, different worker thread counts: the fold order is
    // shard order then driver, so both the result and the record stream
    // must be byte-identical.
    let run = |threads: usize| {
        let mut cfg = SimConfig::cluster(
            noisy_workload(32),
            vec![SimNodeConfig::uniform(1, 8, 16); 4],
        );
        cfg.shards = 4;
        cfg.shard_threads = threads;
        cfg.perf = PerfLog::enabled();
        let result = format!("{:?}", simulate(&cfg));
        (result, cfg.perf.take())
    };
    let (res1, rec1) = run(1);
    let (res4, rec4) = run(4);
    assert_eq!(res1, res4, "results diverged across thread counts");
    assert!(!rec1.is_empty());
    assert_eq!(
        format!("{rec1:?}"),
        format!("{rec4:?}"),
        "record stream diverged across thread counts"
    );
    // The rollup (percentiles included) is therefore byte-stable too.
    assert_eq!(
        PerfRollup::from_records(&rec1).to_json(),
        PerfRollup::from_records(&rec4).to_json()
    );
}

#[test]
fn jsonl_round_trips_a_real_run() {
    let perf = PerfLog::enabled();
    SimBackend::new()
        .run_with_perf(&scenario(), &perf)
        .expect("run");
    let records = perf.take();
    let meta = PerfMeta {
        run: "roundtrip".into(),
        cell: Some(3),
        backend: "sim".into(),
    };
    let text = write_jsonl(&meta, &records);
    let (meta2, records2) = parse_jsonl(&text).expect("parse back");
    assert_eq!(meta2.run, "roundtrip");
    assert_eq!(meta2.cell, Some(3));
    assert_eq!(meta2.backend, "sim");
    assert_eq!(records, records2, "records did not round-trip");
}

#[test]
fn rollup_matches_run_counters() {
    let s = scenario();
    let perf = PerfLog::enabled();
    let r = SimBackend::new().run_with_perf(&s, &perf).expect("run");
    let records = perf.take();
    let rollup = PerfRollup::from_records(&records);
    assert_eq!(rollup.records, records.len() as u64);
    assert!(rollup.span_ns > 0);
    // One Compare record per pair, one Steal record per counted steal:
    // the rollup must agree with the report's own counters.
    let compares = rollup.stage(PerfKind::Compare).expect("compare stage");
    assert_eq!(compares.count, r.pairs);
    assert!(compares.p50_ns > 0 && compares.p99_ns >= compares.p50_ns);
    assert_eq!(rollup.steals, r.steals);
    // 32 items on 4 nodes with a distributed cache: loads and probes both
    // happen, so the cache/directory counters are live, not vacuous.
    assert!(r.loads > 0);
    assert!(rollup.probes > 0);
}

#[test]
fn study_pipeline_writes_per_cell_logs() {
    let dir = std::env::temp_dir().join(format!("rocket-perflog-study-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let sweep = Sweep::over(scenario())
        .axis(Axis::tag("variant", ["a", "b"]))
        .try_build()
        .expect("sweep");
    let report = Study::new("perfstudy")
        .perf_log_dir(&dir)
        .run(&SimBackend::new(), &sweep)
        .expect("study");
    assert_eq!(report.cells.len(), 2);
    for cell in &report.cells {
        let rollup = cell.perf.as_ref().expect("cell rollup");
        assert!(rollup.records > 0);
        let path = dir.join(format!("perfstudy-cell{}.perflog.jsonl", cell.cell));
        let text = std::fs::read_to_string(&path).expect("perf log file");
        let (meta, records) = parse_jsonl(&text).expect("file parses");
        assert_eq!(meta.run, "perfstudy");
        assert_eq!(meta.cell, Some(cell.cell as u64));
        assert_eq!(records.len() as u64, rollup.records);
    }
    // The rollup reaches both serialized forms: perf columns in CSV,
    // a "perf" object per cell in JSON.
    let csv = report.to_csv();
    assert!(csv.lines().next().unwrap().contains("read_p50_ns"));
    assert!(report.to_json().contains("\"perf\""));
    let _ = std::fs::remove_dir_all(&dir);
}
