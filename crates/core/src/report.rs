//! The unified run report every [`crate::Backend`] produces.
//!
//! Both execution engines — the threaded runtime over virtual devices and
//! the discrete-event simulator — fold their outcome into the same
//! [`RunReport`], so experiment drivers, replication runners, and examples
//! aggregate one shape regardless of how a scenario was executed.

use rocket_cache::{CacheStats, DirectoryStats};
use rocket_trace::ThroughputSeries;

/// Formats an `f64` as a JSON number (`null` for non-finite values, which
/// JSON cannot represent).
pub(crate) fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".into()
    }
}

/// Appends `s` as a JSON string literal (with escaping).
pub(crate) fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_u64_array(out: &mut String, values: impl Iterator<Item = u64>) {
    out.push('[');
    for (i, v) in values.enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&v.to_string());
    }
    out.push(']');
}

fn push_cache_json(out: &mut String, s: &CacheStats) {
    out.push_str(&format!(
        "{{\"hits\":{},\"hits_pending\":{},\"misses\":{},\"capacity_stalls\":{},\
         \"evictions\":{},\"aborts\":{},\"hit_ratio\":{}}}",
        s.hits,
        s.hits_pending,
        s.misses,
        s.capacity_stalls,
        s.evictions,
        s.aborts,
        json_f64(s.hit_ratio()),
    ));
}

/// Busy seconds per resource class (the paper's Fig 8 / Fig 10 rows).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BusyTimes {
    /// GPU pre-processing kernels.
    pub preprocess: f64,
    /// GPU comparison kernels.
    pub compare: f64,
    /// Host-to-device copy engines.
    pub h2d: f64,
    /// Device-to-host copy engines.
    pub d2h: f64,
    /// CPU pools (parse / post-process).
    pub cpu: f64,
    /// Central storage pipe.
    pub io: f64,
}

impl BusyTimes {
    /// `(label, seconds)` rows in the paper's reporting order.
    pub fn rows(&self) -> [(&'static str, f64); 6] {
        [
            ("GPU (preprocess)", self.preprocess),
            ("GPU (compare)", self.compare),
            ("CPU", self.cpu),
            ("CPU→GPU", self.h2d),
            ("GPU→CPU", self.d2h),
            ("IO", self.io),
        ]
    }
}

/// Outcome of running one [`crate::Scenario`] on one [`crate::Backend`].
///
/// `elapsed` is wall-clock seconds for the threaded runtime and virtual
/// (simulated) seconds for the DES backend; every other field has the same
/// meaning on both. Counters a backend cannot observe are zero (`io_bytes`
/// / `net_bytes` / busy times on the threaded runtime when tracing is off).
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Name of the backend that produced the report.
    pub backend: &'static str,
    /// Run time in seconds (wall clock or virtual time).
    pub elapsed: f64,
    /// Items in the data set.
    pub items: u64,
    /// Pairs completed.
    pub pairs: u64,
    /// Pairs that failed permanently.
    pub failed_pairs: u64,
    /// Executions of the load pipeline ℓ cluster-wide.
    pub loads: u64,
    /// Items served from remote host caches (level-3 hits).
    pub remote_fetches: u64,
    /// Bytes read from central storage.
    pub io_bytes: u64,
    /// Bytes moved between nodes (item fetches).
    pub net_bytes: u64,
    /// Messages between nodes (threaded runtime: transport messages sent;
    /// simulator: distributed-directory protocol messages).
    pub net_msgs: u64,
    /// Work-steal count (blocks moved between workers/nodes).
    pub steals: u64,
    /// Busy seconds per resource class.
    pub busy: BusyTimes,
    /// Merged device-cache counters (level 1).
    pub device_cache: CacheStats,
    /// Merged host-cache counters (level 2).
    pub host_cache: CacheStats,
    /// Merged distributed-lookup counters (level 3, Fig 11).
    pub directory: DirectoryStats,
    /// Pairs completed per node.
    pub pairs_per_node: Vec<u64>,
    /// Per-GPU completion timestamps (only when the scenario records them).
    pub completions: Option<ThroughputSeries>,
    /// Shards the DES backend ran on (0 for backends without sharding).
    pub sim_shards: u32,
    /// Time windows the sharded DES entered (invariant under the shard
    /// count; 0 for backends without sharding).
    pub sim_windows: u64,
    /// True when fault handling touched this run — its work was re-dealt
    /// after a worker loss, or it finished below the cluster's quorum — so
    /// totals are correct but timings may not be representative. In-process
    /// backends always report `false`.
    pub degraded: bool,
}

impl RunReport {
    /// The paper's R metric: loads relative to the data-set size (§6.1).
    pub fn r_factor(&self) -> f64 {
        if self.items == 0 {
            0.0
        } else {
            self.loads as f64 / self.items as f64
        }
    }

    /// Average throughput in pairs/second (Fig 13's metric).
    pub fn throughput(&self) -> f64 {
        if self.elapsed <= 0.0 {
            0.0
        } else {
            self.pairs as f64 / self.elapsed
        }
    }

    /// Average I/O usage in MB/s (Fig 12 bottom row; 0 when the backend
    /// does not track I/O bytes).
    pub fn avg_io_mbps(&self) -> f64 {
        if self.elapsed <= 0.0 {
            0.0
        } else {
            self.io_bytes as f64 / 1e6 / self.elapsed
        }
    }

    /// Serializes the report as one JSON object (hand-rolled writer — the
    /// crate registry is unreachable, so no serde). Derived metrics
    /// (`r_factor`, `throughput`) are included so downstream tooling needs
    /// no formulas; the optional per-GPU completion series is omitted (it
    /// is plot data, not a summary).
    ///
    /// Intended for cross-PR performance tracking: one report per line of
    /// a JSON-Lines file diffs cleanly between runs (see `repro --json`).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(512);
        out.push_str("{\"backend\":");
        push_json_str(&mut out, self.backend);
        out.push_str(&format!(
            ",\"elapsed_s\":{},\"items\":{},\"pairs\":{},\"failed_pairs\":{},\
             \"loads\":{},\"remote_fetches\":{},\"io_bytes\":{},\"net_bytes\":{},\
             \"net_msgs\":{},\"steals\":{},\"r_factor\":{},\"throughput_pairs_s\":{}",
            json_f64(self.elapsed),
            self.items,
            self.pairs,
            self.failed_pairs,
            self.loads,
            self.remote_fetches,
            self.io_bytes,
            self.net_bytes,
            self.net_msgs,
            self.steals,
            json_f64(self.r_factor()),
            json_f64(self.throughput()),
        ));
        out.push_str(&format!(
            ",\"busy_s\":{{\"preprocess\":{},\"compare\":{},\"h2d\":{},\"d2h\":{},\
             \"cpu\":{},\"io\":{}}}",
            json_f64(self.busy.preprocess),
            json_f64(self.busy.compare),
            json_f64(self.busy.h2d),
            json_f64(self.busy.d2h),
            json_f64(self.busy.cpu),
            json_f64(self.busy.io),
        ));
        out.push_str(",\"device_cache\":");
        push_cache_json(&mut out, &self.device_cache);
        out.push_str(",\"host_cache\":");
        push_cache_json(&mut out, &self.host_cache);
        out.push_str(&format!(
            ",\"directory\":{{\"hits_at_hop\":{},\"misses\":{},\"messages_sent\":{}}}",
            {
                let mut hops = String::new();
                push_u64_array(&mut hops, self.directory.hits_at_hop.iter().copied());
                hops
            },
            self.directory.misses,
            self.directory.messages_sent,
        ));
        out.push_str(",\"pairs_per_node\":");
        push_u64_array(&mut out, self.pairs_per_node.iter().copied());
        out.push_str(&format!(
            ",\"sim_shards\":{},\"sim_windows\":{}",
            self.sim_shards, self.sim_windows
        ));
        out.push_str(&format!(",\"degraded\":{}", self.degraded));
        out.push('}');
        out
    }

    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "[{}] {} pairs in {:.3}s | R = {:.2} | {:.1} pairs/s | dev hits {:.0}% | host hits {:.0}%",
            self.backend,
            self.pairs,
            self.elapsed,
            self.r_factor(),
            self.throughput(),
            self.device_cache.hit_ratio() * 100.0,
            self.host_cache.hit_ratio() * 100.0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> RunReport {
        RunReport {
            backend: "test",
            elapsed: 2.0,
            items: 10,
            pairs: 45,
            failed_pairs: 0,
            loads: 25,
            remote_fetches: 3,
            io_bytes: 4_000_000,
            net_bytes: 0,
            net_msgs: 0,
            steals: 1,
            busy: BusyTimes::default(),
            device_cache: CacheStats::default(),
            host_cache: CacheStats::default(),
            directory: DirectoryStats::default(),
            pairs_per_node: vec![45],
            completions: None,
            sim_shards: 0,
            sim_windows: 0,
            degraded: false,
        }
    }

    #[test]
    fn derived_metrics() {
        let r = report();
        assert!((r.r_factor() - 2.5).abs() < 1e-12);
        assert!((r.throughput() - 22.5).abs() < 1e-12);
        assert!((r.avg_io_mbps() - 2.0).abs() < 1e-12);
        assert!(r.summary().contains("45 pairs"));
    }

    #[test]
    fn zero_guards() {
        let mut r = report();
        r.items = 0;
        r.elapsed = 0.0;
        assert_eq!(r.r_factor(), 0.0);
        assert_eq!(r.throughput(), 0.0);
        assert_eq!(r.avg_io_mbps(), 0.0);
    }

    #[test]
    fn json_is_balanced_and_carries_the_metrics() {
        let mut r = report();
        r.pairs_per_node = vec![20, 25];
        let json = r.to_json();
        // Balanced structure (no serde available to parse, so check the
        // invariants a JSON parser would).
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.starts_with('{') && json.ends_with('}'));
        for needle in [
            "\"backend\":\"test\"",
            "\"elapsed_s\":2",
            "\"pairs\":45",
            "\"r_factor\":2.5",
            "\"throughput_pairs_s\":22.5",
            "\"pairs_per_node\":[20,25]",
            "\"net_bytes\":0",
            "\"hits_at_hop\":[]",
            "\"sim_shards\":0",
            "\"sim_windows\":0",
            "\"degraded\":false",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
    }

    #[test]
    fn json_strings_escaped_and_nonfinite_nulled() {
        let mut out = String::new();
        push_json_str(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
        assert_eq!(json_f64(1.5), "1.5");
    }

    #[test]
    fn busy_rows_order() {
        let b = BusyTimes {
            preprocess: 1.0,
            compare: 2.0,
            h2d: 3.0,
            d2h: 4.0,
            cpu: 5.0,
            io: 6.0,
        };
        let rows = b.rows();
        assert_eq!(rows[0], ("GPU (preprocess)", 1.0));
        assert_eq!(rows[2], ("CPU", 5.0));
        assert_eq!(rows[5], ("IO", 6.0));
    }
}
