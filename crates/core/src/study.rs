//! Studies: drive a [`Sweep`] through any [`Backend`] into a structured,
//! machine-readable [`StudyReport`].
//!
//! A [`Study`] is the execution policy around a parameter grid: how many
//! replications each cell gets ([`ReplicationPolicy`]) and how many cells
//! run concurrently ([`Study::threads`]). The result is one
//! [`CellReport`] per grid cell — its coordinates, its scenario, and the
//! full [`ReplicationReport`] — plus serializers (`to_json`, JSON-Lines,
//! `to_csv`) and a rendered comparison table.
//!
//! Determinism: every cell is an independent pure function of its
//! scenario and the policy's seed schedule, results are folded in cell
//! order after all cells complete, so the report is byte-identical
//! regardless of cell parallelism (the test suite asserts
//! `threads(1) == threads(4)`).
//!
//! ```
//! use rocket_core::{Axis, NodeSpec, Scenario, Study, Sweep};
//!
//! # struct NullBackend;
//! # impl rocket_core::Backend for NullBackend {
//! #     fn name(&self) -> &'static str { "sim" }
//! #     fn run(&self, s: &Scenario) -> Result<rocket_core::RunReport, rocket_core::RocketError> {
//! #         Ok(rocket_core::RunReport {
//! #             backend: "sim", elapsed: 1.0, items: s.workload.items,
//! #             pairs: s.workload.pairs(), failed_pairs: 0, loads: s.workload.items,
//! #             remote_fetches: 0, io_bytes: 0, net_bytes: 0, net_msgs: 0, steals: 0,
//! #             busy: Default::default(), device_cache: Default::default(),
//! #             host_cache: Default::default(), directory: Default::default(),
//! #             pairs_per_node: vec![s.workload.pairs()], completions: None,
//! #             sim_shards: 0, sim_windows: 0,
//! #             degraded: false,
//! #         })
//! #     }
//! # }
//! let base = Scenario::builder()
//!     .items(32)
//!     .node(NodeSpec::uniform(1, 8, 16))
//!     .build();
//! let sweep = Sweep::over(base)
//!     .axis(Axis::nodes([1, 2]))
//!     .try_build()
//!     .unwrap();
//! let report = Study::new("scaling").run(&NullBackend, &sweep).unwrap();
//! assert_eq!(report.cells.len(), 2);
//! println!("{}", report.render());
//! ```

use std::path::PathBuf;

use rocket_sanitize::Mutex;

use rocket_steal::StealPool;
use rocket_trace::perflog::write_jsonl;
use rocket_trace::{PerfKind, PerfLog, PerfMeta, PerfRollup};

use crate::backend::Backend;
use crate::error::RocketError;
use crate::replications::{ReplicationReport, Replications};
use crate::report::{json_f64, push_json_str, RunReport};
use crate::scenario::Scenario;
use crate::sweep::{AxisValue, Sweep};

/// How many replications each grid cell receives.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ReplicationPolicy {
    /// One run per cell, under the cell scenario's own seed (the default;
    /// a single run of cell `c` equals `backend.run(&c.scenario)`).
    Once,
    /// `n` replications per cell, seeds derived from the cell scenario's
    /// seed by the deterministic stream of [`Replications::new`].
    Fixed(usize),
    /// Adaptive replication per cell: batches until the elapsed-time 95%
    /// CI half-width is within `rel_half_width` of the mean, capped at
    /// `max_n` runs (see [`Replications::until_ci`]).
    UntilCi {
        /// Target relative CI half-width (e.g. `0.05` for ±5%).
        rel_half_width: f64,
        /// Replication cap.
        max_n: usize,
    },
}

impl ReplicationPolicy {
    /// One run per cell (the default policy).
    pub fn once() -> Self {
        ReplicationPolicy::Once
    }

    /// `n` replications per cell.
    pub fn fixed(n: usize) -> Self {
        ReplicationPolicy::Fixed(n)
    }

    /// Adaptive replications per cell (see [`Replications::until_ci`]).
    pub fn until_ci(rel_half_width: f64, max_n: usize) -> Self {
        ReplicationPolicy::UntilCi {
            rel_half_width,
            max_n,
        }
    }
}

/// Drives a [`Sweep`] through a [`Backend`]: per-cell replication policy
/// plus optional parallelism across cells.
#[derive(Debug, Clone)]
pub struct Study {
    name: String,
    policy: ReplicationPolicy,
    threads: usize,
    perf_dir: Option<PathBuf>,
}

impl Study {
    /// A study named `name` (the experiment label carried by the report),
    /// defaulting to [`ReplicationPolicy::Once`] and sequential cells.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            policy: ReplicationPolicy::Once,
            threads: 1,
            perf_dir: None,
        }
    }

    /// Sets the per-cell replication policy.
    pub fn replication(mut self, policy: ReplicationPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Cell parallelism: how many grid cells run concurrently (`1`, the
    /// default, runs cells sequentially; `0` uses the machine's available
    /// parallelism). The report does not depend on this — only wall-clock
    /// time does.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Enables per-cell perf logging: every cell records one perf log
    /// (under replicated policies: the cell's deterministic first
    /// replication), written to `dir` as
    /// `<experiment>-cell<N>.perflog.jsonl`, with the rollup attached as
    /// [`CellReport::perf`] and carried into CSV/JSON. The directory is
    /// created if missing. Recording never changes run results —
    /// instrumented backends keep perf data out-of-band.
    pub fn perf_log_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.perf_dir = Some(dir.into());
        self
    }

    /// Executes every cell of `sweep` on `backend` and folds the results
    /// in cell order. Fails on the first failing cell (lowest index wins).
    pub fn run(&self, backend: &dyn Backend, sweep: &Sweep) -> Result<StudyReport, RocketError> {
        let cells = sweep.cells();
        if cells.is_empty() {
            return Err(RocketError::Config("study sweep has no cells".into()));
        }
        let threads = if self.threads == 0 {
            std::thread::available_parallelism().map_or(1, |p| p.get())
        } else {
            self.threads
        };
        // When cells run concurrently, keep each cell's replications
        // sequential (the cell grid is the outer parallelism source);
        // sequential cells let the replication runner use the machine.
        let inner_threads = if threads == 1 { 0 } else { 1 };
        let slots: Vec<Mutex<Option<Result<ReplicationReport, RocketError>>>> =
            cells.iter().map(|_| Mutex::named("slots", None)).collect();
        // One recording handle per cell when perf logging is on. Each cell
        // records exactly one replication — the deterministic first seed of
        // the policy's schedule — so perf logs are comparable across runs
        // and replication counts.
        let perf_logs: Option<Vec<PerfLog>> = self
            .perf_dir
            .as_ref()
            .map(|_| cells.iter().map(|_| PerfLog::enabled()).collect());
        StealPool::run_tasks(cells.len(), threads, |i| {
            let scenario = &cells[i].scenario;
            let tap;
            let eff: &dyn Backend = match &perf_logs {
                Some(logs) => {
                    let designated = match self.policy {
                        ReplicationPolicy::Once => scenario.seed,
                        _ => Replications::new(scenario.seed, 1).seeds()[0],
                    };
                    tap = PerfTap {
                        inner: backend,
                        perf: &logs[i],
                        seed: designated,
                    };
                    &tap
                }
                None => backend,
            };
            let result = match self.policy {
                ReplicationPolicy::Once => eff.run(scenario).map(|run| {
                    ReplicationReport::from_runs(backend.name(), vec![scenario.seed], vec![run])
                }),
                ReplicationPolicy::Fixed(n) => Replications::new(scenario.seed, n)
                    .threads(inner_threads)
                    .run(eff, scenario),
                ReplicationPolicy::UntilCi {
                    rel_half_width,
                    max_n,
                } => Replications::until_ci(scenario.seed, rel_half_width, max_n)
                    .threads(inner_threads)
                    .run(eff, scenario),
            };
            *slots[i].lock() = Some(result);
        });
        // Sequential fold in cell order: the report is independent of
        // which thread ran which cell.
        if let Some(dir) = &self.perf_dir {
            std::fs::create_dir_all(dir)
                .map_err(|e| RocketError::Config(format!("perf log dir {}: {e}", dir.display())))?;
        }
        let mut reports = Vec::with_capacity(cells.len());
        for (cell, slot) in cells.iter().zip(slots) {
            let report = slot
                .into_inner()
                .expect("cell ran")
                .map_err(|e| RocketError::Config(format!("cell {} failed: {e}", cell.index)))?;
            let perf = match (&self.perf_dir, &perf_logs) {
                (Some(dir), Some(logs)) => {
                    let records = logs[cell.index].take();
                    let meta = PerfMeta {
                        run: self.name.clone(),
                        cell: Some(cell.index as u64),
                        backend: backend.name().to_string(),
                    };
                    let path = dir.join(format!(
                        "{}-cell{}.perflog.jsonl",
                        file_slug(&self.name),
                        cell.index
                    ));
                    std::fs::write(&path, write_jsonl(&meta, &records)).map_err(|e| {
                        RocketError::Config(format!("perf log {}: {e}", path.display()))
                    })?;
                    Some(PerfRollup::from_records(&records))
                }
                _ => None,
            };
            reports.push(CellReport {
                cell: cell.index,
                coords: cell.coords.clone(),
                scenario: cell.scenario.clone(),
                report,
                perf,
            });
        }
        Ok(StudyReport {
            experiment: self.name.clone(),
            backend: backend.name().to_string(),
            axes: sweep.axis_names(),
            cells: reports,
            notes: String::new(),
        })
    }
}

/// Routes exactly one replication — the one carrying the designated
/// seed — through [`Backend::run_with_perf`]; every other run passes
/// through untouched. This keeps perf logs to one deterministic
/// replication per cell regardless of the replication policy.
struct PerfTap<'a> {
    inner: &'a dyn Backend,
    perf: &'a PerfLog,
    seed: u64,
}

impl Backend for PerfTap<'_> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn run(&self, scenario: &Scenario) -> Result<RunReport, RocketError> {
        if scenario.seed == self.seed {
            self.inner.run_with_perf(scenario, self.perf)
        } else {
            self.inner.run(scenario)
        }
    }
}

/// Filesystem-safe slug of an experiment name.
fn file_slug(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' || c == '.' {
                c
            } else {
                '-'
            }
        })
        .collect()
}

/// Outcome of one grid cell: coordinates, the applied scenario, and the
/// replicated runs.
#[derive(Debug, Clone)]
pub struct CellReport {
    /// Flat cell index in grid expansion order.
    pub cell: usize,
    /// `(axis name, value)` coordinates, in axis declaration order.
    pub coords: Vec<(String, AxisValue)>,
    /// The fully-applied scenario this cell ran.
    pub scenario: Scenario,
    /// The replicated runs (one run under [`ReplicationPolicy::Once`]).
    pub report: ReplicationReport,
    /// Perf rollup of the cell's recorded replication (`Some` iff the
    /// study ran with [`Study::perf_log_dir`]).
    pub perf: Option<PerfRollup>,
}

impl CellReport {
    /// Looks up one coordinate by axis name.
    pub fn coord(&self, axis: &str) -> Option<&AxisValue> {
        self.coords
            .iter()
            .find(|(name, _)| name == axis)
            .map(|(_, v)| v)
    }

    /// The first (for [`ReplicationPolicy::Once`]: the only) run.
    pub fn run(&self) -> &RunReport {
        &self.report.runs[0]
    }

    /// True when any replication of this cell ran degraded (its work was
    /// re-dealt after a worker loss, or it finished below quorum).
    pub fn degraded(&self) -> bool {
        self.report.runs.iter().any(|r| r.degraded)
    }

    /// Coordinates as a compact `name=value, …` string.
    pub fn coords_label(&self) -> String {
        self.coords
            .iter()
            .map(|(name, value)| format!("{name}={value}"))
            .collect::<Vec<_>>()
            .join(", ")
    }

    fn coords_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (name, value)) in self.coords.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_str(&mut out, name);
            out.push(':');
            out.push_str(&value.to_json());
        }
        out.push('}');
        out
    }
}

/// Structured outcome of a [`Study`]: one [`CellReport`] per grid cell,
/// in deterministic grid order, plus free-form notes a driver may attach.
#[derive(Debug, Clone)]
pub struct StudyReport {
    /// The study/experiment name.
    pub experiment: String,
    /// Name of the backend that executed the cells.
    pub backend: String,
    /// Axis names, in declaration order (the coordinate key order).
    pub axes: Vec<String>,
    /// Per-cell reports, in grid expansion order.
    pub cells: Vec<CellReport>,
    /// Free-form narrative attached by the driver (rendered after the
    /// comparison table; not serialized).
    pub notes: String,
}

impl StudyReport {
    /// Appends narrative text rendered after the comparison table.
    pub fn push_notes(&mut self, text: &str) {
        if !self.notes.is_empty() && !self.notes.ends_with('\n') {
            self.notes.push('\n');
        }
        self.notes.push_str(text);
    }

    /// Concatenates sub-studies (same axes, same backend) into one report
    /// under `experiment`, renumbering cells sequentially. Lets a driver
    /// compose a study from grids run under different replication
    /// policies (tag the parts with a policy axis to keep cells
    /// distinguishable).
    pub fn concat(
        experiment: impl Into<String>,
        parts: Vec<StudyReport>,
    ) -> Result<StudyReport, RocketError> {
        let mut parts = parts.into_iter();
        let Some(first) = parts.next() else {
            return Err(RocketError::Config("concat of zero studies".into()));
        };
        let mut out = StudyReport {
            experiment: experiment.into(),
            ..first
        };
        for part in parts {
            if part.axes != out.axes {
                return Err(RocketError::Config(format!(
                    "cannot concat studies with different axes: {:?} vs {:?}",
                    out.axes, part.axes
                )));
            }
            if part.backend != out.backend {
                return Err(RocketError::Config(format!(
                    "cannot concat studies from different backends: {} vs {}",
                    out.backend, part.backend
                )));
            }
            out.cells.extend(part.cells);
            if !part.notes.is_empty() {
                out.push_notes(&part.notes);
            }
        }
        for (i, cell) in out.cells.iter_mut().enumerate() {
            cell.cell = i;
        }
        Ok(out)
    }

    /// Indices of cells that ran degraded (fault handling touched them).
    /// Empty for a healthy study.
    pub fn degraded_cells(&self) -> Vec<usize> {
        self.cells
            .iter()
            .filter(|c| c.degraded())
            .map(|c| c.cell)
            .collect()
    }

    /// Serializes the whole study as one JSON object (cells inline; notes
    /// and scenarios are presentation/config, not results, and are
    /// omitted).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\"experiment\":");
        push_json_str(&mut out, &self.experiment);
        out.push_str(",\"backend\":");
        push_json_str(&mut out, &self.backend);
        out.push_str(",\"axes\":[");
        for (i, axis) in self.axes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_str(&mut out, axis);
        }
        out.push_str("],\"cells\":[");
        for (i, cell) in self.cells.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"cell\":{},\"coords\":{},\"report\":{}",
                cell.cell,
                cell.coords_json(),
                cell.report.to_json()
            ));
            if let Some(perf) = &cell.perf {
                out.push_str(&format!(",\"perf\":{}", perf.to_json()));
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }

    /// One self-contained JSON object per cell — the JSON-Lines records
    /// `repro --json` appends (`{"experiment":…,"cell":…,"coords":…,
    /// "report":…}`).
    pub fn json_lines(&self) -> Vec<String> {
        self.cells
            .iter()
            .map(|cell| {
                let mut out = String::with_capacity(1024);
                out.push_str("{\"experiment\":");
                push_json_str(&mut out, &self.experiment);
                out.push_str(&format!(
                    ",\"cell\":{},\"coords\":{},\"report\":{}",
                    cell.cell,
                    cell.coords_json(),
                    cell.report.to_json()
                ));
                if let Some(perf) = &cell.perf {
                    out.push_str(&format!(",\"perf\":{}", perf.to_json()));
                }
                out.push('}');
                out
            })
            .collect()
    }

    /// Renders the study as CSV: one row per cell, one column per axis,
    /// then the headline replication statistics.
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::from("experiment,cell");
        for axis in &self.axes {
            out.push(',');
            out.push_str(&esc(axis));
        }
        out.push_str(
            ",replications,pairs,elapsed_s_mean,elapsed_s_ci95,r_factor_mean,\
             r_factor_ci95,throughput_mean,throughput_ci95,loads_mean,degraded",
        );
        // Perf columns appear only when the study recorded perf logs, so
        // perf-less CSV output is byte-identical to earlier versions.
        let with_perf = self.cells.iter().any(|c| c.perf.is_some());
        if with_perf {
            out.push_str(
                ",read_p50_ns,read_p99_ns,parse_p50_ns,parse_p99_ns,compare_p50_ns,\
                 compare_p99_ns,steals_per_sec,probes_per_sec",
            );
        }
        out.push('\n');
        for cell in &self.cells {
            out.push_str(&esc(&self.experiment));
            out.push_str(&format!(",{}", cell.cell));
            for axis in &self.axes {
                out.push(',');
                let value = cell.coord(axis).map(|v| v.to_string()).unwrap_or_default();
                out.push_str(&esc(&value));
            }
            let r = &cell.report;
            out.push_str(&format!(
                ",{},{},{},{},{},{},{},{},{},{}",
                r.replications(),
                cell.run().pairs,
                json_f64(r.elapsed.mean()),
                json_f64(r.elapsed.ci95_half_width()),
                json_f64(r.r_factor.mean()),
                json_f64(r.r_factor.ci95_half_width()),
                json_f64(r.throughput.mean()),
                json_f64(r.throughput.ci95_half_width()),
                json_f64(r.loads.mean()),
                cell.degraded(),
            ));
            if with_perf {
                let stage = |kind: PerfKind| {
                    cell.perf
                        .as_ref()
                        .and_then(|p| p.stage(kind))
                        .map(|s| format!("{},{}", s.p50_ns, s.p99_ns))
                        .unwrap_or_else(|| ",".into())
                };
                out.push_str(&format!(
                    ",{},{},{},{},{}",
                    stage(PerfKind::Read),
                    stage(PerfKind::Parse),
                    stage(PerfKind::Compare),
                    cell.perf
                        .as_ref()
                        .map(|p| json_f64(p.steal_per_sec))
                        .unwrap_or_default(),
                    cell.perf
                        .as_ref()
                        .map(|p| json_f64(p.probe_per_sec))
                        .unwrap_or_default(),
                ));
            }
            out.push('\n');
        }
        out
    }

    /// Renders the comparison table: one row per cell, axis coordinates
    /// first, then runtime / R / throughput (`mean ± 95% CI` when a cell
    /// has more than one replication).
    pub fn table(&self) -> String {
        let mut header: Vec<String> = vec!["cell".into()];
        header.extend(self.axes.iter().cloned());
        header.extend(
            ["reps", "runtime (s)", "R", "pairs/s"]
                .iter()
                .map(|s| s.to_string()),
        );
        let mut rows = Vec::with_capacity(self.cells.len());
        for cell in &self.cells {
            let r = &cell.report;
            let stat = |s: &rocket_stats::OnlineStats, digits: usize| {
                if r.replications() > 1 {
                    s.avg_pm_ci95()
                } else {
                    format!("{:.*}", digits, s.mean())
                }
            };
            let mut row = vec![cell.cell.to_string()];
            for axis in &self.axes {
                row.push(cell.coord(axis).map(|v| v.to_string()).unwrap_or_default());
            }
            row.push(r.replications().to_string());
            row.push(stat(&r.elapsed, 3));
            row.push(stat(&r.r_factor, 2));
            row.push(stat(&r.throughput, 1));
            rows.push(row);
        }
        render_table(&header, &rows)
    }

    /// Full human-readable rendering: header line, comparison table, then
    /// the driver's notes.
    pub fn render(&self) -> String {
        let mut out = format!(
            "study {} — backend {}, {} cell{} over axes [{}]\n\n{}",
            self.experiment,
            self.backend,
            self.cells.len(),
            if self.cells.len() == 1 { "" } else { "s" },
            self.axes.join(" × "),
            self.table(),
        );
        if !self.notes.is_empty() {
            out.push('\n');
            out.push_str(&self.notes);
            if !out.ends_with('\n') {
                out.push('\n');
            }
        }
        out
    }
}

/// Right-aligned fixed-width table rendering: header row, dash
/// separator, two-space column gap. The one table renderer of the
/// workspace — [`StudyReport::table`] uses it, and the experiment
/// harness's `Table` builder delegates to it.
pub fn render_table(header: &[String], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.chars().count()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.chars().count());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], out: &mut String| {
        for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            for _ in 0..w.saturating_sub(cell.chars().count()) {
                out.push(' ');
            }
            out.push_str(cell);
        }
        out.push('\n');
    };
    fmt_row(header, &mut out);
    let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        fmt_row(row, &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::NodeSpec;
    use crate::sweep::Axis;

    /// A deterministic toy backend: "runtime" is a pure function of the
    /// scenario (nodes, cache flag, seed), so studies are reproducible.
    struct ToyBackend;

    impl Backend for ToyBackend {
        fn name(&self) -> &'static str {
            "toy"
        }

        fn run(&self, s: &Scenario) -> Result<RunReport, RocketError> {
            s.validate().map_err(RocketError::Config)?;
            let nodes = s.nodes.len() as f64;
            let cache = if s.distributed_cache { 0.8 } else { 1.0 };
            let jitter = (s.seed % 7) as f64 * 0.01;
            Ok(RunReport {
                backend: "toy",
                elapsed: 10.0 * cache / nodes + jitter,
                items: s.workload.items,
                pairs: s.workload.pairs(),
                failed_pairs: 0,
                loads: s.workload.items * s.nodes.len() as u64,
                remote_fetches: 0,
                io_bytes: 0,
                net_bytes: 0,
                net_msgs: 0,
                steals: 0,
                busy: Default::default(),
                device_cache: Default::default(),
                host_cache: Default::default(),
                directory: Default::default(),
                pairs_per_node: vec![s.workload.pairs()],
                completions: None,
                sim_shards: 0,
                sim_windows: 0,
                degraded: false,
            })
        }
    }

    fn sweep_2x2() -> Sweep {
        let base = Scenario::builder()
            .items(16)
            .node(NodeSpec::uniform(1, 4, 8))
            .seed(5)
            .build();
        Sweep::over(base)
            .axis(Axis::nodes([1, 2]))
            .axis(Axis::distributed_cache([true, false]))
            .try_build()
            .unwrap()
    }

    #[test]
    fn once_policy_equals_direct_runs() {
        let sweep = sweep_2x2();
        let study = Study::new("toy-grid").run(&ToyBackend, &sweep).unwrap();
        assert_eq!(study.cells.len(), 4);
        assert_eq!(study.axes, vec!["nodes", "distributed_cache"]);
        for cell in &study.cells {
            let direct = ToyBackend.run(&cell.scenario).unwrap();
            assert_eq!(format!("{:?}", cell.run()), format!("{direct:?}"));
            assert_eq!(cell.report.replications(), 1);
            assert_eq!(cell.report.seeds, vec![cell.scenario.seed]);
        }
    }

    #[test]
    fn report_is_identical_across_cell_parallelism() {
        let sweep = sweep_2x2();
        let serial = Study::new("p").threads(1).run(&ToyBackend, &sweep).unwrap();
        for threads in [2, 4, 0] {
            let parallel = Study::new("p")
                .threads(threads)
                .run(&ToyBackend, &sweep)
                .unwrap();
            assert_eq!(
                format!("{serial:?}"),
                format!("{parallel:?}"),
                "diverged at {threads} cell threads"
            );
        }
    }

    #[test]
    fn fixed_policy_replicates_each_cell() {
        let sweep = sweep_2x2();
        let study = Study::new("reps")
            .replication(ReplicationPolicy::fixed(3))
            .run(&ToyBackend, &sweep)
            .unwrap();
        for cell in &study.cells {
            assert_eq!(cell.report.replications(), 3);
            assert_eq!(
                cell.report.seeds,
                Replications::new(cell.scenario.seed, 3).seeds()
            );
        }
    }

    #[test]
    fn zero_replications_rejected() {
        let err = Study::new("bad")
            .replication(ReplicationPolicy::fixed(0))
            .run(&ToyBackend, &sweep_2x2())
            .unwrap_err();
        assert!(err.to_string().contains("cell 0"), "{err}");
    }

    #[test]
    fn csv_has_axis_columns_and_one_row_per_cell() {
        let study = Study::new("grid").run(&ToyBackend, &sweep_2x2()).unwrap();
        let csv = study.to_csv();
        let mut lines = csv.lines();
        let header = lines.next().unwrap();
        assert!(
            header.starts_with("experiment,cell,nodes,distributed_cache,replications,pairs"),
            "{header}"
        );
        let rows: Vec<&str> = lines.collect();
        assert_eq!(rows.len(), 4);
        assert!(rows[0].starts_with("grid,0,1,true,1,120"), "{}", rows[0]);
        assert!(rows[3].starts_with("grid,3,2,false,1,120"), "{}", rows[3]);
    }

    #[test]
    fn json_and_lines_are_balanced_and_coordinated() {
        let study = Study::new("grid").run(&ToyBackend, &sweep_2x2()).unwrap();
        let json = study.to_json();
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.contains("\"experiment\":\"grid\""));
        assert!(json.contains("\"axes\":[\"nodes\",\"distributed_cache\"]"));
        assert!(json.contains("\"coords\":{\"nodes\":2,\"distributed_cache\":false}"));
        let lines = study.json_lines();
        assert_eq!(lines.len(), 4);
        for (i, line) in lines.iter().enumerate() {
            assert!(line.contains(&format!("\"cell\":{i}")), "{line}");
            assert!(line.contains("\"coords\":{\"nodes\":"), "{line}");
            assert_eq!(line.matches('{').count(), line.matches('}').count());
        }
    }

    #[test]
    fn degraded_cells_surface_in_csv_and_lookup() {
        let mut study = Study::new("grid").run(&ToyBackend, &sweep_2x2()).unwrap();
        assert!(study.degraded_cells().is_empty());
        study.cells[2].report.runs[0].degraded = true;
        assert_eq!(study.degraded_cells(), vec![2]);
        assert!(study.cells[2].degraded());
        let csv = study.to_csv();
        let mut lines = csv.lines();
        assert!(lines.next().unwrap().ends_with(",degraded"));
        let rows: Vec<&str> = lines.collect();
        assert!(rows[0].ends_with(",false"), "{}", rows[0]);
        assert!(rows[2].ends_with(",true"), "{}", rows[2]);
    }

    #[test]
    fn render_includes_table_and_notes() {
        let mut study = Study::new("grid").run(&ToyBackend, &sweep_2x2()).unwrap();
        study.push_notes("Shape check: cache on is faster.");
        let text = study.render();
        assert!(text.contains("study grid — backend toy, 4 cells"));
        assert!(text.contains("nodes × distributed_cache"));
        assert!(text.contains("runtime (s)"));
        assert!(text.contains("Shape check"), "{text}");
    }

    #[test]
    fn concat_merges_compatible_studies_and_rejects_mismatches() {
        let sweep = sweep_2x2();
        let a = Study::new("a").run(&ToyBackend, &sweep).unwrap();
        let b = Study::new("b").run(&ToyBackend, &sweep).unwrap();
        let merged = StudyReport::concat("ab", vec![a.clone(), b.clone()]).unwrap();
        assert_eq!(merged.experiment, "ab");
        assert_eq!(merged.cells.len(), 8);
        let indices: Vec<usize> = merged.cells.iter().map(|c| c.cell).collect();
        assert_eq!(indices, (0..8).collect::<Vec<_>>());

        let mut other = b.clone();
        other.axes = vec!["different".into()];
        assert!(StudyReport::concat("bad", vec![a.clone(), other]).is_err());
        let mut other = b;
        other.backend = "elsewhere".into();
        assert!(StudyReport::concat("bad", vec![a, other]).is_err());
        assert!(StudyReport::concat("empty", vec![]).is_err());
    }

    #[test]
    fn coord_lookup_and_labels() {
        let study = Study::new("grid").run(&ToyBackend, &sweep_2x2()).unwrap();
        let cell = &study.cells[1];
        assert_eq!(cell.coord("nodes"), Some(&AxisValue::U64(1)));
        assert_eq!(
            cell.coord("distributed_cache"),
            Some(&AxisValue::Bool(false))
        );
        assert_eq!(cell.coord("missing"), None);
        assert_eq!(cell.coords_label(), "nodes=1, distributed_cache=false");
    }
}
