//! Cluster driver: wires nodes, the work-stealing pool, and result
//! collection into one `run` call.

use std::sync::Arc;
use std::time::Duration;

use rocket_sanitize::Mutex;

use rocket_cache::{CacheStats, DirectoryStats};
use rocket_comm::{CommSnapshot, Transport, TransportKind};
use rocket_steal::{Pair, StealPool, StealPoolConfig, StealStats, WorkerTopology};
use rocket_storage::ObjectStore;
use rocket_trace::Timeline;

use crate::app::Application;
use crate::clock;
use crate::config::RocketConfig;
use crate::engine::node::{spawn_node, NodeReport};
use crate::error::RocketError;
use crate::report::{BusyTimes, RunReport};
use crate::scenario::Scenario;

/// Outcome of a full all-pairs run of a real [`Application`], including
/// the typed per-pair outputs.
///
/// (Formerly named `RunReport`; that name now denotes the backend-agnostic
/// aggregate report, which [`AppReport::unified`] produces.)
#[derive(Debug)]
pub struct AppReport<O> {
    /// Number of items in the data set.
    pub items: u64,
    /// Per-pair outputs (submission order; use
    /// [`AppReport::sorted_outputs`] for a canonical order).
    pub outputs: Vec<(Pair, O)>,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Per-node statistics.
    pub nodes: Vec<NodeReport>,
    /// Work-stealing statistics.
    pub steal: StealStats,
}

impl<O> AppReport<O> {
    /// Total executions of the load pipeline ℓ across the cluster.
    pub fn total_loads(&self) -> u64 {
        self.nodes.iter().map(|n| n.loads).sum()
    }

    /// The paper's R metric: loads relative to the data-set size (§6.1).
    pub fn r_factor(&self) -> f64 {
        if self.items == 0 {
            0.0
        } else {
            self.total_loads() as f64 / self.items as f64
        }
    }

    /// Items served from remote host caches (level-3 hits).
    pub fn total_remote_fetches(&self) -> u64 {
        self.nodes.iter().map(|n| n.remote_fetches).sum()
    }

    /// Cluster-wide transport traffic (sum of every node's counters;
    /// all-zero on single-node runs, which have no transport).
    pub fn comm_totals(&self) -> CommSnapshot {
        let mut total = CommSnapshot::default();
        for n in &self.nodes {
            total.merge(&n.comm);
        }
        total
    }

    /// Merged device-cache statistics.
    pub fn device_cache(&self) -> CacheStats {
        let mut s = CacheStats::default();
        for n in &self.nodes {
            s.merge(&n.device_cache);
        }
        s
    }

    /// Merged host-cache statistics.
    pub fn host_cache(&self) -> CacheStats {
        let mut s = CacheStats::default();
        for n in &self.nodes {
            s.merge(&n.host_cache);
        }
        s
    }

    /// Merged distributed-cache lookup statistics (Fig 11's data).
    pub fn directory(&self) -> DirectoryStats {
        let mut s = DirectoryStats::default();
        for n in &self.nodes {
            s.merge(&n.directory);
        }
        s
    }

    /// All permanently failed pairs with causes.
    pub fn failed(&self) -> Vec<&(Pair, String)> {
        self.nodes.iter().flat_map(|n| n.failed.iter()).collect()
    }

    /// Outputs sorted by pair (canonical order for comparisons).
    pub fn sorted_outputs(&self) -> Vec<&(Pair, O)> {
        let mut v: Vec<&(Pair, O)> = self.outputs.iter().collect();
        v.sort_by_key(|(p, _)| *p);
        v
    }

    /// A merged timeline of all nodes' trace spans.
    pub fn timeline(&self) -> Timeline {
        Timeline::new(
            self.nodes
                .iter()
                .flat_map(|n| n.spans.iter().copied())
                .collect(),
        )
    }

    /// Folds this typed report into the backend-agnostic [`RunReport`].
    ///
    /// `scenario` supplies the topology (to roll per-worker steal counters
    /// up into per-node pair counts) and the transport kind (which names
    /// the backend — `"threaded"` or `"threaded+socket"`). Busy times come
    /// from the trace when tracing was enabled, zero otherwise;
    /// `net_bytes` is the cluster-wide transport payload traffic, and
    /// `io_bytes` is not tracked by the threaded runtime (reports zero).
    pub fn unified(&self, scenario: &Scenario) -> RunReport {
        use rocket_trace::TaskKind;
        let timeline = self.timeline();
        // One pass over the (O(pairs)-sized) span list folds every class.
        let mut busy = BusyTimes::default();
        for span in timeline.spans() {
            let secs = span.duration_ns() as f64 / 1e9;
            match span.kind {
                TaskKind::Preprocess => busy.preprocess += secs,
                TaskKind::Compare => busy.compare += secs,
                TaskKind::CopyIn => busy.h2d += secs,
                TaskKind::CopyOut => busy.d2h += secs,
                TaskKind::Parse | TaskKind::Postprocess => busy.cpu += secs,
                TaskKind::Read => busy.io += secs,
                // Network/steal overheads have no BusyTimes row.
                _ => {}
            }
        }
        // steal.pairs_per_worker is indexed by (node, device) in topology
        // order — fold workers back onto their nodes.
        let mut pairs_per_node = vec![0u64; scenario.nodes.len()];
        let mut worker = 0usize;
        for (node, spec) in scenario.nodes.iter().enumerate() {
            for _ in 0..spec.gpus.len() {
                if let Some(&pairs) = self.steal.pairs_per_worker.get(worker) {
                    pairs_per_node[node] += pairs;
                }
                worker += 1;
            }
        }
        RunReport {
            backend: match scenario.transport {
                TransportKind::Local => "threaded",
                TransportKind::Socket => "threaded+socket",
            },
            elapsed: self.elapsed.as_secs_f64(),
            items: self.items,
            pairs: self.outputs.len() as u64,
            failed_pairs: self.failed().len() as u64,
            loads: self.total_loads(),
            remote_fetches: self.total_remote_fetches(),
            io_bytes: 0,
            net_bytes: self.comm_totals().bytes_sent,
            net_msgs: self.comm_totals().msgs_sent,
            steals: self.steal.local_steals + self.steal.remote_steals,
            busy,
            device_cache: self.device_cache(),
            host_cache: self.host_cache(),
            directory: self.directory(),
            pairs_per_node,
            completions: None,
            sim_shards: 0,
            sim_windows: 0,
            degraded: false,
        }
    }
}

/// The Rocket runtime front door.
///
/// `Rocket::new(config).run(app, store)` executes the all-pairs problem on
/// one node; [`Rocket::run_cluster`] runs an in-process cluster with one
/// configuration per node (heterogeneous setups pass different device
/// profiles per node).
pub struct Rocket {
    config: RocketConfig,
}

impl Rocket {
    /// Creates a runtime with the given single-node configuration.
    pub fn new(config: RocketConfig) -> Self {
        Self { config }
    }

    /// Runs an application on one node.
    pub fn run<A: Application>(
        &self,
        app: Arc<A>,
        store: Arc<dyn ObjectStore>,
    ) -> Result<AppReport<A::Output>, RocketError> {
        Self::run_cluster(app, store, vec![self.config.clone()])
    }

    /// Runs an application on an in-process cluster, one configuration per
    /// node, communicating over the default in-process transport. All
    /// nodes share `store` (the paper's central file server).
    pub fn run_cluster<A: Application>(
        app: Arc<A>,
        store: Arc<dyn ObjectStore>,
        configs: Vec<RocketConfig>,
    ) -> Result<AppReport<A::Output>, RocketError> {
        Self::run_cluster_with(app, store, configs, TransportKind::Local)
    }

    /// [`Rocket::run_cluster`] with an explicit cluster transport: the
    /// in-process channels of [`TransportKind::Local`] or real loopback
    /// TCP sockets with [`TransportKind::Socket`].
    pub fn run_cluster_with<A: Application>(
        app: Arc<A>,
        store: Arc<dyn ObjectStore>,
        configs: Vec<RocketConfig>,
        transport: TransportKind,
    ) -> Result<AppReport<A::Output>, RocketError> {
        if configs.is_empty() {
            return Err(RocketError::Config("at least one node required".into()));
        }
        for c in &configs {
            c.validate().map_err(RocketError::Config)?;
        }
        let nodes = configs.len();
        let n = app.item_count();
        let outputs = Arc::new(Mutex::named("outputs", Vec::new()));
        let start = clock::stopwatch();

        let mut endpoints: Vec<Option<Box<dyn Transport>>> = if nodes > 1 {
            transport
                .connect(nodes)
                .map_err(RocketError::Config)?
                .into_iter()
                .map(Some)
                .collect()
        } else {
            vec![None]
        };

        // Worker topology: one work-stealing worker per GPU (§4.2).
        let mut worker_map = Vec::new();
        for (node, cfg) in configs.iter().enumerate() {
            for dev in 0..cfg.devices.len() {
                worker_map.push((node, dev));
            }
        }
        let topology = WorkerTopology {
            node_of: worker_map.iter().map(|&(n, _)| n).collect(),
        };

        let handles: Vec<_> = configs
            .iter()
            .enumerate()
            .map(|(node_id, cfg)| {
                spawn_node(
                    Arc::clone(&app),
                    cfg.clone(),
                    node_id,
                    nodes,
                    Arc::clone(&store),
                    endpoints[node_id].take(),
                    Arc::clone(&outputs),
                )
            })
            .collect();

        let pool_cfg = StealPoolConfig {
            leaf_pairs: configs[0].leaf_pairs,
            seed: configs[0].seed,
            static_partition: configs[0].static_partition,
            ..Default::default()
        };
        let steal = StealPool::run(n, &topology, &pool_cfg, |worker, pair| {
            let (node, dev) = worker_map[worker];
            // Back-pressure: one permit per in-flight job on the target node.
            handles[node].limiter.acquire();
            handles[node].submit(pair, dev);
        });

        // All pairs submitted; wait for every node to drain its jobs.
        loop {
            if handles.iter().all(|h| h.counters.is_drained()) {
                break;
            }
            clock::pace(Duration::from_millis(1));
        }

        let node_reports: Vec<NodeReport> = handles.into_iter().map(|h| h.finish()).collect();
        let elapsed = start.elapsed();
        let outputs = Arc::try_unwrap(outputs)
            .map(|m| m.into_inner())
            .unwrap_or_default();

        Ok(AppReport {
            items: n,
            outputs,
            elapsed,
            nodes: node_reports,
            steal,
        })
    }
}
