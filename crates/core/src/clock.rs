//! The sanctioned wall-clock shim of the engine crates.
//!
//! The determinism bar (byte-identical results across thread counts,
//! transports, and worker loss) means engine code must not consult the
//! wall clock: `rocket-lint` rule `RL-D002` forbids `Instant::now` /
//! `SystemTime` in `crates/sim`, `crates/core`, and `crates/steal`.
//! Wall-clock *measurement* is still legitimate — `RunReport::elapsed` on
//! the threaded runtime is real time by definition — so every such read
//! funnels through this module, which is the single file the lint
//! allowlists (`[determinism] allow_files` in `lint.toml`). That keeps
//! the audit surface one screen long: anything measured here may feed
//! reporting, never scheduling or results.

use std::time::{Duration, Instant};

/// A running stopwatch; obtain one with [`stopwatch`].
///
/// The inner `Instant` is private so engine code cannot smuggle it into
/// ordering decisions — the only observable is [`Stopwatch::elapsed`].
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch(Instant);

impl Stopwatch {
    /// Wall-clock time since the stopwatch was started.
    pub fn elapsed(&self) -> Duration {
        self.0.elapsed()
    }

    /// `elapsed` as seconds (the unit `RunReport::elapsed` carries).
    pub fn elapsed_secs(&self) -> f64 {
        self.0.elapsed().as_secs_f64()
    }
}

/// Starts a stopwatch for measuring a run's wall-clock duration.
pub fn stopwatch() -> Stopwatch {
    Stopwatch(Instant::now())
}

/// Parks the calling thread for `interval` — the sanctioned form of
/// polling-loop pacing (`RL-D003` forbids raw `thread::sleep` in engine
/// crates). Pacing affects only how often a loop wakes, never what it
/// computes, which is why it is allowed here.
pub fn pace(interval: Duration) {
    std::thread::sleep(interval);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_moves_forward() {
        let sw = stopwatch();
        pace(Duration::from_millis(2));
        assert!(sw.elapsed() >= Duration::from_millis(1));
        assert!(sw.elapsed_secs() > 0.0);
    }
}
