//! Wire encoding of [`Scenario`] and [`RunReport`] — what the cluster
//! backend ships between driver and worker processes.
//!
//! The [`rocket_comm::Wire`] trait supplies the buffer plumbing
//! (length-prefixed strings and vectors, little-endian integers, bit-exact
//! `f64` via `to_bits`); this module supplies the field layouts. Foreign
//! types ([`Dist`], [`DeviceProfile`], [`CacheStats`]…) cannot implement
//! the foreign trait here, so they are encoded through private helper
//! functions; the core-local [`Scenario`], [`WorkloadProfile`],
//! [`NodeSpec`], and [`RunReport`] get real `Wire` impls.
//!
//! `&'static str` fields (workload names, backend names, GPU generations)
//! decode through a process-global interner: known strings are reused,
//! novel ones are leaked exactly once — a worker sees a handful of
//! distinct names over its whole lifetime, so the leak is bounded.

use std::sync::Mutex;
use std::sync::OnceLock;

use rocket_cache::{CacheStats, DirectoryStats, FxHashSet};
use rocket_comm::wire::{Wire, WireError, WireReader, WireWriter};
use rocket_comm::TransportKind;
use rocket_gpu::DeviceProfile;
use rocket_stats::Dist;
use rocket_trace::ThroughputSeries;

use crate::report::{BusyTimes, RunReport};
use crate::scenario::{NodeSpec, Scenario};
use crate::workload::WorkloadProfile;

/// Interns a decoded string into a `&'static str`, leaking each distinct
/// string at most once per process.
fn intern(s: String) -> &'static str {
    static CACHE: OnceLock<Mutex<FxHashSet<&'static str>>> = OnceLock::new();
    let mut cache = CACHE
        .get_or_init(|| Mutex::new(FxHashSet::default()))
        .lock()
        .unwrap_or_else(|e| e.into_inner());
    if let Some(&known) = cache.get(s.as_str()) {
        return known;
    }
    let leaked: &'static str = Box::leak(s.into_boxed_str());
    cache.insert(leaked);
    leaked
}

fn put_bool(w: &mut WireWriter, v: bool) {
    w.put_u8(v as u8);
}

fn get_bool(r: &mut WireReader) -> Result<bool, WireError> {
    match r.get_u8()? {
        0 => Ok(false),
        1 => Ok(true),
        t => Err(WireError::BadTag(t)),
    }
}

fn put_usize(w: &mut WireWriter, v: usize) {
    w.put_u64(v as u64);
}

fn get_usize(r: &mut WireReader) -> Result<usize, WireError> {
    let v = r.get_u64()?;
    usize::try_from(v).map_err(|_| WireError::BadLength(v))
}

fn put_dist(w: &mut WireWriter, d: &Dist) {
    match d {
        Dist::Constant(v) => {
            w.put_u8(0);
            w.put_f64(*v);
        }
        Dist::Uniform { lo, hi } => {
            w.put_u8(1);
            w.put_f64(*lo);
            w.put_f64(*hi);
        }
        Dist::Normal { mean, std } => {
            w.put_u8(2);
            w.put_f64(*mean);
            w.put_f64(*std);
        }
        Dist::LogNormal { mean, std } => {
            w.put_u8(3);
            w.put_f64(*mean);
            w.put_f64(*std);
        }
        Dist::Gamma { shape, scale } => {
            w.put_u8(4);
            w.put_f64(*shape);
            w.put_f64(*scale);
        }
        Dist::Exponential { mean } => {
            w.put_u8(5);
            w.put_f64(*mean);
        }
        Dist::Truncated { inner, lo, hi } => {
            w.put_u8(6);
            put_dist(w, inner);
            w.put_f64(*lo);
            w.put_f64(*hi);
        }
    }
}

fn get_dist(r: &mut WireReader) -> Result<Dist, WireError> {
    Ok(match r.get_u8()? {
        0 => Dist::Constant(r.get_f64()?),
        1 => Dist::Uniform {
            lo: r.get_f64()?,
            hi: r.get_f64()?,
        },
        2 => Dist::Normal {
            mean: r.get_f64()?,
            std: r.get_f64()?,
        },
        3 => Dist::LogNormal {
            mean: r.get_f64()?,
            std: r.get_f64()?,
        },
        4 => Dist::Gamma {
            shape: r.get_f64()?,
            scale: r.get_f64()?,
        },
        5 => Dist::Exponential { mean: r.get_f64()? },
        6 => Dist::Truncated {
            inner: Box::new(get_dist(r)?),
            lo: r.get_f64()?,
            hi: r.get_f64()?,
        },
        t => return Err(WireError::BadTag(t)),
    })
}

fn put_opt_dist(w: &mut WireWriter, d: &Option<Dist>) {
    match d {
        None => w.put_u8(0),
        Some(d) => {
            w.put_u8(1);
            put_dist(w, d);
        }
    }
}

fn get_opt_dist(r: &mut WireReader) -> Result<Option<Dist>, WireError> {
    match r.get_u8()? {
        0 => Ok(None),
        1 => Ok(Some(get_dist(r)?)),
        t => Err(WireError::BadTag(t)),
    }
}

fn put_device(w: &mut WireWriter, d: &DeviceProfile) {
    w.put_str(&d.name);
    w.put_u64(d.memory_bytes);
    w.put_f64(d.compute_scale);
    w.put_f64(d.h2d_bytes_per_sec);
    w.put_f64(d.d2h_bytes_per_sec);
    w.put_str(d.generation);
}

fn get_device(r: &mut WireReader) -> Result<DeviceProfile, WireError> {
    Ok(DeviceProfile {
        name: r.get_str()?,
        memory_bytes: r.get_u64()?,
        compute_scale: r.get_f64()?,
        h2d_bytes_per_sec: r.get_f64()?,
        d2h_bytes_per_sec: r.get_f64()?,
        generation: intern(r.get_str()?),
    })
}

fn put_transport(w: &mut WireWriter, t: TransportKind) {
    w.put_u8(match t {
        TransportKind::Local => 0,
        TransportKind::Socket => 1,
    });
}

fn get_transport(r: &mut WireReader) -> Result<TransportKind, WireError> {
    Ok(match r.get_u8()? {
        0 => TransportKind::Local,
        1 => TransportKind::Socket,
        t => return Err(WireError::BadTag(t)),
    })
}

fn put_cache_stats(w: &mut WireWriter, s: &CacheStats) {
    w.put_u64(s.hits);
    w.put_u64(s.hits_pending);
    w.put_u64(s.misses);
    w.put_u64(s.capacity_stalls);
    w.put_u64(s.evictions);
    w.put_u64(s.aborts);
}

fn get_cache_stats(r: &mut WireReader) -> Result<CacheStats, WireError> {
    Ok(CacheStats {
        hits: r.get_u64()?,
        hits_pending: r.get_u64()?,
        misses: r.get_u64()?,
        capacity_stalls: r.get_u64()?,
        evictions: r.get_u64()?,
        aborts: r.get_u64()?,
    })
}

fn put_directory_stats(w: &mut WireWriter, s: &DirectoryStats) {
    s.hits_at_hop.encode(w);
    w.put_u64(s.misses);
    w.put_u64(s.messages_sent);
}

fn get_directory_stats(r: &mut WireReader) -> Result<DirectoryStats, WireError> {
    Ok(DirectoryStats {
        hits_at_hop: Vec::<u64>::decode(r)?,
        misses: r.get_u64()?,
        messages_sent: r.get_u64()?,
    })
}

fn put_series(w: &mut WireWriter, s: &ThroughputSeries) {
    let sources = s.sources();
    w.put_u32(sources.len() as u32);
    for src in sources {
        w.put_u32(src);
        s.timestamps(src).to_vec().encode(w);
    }
}

fn get_series(r: &mut WireReader) -> Result<ThroughputSeries, WireError> {
    let n = r.get_u32()?;
    let mut s = ThroughputSeries::new();
    for _ in 0..n {
        let src = r.get_u32()?;
        for t in Vec::<u64>::decode(r)? {
            s.record(src, t);
        }
    }
    Ok(s)
}

impl Wire for WorkloadProfile {
    fn encode(&self, w: &mut WireWriter) {
        w.put_str(self.name);
        w.put_u64(self.items);
        w.put_u64(self.file_bytes);
        w.put_u64(self.item_bytes);
        put_dist(w, &self.parse);
        put_opt_dist(w, &self.preprocess);
        put_dist(w, &self.compare);
        put_dist(w, &self.postprocess);
        put_usize(w, self.paper_device_slots);
        put_usize(w, self.paper_host_slots);
    }

    fn decode(r: &mut WireReader) -> Result<Self, WireError> {
        Ok(Self {
            name: intern(r.get_str()?),
            items: r.get_u64()?,
            file_bytes: r.get_u64()?,
            item_bytes: r.get_u64()?,
            parse: get_dist(r)?,
            preprocess: get_opt_dist(r)?,
            compare: get_dist(r)?,
            postprocess: get_dist(r)?,
            paper_device_slots: get_usize(r)?,
            paper_host_slots: get_usize(r)?,
        })
    }
}

impl Wire for NodeSpec {
    fn encode(&self, w: &mut WireWriter) {
        w.put_u32(self.gpus.len() as u32);
        for g in &self.gpus {
            put_device(w, g);
        }
        put_usize(w, self.device_slots);
        put_usize(w, self.host_slots);
    }

    fn decode(r: &mut WireReader) -> Result<Self, WireError> {
        let n = r.get_u32()?;
        let mut gpus = Vec::with_capacity(n as usize);
        for _ in 0..n {
            gpus.push(get_device(r)?);
        }
        Ok(Self {
            gpus,
            device_slots: get_usize(r)?,
            host_slots: get_usize(r)?,
        })
    }
}

impl Wire for Scenario {
    fn encode(&self, w: &mut WireWriter) {
        self.workload.encode(w);
        self.nodes.encode(w);
        put_bool(w, self.distributed_cache);
        put_usize(w, self.hops);
        put_usize(w, self.job_limit);
        put_usize(w, self.cpu_threads);
        w.put_u64(self.leaf_pairs);
        put_bool(w, self.static_partition);
        put_transport(w, self.transport);
        w.put_f64(self.storage_bandwidth);
        w.put_f64(self.storage_latency);
        w.put_f64(self.net_bandwidth);
        w.put_f64(self.net_latency);
        put_usize(w, self.io_retries);
        w.put_u32(self.max_item_failures);
        put_bool(w, self.tracing);
        put_bool(w, self.record_completions);
        put_bool(w, self.calendar_queue);
        put_usize(w, self.sim_shards);
        w.put_u64(self.seed);
    }

    fn decode(r: &mut WireReader) -> Result<Self, WireError> {
        Ok(Self {
            workload: WorkloadProfile::decode(r)?,
            nodes: Vec::<NodeSpec>::decode(r)?,
            distributed_cache: get_bool(r)?,
            hops: get_usize(r)?,
            job_limit: get_usize(r)?,
            cpu_threads: get_usize(r)?,
            leaf_pairs: r.get_u64()?,
            static_partition: get_bool(r)?,
            transport: get_transport(r)?,
            storage_bandwidth: r.get_f64()?,
            storage_latency: r.get_f64()?,
            net_bandwidth: r.get_f64()?,
            net_latency: r.get_f64()?,
            io_retries: get_usize(r)?,
            max_item_failures: r.get_u32()?,
            tracing: get_bool(r)?,
            record_completions: get_bool(r)?,
            calendar_queue: get_bool(r)?,
            sim_shards: get_usize(r)?,
            seed: r.get_u64()?,
        })
    }
}

impl Wire for RunReport {
    fn encode(&self, w: &mut WireWriter) {
        w.put_str(self.backend);
        w.put_f64(self.elapsed);
        w.put_u64(self.items);
        w.put_u64(self.pairs);
        w.put_u64(self.failed_pairs);
        w.put_u64(self.loads);
        w.put_u64(self.remote_fetches);
        w.put_u64(self.io_bytes);
        w.put_u64(self.net_bytes);
        w.put_u64(self.net_msgs);
        w.put_u64(self.steals);
        w.put_f64(self.busy.preprocess);
        w.put_f64(self.busy.compare);
        w.put_f64(self.busy.h2d);
        w.put_f64(self.busy.d2h);
        w.put_f64(self.busy.cpu);
        w.put_f64(self.busy.io);
        put_cache_stats(w, &self.device_cache);
        put_cache_stats(w, &self.host_cache);
        put_directory_stats(w, &self.directory);
        self.pairs_per_node.encode(w);
        match &self.completions {
            None => w.put_u8(0),
            Some(s) => {
                w.put_u8(1);
                put_series(w, s);
            }
        }
        w.put_u32(self.sim_shards);
        w.put_u64(self.sim_windows);
        put_bool(w, self.degraded);
    }

    fn decode(r: &mut WireReader) -> Result<Self, WireError> {
        Ok(Self {
            backend: intern(r.get_str()?),
            elapsed: r.get_f64()?,
            items: r.get_u64()?,
            pairs: r.get_u64()?,
            failed_pairs: r.get_u64()?,
            loads: r.get_u64()?,
            remote_fetches: r.get_u64()?,
            io_bytes: r.get_u64()?,
            net_bytes: r.get_u64()?,
            net_msgs: r.get_u64()?,
            steals: r.get_u64()?,
            busy: BusyTimes {
                preprocess: r.get_f64()?,
                compare: r.get_f64()?,
                h2d: r.get_f64()?,
                d2h: r.get_f64()?,
                cpu: r.get_f64()?,
                io: r.get_f64()?,
            },
            device_cache: get_cache_stats(r)?,
            host_cache: get_cache_stats(r)?,
            directory: get_directory_stats(r)?,
            pairs_per_node: Vec::<u64>::decode(r)?,
            completions: match r.get_u8()? {
                0 => None,
                1 => Some(get_series(r)?),
                t => return Err(WireError::BadTag(t)),
            },
            sim_shards: r.get_u32()?,
            sim_windows: r.get_u64()?,
            degraded: get_bool(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fancy_scenario() -> Scenario {
        let mut workload = WorkloadProfile::items_only(24);
        workload.file_bytes = 2_000_000;
        workload.item_bytes = 30_000_000;
        workload.parse = Dist::normal_nonneg(10e-3, 2e-3);
        workload.preprocess = Some(Dist::Gamma {
            shape: 2.0,
            scale: 3e-3,
        });
        workload.compare = Dist::LogNormal {
            mean: 1e-3,
            std: 4e-4,
        };
        workload.postprocess = Dist::Exponential { mean: 5e-4 };
        Scenario::builder()
            .workload(workload)
            .node(NodeSpec::uniform(2, 8, 16))
            .node(NodeSpec::with_gpus(
                vec![
                    rocket_gpu::DeviceProfile::rtx2080ti(),
                    rocket_gpu::DeviceProfile::gtx980(),
                ],
                4,
                8,
            ))
            .hops(2)
            .job_limit(7)
            .cpu_threads(3)
            .leaf_pairs(5)
            .static_partition(true)
            .transport(TransportKind::Socket)
            .storage(1.5e9, 3e-3)
            .network(6e9, 25e-6)
            .io_retries(4)
            .max_item_failures(9)
            .tracing(true)
            .record_completions(true)
            .calendar_queue(true)
            .sim_shards(3)
            .seed(0xC0FFEE)
            .build()
    }

    #[test]
    fn scenario_roundtrips_bit_exact() {
        let s = fancy_scenario();
        let back = Scenario::from_bytes(s.to_bytes()).expect("decode");
        assert_eq!(back, s);
        // Uniform is the one Dist variant the fancy scenario misses.
        let mut u = s.clone();
        u.workload.parse = Dist::Uniform { lo: 0.1, hi: 0.9 };
        assert_eq!(Scenario::from_bytes(u.to_bytes()).unwrap(), u);
    }

    #[test]
    fn infinity_bounds_survive() {
        // normal_nonneg truncates at [0, +inf); f64 goes over as to_bits.
        let s = fancy_scenario();
        let back = Scenario::from_bytes(s.to_bytes()).unwrap();
        match &back.workload.parse {
            Dist::Truncated { hi, .. } => assert!(hi.is_infinite()),
            other => panic!("expected Truncated, got {other:?}"),
        }
    }

    #[test]
    fn report_roundtrips() {
        let mut series = ThroughputSeries::new();
        series.record(0, 10);
        series.record(0, 20);
        series.record(3, 15);
        let r = RunReport {
            backend: "sim",
            elapsed: 12.5,
            items: 24,
            pairs: 276,
            failed_pairs: 1,
            loads: 48,
            remote_fetches: 7,
            io_bytes: 1 << 30,
            net_bytes: 1 << 20,
            net_msgs: 333,
            steals: 11,
            busy: BusyTimes {
                preprocess: 1.0,
                compare: 2.0,
                h2d: 0.5,
                d2h: 0.25,
                cpu: 3.5,
                io: 4.0,
            },
            device_cache: CacheStats {
                hits: 1,
                hits_pending: 2,
                misses: 3,
                capacity_stalls: 4,
                evictions: 5,
                aborts: 6,
            },
            host_cache: CacheStats::default(),
            directory: DirectoryStats {
                hits_at_hop: vec![10, 4],
                misses: 2,
                messages_sent: 40,
            },
            pairs_per_node: vec![100, 176],
            completions: Some(series),
            sim_shards: 4,
            sim_windows: 1234,
            degraded: true,
        };
        let back = RunReport::from_bytes(r.to_bytes()).expect("decode");
        assert_eq!(format!("{back:?}"), format!("{r:?}"));
        assert_eq!(back.backend, "sim");
        let c = back.completions.as_ref().unwrap();
        assert_eq!(c.timestamps(0), &[10, 20]);
        assert_eq!(c.timestamps(3), &[15]);
    }

    #[test]
    fn report_without_completions_roundtrips() {
        let mut r = RunReport {
            backend: "threaded",
            elapsed: 0.0,
            items: 0,
            pairs: 0,
            failed_pairs: 0,
            loads: 0,
            remote_fetches: 0,
            io_bytes: 0,
            net_bytes: 0,
            net_msgs: 0,
            steals: 0,
            busy: BusyTimes::default(),
            device_cache: CacheStats::default(),
            host_cache: CacheStats::default(),
            directory: DirectoryStats::default(),
            pairs_per_node: Vec::new(),
            completions: None,
            sim_shards: 0,
            sim_windows: 0,
            degraded: false,
        };
        let back = RunReport::from_bytes(r.to_bytes()).unwrap();
        assert_eq!(format!("{back:?}"), format!("{r:?}"));
        r.degraded = true;
        assert!(RunReport::from_bytes(r.to_bytes()).unwrap().degraded);
    }

    #[test]
    fn interner_reuses_known_names() {
        let a = intern("some-backend-name".to_string());
        let b = intern("some-backend-name".to_string());
        assert!(std::ptr::eq(a, b));
    }

    #[test]
    fn corrupt_tags_rejected() {
        let s = fancy_scenario();
        let mut bytes = s.to_bytes().to_vec();
        // Truncation must error, not panic.
        bytes.truncate(bytes.len() / 2);
        assert!(Scenario::from_bytes(bytes.into()).is_err());
        // Trailing garbage is rejected (full-consumption contract).
        let mut padded = s.to_bytes().to_vec();
        padded.push(0xFF);
        assert!(Scenario::from_bytes(padded.into()).is_err());
    }
}
