//! Execution backends: anything that can run a [`Scenario`].
//!
//! The [`Backend`] trait is the seam between scenario *description* and
//! scenario *execution*. Two implementations exist:
//!
//! * [`ThreadedBackend`] (here) — the real runtime: threads, virtual GPUs,
//!   an actual [`Application`] over an object store,
//! * `rocket_sim::SimBackend` — the discrete-event simulator, which samples
//!   the scenario's workload profile in virtual time.
//!
//! Both produce the same [`RunReport`], so drivers (experiments, the
//! [`crate::Replications`] runner, examples) are backend-agnostic.

use std::sync::Arc;

use rocket_storage::ObjectStore;

use crate::app::Application;
use crate::cluster::{AppReport, Rocket};
use crate::error::RocketError;
use crate::report::RunReport;
use crate::scenario::Scenario;

/// An execution engine for [`Scenario`]s.
///
/// Implementations must be `Sync`: the [`crate::Replications`] runner
/// shares one backend across its worker threads.
pub trait Backend: Sync {
    /// Short backend identifier (appears in [`RunReport::backend`]).
    fn name(&self) -> &'static str;

    /// Runs the scenario to completion and reports aggregate results.
    fn run(&self, scenario: &Scenario) -> Result<RunReport, RocketError>;
}

/// The threaded runtime as a [`Backend`]: executes a real
/// [`Application`] over an [`ObjectStore`] on the in-process cluster the
/// scenario's topology describes.
///
/// The scenario's workload profile contributes only the item count (the
/// application supplies the actual compute); [`ThreadedBackend::run_app`]
/// additionally returns the typed per-pair outputs. The scenario's
/// transport knob selects how nodes communicate — in-process channels by
/// default, loopback TCP via `TransportKind::Socket` (the report then
/// names the backend `"threaded+socket"`; `net_bytes` counts transport
/// payload traffic on either transport — self-addressed protocol
/// messages included, framing overhead excluded).
pub struct ThreadedBackend<A: Application> {
    app: Arc<A>,
    store: Arc<dyn ObjectStore>,
}

impl<A: Application> ThreadedBackend<A> {
    /// Wraps an application and its object store as a backend.
    pub fn new(app: Arc<A>, store: Arc<dyn ObjectStore>) -> Self {
        Self { app, store }
    }

    /// The wrapped application.
    pub fn app(&self) -> &Arc<A> {
        &self.app
    }

    /// The wrapped object store.
    pub fn store(&self) -> &Arc<dyn ObjectStore> {
        &self.store
    }

    /// Runs the scenario and returns the typed report (per-pair outputs
    /// included). [`Backend::run`] is this plus [`AppReport::unified`].
    ///
    /// The scenario's item count must match the application's — the
    /// runtime sizes every structure from the app, so a mismatch means
    /// the topology/caches were designed for a different data set.
    pub fn run_app(&self, scenario: &Scenario) -> Result<AppReport<A::Output>, RocketError> {
        scenario.validate().map_err(RocketError::Config)?;
        if scenario.workload.items != self.app.item_count() {
            return Err(RocketError::Config(format!(
                "scenario describes {} items but application `{}` has {}",
                scenario.workload.items,
                self.app.name(),
                self.app.item_count()
            )));
        }
        Rocket::run_cluster_with(
            Arc::clone(&self.app),
            Arc::clone(&self.store),
            scenario.node_configs(),
            scenario.transport,
        )
    }
}

impl<A: Application> Backend for ThreadedBackend<A> {
    fn name(&self) -> &'static str {
        "threaded"
    }

    fn run(&self, scenario: &Scenario) -> Result<RunReport, RocketError> {
        Ok(self.run_app(scenario)?.unified(scenario))
    }
}
