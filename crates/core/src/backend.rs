//! Execution backends: anything that can run a [`Scenario`].
//!
//! The [`Backend`] trait is the seam between scenario *description* and
//! scenario *execution*. Two implementations exist:
//!
//! * [`ThreadedBackend`] (here) — the real runtime: threads, virtual GPUs,
//!   an actual [`Application`] over an object store,
//! * `rocket_sim::SimBackend` — the discrete-event simulator, which samples
//!   the scenario's workload profile in virtual time.
//!
//! Both produce the same [`RunReport`], so drivers (experiments, the
//! [`crate::Replications`] runner, examples) are backend-agnostic.

use std::sync::Arc;

use rocket_storage::ObjectStore;
use rocket_trace::{PerfKind, PerfLog, PerfRecord, TaskKind};

use crate::app::Application;
use crate::cluster::{AppReport, Rocket};
use crate::error::RocketError;
use crate::report::RunReport;
use crate::scenario::Scenario;

/// An execution engine for [`Scenario`]s.
///
/// Implementations must be `Sync`: the [`crate::Replications`] runner
/// shares one backend across its worker threads.
pub trait Backend: Sync {
    /// Short backend identifier (appears in [`RunReport::backend`]).
    fn name(&self) -> &'static str;

    /// Runs the scenario to completion and reports aggregate results.
    fn run(&self, scenario: &Scenario) -> Result<RunReport, RocketError>;

    /// Runs the scenario while streaming perf samples into `perf`.
    ///
    /// The default implementation ignores the log (backends without
    /// instrumentation — e.g. the remote cluster driver, whose work
    /// happens in other processes — record nothing). Backends that
    /// override this guarantee the *result* is unchanged by recording:
    /// perf data travels out-of-band, never through `RunReport` wire
    /// structs.
    fn run_with_perf(&self, scenario: &Scenario, perf: &PerfLog) -> Result<RunReport, RocketError> {
        let _ = perf;
        self.run(scenario)
    }
}

/// The threaded runtime as a [`Backend`]: executes a real
/// [`Application`] over an [`ObjectStore`] on the in-process cluster the
/// scenario's topology describes.
///
/// The scenario's workload profile contributes only the item count (the
/// application supplies the actual compute); [`ThreadedBackend::run_app`]
/// additionally returns the typed per-pair outputs. The scenario's
/// transport knob selects how nodes communicate — in-process channels by
/// default, loopback TCP via `TransportKind::Socket` (the report then
/// names the backend `"threaded+socket"`; `net_bytes` counts transport
/// payload traffic on either transport — self-addressed protocol
/// messages included, framing overhead excluded).
pub struct ThreadedBackend<A: Application> {
    app: Arc<A>,
    store: Arc<dyn ObjectStore>,
}

impl<A: Application> ThreadedBackend<A> {
    /// Wraps an application and its object store as a backend.
    pub fn new(app: Arc<A>, store: Arc<dyn ObjectStore>) -> Self {
        Self { app, store }
    }

    /// The wrapped application.
    pub fn app(&self) -> &Arc<A> {
        &self.app
    }

    /// The wrapped object store.
    pub fn store(&self) -> &Arc<dyn ObjectStore> {
        &self.store
    }

    /// Runs the scenario and returns the typed report (per-pair outputs
    /// included). [`Backend::run`] is this plus [`AppReport::unified`].
    ///
    /// The scenario's item count must match the application's — the
    /// runtime sizes every structure from the app, so a mismatch means
    /// the topology/caches were designed for a different data set.
    pub fn run_app(&self, scenario: &Scenario) -> Result<AppReport<A::Output>, RocketError> {
        scenario.validate().map_err(RocketError::Config)?;
        if scenario.workload.items != self.app.item_count() {
            return Err(RocketError::Config(format!(
                "scenario describes {} items but application `{}` has {}",
                scenario.workload.items,
                self.app.name(),
                self.app.item_count()
            )));
        }
        Rocket::run_cluster_with(
            Arc::clone(&self.app),
            Arc::clone(&self.store),
            scenario.node_configs(),
            scenario.transport,
        )
    }
}

impl<A: Application> Backend for ThreadedBackend<A> {
    fn name(&self) -> &'static str {
        "threaded"
    }

    fn run(&self, scenario: &Scenario) -> Result<RunReport, RocketError> {
        Ok(self.run_app(scenario)?.unified(scenario))
    }

    /// Forces task tracing on and converts the recorded spans into perf
    /// records (timestamp = span end, value = duration; `RemoteFetch`
    /// spans become directory-probe hits, `RemoteServe` spans are the
    /// serving side of the same probe and are skipped). Forcing tracing
    /// changes only the report's busy-time/trace-derived fields, never
    /// the computed results.
    fn run_with_perf(&self, scenario: &Scenario, perf: &PerfLog) -> Result<RunReport, RocketError> {
        if !perf.is_enabled() {
            return self.run(scenario);
        }
        let mut traced = scenario.clone();
        traced.tracing = true;
        let report = self.run_app(&traced)?;
        for node in &report.nodes {
            perf.extend(node.spans.iter().filter_map(|s| {
                let kind = match s.kind {
                    TaskKind::Read => PerfKind::Read,
                    TaskKind::Parse => PerfKind::Parse,
                    TaskKind::Preprocess => PerfKind::Preprocess,
                    TaskKind::Compare => PerfKind::Compare,
                    TaskKind::CopyIn => PerfKind::CopyIn,
                    TaskKind::CopyOut => PerfKind::CopyOut,
                    TaskKind::Postprocess => PerfKind::Postprocess,
                    TaskKind::RemoteFetch => PerfKind::ProbeHit,
                    TaskKind::RemoteServe => return None,
                    TaskKind::Steal => PerfKind::Steal,
                };
                Some(PerfRecord {
                    t_ns: s.end_ns,
                    kind,
                    node: node.node as u32,
                    value: s.duration_ns(),
                })
            }));
        }
        Ok(report.unified(&traced))
    }
}
