//! The Rocket all-pairs framework (§3–§4 of the paper).
//!
//! Rocket executes a user-defined pairwise function over every pair of a
//! data set on (virtual) GPU platforms. Users implement the
//! [`Application`] trait — parse (CPU), pre-process (GPU), compare (GPU),
//! post-process (CPU) — and call [`Rocket::run`]; the runtime handles
//! network communication, data transfers, memory management, scheduling,
//! data reuse, load balancing, and overlapping computation with I/O.
//!
//! ```
//! use rocket_core::{Application, AppError, Rocket, RocketConfig};
//! use rocket_core::Pair;
//! use rocket_storage::MemStore;
//! use std::sync::Arc;
//!
//! /// Sums byte values and compares totals — a toy distance function.
//! struct ByteSum;
//!
//! impl Application for ByteSum {
//!     type Output = i64;
//!     fn name(&self) -> &str { "bytesum" }
//!     fn item_count(&self) -> u64 { 4 }
//!     fn file_for(&self, item: u64) -> String { format!("{item}.bin") }
//!     fn parsed_bytes(&self) -> usize { 8 }
//!     fn item_bytes(&self) -> usize { 8 }
//!     fn result_bytes(&self) -> usize { 8 }
//!     fn has_preprocess(&self) -> bool { false }
//!     fn parse(&self, _item: u64, raw: &[u8], out: &mut [u8]) -> Result<(), AppError> {
//!         let sum: i64 = raw.iter().map(|&b| b as i64).sum();
//!         out[..8].copy_from_slice(&sum.to_le_bytes());
//!         Ok(())
//!     }
//!     fn compare(&self, left: (u64, &[u8]), right: (u64, &[u8]), out: &mut [u8])
//!         -> Result<(), AppError>
//!     {
//!         let l = i64::from_le_bytes(left.1[..8].try_into().unwrap());
//!         let r = i64::from_le_bytes(right.1[..8].try_into().unwrap());
//!         out[..8].copy_from_slice(&(l - r).to_le_bytes());
//!         Ok(())
//!     }
//!     fn postprocess(&self, _pair: Pair, raw: &[u8]) -> i64 {
//!         i64::from_le_bytes(raw[..8].try_into().unwrap())
//!     }
//! }
//!
//! let store = MemStore::from_iter((0..4).map(|i| (format!("{i}.bin"), vec![i as u8; 10])));
//! let config = RocketConfig::builder()
//!     .devices(1)
//!     .device_cache_slots(4)
//!     .host_cache_slots(8)
//!     .concurrent_job_limit(4)
//!     .build();
//! let report = Rocket::new(config).run(Arc::new(ByteSum), Arc::new(store)).unwrap();
//! assert_eq!(report.outputs.len(), 6); // C(4,2) pairs
//! assert!(report.failed().is_empty());
//! ```

#![warn(missing_docs)]

pub mod app;
pub mod backend;
pub mod clock;
pub mod cluster;
pub mod codec;
pub mod config;
pub mod engine;
pub mod error;
pub mod replications;
pub mod report;
pub mod scenario;
pub mod study;
pub mod sweep;
pub mod workload;

pub use app::{bytesutil, Application};
pub use backend::{Backend, ThreadedBackend};
pub use cluster::{AppReport, Rocket};
pub use config::{ConfigSummary, RocketConfig, RocketConfigBuilder};
pub use engine::NodeReport;
pub use error::{AppError, RocketError};
pub use replications::{AdaptiveReplications, ReplicationReport, Replications};
pub use report::{BusyTimes, RunReport};
pub use scenario::{NodeSpec, Scenario, ScenarioBuilder, MAX_SOCKET_NODES};
pub use study::{CellReport, ReplicationPolicy, Study, StudyReport};
pub use sweep::{Axis, AxisValue, Sweep, SweepBuilder, SweepCell};
pub use workload::WorkloadProfile;

// Re-export the types users need at the API boundary.
pub use rocket_cache::ItemId;
pub use rocket_comm::{CommSnapshot, TransportKind};
/// The lock-witness sanitizer (`rocket_core::sanitize::Mutex` etc.).
/// Inert unless built with the workspace `sanitize` feature.
pub use rocket_sanitize as sanitize;
pub use rocket_steal::Pair;
pub use rocket_trace::{
    PerfClass, PerfKind, PerfLog, PerfMeta, PerfQuery, PerfRecord, PerfRollup, StageStats,
};
