//! Declarative execution scenarios — the single front door of the driver
//! API.
//!
//! A [`Scenario`] describes *what* to run (a [`WorkloadProfile`]), *where*
//! to run it (cluster topology: [`NodeSpec`]s of GPUs × cache slots), and
//! *how* (runtime knobs, platform model, seed) — independent of the
//! execution engine. Any [`crate::Backend`] consumes the same scenario:
//! the threaded runtime derives per-node `RocketConfig`s from it, the
//! discrete-event simulator derives its `SimConfig`, and the
//! [`crate::Replications`] runner re-seeds it per replication.
//!
//! Build scenarios with [`Scenario::builder`]; invalid topologies are
//! rejected by [`ScenarioBuilder::try_build`].

use rocket_comm::TransportKind;
use rocket_gpu::DeviceProfile;

use crate::config::RocketConfig;
use crate::workload::WorkloadProfile;

/// Largest socket-transport cluster the builder accepts: the full mesh
/// opens `p·(p−1)/2` loopback connections inside one process, so very
/// large topologies belong on the simulator (or on real multi-process
/// deployments where each process owns only its own `p−1` sockets).
pub const MAX_SOCKET_NODES: usize = 64;

/// Topology of one cluster node: its GPUs and cache capacities.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeSpec {
    /// The GPUs of this node (one work-stealing worker each, §4.2).
    pub gpus: Vec<DeviceProfile>,
    /// Device-cache slots per GPU (level 1).
    pub device_slots: usize,
    /// Host-cache slots for the node (level 2).
    pub host_slots: usize,
}

impl NodeSpec {
    /// `gpus` identical baseline (TitanX Maxwell) GPUs with the given cache
    /// sizes.
    pub fn uniform(gpus: usize, device_slots: usize, host_slots: usize) -> Self {
        Self {
            gpus: (0..gpus).map(|_| DeviceProfile::titanx_maxwell()).collect(),
            device_slots,
            host_slots,
        }
    }

    /// A node with the given device profiles and cache sizes.
    pub fn with_gpus(gpus: Vec<DeviceProfile>, device_slots: usize, host_slots: usize) -> Self {
        Self {
            gpus,
            device_slots,
            host_slots,
        }
    }
}

/// A complete, validated description of one all-pairs run.
///
/// Construct through [`Scenario::builder`]. All fields are public for
/// inspection; mutate via the builder (or directly — [`Scenario::validate`]
/// re-checks consistency).
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// The workload (items, sizes, stage-time distributions).
    pub workload: WorkloadProfile,
    /// One entry per cluster node.
    pub nodes: Vec<NodeSpec>,
    /// Level-3 distributed cache on/off (Fig 12 compares both).
    pub distributed_cache: bool,
    /// Maximum distributed-lookup hops `h`.
    pub hops: usize,
    /// Concurrent job limit per node (§4.2 back-pressure).
    pub job_limit: usize,
    /// CPU pool size per node (parse / post-process).
    pub cpu_threads: usize,
    /// Pairs per leaf task in the quadrant decomposition.
    pub leaf_pairs: u64,
    /// Deterministic static work assignment instead of work-stealing
    /// (threaded runtime; reproducible per-node pair counts).
    pub static_partition: bool,
    /// Cluster transport of the threaded runtime: in-process channels or
    /// loopback TCP sockets (the simulator models the network instead and
    /// ignores this knob).
    pub transport: TransportKind,
    /// Central storage bandwidth, bytes/second (shared by all nodes).
    pub storage_bandwidth: f64,
    /// Per-request storage latency, seconds.
    pub storage_latency: f64,
    /// Inter-node network bandwidth per NIC, bytes/second.
    pub net_bandwidth: f64,
    /// One-way network message latency, seconds.
    pub net_latency: f64,
    /// Storage read retries before an item load fails (threaded runtime).
    pub io_retries: usize,
    /// Attempts to load an item before failing dependent jobs (threaded).
    pub max_item_failures: u32,
    /// Record a task trace (threaded) / per-GPU completion series (DES).
    pub tracing: bool,
    /// Record per-GPU completion timestamps (Fig 14; DES backend).
    pub record_completions: bool,
    /// Use the calendar-queue event scheduler (DES backend; results are
    /// identical, the calendar targets very large clusters).
    pub calendar_queue: bool,
    /// Shards of the parallel DES backend: nodes are partitioned into this
    /// many shards advancing in lock-step time windows on a steal pool.
    /// Results are byte-identical for every value; `1` (the default) is the
    /// sequential engine. Clamped to the node count at run time. The
    /// threaded runtime ignores this knob.
    pub sim_shards: usize,
    /// Root seed for every randomized decision.
    pub seed: u64,
}

impl Scenario {
    /// Starts a builder with paper-style defaults: DAS-5-like storage
    /// (InfiniBand MinIO) and network, distributed cache on, `h = 1`.
    pub fn builder() -> ScenarioBuilder {
        ScenarioBuilder::default()
    }

    /// Total GPUs in the cluster.
    pub fn total_gpus(&self) -> usize {
        self.nodes.iter().map(|n| n.gpus.len()).sum()
    }

    /// All device profiles, flattened (for the performance model).
    pub fn all_gpus(&self) -> Vec<DeviceProfile> {
        self.nodes
            .iter()
            .flat_map(|n| n.gpus.iter().cloned())
            .collect()
    }

    /// Returns a copy with a different seed (what [`crate::Replications`]
    /// uses to fan one scenario out over many seeds).
    pub fn with_seed(&self, seed: u64) -> Self {
        let mut s = self.clone();
        s.seed = seed;
        s
    }

    /// Validates internal consistency (what `try_build` enforces).
    pub fn validate(&self) -> Result<(), String> {
        if self.workload.items < 2 {
            return Err("workload needs at least 2 items (no pairs otherwise)".into());
        }
        if self.nodes.is_empty() {
            return Err("cluster needs at least one node".into());
        }
        for (i, node) in self.nodes.iter().enumerate() {
            if node.gpus.is_empty() {
                return Err(format!("node {i} has no GPUs"));
            }
            if node.device_slots < 2 {
                return Err(format!(
                    "node {i}: device cache needs at least 2 slots (a pair occupies two)"
                ));
            }
            if node.host_slots < 1 {
                return Err(format!("node {i}: host cache needs at least 1 slot"));
            }
        }
        if self.hops < 1 {
            return Err("distributed hops (h) must be at least 1".into());
        }
        if self.hops > rocket_cache::MAX_HOPS {
            return Err(format!(
                "distributed hops (h) capped at {} (probe chains are carried inline)",
                rocket_cache::MAX_HOPS
            ));
        }
        if self.job_limit < 1 {
            return Err("concurrent job limit must be positive".into());
        }
        if self.cpu_threads < 1 {
            return Err("at least one CPU thread is required".into());
        }
        if self.leaf_pairs < 1 {
            return Err("leaf tasks must hold at least one pair".into());
        }
        if self.sim_shards < 1 {
            return Err("simulator shard count must be at least 1".into());
        }
        if self.transport == TransportKind::Socket && self.nodes.len() > MAX_SOCKET_NODES {
            return Err(format!(
                "socket transport supports at most {MAX_SOCKET_NODES} in-process nodes \
                 ({} requested); larger topologies belong on the simulator",
                self.nodes.len()
            ));
        }
        if self.storage_bandwidth <= 0.0
            || self.net_bandwidth <= 0.0
            || self.storage_bandwidth.is_nan()
            || self.net_bandwidth.is_nan()
        {
            return Err("bandwidths must be positive".into());
        }
        if self.storage_latency < 0.0
            || self.net_latency < 0.0
            || self.storage_latency.is_nan()
            || self.net_latency.is_nan()
        {
            return Err("latencies must be non-negative".into());
        }
        Ok(())
    }

    /// Derives the per-node configuration the threaded runtime consumes
    /// (one [`RocketConfig`] per [`NodeSpec`]).
    pub fn node_configs(&self) -> Vec<RocketConfig> {
        self.nodes
            .iter()
            .map(|node| RocketConfig {
                devices: node.gpus.clone(),
                device_cache_slots: node.device_slots,
                host_cache_slots: node.host_slots,
                concurrent_job_limit: self.job_limit,
                cpu_threads: self.cpu_threads,
                distributed_hops: self.hops,
                distributed_cache: self.distributed_cache,
                leaf_pairs: self.leaf_pairs,
                static_partition: self.static_partition,
                io_retries: self.io_retries,
                max_item_failures: self.max_item_failures,
                seed: self.seed,
                tracing: self.tracing,
            })
            .collect()
    }
}

/// Builder for [`Scenario`] (see [`Scenario::builder`]).
#[derive(Debug, Clone)]
pub struct ScenarioBuilder {
    scenario: Scenario,
}

impl Default for ScenarioBuilder {
    fn default() -> Self {
        Self {
            scenario: Scenario {
                workload: WorkloadProfile::items_only(2),
                nodes: Vec::new(),
                distributed_cache: true,
                hops: 1,
                job_limit: 64,
                cpu_threads: 16,
                leaf_pairs: 64,
                static_partition: false,
                transport: TransportKind::Local,
                storage_bandwidth: 1.2e9, // ~10 Gb/s effective object store
                storage_latency: 2e-3,
                net_bandwidth: 7.0e9, // 56 Gb/s InfiniBand FDR
                net_latency: 20e-6,
                io_retries: 2,
                max_item_failures: 5,
                tracing: false,
                record_completions: false,
                calendar_queue: false,
                sim_shards: 1,
                seed: 0x9E3779B97F4A7C15,
            },
        }
    }
}

impl ScenarioBuilder {
    /// Sets the workload profile (items, sizes, stage distributions).
    pub fn workload(mut self, workload: WorkloadProfile) -> Self {
        self.scenario.workload = workload;
        self
    }

    /// Describes the workload by item count only (threaded runs of a real
    /// [`crate::Application`], where the app supplies the compute).
    pub fn items(mut self, items: u64) -> Self {
        self.scenario.workload = WorkloadProfile::items_only(items);
        self
    }

    /// Appends one node to the topology.
    pub fn node(mut self, node: NodeSpec) -> Self {
        self.scenario.nodes.push(node);
        self
    }

    /// Replaces the topology with `count` copies of `node`.
    pub fn nodes(mut self, count: usize, node: NodeSpec) -> Self {
        self.scenario.nodes = vec![node; count];
        self
    }

    /// Replaces the topology with `nodes` uniform nodes of
    /// `gpus_per_node` baseline GPUs each.
    pub fn uniform_cluster(
        self,
        nodes: usize,
        gpus_per_node: usize,
        device_slots: usize,
        host_slots: usize,
    ) -> Self {
        self.nodes(
            nodes,
            NodeSpec::uniform(gpus_per_node, device_slots, host_slots),
        )
    }

    /// Enables/disables the level-3 distributed cache.
    pub fn distributed_cache(mut self, on: bool) -> Self {
        self.scenario.distributed_cache = on;
        self
    }

    /// Sets the distributed-lookup hop limit `h`.
    pub fn hops(mut self, h: usize) -> Self {
        self.scenario.hops = h;
        self
    }

    /// Sets the concurrent job limit per node.
    pub fn job_limit(mut self, limit: usize) -> Self {
        self.scenario.job_limit = limit;
        self
    }

    /// Sets the CPU pool size per node.
    pub fn cpu_threads(mut self, n: usize) -> Self {
        self.scenario.cpu_threads = n;
        self
    }

    /// Sets pairs per leaf task.
    pub fn leaf_pairs(mut self, pairs: u64) -> Self {
        self.scenario.leaf_pairs = pairs;
        self
    }

    /// Enables/disables deterministic static work assignment (threaded
    /// runtime; per-node pair counts become reproducible, load balance
    /// becomes static).
    pub fn static_partition(mut self, on: bool) -> Self {
        self.scenario.static_partition = on;
        self
    }

    /// Selects the cluster transport of the threaded runtime.
    pub fn transport(mut self, kind: TransportKind) -> Self {
        self.scenario.transport = kind;
        self
    }

    /// Sets the central-storage model (bytes/second, seconds).
    pub fn storage(mut self, bandwidth: f64, latency: f64) -> Self {
        self.scenario.storage_bandwidth = bandwidth;
        self.scenario.storage_latency = latency;
        self
    }

    /// Sets the inter-node network model (bytes/second, seconds).
    pub fn network(mut self, bandwidth: f64, latency: f64) -> Self {
        self.scenario.net_bandwidth = bandwidth;
        self.scenario.net_latency = latency;
        self
    }

    /// Sets storage read retries (threaded runtime).
    pub fn io_retries(mut self, retries: usize) -> Self {
        self.scenario.io_retries = retries;
        self
    }

    /// Sets the per-item failure budget (threaded runtime).
    pub fn max_item_failures(mut self, n: u32) -> Self {
        self.scenario.max_item_failures = n;
        self
    }

    /// Enables/disables task tracing (threaded runtime).
    pub fn tracing(mut self, on: bool) -> Self {
        self.scenario.tracing = on;
        self
    }

    /// Records per-GPU completion timestamps (DES backend, Fig 14).
    pub fn record_completions(mut self, on: bool) -> Self {
        self.scenario.record_completions = on;
        self
    }

    /// Selects the calendar-queue event scheduler (DES backend).
    pub fn calendar_queue(mut self, on: bool) -> Self {
        self.scenario.calendar_queue = on;
        self
    }

    /// Sets the shard count of the parallel DES backend (results are
    /// byte-identical for every value; clamped to the node count).
    pub fn sim_shards(mut self, shards: usize) -> Self {
        self.scenario.sim_shards = shards;
        self
    }

    /// Sets the root seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.scenario.seed = seed;
        self
    }

    /// Finalizes, returning an error message for invalid topologies.
    pub fn try_build(self) -> Result<Scenario, String> {
        self.scenario.validate()?;
        Ok(self.scenario)
    }

    /// Finalizes the scenario (panics on invalid settings; use
    /// [`ScenarioBuilder::try_build`] for fallible construction).
    pub fn build(self) -> Scenario {
        self.try_build().expect("invalid Scenario")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn valid() -> ScenarioBuilder {
        Scenario::builder()
            .items(16)
            .node(NodeSpec::uniform(1, 4, 8))
    }

    #[test]
    fn builder_defaults_validate() {
        let s = valid().build();
        assert_eq!(s.nodes.len(), 1);
        assert_eq!(s.total_gpus(), 1);
        assert!(s.distributed_cache);
        assert_eq!(s.hops, 1);
        assert!(s.validate().is_ok());
    }

    #[test]
    fn empty_topology_rejected() {
        let err = Scenario::builder().items(16).try_build().unwrap_err();
        assert!(err.contains("at least one node"), "{err}");
    }

    #[test]
    fn gpuless_node_rejected() {
        let err = valid()
            .node(NodeSpec::with_gpus(Vec::new(), 4, 8))
            .try_build()
            .unwrap_err();
        assert!(err.contains("no GPUs"), "{err}");
    }

    #[test]
    fn tiny_caches_rejected() {
        let err = Scenario::builder()
            .items(16)
            .node(NodeSpec::uniform(1, 1, 8))
            .try_build()
            .unwrap_err();
        assert!(err.contains("2 slots"), "{err}");
        let err = Scenario::builder()
            .items(16)
            .node(NodeSpec::uniform(1, 4, 0))
            .try_build()
            .unwrap_err();
        assert!(err.contains("host cache"), "{err}");
    }

    #[test]
    fn degenerate_knobs_rejected() {
        assert!(valid().hops(0).try_build().is_err());
        // The probe chain is carried inline; h beyond its capacity would
        // silently clamp, so the builder rejects it up front.
        assert!(valid().hops(rocket_cache::MAX_HOPS).try_build().is_ok());
        assert!(valid()
            .hops(rocket_cache::MAX_HOPS + 1)
            .try_build()
            .is_err());
        assert!(valid().storage(f64::NAN, 1e-3).try_build().is_err());
        assert!(valid().storage(1e9, f64::NAN).try_build().is_err());
        assert!(valid().job_limit(0).try_build().is_err());
        assert!(valid().sim_shards(0).try_build().is_err());
        assert!(valid().sim_shards(8).try_build().is_ok());
        assert!(valid().cpu_threads(0).try_build().is_err());
        assert!(valid().leaf_pairs(0).try_build().is_err());
        assert!(valid().storage(0.0, 1e-3).try_build().is_err());
        assert!(valid().network(-1.0, 1e-3).try_build().is_err());
        assert!(valid().storage(1e9, -1.0).try_build().is_err());
        let err = Scenario::builder()
            .items(1)
            .node(NodeSpec::uniform(1, 4, 8))
            .try_build()
            .unwrap_err();
        assert!(err.contains("2 items"), "{err}");
    }

    #[test]
    fn node_configs_mirror_scenario() {
        let s = Scenario::builder()
            .items(32)
            .uniform_cluster(3, 2, 8, 16)
            .job_limit(7)
            .cpu_threads(3)
            .hops(2)
            .distributed_cache(false)
            .leaf_pairs(5)
            .tracing(true)
            .seed(42)
            .build();
        let configs = s.node_configs();
        assert_eq!(configs.len(), 3);
        for c in &configs {
            assert!(c.validate().is_ok());
            assert_eq!(c.devices.len(), 2);
            assert_eq!(c.device_cache_slots, 8);
            assert_eq!(c.host_cache_slots, 16);
            assert_eq!(c.concurrent_job_limit, 7);
            assert_eq!(c.cpu_threads, 3);
            assert_eq!(c.distributed_hops, 2);
            assert!(!c.distributed_cache);
            assert_eq!(c.leaf_pairs, 5);
            assert_eq!(c.seed, 42);
            assert!(c.tracing);
        }
    }

    #[test]
    fn transport_knob_defaults_local_and_validates() {
        let s = valid().build();
        assert_eq!(s.transport, TransportKind::Local);
        assert!(!s.static_partition);
        let s = valid()
            .transport(TransportKind::Socket)
            .static_partition(true)
            .build();
        assert_eq!(s.transport, TransportKind::Socket);
        assert!(s.static_partition);
        assert!(s.node_configs()[0].static_partition);
        // Socket meshes are capped: the full in-process mesh holds
        // p·(p−1)/2 live loopback connections.
        let err = Scenario::builder()
            .items(512)
            .uniform_cluster(MAX_SOCKET_NODES + 1, 1, 4, 8)
            .transport(TransportKind::Socket)
            .try_build()
            .unwrap_err();
        assert!(err.contains("socket transport"), "{err}");
        assert!(Scenario::builder()
            .items(512)
            .uniform_cluster(MAX_SOCKET_NODES + 1, 1, 4, 8)
            .try_build()
            .is_ok());
    }

    #[test]
    fn with_seed_changes_only_seed() {
        let s = valid().seed(1).build();
        let t = s.with_seed(2);
        assert_eq!(t.seed, 2);
        let mut back = t.clone();
        back.seed = 1;
        assert_eq!(back, s);
    }

    #[test]
    fn heterogeneous_topology_flattens() {
        use rocket_gpu::DeviceProfile;
        let s = Scenario::builder()
            .items(16)
            .node(NodeSpec::with_gpus(vec![DeviceProfile::k20m()], 4, 8))
            .node(NodeSpec::with_gpus(
                vec![DeviceProfile::rtx2080ti(), DeviceProfile::gtx980()],
                4,
                8,
            ))
            .build();
        assert_eq!(s.total_gpus(), 3);
        assert_eq!(s.all_gpus().len(), 3);
    }
}
