//! The user-facing application interface (the paper's Fig 3).
//!
//! An all-pairs application supplies four functions plus size metadata:
//!
//! | paper            | here              | resource |
//! |------------------|-------------------|----------|
//! | `parseFile`      | [`Application::parse`]       | CPU |
//! | `preprocessGPU`  | [`Application::preprocess`]  | GPU |
//! | `compareGPU`     | [`Application::compare`]     | GPU |
//! | `postprocess`    | [`Application::postprocess`] | CPU |
//!
//! plus `getFilePathForKey` → [`Application::file_for`]. Rocket handles
//! everything else: I/O, transfers, caching, scheduling, load balancing,
//! and overlapping computation with data movement.
//!
//! "GPU" kernels receive raw byte slices resident in (virtual) device
//! memory; [`bytesutil`] offers safe f32/f64 view helpers since most
//! scientific payloads are float arrays.

use rocket_cache::ItemId;
use rocket_steal::Pair;

use crate::error::AppError;

/// An all-pairs application (the paper's Fig 3 interface).
///
/// Items are addressed by dense indices `0..n`. All stages must be pure
/// (deterministic, no shared mutable state) — determinism of `ℓ` is what
/// makes cached results reusable (§4).
pub trait Application: Send + Sync + 'static {
    /// Per-pair output delivered to the caller.
    type Output: Send + 'static;

    /// Human-readable application name (used in reports).
    fn name(&self) -> &str;

    /// Number of items in the data set.
    fn item_count(&self) -> u64;

    /// Storage key (file path) of an item — `getFilePathForKey`.
    fn file_for(&self, item: ItemId) -> String;

    /// Size in bytes of the *parsed* representation (CPU output, GPU
    /// pre-processing input).
    fn parsed_bytes(&self) -> usize;

    /// Size in bytes of the *pre-processed* item — this is the cache slot
    /// size at both the device and host levels (Table 1's "Cache Slot
    /// Size").
    fn item_bytes(&self) -> usize;

    /// Size in bytes of one comparison's raw result buffer.
    fn result_bytes(&self) -> usize;

    /// Whether the application has a GPU pre-processing stage. When
    /// `false` (e.g. the microscopy application), the parsed bytes *are*
    /// the item bytes and `preprocess` is never called.
    fn has_preprocess(&self) -> bool {
        true
    }

    /// CPU stage: decode the raw file into the parsed representation.
    /// `out` has length [`Application::parsed_bytes`].
    fn parse(&self, item: ItemId, raw: &[u8], out: &mut [u8]) -> Result<(), AppError>;

    /// GPU stage: transform parsed data into the comparable item form.
    /// `input` has length `parsed_bytes()`, `out` has `item_bytes()`.
    fn preprocess(&self, item: ItemId, input: &[u8], out: &mut [u8]) -> Result<(), AppError> {
        let _ = item;
        let n = out.len().min(input.len());
        out[..n].copy_from_slice(&input[..n]);
        Ok(())
    }

    /// GPU stage: compare two pre-processed items; `out` has
    /// `result_bytes()`.
    fn compare(
        &self,
        left: (ItemId, &[u8]),
        right: (ItemId, &[u8]),
        out: &mut [u8],
    ) -> Result<(), AppError>;

    /// CPU stage: interpret the raw result buffer.
    fn postprocess(&self, pair: Pair, raw: &[u8]) -> Self::Output;
}

/// Byte-buffer view helpers for float payloads.
///
/// Copy-based (not transmuting), so they are alignment-safe on every
/// platform; the virtual device's buffers are plain host memory and these
/// conversions are a negligible share of kernel cost.
pub mod bytesutil {
    /// Writes `values` as little-endian f32s at the start of `out`.
    /// Panics if `out` is too small.
    pub fn write_f32(out: &mut [u8], values: &[f32]) {
        assert!(out.len() >= values.len() * 4, "buffer too small");
        for (chunk, v) in out.chunks_exact_mut(4).zip(values) {
            chunk.copy_from_slice(&v.to_le_bytes());
        }
    }

    /// Reads `count` little-endian f32s from the start of `buf`.
    pub fn read_f32(buf: &[u8], count: usize) -> Vec<f32> {
        assert!(buf.len() >= count * 4, "buffer too small");
        buf.chunks_exact(4)
            .take(count)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect()
    }

    /// Writes `values` as little-endian f64s at the start of `out`.
    pub fn write_f64(out: &mut [u8], values: &[f64]) {
        assert!(out.len() >= values.len() * 8, "buffer too small");
        for (chunk, v) in out.chunks_exact_mut(8).zip(values) {
            chunk.copy_from_slice(&v.to_le_bytes());
        }
    }

    /// Reads `count` little-endian f64s from the start of `buf`.
    pub fn read_f64(buf: &[u8], count: usize) -> Vec<f64> {
        assert!(buf.len() >= count * 8, "buffer too small");
        buf.chunks_exact(8)
            .take(count)
            .map(|c| f64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]))
            .collect()
    }

    /// Writes one u32 length header followed by f32 payload; returns bytes
    /// used. A common layout for variable-length sparse data in fixed slots.
    pub fn write_len_prefixed_f32(out: &mut [u8], values: &[f32]) -> usize {
        let need = 4 + values.len() * 4;
        assert!(out.len() >= need, "buffer too small");
        out[..4].copy_from_slice(&(values.len() as u32).to_le_bytes());
        write_f32(&mut out[4..], values);
        need
    }

    /// Reads a u32-length-prefixed f32 payload.
    pub fn read_len_prefixed_f32(buf: &[u8]) -> Vec<f32> {
        let len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
        read_f32(&buf[4..], len)
    }
}

#[cfg(test)]
mod tests {
    use super::bytesutil::*;

    #[test]
    fn f32_roundtrip() {
        let vals = [1.5f32, -2.25, 0.0, f32::MAX];
        let mut buf = vec![0u8; 16];
        write_f32(&mut buf, &vals);
        assert_eq!(read_f32(&buf, 4), vals);
    }

    #[test]
    fn f64_roundtrip() {
        let vals = [std::f64::consts::PI, -0.5];
        let mut buf = vec![0u8; 16];
        write_f64(&mut buf, &vals);
        assert_eq!(read_f64(&buf, 2), vals);
    }

    #[test]
    fn len_prefixed_roundtrip() {
        let vals = [3.0f32, 4.0, 5.0];
        let mut buf = vec![0u8; 64];
        let used = write_len_prefixed_f32(&mut buf, &vals);
        assert_eq!(used, 16);
        assert_eq!(read_len_prefixed_f32(&buf), vals);
    }

    #[test]
    #[should_panic(expected = "buffer too small")]
    fn write_overflow_panics() {
        let mut buf = vec![0u8; 4];
        write_f32(&mut buf, &[1.0, 2.0]);
    }

    #[test]
    fn partial_reads() {
        let mut buf = vec![0u8; 12];
        write_f32(&mut buf, &[7.0, 8.0, 9.0]);
        assert_eq!(read_f32(&buf, 2), vec![7.0, 8.0]);
    }
}
