//! The per-node conductor: Rocket's asynchronous job engine.
//!
//! One conductor thread per node owns all scheduling state — the device and
//! host slot caches, in-flight load pipelines, the distributed-cache
//! directory — and dispatches stage tasks to the resource threads (§4.3).
//! Resource threads post completion events back; the conductor advances the
//! affected job/fill state machines. Because a single thread owns the state,
//! the cache policy code is the *same synchronous state machine* the
//! simulator drives, and there are no lock-ordering hazards.
//!
//! ## Pipelines (the paper's Fig 2 / Fig 4)
//!
//! A job `(i, j)` bound to device `d` acquires read leases on both items in
//! `d`'s device cache, then: compare kernel (GPU) → result copy (D2H) →
//! post-process (CPU) → output. A device-cache miss starts a *device fill*:
//! host-cache hit → H2D copy; host-cache miss → *host fill*: distributed
//! lookup → remote fetch, or the full load pipeline — read (I/O) → parse
//! (CPU) → staging upload (H2D) → pre-process (GPU, directly into the device
//! slot) → write-back (D2H) into the host slot. Items are therefore always
//! written to both the device and host caches, which is what the level-3
//! distributed cache relies on.
//!
//! ## Deadlock freedom
//!
//! Jobs acquire leases in `(left, right)` order and *release everything*
//! before parking when the cache reports `Busy`, so no job holds-and-waits
//! on cache capacity. Fill pipelines never wait on jobs. Pool resources
//! (staging and result buffers) are drained by queues that make progress
//! whenever a pipeline stage completes.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};
use rocket_sanitize::Mutex;

use rocket_cache::{
    CacheStats, Directory, DirectoryMsg, DirectoryStats, FxHashMap, FxHashSet, ItemId, Lookup,
    Resolution, SlotCache, SlotIdx,
};
use rocket_comm::{CommSnapshot, RecvError, Transport, Wire};
use rocket_gpu::{BufferId, VirtualDevice};
use rocket_steal::{JobLimiter, Pair};
use rocket_storage::ObjectStore;
use rocket_trace::{Span, TaskKind, ThreadClass, TraceRecorder};

use crate::app::Application;
use crate::config::RocketConfig;
use crate::engine::messages::NodeMsg;
use crate::engine::resource::Resource;

/// Job identifier within one node.
type JobId = u64;

/// What a parked waiter should do when woken.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Cont {
    /// Re-attempt lease acquisition for a job.
    Job(JobId),
    /// Re-attempt the host-cache acquire of a device fill.
    DevFill { dev: usize, item: ItemId },
}

/// Conductor events (posted by resource threads, the comm thread, and
/// submitters).
pub(crate) enum Event {
    /// A new pair job bound to a device.
    Submit { pair: Pair, dev: usize },
    /// Storage read finished.
    IoDone {
        item: ItemId,
        result: Result<Bytes, String>,
    },
    /// CPU parse finished (pre-process path: parsed bytes returned).
    ParseDone {
        item: ItemId,
        result: Result<Vec<u8>, String>,
    },
    /// CPU parse wrote directly into the host slot (no-pre-process path).
    ParseIntoHostDone {
        item: ItemId,
        result: Result<(), String>,
    },
    /// Parsed bytes were uploaded to the staging buffer.
    StagingUploaded {
        item: ItemId,
        result: Result<(), String>,
    },
    /// Pre-process kernel finished (item now in the device slot).
    PreprocessDone {
        item: ItemId,
        result: Result<(), String>,
    },
    /// Device slot was written back into the host slot.
    ItemCopiedToHost {
        item: ItemId,
        result: Result<(), String>,
    },
    /// Host slot was copied into the device slot (fill via host hit).
    DeviceFillCopied {
        dev: usize,
        item: ItemId,
        result: Result<(), String>,
    },
    /// Comparison kernel finished.
    CompareDone {
        job: JobId,
        result: Result<(), String>,
    },
    /// Result buffer arrived on the host.
    ResultCopied {
        job: JobId,
        result: Result<Vec<u8>, String>,
    },
    /// Post-processing delivered the output.
    PostDone { job: JobId },
    /// A message from a peer node (with the sender's rank from the
    /// transport envelope).
    Remote { from: usize, msg: NodeMsg },
    /// Stop the conductor (sent after cluster-wide completion).
    Shutdown,
}

struct Job {
    pair: Pair,
    dev: usize,
    left: Option<SlotIdx>,
    right: Option<SlotIdx>,
    result_buf: Option<BufferId>,
    /// The item this job last stalled on for capacity. Retries acquire it
    /// first so the retry consumes the slot freed by our own release —
    /// guaranteeing progress instead of live-locking on the other item.
    stalled: Option<ItemId>,
    /// Set once the compare kernel is scheduled; guards against duplicate
    /// scheduling from redundant wake-ups.
    comparing: bool,
}

struct HostFill {
    hslot: SlotIdx,
    origin_dev: usize,
    staging: Option<BufferId>,
    parsed: Option<Vec<u8>>,
}

/// Shared progress counters (read by the cluster driver).
#[derive(Debug, Default)]
pub(crate) struct NodeCounters {
    /// Jobs submitted to this node.
    pub submitted: AtomicU64,
    /// Jobs finished (successfully or not).
    pub done: AtomicU64,
}

impl NodeCounters {
    pub(crate) fn is_drained(&self) -> bool {
        self.done.load(Ordering::Acquire) >= self.submitted.load(Ordering::Acquire)
    }
}

/// Statistics and outcome of one node's run.
#[derive(Debug)]
pub struct NodeReport {
    /// Node rank.
    pub node: usize,
    /// Merged per-device cache counters (level 1).
    pub device_cache: CacheStats,
    /// Host cache counters (level 2).
    pub host_cache: CacheStats,
    /// Distributed-cache lookup counters (level 3).
    pub directory: DirectoryStats,
    /// Executions of the load pipeline ℓ on this node.
    pub loads: u64,
    /// Items obtained from remote host caches.
    pub remote_fetches: u64,
    /// Pairs that failed permanently, with causes.
    pub failed: Vec<(Pair, String)>,
    /// Recorded trace spans (empty when tracing is off).
    pub spans: Vec<Span>,
    /// Transport traffic counters (zero on single-node runs).
    pub comm: CommSnapshot,
}

/// Handle used by the cluster driver to feed and finalize a node.
pub(crate) struct NodeHandle {
    pub events: Sender<Event>,
    pub counters: Arc<NodeCounters>,
    pub limiter: Arc<JobLimiter>,
    thread: JoinHandle<NodeReport>,
    comm_stop: Arc<AtomicBool>,
    comm_thread: Option<JoinHandle<()>>,
}

impl NodeHandle {
    /// Submits one pair job bound to a device (caller must hold a limiter
    /// permit; the conductor releases it at completion).
    pub fn submit(&self, pair: Pair, dev: usize) {
        self.counters.submitted.fetch_add(1, Ordering::Release);
        self.events
            .send(Event::Submit { pair, dev })
            .expect("conductor gone");
    }

    /// Stops the conductor and returns the node report.
    pub fn finish(self) -> NodeReport {
        let _ = self.events.send(Event::Shutdown);
        self.comm_stop.store(true, Ordering::Release);
        if let Some(h) = self.comm_thread {
            let _ = h.join();
        }
        self.thread.join().expect("conductor panicked")
    }
}

/// Shared sink for completed pair outputs, appended by every worker.
type SharedOutputs<A> = Arc<Mutex<Vec<(Pair, <A as Application>::Output)>>>;

/// Spawns a node: conductor thread + resource threads (+ comm thread when a
/// transport is given).
pub(crate) fn spawn_node<A: Application>(
    app: Arc<A>,
    cfg: RocketConfig,
    node_id: usize,
    nodes: usize,
    store: Arc<dyn ObjectStore>,
    transport: Option<Box<dyn Transport>>,
    outputs: SharedOutputs<A>,
) -> NodeHandle {
    let (events_tx, events_rx) = unbounded::<Event>();
    let counters = Arc::new(NodeCounters::default());
    // Each job pins up to two device-cache slots; capping in-flight jobs at
    // slots/2 per device guarantees all leases fit simultaneously, which
    // keeps tiny-cache configurations free of eviction livelock.
    let lease_cap = (cfg.devices.len() * (cfg.device_cache_slots / 2)).max(1);
    let limiter = Arc::new(JobLimiter::new(cfg.concurrent_job_limit.min(lease_cap)));
    let recorder = Arc::new(TraceRecorder::new(cfg.tracing));

    // The conductor sends, the comm thread receives; both share one
    // transport handle (the receive side stays single-consumer — the comm
    // thread is the only caller of `recv_timeout`).
    let transport: Option<Arc<dyn Transport>> = transport.map(Arc::from);

    // Comm thread: pumps transport messages into the event queue.
    let comm_stop = Arc::new(AtomicBool::new(false));
    let comm_thread = transport.as_ref().map(|t| {
        let transport = Arc::clone(t);
        let tx = events_tx.clone();
        let stop = Arc::clone(&comm_stop);
        std::thread::Builder::new()
            .name(format!("rocket-comm-{node_id}"))
            .spawn(move || {
                while !stop.load(Ordering::Acquire) {
                    match transport.recv_timeout(Duration::from_millis(20)) {
                        Ok(incoming) => {
                            let from = incoming.from;
                            match NodeMsg::from_bytes(incoming.payload) {
                                Ok(msg) => {
                                    if tx.send(Event::Remote { from, msg }).is_err() {
                                        break;
                                    }
                                }
                                Err(e) => {
                                    debug_assert!(false, "undecodable message: {e}");
                                }
                            }
                        }
                        Err(RecvError::Timeout) => continue,
                        // Every peer hung up: cluster-wide shutdown.
                        Err(RecvError::Disconnected) => break,
                    }
                }
            })
            .expect("failed to spawn comm thread")
    });

    let handle_events = events_tx.clone();
    let thread = {
        let counters = Arc::clone(&counters);
        let limiter = Arc::clone(&limiter);
        std::thread::Builder::new()
            .name(format!("rocket-conductor-{node_id}"))
            .spawn(move || {
                let conductor = Conductor::new(
                    app, cfg, node_id, nodes, store, transport, outputs, counters, limiter,
                    events_rx, events_tx, recorder,
                );
                conductor.run()
            })
            .expect("failed to spawn conductor")
    };

    NodeHandle {
        events: handle_events,
        counters,
        limiter,
        thread,
        comm_stop,
        comm_thread,
    }
}

struct Conductor<A: Application> {
    app: Arc<A>,
    cfg: RocketConfig,
    node_id: usize,
    nodes: usize,
    store: Arc<dyn ObjectStore>,
    transport: Option<Arc<dyn Transport>>,

    io: Resource<Event>,
    cpu: Resource<Event>,
    gpu: Vec<Resource<Event>>,
    h2d: Vec<Resource<Event>>,
    d2h: Vec<Resource<Event>>,
    devices: Vec<Arc<VirtualDevice>>,

    dev_cache: Vec<SlotCache<Cont>>,
    dev_slot_bufs: Vec<Vec<BufferId>>,
    host_cache: SlotCache<Cont>,
    host_slots: Vec<Arc<Mutex<Vec<u8>>>>,

    staging_pool: Vec<Vec<BufferId>>,
    staging_queue: Vec<VecDeque<ItemId>>,
    result_pool: Vec<Vec<BufferId>>,
    result_queue: Vec<VecDeque<JobId>>,

    // Fx-hashed tables: deterministic hasher, so any incidental iteration
    // order is a pure function of the insertion sequence (lint RL-D001).
    jobs: FxHashMap<JobId, Job>,
    next_job: JobId,
    pending_conts: VecDeque<Cont>,
    host_fills: FxHashMap<ItemId, HostFill>,
    dev_fills: FxHashMap<(usize, ItemId), SlotIdx>,
    fill_waiters: FxHashMap<(usize, ItemId), Vec<Cont>>,
    h2d_leases: FxHashMap<(usize, ItemId), SlotIdx>,
    dead_items: FxHashSet<ItemId>,
    item_failures: FxHashMap<ItemId, u32>,

    directory: Directory,
    loads: u64,
    remote_fetches: u64,
    failed: Vec<(Pair, String)>,
    outputs: SharedOutputs<A>,
    counters: Arc<NodeCounters>,
    limiter: Arc<JobLimiter>,
    events_rx: Receiver<Event>,
    #[allow(dead_code)]
    events_tx: Sender<Event>,
    recorder: Arc<TraceRecorder>,
    shutdown: bool,
}

impl<A: Application> Conductor<A> {
    #[allow(clippy::too_many_arguments)]
    fn new(
        app: Arc<A>,
        cfg: RocketConfig,
        node_id: usize,
        nodes: usize,
        store: Arc<dyn ObjectStore>,
        transport: Option<Arc<dyn Transport>>,
        outputs: SharedOutputs<A>,
        counters: Arc<NodeCounters>,
        limiter: Arc<JobLimiter>,
        events_rx: Receiver<Event>,
        events_tx: Sender<Event>,
        recorder: Arc<TraceRecorder>,
    ) -> Self {
        let n_dev = cfg.devices.len();
        let item_count = app.item_count() as usize;
        let item_bytes = app.item_bytes() as u64;
        let parsed_bytes = app.parsed_bytes() as u64;
        let result_bytes = app.result_bytes() as u64;
        let staging_per_dev = if app.has_preprocess() { 4 } else { 0 };
        let results_per_dev = cfg.concurrent_job_limit.clamp(1, 64);

        let mut devices = Vec::with_capacity(n_dev);
        let mut dev_cache = Vec::with_capacity(n_dev);
        let mut dev_slot_bufs = Vec::with_capacity(n_dev);
        let mut staging_pool = Vec::with_capacity(n_dev);
        let mut result_pool = Vec::with_capacity(n_dev);
        for profile in &cfg.devices {
            // The threaded runtime treats the configured slot count as
            // authoritative: expand virtual memory if the profile is too
            // small (the simulator models capacities faithfully instead).
            let needed = cfg.device_cache_slots as u64 * item_bytes
                + staging_per_dev as u64 * parsed_bytes
                + results_per_dev as u64 * result_bytes;
            let profile = if profile.memory_bytes < needed {
                profile.clone().with_memory(needed)
            } else {
                profile.clone()
            };
            let device = Arc::new(VirtualDevice::new(profile));
            let slots: Vec<BufferId> = (0..cfg.device_cache_slots)
                .map(|_| device.alloc(item_bytes).expect("device slot alloc"))
                .collect();
            let staging: Vec<BufferId> = (0..staging_per_dev)
                .map(|_| device.alloc(parsed_bytes).expect("staging alloc"))
                .collect();
            let results: Vec<BufferId> = (0..results_per_dev)
                .map(|_| device.alloc(result_bytes).expect("result alloc"))
                .collect();
            devices.push(device);
            // Dense item map: application items are 0..n, so the cache's
            // O(1) array-indexed table applies (same mode the simulator
            // runs in) instead of hashing every lookup.
            dev_cache.push(SlotCache::with_item_space(
                cfg.device_cache_slots,
                item_count,
            ));
            dev_slot_bufs.push(slots);
            staging_pool.push(staging);
            result_pool.push(results);
        }

        let host_slots: Vec<Arc<Mutex<Vec<u8>>>> = (0..cfg.host_cache_slots)
            .map(|_| Arc::new(Mutex::named("host_slots", vec![0u8; item_bytes as usize])))
            .collect();

        let io = Resource::spawn(
            "io",
            ThreadClass::Io,
            0,
            1,
            events_tx.clone(),
            Arc::clone(&recorder),
        );
        let cpu = Resource::spawn(
            "cpu",
            ThreadClass::Cpu,
            0,
            cfg.cpu_threads,
            events_tx.clone(),
            Arc::clone(&recorder),
        );
        let gpu: Vec<_> = (0..n_dev)
            .map(|d| {
                Resource::spawn(
                    "gpu",
                    ThreadClass::Gpu,
                    d as u32,
                    1,
                    events_tx.clone(),
                    Arc::clone(&recorder),
                )
            })
            .collect();
        let h2d: Vec<_> = (0..n_dev)
            .map(|d| {
                Resource::spawn(
                    "h2d",
                    ThreadClass::CpuToGpu,
                    d as u32,
                    1,
                    events_tx.clone(),
                    Arc::clone(&recorder),
                )
            })
            .collect();
        let d2h: Vec<_> = (0..n_dev)
            .map(|d| {
                Resource::spawn(
                    "d2h",
                    ThreadClass::GpuToCpu,
                    d as u32,
                    1,
                    events_tx.clone(),
                    Arc::clone(&recorder),
                )
            })
            .collect();

        let directory = Directory::new(node_id, nodes, cfg.distributed_hops);
        let staging_queue = vec![VecDeque::new(); n_dev];
        let result_queue = vec![VecDeque::new(); n_dev];

        Self {
            app,
            cfg,
            node_id,
            nodes,
            store,
            transport,
            io,
            cpu,
            gpu,
            h2d,
            d2h,
            devices,
            dev_cache,
            dev_slot_bufs,
            host_cache: SlotCache::with_item_space(host_slots.len(), item_count),
            host_slots,
            staging_pool,
            staging_queue,
            result_pool,
            result_queue,
            jobs: FxHashMap::default(),
            next_job: 0,
            pending_conts: VecDeque::new(),
            host_fills: FxHashMap::default(),
            dev_fills: FxHashMap::default(),
            fill_waiters: FxHashMap::default(),
            h2d_leases: FxHashMap::default(),
            dead_items: FxHashSet::default(),
            item_failures: FxHashMap::default(),
            directory,
            loads: 0,
            remote_fetches: 0,
            failed: Vec::new(),
            outputs,
            counters,
            limiter,
            events_rx,
            events_tx,
            recorder,
            shutdown: false,
        }
    }

    fn run(mut self) -> NodeReport {
        while !self.shutdown {
            match self.events_rx.recv() {
                Ok(event) => {
                    self.handle(event);
                    self.drain_conts();
                }
                Err(_) => break,
            }
        }
        self.finish()
    }

    fn finish(self) -> NodeReport {
        let mut device_cache = CacheStats::default();
        for c in &self.dev_cache {
            device_cache.merge(&c.stats());
        }
        let report = NodeReport {
            node: self.node_id,
            device_cache,
            host_cache: self.host_cache.stats(),
            directory: self.directory.stats().clone(),
            loads: self.loads,
            remote_fetches: self.remote_fetches,
            failed: self.failed,
            spans: self.recorder.take(),
            comm: self
                .transport
                .as_ref()
                .map(|t| t.stats().snapshot())
                .unwrap_or_default(),
        };
        self.io.shutdown();
        self.cpu.shutdown();
        for r in self.gpu {
            r.shutdown();
        }
        for r in self.h2d {
            r.shutdown();
        }
        for r in self.d2h {
            r.shutdown();
        }
        report
    }

    fn handle(&mut self, event: Event) {
        match event {
            Event::Submit { pair, dev } => self.submit_job(pair, dev),
            Event::IoDone { item, result } => self.on_io_done(item, result),
            Event::ParseDone { item, result } => self.on_parse_done(item, result),
            Event::ParseIntoHostDone { item, result } => match result {
                Ok(()) => {
                    self.loads += 1;
                    self.publish_host(item);
                }
                Err(e) => self.item_failure(item, e),
            },
            Event::StagingUploaded { item, result } => match result {
                Ok(()) => self.schedule_preprocess(item),
                Err(e) => self.item_failure(item, e),
            },
            Event::PreprocessDone { item, result } => self.on_preprocess_done(item, result),
            Event::ItemCopiedToHost { item, result } => match result {
                Ok(()) => self.publish_host(item),
                Err(e) => self.item_failure(item, e),
            },
            Event::DeviceFillCopied { dev, item, result } => {
                self.on_device_fill_copied(dev, item, result)
            }
            Event::CompareDone { job, result } => self.on_compare_done(job, result),
            Event::ResultCopied { job, result } => self.on_result_copied(job, result),
            Event::PostDone { job } => self.finish_job(job),
            Event::Remote { from, msg } => self.on_remote(from, msg),
            Event::Shutdown => self.shutdown = true,
        }
    }

    // ---- job lifecycle -------------------------------------------------

    fn submit_job(&mut self, pair: Pair, dev: usize) {
        let id = self.next_job;
        self.next_job += 1;
        self.jobs.insert(
            id,
            Job {
                pair,
                dev,
                left: None,
                right: None,
                result_buf: None,
                stalled: None,
                comparing: false,
            },
        );
        self.try_acquire_job(id);
    }

    fn try_acquire_job(&mut self, id: JobId) {
        let Some(job) = self.jobs.get(&id) else {
            return;
        };
        if job.comparing {
            return;
        }
        let (pair, dev, stalled) = (job.pair, job.dev, job.stalled);
        if self.dead_items.contains(&pair.left) || self.dead_items.contains(&pair.right) {
            self.fail_job(id, "depends on an unloadable item".to_string());
            return;
        }
        // Acquire left, then right — except that a retry after a capacity
        // stall acquires the stalled item first (progress guarantee). On
        // Busy release everything and park.
        let mut order = [(0usize, pair.left), (1usize, pair.right)];
        if stalled == Some(pair.right) {
            order.swap(0, 1);
        }
        for (which, item) in order {
            let held = {
                let job = &self.jobs[&id];
                if which == 0 {
                    job.left
                } else {
                    job.right
                }
            };
            if held.is_some() {
                continue;
            }
            match self.dev_cache[dev].get(item, || Cont::Job(id)) {
                Lookup::Hit(slot) => {
                    let job = self.jobs.get_mut(&id).expect("job exists");
                    if which == 0 {
                        job.left = Some(slot);
                    } else {
                        job.right = Some(slot);
                    }
                }
                Lookup::Pending => return,
                Lookup::MustLoad(slot) => {
                    self.start_dev_fill(dev, item, slot);
                    self.fill_waiters
                        .entry((dev, item))
                        .or_default()
                        .push(Cont::Job(id));
                    return;
                }
                Lookup::Busy => {
                    // Deadlock avoidance: never hold-and-wait on capacity.
                    self.jobs.get_mut(&id).expect("job exists").stalled = Some(item);
                    self.release_job_leases(id);
                    return;
                }
            }
        }
        let job = self.jobs.get_mut(&id).expect("job exists");
        job.stalled = None;
        job.comparing = true;
        self.start_compare(id);
    }

    fn release_job_leases(&mut self, id: JobId) {
        let Some(job) = self.jobs.get_mut(&id) else {
            return;
        };
        let dev = job.dev;
        let leases = [job.left.take(), job.right.take()];
        for slot in leases.into_iter().flatten() {
            if let Some(cont) = self.dev_cache[dev].release(slot) {
                self.run_cont(cont);
            }
        }
    }

    fn start_compare(&mut self, id: JobId) {
        let job = self.jobs.get(&id).expect("job exists");
        let dev = job.dev;
        let Some(result_buf) = self.result_pool[dev].pop() else {
            self.result_queue[dev].push_back(id);
            return;
        };
        let job = self.jobs.get_mut(&id).expect("job exists");
        job.result_buf = Some(result_buf);
        let (pair, left, right) = (job.pair, job.left.unwrap(), job.right.unwrap());
        let left_buf = self.dev_slot_bufs[dev][left];
        let right_buf = self.dev_slot_bufs[dev][right];
        let device = Arc::clone(&self.devices[dev]);
        let app = Arc::clone(&self.app);
        self.gpu[dev].submit(
            TaskKind::Compare,
            id,
            Box::new(move || {
                let result = device
                    .launch(&[left_buf, right_buf], result_buf, |ins, out| {
                        app.compare((pair.left, ins[0]), (pair.right, ins[1]), out)
                    })
                    .map_err(|e| e.to_string())
                    .and_then(|r| r.map_err(|e| e.to_string()));
                Some(Event::CompareDone { job: id, result })
            }),
        );
    }

    fn on_compare_done(&mut self, id: JobId, result: Result<(), String>) {
        match result {
            Ok(()) => {
                let job = self.jobs.get(&id).expect("job exists");
                let (dev, result_buf) = (job.dev, job.result_buf.expect("result buffer"));
                let result_bytes = self.app.result_bytes();
                let device = Arc::clone(&self.devices[dev]);
                self.d2h[dev].submit(
                    TaskKind::CopyOut,
                    id,
                    Box::new(move || {
                        let mut out = Vec::with_capacity(result_bytes);
                        let result = device
                            .copy_d2h(result_buf, &mut out)
                            .map(|()| out)
                            .map_err(|e| e.to_string());
                        Some(Event::ResultCopied { job: id, result })
                    }),
                );
            }
            Err(e) => self.fail_job(id, format!("compare failed: {e}")),
        }
    }

    fn on_result_copied(&mut self, id: JobId, result: Result<Vec<u8>, String>) {
        // The device-side resources are free as soon as the result is on the
        // host: release leases and the result buffer before post-processing.
        self.release_job_leases(id);
        self.return_result_buf(id);
        match result {
            Ok(bytes) => {
                let job = self.jobs.get(&id).expect("job exists");
                let pair = job.pair;
                let app = Arc::clone(&self.app);
                let outputs = Arc::clone(&self.outputs);
                self.cpu.submit(
                    TaskKind::Postprocess,
                    id,
                    Box::new(move || {
                        let out = app.postprocess(pair, &bytes);
                        outputs.lock().push((pair, out));
                        Some(Event::PostDone { job: id })
                    }),
                );
            }
            Err(e) => self.fail_job(id, format!("result copy failed: {e}")),
        }
    }

    fn return_result_buf(&mut self, id: JobId) {
        let Some(job) = self.jobs.get_mut(&id) else {
            return;
        };
        let dev = job.dev;
        if let Some(buf) = job.result_buf.take() {
            self.result_pool[dev].push(buf);
            if let Some(waiting) = self.result_queue[dev].pop_front() {
                self.start_compare(waiting);
            }
        }
    }

    fn finish_job(&mut self, id: JobId) {
        self.jobs.remove(&id);
        self.counters.done.fetch_add(1, Ordering::Release);
        self.limiter.release();
    }

    fn fail_job(&mut self, id: JobId, cause: String) {
        self.release_job_leases(id);
        self.return_result_buf(id);
        if let Some(job) = self.jobs.get(&id) {
            self.failed.push((job.pair, cause));
        }
        self.finish_job(id);
    }

    // ---- device fill ---------------------------------------------------

    fn start_dev_fill(&mut self, dev: usize, item: ItemId, dslot: SlotIdx) {
        self.dev_fills.insert((dev, item), dslot);
        self.continue_dev_fill(dev, item);
    }

    fn continue_dev_fill(&mut self, dev: usize, item: ItemId) {
        if !self.dev_fills.contains_key(&(dev, item)) {
            return; // already completed or aborted
        }
        // An H2D copy is already filling this slot: a second wake (e.g. a
        // parked token plus the origin-continuation of `publish_host`)
        // must not take a second host lease.
        if self.h2d_leases.contains_key(&(dev, item)) {
            return;
        }
        if self.dead_items.contains(&item) {
            self.abort_dev_fill(dev, item);
            return;
        }
        match self.host_cache.get(item, || Cont::DevFill { dev, item }) {
            Lookup::Hit(hslot) => {
                self.h2d_leases.insert((dev, item), hslot);
                let dslot = self.dev_fills[&(dev, item)];
                let dbuf = self.dev_slot_bufs[dev][dslot];
                let payload = Arc::clone(&self.host_slots[hslot]);
                let device = Arc::clone(&self.devices[dev]);
                self.h2d[dev].submit(
                    TaskKind::CopyIn,
                    item,
                    Box::new(move || {
                        let data = payload.lock();
                        let result = device.copy_h2d(&data, dbuf).map_err(|e| e.to_string());
                        Some(Event::DeviceFillCopied { dev, item, result })
                    }),
                );
            }
            Lookup::Pending => {}
            Lookup::MustLoad(hslot) => self.start_host_fill(item, hslot, dev),
            Lookup::Busy => {}
        }
    }

    fn on_device_fill_copied(&mut self, dev: usize, item: ItemId, result: Result<(), String>) {
        if let Some(hslot) = self.h2d_leases.remove(&(dev, item)) {
            if let Some(cont) = self.host_cache.release(hslot) {
                self.run_cont(cont);
            }
        }
        match result {
            Ok(()) => self.complete_dev_fill(dev, item),
            Err(e) => self.item_failure(item, format!("H2D copy failed: {e}")),
        }
    }

    fn complete_dev_fill(&mut self, dev: usize, item: ItemId) {
        let Some(dslot) = self.dev_fills.remove(&(dev, item)) else {
            return;
        };
        let waiters = self.dev_cache[dev].publish(dslot);
        for w in waiters {
            self.run_cont(w);
        }
        if let Some(ws) = self.fill_waiters.remove(&(dev, item)) {
            for w in ws {
                self.run_cont(w);
            }
        }
        // The published slot is evictable until a reader takes it: fresh
        // capacity, so one parked capacity waiter gets a retry.
        if let Some(w) = self.dev_cache[dev].pop_capacity_waiter() {
            self.run_cont(w);
        }
    }

    fn abort_dev_fill(&mut self, dev: usize, item: ItemId) {
        let Some(dslot) = self.dev_fills.remove(&(dev, item)) else {
            return;
        };
        let waiters = self.dev_cache[dev].abort(dslot);
        for w in waiters {
            self.run_cont(w);
        }
        if let Some(ws) = self.fill_waiters.remove(&(dev, item)) {
            for w in ws {
                self.run_cont(w);
            }
        }
    }

    // ---- host fill -----------------------------------------------------

    fn start_host_fill(&mut self, item: ItemId, hslot: SlotIdx, origin_dev: usize) {
        self.host_fills.insert(
            item,
            HostFill {
                hslot,
                origin_dev,
                staging: None,
                parsed: None,
            },
        );
        if self.cfg.distributed_cache && self.nodes > 1 {
            let (to, msg) = self.directory.begin_lookup(item);
            self.send_to(to, NodeMsg::Dir(msg));
        } else {
            self.local_load(item);
        }
    }

    fn local_load(&mut self, item: ItemId) {
        let path = self.app.file_for(item);
        let store = Arc::clone(&self.store);
        let retries = self.cfg.io_retries;
        self.io.submit(
            TaskKind::Read,
            item,
            Box::new(move || {
                let mut last_err = String::new();
                for _ in 0..=retries {
                    match store.read(&path) {
                        Ok(data) => {
                            return Some(Event::IoDone {
                                item,
                                result: Ok(data),
                            });
                        }
                        Err(e) => last_err = e.to_string(),
                    }
                }
                Some(Event::IoDone {
                    item,
                    result: Err(last_err),
                })
            }),
        );
    }

    fn on_io_done(&mut self, item: ItemId, result: Result<Bytes, String>) {
        let raw = match result {
            Ok(raw) => raw,
            Err(e) => {
                self.item_failure(item, format!("storage read failed: {e}"));
                return;
            }
        };
        let Some(fill) = self.host_fills.get(&item) else {
            return;
        };
        let app = Arc::clone(&self.app);
        if app.has_preprocess() {
            let parsed_bytes = app.parsed_bytes();
            self.cpu.submit(
                TaskKind::Parse,
                item,
                Box::new(move || {
                    let mut parsed = vec![0u8; parsed_bytes];
                    let result = app
                        .parse(item, &raw, &mut parsed)
                        .map(|()| parsed)
                        .map_err(|e| e.to_string());
                    Some(Event::ParseDone { item, result })
                }),
            );
        } else {
            // No GPU pre-processing: parse straight into the host slot.
            let payload = Arc::clone(&self.host_slots[fill.hslot]);
            self.cpu.submit(
                TaskKind::Parse,
                item,
                Box::new(move || {
                    let mut buf = payload.lock();
                    let result = app.parse(item, &raw, &mut buf).map_err(|e| e.to_string());
                    Some(Event::ParseIntoHostDone { item, result })
                }),
            );
        }
    }

    fn on_parse_done(&mut self, item: ItemId, result: Result<Vec<u8>, String>) {
        match result {
            Ok(parsed) => {
                let Some(fill) = self.host_fills.get_mut(&item) else {
                    return;
                };
                fill.parsed = Some(parsed);
                self.try_stage(item);
            }
            Err(e) => self.item_failure(item, format!("parse failed: {e}")),
        }
    }

    /// Uploads parsed bytes to a staging buffer when one is available.
    fn try_stage(&mut self, item: ItemId) {
        let Some(fill) = self.host_fills.get_mut(&item) else {
            return;
        };
        let dev = fill.origin_dev;
        let Some(staging) = self.staging_pool[dev].pop() else {
            self.staging_queue[dev].push_back(item);
            return;
        };
        fill.staging = Some(staging);
        let parsed = fill.parsed.take().expect("parsed bytes present");
        let device = Arc::clone(&self.devices[dev]);
        self.h2d[dev].submit(
            TaskKind::CopyIn,
            item,
            Box::new(move || {
                let result = device.copy_h2d(&parsed, staging).map_err(|e| e.to_string());
                Some(Event::StagingUploaded { item, result })
            }),
        );
    }

    fn schedule_preprocess(&mut self, item: ItemId) {
        let Some(fill) = self.host_fills.get(&item) else {
            return;
        };
        let dev = fill.origin_dev;
        let staging = fill.staging.expect("staging held");
        let Some(&dslot) = self.dev_fills.get(&(dev, item)) else {
            // The originating device fill vanished (item died): give the
            // staging buffer back and drop the pipeline.
            self.return_staging(dev, item);
            return;
        };
        let dbuf = self.dev_slot_bufs[dev][dslot];
        let device = Arc::clone(&self.devices[dev]);
        let app = Arc::clone(&self.app);
        self.gpu[dev].submit(
            TaskKind::Preprocess,
            item,
            Box::new(move || {
                let result = device
                    .launch(&[staging], dbuf, |ins, out| {
                        app.preprocess(item, ins[0], out)
                    })
                    .map_err(|e| e.to_string())
                    .and_then(|r| r.map_err(|e| e.to_string()));
                Some(Event::PreprocessDone { item, result })
            }),
        );
    }

    fn return_staging(&mut self, dev: usize, item: ItemId) {
        if let Some(fill) = self.host_fills.get_mut(&item) {
            if let Some(staging) = fill.staging.take() {
                self.staging_pool[dev].push(staging);
                if let Some(next) = self.staging_queue[dev].pop_front() {
                    self.try_stage(next);
                }
            }
        }
    }

    fn on_preprocess_done(&mut self, item: ItemId, result: Result<(), String>) {
        let Some(fill) = self.host_fills.get(&item) else {
            return;
        };
        let dev = fill.origin_dev;
        self.return_staging(dev, item);
        match result {
            Ok(()) => {
                self.loads += 1;
                // The item is ready on the device: publish the device slot
                // first (jobs can start comparing), then write it back to
                // the host slot (Fig 4's "copy device slot to host slot").
                let Some(&dslot) = self.dev_fills.get(&(dev, item)) else {
                    return;
                };
                let dbuf = self.dev_slot_bufs[dev][dslot];
                self.complete_dev_fill(dev, item);
                let fill = self.host_fills.get(&item).expect("host fill present");
                let payload = Arc::clone(&self.host_slots[fill.hslot]);
                let device = Arc::clone(&self.devices[dev]);
                self.d2h[dev].submit(
                    TaskKind::CopyOut,
                    item,
                    Box::new(move || {
                        let mut tmp = Vec::new();
                        let result = device
                            .copy_d2h(dbuf, &mut tmp)
                            .map(|()| {
                                let mut buf = payload.lock();
                                let n = buf.len().min(tmp.len());
                                buf[..n].copy_from_slice(&tmp[..n]);
                            })
                            .map_err(|e| e.to_string());
                        Some(Event::ItemCopiedToHost { item, result })
                    }),
                );
            }
            Err(e) => self.item_failure(item, format!("preprocess failed: {e}")),
        }
    }

    fn publish_host(&mut self, item: ItemId) {
        let Some(fill) = self.host_fills.remove(&item) else {
            return;
        };
        let waiters = self.host_cache.publish(fill.hslot);
        for w in waiters {
            self.run_cont(w);
        }
        // Fresh capacity (see complete_dev_fill): retry one parked waiter.
        if let Some(w) = self.host_cache.pop_capacity_waiter() {
            self.run_cont(w);
        }
        // The originating device fill continues if it still needs the host
        // copy (no-pre-process and remote-fetch paths).
        if self.dev_fills.contains_key(&(fill.origin_dev, item)) {
            self.continue_dev_fill(fill.origin_dev, item);
        }
    }

    fn item_failure(&mut self, item: ItemId, cause: String) {
        let failures = self.item_failures.entry(item).or_insert(0);
        *failures += 1;
        if *failures < self.cfg.max_item_failures {
            // Transient: restart the load pipeline from storage.
            if let Some(fill) = self.host_fills.get(&item) {
                let dev = fill.origin_dev;
                self.return_staging(dev, item);
                self.local_load(item);
            }
            return;
        }
        // Permanent: poison the item so dependent jobs fail fast.
        self.dead_items.insert(item);
        if let Some(fill) = self.host_fills.remove(&item) {
            self.return_staging_direct(fill.origin_dev, fill.staging);
            let waiters = self.host_cache.abort(fill.hslot);
            for w in waiters {
                self.run_cont(w);
            }
            self.abort_dev_fill(fill.origin_dev, item);
        }
        let _ = cause;
    }

    fn return_staging_direct(&mut self, dev: usize, staging: Option<BufferId>) {
        if let Some(s) = staging {
            self.staging_pool[dev].push(s);
            if let Some(next) = self.staging_queue[dev].pop_front() {
                self.try_stage(next);
            }
        }
    }

    // ---- distributed cache ----------------------------------------------

    fn send_to(&mut self, to: usize, msg: NodeMsg) {
        let t = self
            .transport
            .as_ref()
            .expect("transport for multi-node run");
        // Best effort: a `Disconnected` peer means the cluster is shutting
        // down after global drain — the message can no longer matter (the
        // directory and fetch protocols both tolerate dropped messages).
        let _ = t.send(to, msg.to_bytes());
    }

    fn on_remote(&mut self, from: usize, msg: NodeMsg) {
        match msg {
            NodeMsg::Dir(dir_msg) => {
                let lookup_item = match &dir_msg {
                    DirectoryMsg::Found { item, .. } | DirectoryMsg::NotFound { item } => {
                        Some(*item)
                    }
                    _ => None,
                };
                let host_cache = &self.host_cache;
                let (outgoing, resolution) = self
                    .directory
                    .handle(dir_msg, |i| host_cache.contains_ready(i));
                for (to, m) in outgoing {
                    self.send_to(to, NodeMsg::Dir(m));
                }
                match resolution {
                    Resolution::InFlight => {}
                    Resolution::Found { holder, .. } => {
                        let item = lookup_item.expect("found carries item");
                        if self.host_fills.contains_key(&item) {
                            self.send_to(holder, NodeMsg::Fetch { item });
                        }
                    }
                    Resolution::LoadLocally => {
                        let item = lookup_item.expect("not-found carries item");
                        if self.host_fills.contains_key(&item) {
                            self.local_load(item);
                        }
                    }
                }
            }
            NodeMsg::Fetch { item } => {
                // Serve from the host cache if (still) resident; the lease
                // pins the slot while we copy the bytes out. A miss replies
                // `None` — the protocol is best effort and the requester
                // falls back to loading locally.
                let data = match self.host_cache.try_read(item) {
                    Some(hslot) => {
                        let data = Bytes::from(self.host_slots[hslot].lock().clone());
                        if let Some(cont) = self.host_cache.release(hslot) {
                            self.run_cont(cont);
                        }
                        Some(data)
                    }
                    None => None,
                };
                self.send_to(from, NodeMsg::FetchReply { item, data });
            }
            NodeMsg::FetchReply { item, data } => match data {
                Some(data) => {
                    if let Some(fill) = self.host_fills.get(&item) {
                        {
                            let mut buf = self.host_slots[fill.hslot].lock();
                            let n = buf.len().min(data.len());
                            buf[..n].copy_from_slice(&data[..n]);
                        }
                        self.remote_fetches += 1;
                        self.publish_host(item);
                    }
                }
                None => {
                    if self.host_fills.contains_key(&item) {
                        self.local_load(item);
                    }
                }
            },
        }
    }

    /// Queues a continuation. Continuations are drained iteratively after
    /// each event — recursing here would overflow the stack on long waiter
    /// chains (wake → release → wake → …).
    fn run_cont(&mut self, cont: Cont) {
        self.pending_conts.push_back(cont);
    }

    fn drain_conts(&mut self) {
        while let Some(cont) = self.pending_conts.pop_front() {
            match cont {
                Cont::Job(id) => self.try_acquire_job(id),
                Cont::DevFill { dev, item } => self.continue_dev_fill(dev, item),
            }
        }
    }
}
