//! The threaded execution engine: per-node conductor, resource threads, and
//! inter-node messages.

pub mod messages;
pub mod node;
pub(crate) mod resource;

pub use node::NodeReport;
