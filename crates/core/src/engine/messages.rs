//! Inter-node messages of the threaded cluster runtime.

use bytes::Bytes;
use rocket_cache::{DirectoryMsg, HopChain, NodeId, MAX_HOPS};
use rocket_comm::{Wire, WireError, WireReader, WireWriter};

/// Everything one Rocket node says to another.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeMsg {
    /// Distributed-cache directory protocol (§4.1.3).
    Dir(DirectoryMsg),
    /// "Send me item `item` from your host cache."
    Fetch {
        /// Requested item.
        item: u64,
    },
    /// Reply to [`NodeMsg::Fetch`]: the item bytes, or `None` if the item
    /// was no longer resident (best-effort semantics).
    FetchReply {
        /// The requested item.
        item: u64,
        /// Pre-processed item bytes, if still cached.
        data: Option<Bytes>,
    },
}

impl Wire for NodeMsg {
    fn encode(&self, w: &mut WireWriter) {
        match self {
            NodeMsg::Dir(d) => {
                w.put_u8(0);
                encode_dir(d, w);
            }
            NodeMsg::Fetch { item } => {
                w.put_u8(1);
                w.put_u64(*item);
            }
            NodeMsg::FetchReply { item, data } => {
                w.put_u8(2);
                w.put_u64(*item);
                data.encode(w);
            }
        }
    }

    fn decode(r: &mut WireReader) -> Result<Self, WireError> {
        match r.get_u8()? {
            0 => Ok(NodeMsg::Dir(decode_dir(r)?)),
            1 => Ok(NodeMsg::Fetch { item: r.get_u64()? }),
            2 => Ok(NodeMsg::FetchReply {
                item: r.get_u64()?,
                data: Option::<Bytes>::decode(r)?,
            }),
            t => Err(WireError::BadTag(t)),
        }
    }
}

fn encode_dir(d: &DirectoryMsg, w: &mut WireWriter) {
    match d {
        DirectoryMsg::Request { item, requester } => {
            w.put_u8(0);
            w.put_u64(*item);
            w.put_u64(*requester as u64);
        }
        DirectoryMsg::Probe {
            item,
            requester,
            rest,
            hop,
        } => {
            w.put_u8(1);
            w.put_u64(*item);
            w.put_u64(*requester as u64);
            w.put_u64(rest.len() as u64);
            for n in rest.iter() {
                w.put_u64(n as u64);
            }
            w.put_u8(*hop);
        }
        DirectoryMsg::Found { item, holder, hop } => {
            w.put_u8(2);
            w.put_u64(*item);
            w.put_u64(*holder as u64);
            w.put_u8(*hop);
        }
        DirectoryMsg::NotFound { item } => {
            w.put_u8(3);
            w.put_u64(*item);
        }
    }
}

fn decode_dir(r: &mut WireReader) -> Result<DirectoryMsg, WireError> {
    match r.get_u8()? {
        0 => Ok(DirectoryMsg::Request {
            item: r.get_u64()?,
            requester: r.get_u64()? as NodeId,
        }),
        1 => {
            let item = r.get_u64()?;
            let requester = r.get_u64()? as NodeId;
            let len = r.get_u64()?;
            if len > MAX_HOPS as u64 {
                return Err(WireError::BadLength(len));
            }
            let mut rest = HopChain::new();
            for _ in 0..len {
                let node = r.get_u64()?;
                // Node ranks fit u32 (HopChain's storage); a larger value
                // is a corrupt frame, not a valid peer.
                if node > u32::MAX as u64 {
                    return Err(WireError::BadLength(node));
                }
                rest.push(node as NodeId);
            }
            Ok(DirectoryMsg::Probe {
                item,
                requester,
                rest,
                hop: r.get_u8()?,
            })
        }
        2 => Ok(DirectoryMsg::Found {
            item: r.get_u64()?,
            holder: r.get_u64()? as NodeId,
            hop: r.get_u8()?,
        }),
        3 => Ok(DirectoryMsg::NotFound { item: r.get_u64()? }),
        t => Err(WireError::BadTag(t)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(msg: NodeMsg) {
        let bytes = msg.to_bytes();
        assert_eq!(NodeMsg::from_bytes(bytes).unwrap(), msg);
    }

    #[test]
    fn all_variants_roundtrip() {
        roundtrip(NodeMsg::Dir(DirectoryMsg::Request {
            item: 7,
            requester: 3,
        }));
        roundtrip(NodeMsg::Dir(DirectoryMsg::Probe {
            item: 9,
            requester: 0,
            rest: [1, 2, 5].into_iter().collect(),
            hop: 2,
        }));
        roundtrip(NodeMsg::Dir(DirectoryMsg::Found {
            item: 1,
            holder: 4,
            hop: 1,
        }));
        roundtrip(NodeMsg::Dir(DirectoryMsg::NotFound { item: 2 }));
        roundtrip(NodeMsg::Fetch { item: 11 });
        roundtrip(NodeMsg::FetchReply {
            item: 11,
            data: None,
        });
        roundtrip(NodeMsg::FetchReply {
            item: 11,
            data: Some(Bytes::from(vec![1u8, 2, 3])),
        });
    }

    #[test]
    fn fetch_reply_size_accounts_payload() {
        let small = NodeMsg::FetchReply {
            item: 1,
            data: Some(Bytes::from(vec![0u8; 10])),
        };
        let big = NodeMsg::FetchReply {
            item: 1,
            data: Some(Bytes::from(vec![0u8; 1000])),
        };
        assert_eq!(big.wire_size() - small.wire_size(), 990);
    }

    #[test]
    fn bad_tag_rejected() {
        let mut w = WireWriter::new();
        w.put_u8(9);
        assert!(matches!(
            NodeMsg::from_bytes(w.finish()),
            Err(WireError::BadTag(9))
        ));
    }
}
