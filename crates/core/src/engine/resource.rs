//! Resource threads (§4.3).
//!
//! Rocket launches one thread (or pool) per resource type so that tasks on
//! different resources never contend: CPU pool, one kernel-launch thread
//! per GPU, one H2D and one D2H copy thread per GPU, and one I/O thread.
//! Each thread executes closures sent by the conductor and posts the
//! resulting event back; trace spans are recorded around every task.

use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{unbounded, Receiver, Sender};
use rocket_trace::{TaskKind, ThreadClass, TraceRecorder};

/// A task executed on a resource thread, yielding an event for the
/// conductor (or `None` for fire-and-forget tasks).
pub(crate) type Task<E> = Box<dyn FnOnce() -> Option<E> + Send>;

enum TaskMsg<E> {
    Run {
        kind: TaskKind,
        tag: u64,
        task: Task<E>,
    },
    Stop,
}

/// Handle to one resource (a thread or a pool sharing a queue).
pub(crate) struct Resource<E> {
    tx: Sender<TaskMsg<E>>,
    threads: Vec<JoinHandle<()>>,
    #[allow(dead_code)]
    class: ThreadClass,
    #[allow(dead_code)]
    lane: u32,
}

impl<E: Send + 'static> Resource<E> {
    /// Spawns `threads` workers of `class`/`lane` sharing one task queue.
    /// Completed events go to `events`.
    pub fn spawn(
        name: &str,
        class: ThreadClass,
        lane: u32,
        threads: usize,
        events: Sender<E>,
        recorder: Arc<TraceRecorder>,
    ) -> Self {
        assert!(threads >= 1);
        let (tx, rx): (Sender<TaskMsg<E>>, Receiver<TaskMsg<E>>) = unbounded();
        let handles = (0..threads)
            .map(|i| {
                let rx = rx.clone();
                let events = events.clone();
                let recorder = Arc::clone(&recorder);
                std::thread::Builder::new()
                    .name(format!("rocket-{name}-{i}"))
                    .spawn(move || {
                        while let Ok(msg) = rx.recv() {
                            match msg {
                                TaskMsg::Run { kind, tag, task } => {
                                    let event = recorder.scope(class, lane, kind, tag, task);
                                    if let Some(e) = event {
                                        // The conductor may already be gone
                                        // during shutdown; dropping the
                                        // event is fine then.
                                        let _ = events.send(e);
                                    }
                                }
                                TaskMsg::Stop => break,
                            }
                        }
                    })
                    .expect("failed to spawn resource thread")
            })
            .collect();
        Self {
            tx,
            threads: handles,
            class,
            lane,
        }
    }

    /// Queues a task.
    pub fn submit(&self, kind: TaskKind, tag: u64, task: Task<E>) {
        self.tx
            .send(TaskMsg::Run { kind, tag, task })
            .expect("resource thread gone");
    }

    /// The resource's thread class.
    #[allow(dead_code)]
    pub fn class(&self) -> ThreadClass {
        self.class
    }

    /// The resource's lane (device index).
    #[allow(dead_code)]
    pub fn lane(&self) -> u32 {
        self.lane
    }

    /// Stops all workers and joins them.
    pub fn shutdown(self) {
        for _ in 0..self.threads.len() {
            let _ = self.tx.send(TaskMsg::Stop);
        }
        for h in self.threads {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn executes_tasks_and_posts_events() {
        let (etx, erx) = unbounded::<u32>();
        let rec = TraceRecorder::shared();
        let r = Resource::spawn("test", ThreadClass::Cpu, 0, 1, etx, Arc::clone(&rec));
        for i in 0..5u32 {
            r.submit(TaskKind::Parse, i as u64, Box::new(move || Some(i * 2)));
        }
        let mut got: Vec<u32> = (0..5).map(|_| erx.recv().unwrap()).collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 2, 4, 6, 8]);
        r.shutdown();
        assert_eq!(rec.len(), 5);
    }

    #[test]
    fn pool_shares_queue() {
        let (etx, erx) = unbounded::<()>();
        let rec = TraceRecorder::disabled();
        let seen = Arc::new(AtomicU32::new(0));
        let r = Resource::spawn("pool", ThreadClass::Cpu, 0, 3, etx, rec);
        for _ in 0..30 {
            let seen = Arc::clone(&seen);
            r.submit(
                TaskKind::Parse,
                0,
                Box::new(move || {
                    seen.fetch_add(1, Ordering::Relaxed);
                    Some(())
                }),
            );
        }
        for _ in 0..30 {
            erx.recv().unwrap();
        }
        assert_eq!(seen.load(Ordering::Relaxed), 30);
        r.shutdown();
    }

    #[test]
    fn fire_and_forget_tasks() {
        let (etx, erx) = unbounded::<u8>();
        let r = Resource::spawn("ff", ThreadClass::Io, 0, 1, etx, TraceRecorder::disabled());
        r.submit(TaskKind::Read, 0, Box::new(|| None));
        r.submit(TaskKind::Read, 0, Box::new(|| Some(1)));
        assert_eq!(erx.recv().unwrap(), 1);
        r.shutdown();
        assert!(erx.try_recv().is_err());
    }

    #[test]
    fn shutdown_joins_cleanly() {
        let (etx, _erx) = unbounded::<()>();
        let r = Resource::<()>::spawn("s", ThreadClass::Gpu, 2, 2, etx, TraceRecorder::disabled());
        assert_eq!(r.class(), ThreadClass::Gpu);
        assert_eq!(r.lane(), 2);
        r.shutdown();
    }
}
