//! Error types of the Rocket runtime.

use std::fmt;

use rocket_cache::ItemId;
use rocket_gpu::DeviceError;
use rocket_storage::StorageError;

/// Errors raised by user-defined application stages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppError {
    /// Which stage failed.
    pub stage: &'static str,
    /// Human-readable cause.
    pub message: String,
}

impl AppError {
    /// Creates an application-stage error.
    pub fn new(stage: &'static str, message: impl Into<String>) -> Self {
        Self {
            stage,
            message: message.into(),
        }
    }
}

impl fmt::Display for AppError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "application {} stage failed: {}",
            self.stage, self.message
        )
    }
}

impl std::error::Error for AppError {}

/// Runtime-level errors.
#[derive(Debug)]
pub enum RocketError {
    /// Loading an item failed permanently (storage or parse errors beyond
    /// the retry budget).
    LoadFailed {
        /// The item that could not be loaded.
        item: ItemId,
        /// The final underlying cause.
        cause: String,
    },
    /// A storage operation failed.
    Storage(StorageError),
    /// A device operation failed.
    Device(DeviceError),
    /// An application stage failed.
    App(AppError),
    /// The runtime configuration is invalid.
    Config(String),
    /// A cluster worker process died (or went silent past its heartbeat
    /// deadline) and its work could not be completed by survivors.
    WorkerLost {
        /// Rank of the lost worker.
        worker: usize,
        /// How the loss was detected (heartbeat timeout, connection reset…).
        cause: String,
    },
}

impl fmt::Display for RocketError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RocketError::LoadFailed { item, cause } => {
                write!(f, "loading item {item} failed permanently: {cause}")
            }
            RocketError::Storage(e) => write!(f, "storage error: {e}"),
            RocketError::Device(e) => write!(f, "device error: {e}"),
            RocketError::App(e) => write!(f, "{e}"),
            RocketError::Config(msg) => write!(f, "invalid configuration: {msg}"),
            RocketError::WorkerLost { worker, cause } => {
                write!(f, "cluster worker {worker} lost: {cause}")
            }
        }
    }
}

impl std::error::Error for RocketError {}

impl From<StorageError> for RocketError {
    fn from(e: StorageError) -> Self {
        RocketError::Storage(e)
    }
}

impl From<DeviceError> for RocketError {
    fn from(e: DeviceError) -> Self {
        RocketError::Device(e)
    }
}

impl From<AppError> for RocketError {
    fn from(e: AppError) -> Self {
        RocketError::App(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = AppError::new("parse", "bad magic");
        assert_eq!(e.to_string(), "application parse stage failed: bad magic");
        let r: RocketError = e.into();
        assert!(r.to_string().contains("parse"));
        let l = RocketError::LoadFailed {
            item: 3,
            cause: "io".into(),
        };
        assert!(l.to_string().contains("item 3"));
    }

    #[test]
    fn conversions() {
        let s: RocketError = StorageError::NotFound("x".into()).into();
        assert!(matches!(s, RocketError::Storage(_)));
        let c = RocketError::Config("no devices".into());
        assert!(c.to_string().contains("no devices"));
        let w = RocketError::WorkerLost {
            worker: 2,
            cause: "heartbeat deadline (200ms) passed".into(),
        };
        assert!(w.to_string().contains("worker 2"));
        assert!(w.to_string().contains("heartbeat"));
    }
}
