//! Parallel replications: N seeds of one [`Scenario`] with
//! confidence-interval aggregation.
//!
//! Simulation studies (and noisy wall-clock measurements) need replicated
//! runs: the same scenario executed under independent seeds, reported as
//! `mean ± 95% CI`. [`Replications`] fans the seeds out over the
//! work-stealing crate's thread pool and folds the per-run
//! [`RunReport`]s into [`OnlineStats`]-backed summaries.
//!
//! Determinism: every replication is an independent pure function of
//! `(scenario, seed)`, results are stored by seed index, and aggregation
//! runs sequentially in seed order after all replications complete — so
//! the aggregate report is byte-identical regardless of the thread-pool
//! size (the test suite asserts this).

use parking_lot::Mutex;

use rocket_stats::{splitmix64, OnlineStats};
use rocket_steal::StealPool;

use crate::backend::Backend;
use crate::error::RocketError;
use crate::report::RunReport;
use crate::scenario::Scenario;

/// Runs N seeds of a scenario in parallel and aggregates the reports.
#[derive(Debug, Clone)]
pub struct Replications {
    seeds: Vec<u64>,
    threads: usize,
}

impl Replications {
    /// `n` replications with seeds derived deterministically from
    /// `base_seed` (a splitmix64 stream, so seeds are well-separated).
    pub fn new(base_seed: u64, n: usize) -> Self {
        let mut state = base_seed;
        let seeds = (0..n).map(|_| splitmix64(&mut state)).collect();
        Self { seeds, threads: 0 }
    }

    /// Replications with an explicit seed set.
    pub fn from_seeds(seeds: Vec<u64>) -> Self {
        Self { seeds, threads: 0 }
    }

    /// Caps the worker-thread count (`0`, the default, uses the machine's
    /// available parallelism). The aggregate result does not depend on
    /// this — only the wall-clock time does.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// The seeds that will run.
    pub fn seeds(&self) -> &[u64] {
        &self.seeds
    }

    /// Executes every seed of `scenario` on `backend` and folds the
    /// results. Fails if any replication fails (first error in seed order
    /// wins) or if no seeds were configured.
    pub fn run(
        &self,
        backend: &dyn Backend,
        scenario: &Scenario,
    ) -> Result<ReplicationReport, RocketError> {
        if self.seeds.is_empty() {
            return Err(RocketError::Config(
                "replications need at least one seed".into(),
            ));
        }
        scenario.validate().map_err(RocketError::Config)?;
        let threads = if self.threads == 0 {
            std::thread::available_parallelism().map_or(1, |p| p.get())
        } else {
            self.threads
        };
        let slots: Vec<Mutex<Option<Result<RunReport, RocketError>>>> =
            self.seeds.iter().map(|_| Mutex::new(None)).collect();
        StealPool::run_tasks(self.seeds.len(), threads, |i| {
            let result = backend.run(&scenario.with_seed(self.seeds[i]));
            *slots[i].lock() = Some(result);
        });
        // Sequential fold in seed order: the aggregate is independent of
        // which thread ran which replication.
        let mut runs = Vec::with_capacity(self.seeds.len());
        for slot in slots {
            runs.push(slot.into_inner().expect("replication ran")?);
        }
        Ok(ReplicationReport::fold(
            backend.name(),
            self.seeds.clone(),
            runs,
        ))
    }
}

/// Aggregate of N replicated runs: per-run reports plus
/// confidence-interval summaries of the headline metrics.
#[derive(Debug, Clone)]
pub struct ReplicationReport {
    /// Backend that executed the replications.
    pub backend: &'static str,
    /// Seed of each run (index-aligned with `runs`).
    pub seeds: Vec<u64>,
    /// The per-run reports, in seed order.
    pub runs: Vec<RunReport>,
    /// Run time (seconds) across replications.
    pub elapsed: OnlineStats,
    /// Reuse factor R across replications.
    pub r_factor: OnlineStats,
    /// Throughput (pairs/second) across replications.
    pub throughput: OnlineStats,
    /// Load-pipeline executions across replications.
    pub loads: OnlineStats,
}

impl ReplicationReport {
    fn fold(backend: &'static str, seeds: Vec<u64>, runs: Vec<RunReport>) -> Self {
        let mut elapsed = OnlineStats::new();
        let mut r_factor = OnlineStats::new();
        let mut throughput = OnlineStats::new();
        let mut loads = OnlineStats::new();
        for run in &runs {
            elapsed.push(run.elapsed);
            r_factor.push(run.r_factor());
            throughput.push(run.throughput());
            loads.push(run.loads as f64);
        }
        Self {
            backend,
            seeds,
            runs,
            elapsed,
            r_factor,
            throughput,
            loads,
        }
    }

    /// Number of replications.
    pub fn replications(&self) -> usize {
        self.runs.len()
    }

    /// Multi-line human-readable `mean ± 95% CI` summary.
    pub fn summary(&self) -> String {
        format!(
            "{} replications on {} | runtime {} s | R {} | throughput {} pairs/s",
            self.replications(),
            self.backend,
            self.elapsed.avg_pm_ci95(),
            self.r_factor.avg_pm_ci95(),
            self.throughput.avg_pm_ci95(),
        )
    }
}
