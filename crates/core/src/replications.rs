//! Parallel replications: N seeds of one [`Scenario`] with
//! confidence-interval aggregation.
//!
//! Simulation studies (and noisy wall-clock measurements) need replicated
//! runs: the same scenario executed under independent seeds, reported as
//! `mean ± 95% CI`. [`Replications`] fans the seeds out over the
//! work-stealing crate's thread pool and folds the per-run
//! [`RunReport`]s into [`OnlineStats`]-backed summaries.
//!
//! Determinism: every replication is an independent pure function of
//! `(scenario, seed)`, results are stored by seed index, and aggregation
//! runs sequentially in seed order after all replications complete — so
//! the aggregate report is byte-identical regardless of the thread-pool
//! size (the test suite asserts this).

use rocket_sanitize::Mutex;

use rocket_stats::{splitmix64, OnlineStats};
use rocket_steal::StealPool;

use crate::backend::Backend;
use crate::error::RocketError;
use crate::report::{json_f64, push_json_str, RunReport};
use crate::scenario::Scenario;

/// Runs N seeds of a scenario in parallel and aggregates the reports.
#[derive(Debug, Clone)]
pub struct Replications {
    seeds: Vec<u64>,
    threads: usize,
}

impl Replications {
    /// `n` replications with seeds derived deterministically from
    /// `base_seed` (a splitmix64 stream, so seeds are well-separated).
    pub fn new(base_seed: u64, n: usize) -> Self {
        let mut state = base_seed;
        let seeds = (0..n).map(|_| splitmix64(&mut state)).collect();
        Self { seeds, threads: 0 }
    }

    /// Replications with an explicit seed set.
    pub fn from_seeds(seeds: Vec<u64>) -> Self {
        Self { seeds, threads: 0 }
    }

    /// Adaptive replication counts: runs batches of seeds (drawn from the
    /// same deterministic splitmix64 stream [`Replications::new`] uses)
    /// until the relative 95% confidence-interval half-width of the
    /// elapsed time drops below `rel_half_width`, or `max_n` replications
    /// have run. See [`AdaptiveReplications`] for the stopping rule.
    pub fn until_ci(base_seed: u64, rel_half_width: f64, max_n: usize) -> AdaptiveReplications {
        AdaptiveReplications {
            base_seed,
            rel_half_width,
            max_n,
            batch: 4,
            threads: 0,
        }
    }

    /// Caps the worker-thread count (`0`, the default, uses the machine's
    /// available parallelism). The aggregate result does not depend on
    /// this — only the wall-clock time does.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// The seeds that will run.
    pub fn seeds(&self) -> &[u64] {
        &self.seeds
    }

    /// Executes every seed of `scenario` on `backend` and folds the
    /// results. Fails if any replication fails (first error in seed order
    /// wins) or if no seeds were configured.
    pub fn run(
        &self,
        backend: &dyn Backend,
        scenario: &Scenario,
    ) -> Result<ReplicationReport, RocketError> {
        if self.seeds.is_empty() {
            return Err(RocketError::Config(
                "replications need at least one seed".into(),
            ));
        }
        scenario.validate().map_err(RocketError::Config)?;
        let threads = if self.threads == 0 {
            std::thread::available_parallelism().map_or(1, |p| p.get())
        } else {
            self.threads
        };
        let slots: Vec<Mutex<Option<Result<RunReport, RocketError>>>> = self
            .seeds
            .iter()
            .map(|_| Mutex::named("slots", None))
            .collect();
        StealPool::run_tasks(self.seeds.len(), threads, |i| {
            let result = backend.run(&scenario.with_seed(self.seeds[i]));
            *slots[i].lock() = Some(result);
        });
        // Sequential fold in seed order: the aggregate is independent of
        // which thread ran which replication.
        let mut runs = Vec::with_capacity(self.seeds.len());
        for slot in slots {
            runs.push(slot.into_inner().expect("replication ran")?);
        }
        Ok(ReplicationReport::fold(
            backend.name(),
            self.seeds.clone(),
            runs,
        ))
    }
}

/// Runs replications until the elapsed-time confidence interval is tight
/// (build with [`Replications::until_ci`]).
///
/// Stopping rule: after each batch, stop when
/// `ci95_half_width(elapsed) ≤ rel_half_width · |mean(elapsed)|`.
/// At least one full batch (minimum two replications — a CI needs two
/// observations) always runs; `max_n` caps the total. Seeds come from the
/// deterministic stream seeded by `base_seed`, so on a deterministic
/// backend the entire procedure — which seeds run and the aggregate
/// report — is a pure function of `(scenario, base_seed)`.
#[derive(Debug, Clone)]
pub struct AdaptiveReplications {
    base_seed: u64,
    rel_half_width: f64,
    max_n: usize,
    batch: usize,
    threads: usize,
}

impl AdaptiveReplications {
    /// Sets the batch size (replications added per round; default 4,
    /// clamped to at least 2 so the first round yields a CI).
    pub fn batch(mut self, batch: usize) -> Self {
        self.batch = batch;
        self
    }

    /// Caps the worker-thread count (`0`, the default, uses the machine's
    /// available parallelism). Does not affect the result.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Executes batches of `scenario` on `backend` until the stopping rule
    /// holds, folding every run into one [`ReplicationReport`].
    pub fn run(
        &self,
        backend: &dyn Backend,
        scenario: &Scenario,
    ) -> Result<ReplicationReport, RocketError> {
        if !self.rel_half_width.is_finite() || self.rel_half_width <= 0.0 {
            return Err(RocketError::Config(
                "relative CI half-width target must be positive and finite".into(),
            ));
        }
        if self.max_n < 2 {
            return Err(RocketError::Config(
                "adaptive replications need max_n >= 2 (a CI needs two runs)".into(),
            ));
        }
        let batch = self.batch.max(2);
        let mut state = self.base_seed;
        let mut seeds: Vec<u64> = Vec::new();
        let mut runs: Vec<RunReport> = Vec::new();
        loop {
            let take = batch.min(self.max_n - seeds.len());
            let fresh: Vec<u64> = (0..take).map(|_| splitmix64(&mut state)).collect();
            let round = Replications::from_seeds(fresh.clone())
                .threads(self.threads)
                .run(backend, scenario)?;
            seeds.extend(fresh);
            runs.extend(round.runs);
            // The fold is cheap relative to a run: recompute over all runs
            // so the stopping rule sees the full-sample CI.
            let report = ReplicationReport::fold(backend.name(), seeds.clone(), runs.clone());
            let (mean, hw) = report.elapsed.mean_ci95();
            if hw <= self.rel_half_width * mean.abs() || seeds.len() >= self.max_n {
                return Ok(report);
            }
        }
    }
}

/// Aggregate of N replicated runs: per-run reports plus
/// confidence-interval summaries of the headline metrics.
#[derive(Debug, Clone)]
pub struct ReplicationReport {
    /// Backend that executed the replications.
    pub backend: &'static str,
    /// Seed of each run (index-aligned with `runs`).
    pub seeds: Vec<u64>,
    /// The per-run reports, in seed order.
    pub runs: Vec<RunReport>,
    /// Run time (seconds) across replications.
    pub elapsed: OnlineStats,
    /// Reuse factor R across replications.
    pub r_factor: OnlineStats,
    /// Throughput (pairs/second) across replications.
    pub throughput: OnlineStats,
    /// Load-pipeline executions across replications.
    pub loads: OnlineStats,
}

impl ReplicationReport {
    /// Builds a report from runs that already happened (what
    /// [`crate::Study`] uses to wrap single-run cells). `seeds` must be
    /// index-aligned with `runs`.
    pub fn from_runs(backend: &'static str, seeds: Vec<u64>, runs: Vec<RunReport>) -> Self {
        Self::fold(backend, seeds, runs)
    }

    fn fold(backend: &'static str, seeds: Vec<u64>, runs: Vec<RunReport>) -> Self {
        let mut elapsed = OnlineStats::new();
        let mut r_factor = OnlineStats::new();
        let mut throughput = OnlineStats::new();
        let mut loads = OnlineStats::new();
        for run in &runs {
            elapsed.push(run.elapsed);
            r_factor.push(run.r_factor());
            throughput.push(run.throughput());
            loads.push(run.loads as f64);
        }
        Self {
            backend,
            seeds,
            runs,
            elapsed,
            r_factor,
            throughput,
            loads,
        }
    }

    /// Number of replications.
    pub fn replications(&self) -> usize {
        self.runs.len()
    }

    /// Serializes the aggregate as one JSON object: backend, seeds,
    /// `mean ± ci95` summaries of the headline metrics, and the per-run
    /// [`RunReport`]s (in seed order). Hand-rolled for the same reason as
    /// [`RunReport::to_json`]: no registry, no serde.
    pub fn to_json(&self) -> String {
        let metric = |s: &OnlineStats| {
            format!(
                "{{\"n\":{},\"mean\":{},\"ci95\":{},\"min\":{},\"max\":{}}}",
                s.count(),
                json_f64(s.mean()),
                json_f64(s.ci95_half_width()),
                json_f64(if s.count() == 0 { 0.0 } else { s.min() }),
                json_f64(if s.count() == 0 { 0.0 } else { s.max() }),
            )
        };
        let mut out = String::with_capacity(1024);
        out.push_str("{\"backend\":");
        push_json_str(&mut out, self.backend);
        out.push_str(&format!(",\"replications\":{}", self.replications()));
        out.push_str(",\"seeds\":[");
        for (i, s) in self.seeds.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&s.to_string());
        }
        out.push(']');
        out.push_str(&format!(",\"elapsed_s\":{}", metric(&self.elapsed)));
        out.push_str(&format!(",\"r_factor\":{}", metric(&self.r_factor)));
        out.push_str(&format!(
            ",\"throughput_pairs_s\":{}",
            metric(&self.throughput)
        ));
        out.push_str(&format!(",\"loads\":{}", metric(&self.loads)));
        out.push_str(",\"runs\":[");
        for (i, run) in self.runs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&run.to_json());
        }
        out.push_str("]}");
        out
    }

    /// Multi-line human-readable `mean ± 95% CI` summary.
    pub fn summary(&self) -> String {
        format!(
            "{} replications on {} | runtime {} s | R {} | throughput {} pairs/s",
            self.replications(),
            self.backend,
            self.elapsed.avg_pm_ci95(),
            self.r_factor.avg_pm_ci95(),
            self.throughput.avg_pm_ci95(),
        )
    }
}
