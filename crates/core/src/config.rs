//! Runtime configuration.

use rocket_gpu::DeviceProfile;

/// Configuration of one Rocket node (and, via [`crate::cluster`], of every
/// node of an in-process cluster).
#[derive(Debug, Clone)]
pub struct RocketConfig {
    /// Device profiles — one virtual GPU per entry.
    pub devices: Vec<DeviceProfile>,
    /// Slots in each per-device cache (level 1).
    pub device_cache_slots: usize,
    /// Slots in the per-node host cache (level 2).
    pub host_cache_slots: usize,
    /// Maximum jobs simultaneously in flight per node (§4.2 back-pressure).
    pub concurrent_job_limit: usize,
    /// CPU worker threads per node (parse / post-process pool).
    pub cpu_threads: usize,
    /// Maximum hops of the distributed cache lookup (the paper's `h`).
    pub distributed_hops: usize,
    /// Whether the level-3 distributed cache is enabled at all (Fig 12
    /// compares both settings).
    pub distributed_cache: bool,
    /// Pairs per leaf task in the quadrant decomposition.
    pub leaf_pairs: u64,
    /// Deterministic work assignment: statically partition the pair
    /// triangle over workers instead of work-stealing (reproducible
    /// per-node pair counts; static load balance).
    pub static_partition: bool,
    /// Storage read retries before an item load fails.
    pub io_retries: usize,
    /// Attempts to load an item before failing jobs that depend on it.
    pub max_item_failures: u32,
    /// Root seed for all randomized decisions.
    pub seed: u64,
    /// Record a task trace (the paper's optional profiling flag).
    pub tracing: bool,
}

const SEED_DEFAULT: u64 = 0x52_6f_63_6b_65_74_21_21; // "Rocket!!"

impl Default for RocketConfig {
    fn default() -> Self {
        RocketConfigBuilder::default().config
    }
}

impl RocketConfig {
    /// Starts a builder with defaults.
    pub fn builder() -> RocketConfigBuilder {
        RocketConfigBuilder::default()
    }

    /// Validates internal consistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.devices.is_empty() {
            return Err("at least one device is required".into());
        }
        if self.device_cache_slots < 2 {
            return Err("device cache needs at least 2 slots (a pair occupies two)".into());
        }
        if self.host_cache_slots < 1 {
            return Err("host cache needs at least 1 slot".into());
        }
        if self.concurrent_job_limit < 1 {
            return Err("concurrent job limit must be positive".into());
        }
        if self.cpu_threads < 1 {
            return Err("at least one CPU thread is required".into());
        }
        if self.distributed_hops < 1 {
            return Err("distributed hops (h) must be at least 1".into());
        }
        Ok(())
    }
}

/// Builder for [`RocketConfig`].
#[derive(Debug, Clone)]
pub struct RocketConfigBuilder {
    config: RocketConfig,
}

impl Default for RocketConfigBuilder {
    fn default() -> Self {
        Self {
            config: RocketConfig {
                devices: vec![DeviceProfile::titanx_maxwell()],
                device_cache_slots: 64,
                host_cache_slots: 256,
                concurrent_job_limit: 64,
                cpu_threads: 2,
                distributed_hops: 1,
                distributed_cache: true,
                leaf_pairs: 1,
                static_partition: false,
                io_retries: 2,
                max_item_failures: 5,
                seed: SEED_DEFAULT,
                tracing: true,
            },
        }
    }
}

impl RocketConfigBuilder {
    /// Uses `n` TitanX-Maxwell devices.
    pub fn devices(mut self, n: usize) -> Self {
        self.config.devices = (0..n).map(|_| DeviceProfile::titanx_maxwell()).collect();
        self
    }

    /// Uses the given device profiles.
    pub fn device_profiles(mut self, profiles: Vec<DeviceProfile>) -> Self {
        self.config.devices = profiles;
        self
    }

    /// Sets per-device cache slots.
    pub fn device_cache_slots(mut self, slots: usize) -> Self {
        self.config.device_cache_slots = slots;
        self
    }

    /// Sets host cache slots.
    pub fn host_cache_slots(mut self, slots: usize) -> Self {
        self.config.host_cache_slots = slots;
        self
    }

    /// Sets the concurrent job limit.
    pub fn concurrent_job_limit(mut self, limit: usize) -> Self {
        self.config.concurrent_job_limit = limit;
        self
    }

    /// Sets CPU pool size.
    pub fn cpu_threads(mut self, n: usize) -> Self {
        self.config.cpu_threads = n;
        self
    }

    /// Sets the distributed-cache hop limit `h`.
    pub fn distributed_hops(mut self, h: usize) -> Self {
        self.config.distributed_hops = h;
        self
    }

    /// Enables/disables the level-3 distributed cache.
    pub fn distributed_cache(mut self, on: bool) -> Self {
        self.config.distributed_cache = on;
        self
    }

    /// Sets pairs per leaf task.
    pub fn leaf_pairs(mut self, pairs: u64) -> Self {
        self.config.leaf_pairs = pairs;
        self
    }

    /// Enables/disables deterministic static work assignment.
    pub fn static_partition(mut self, on: bool) -> Self {
        self.config.static_partition = on;
        self
    }

    /// Sets storage retries.
    pub fn io_retries(mut self, retries: usize) -> Self {
        self.config.io_retries = retries;
        self
    }

    /// Sets the per-item failure budget.
    pub fn max_item_failures(mut self, n: u32) -> Self {
        self.config.max_item_failures = n;
        self
    }

    /// Sets the root seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Enables/disables tracing.
    pub fn tracing(mut self, on: bool) -> Self {
        self.config.tracing = on;
        self
    }

    /// Finalizes the configuration (panics on invalid settings; use
    /// [`RocketConfigBuilder::try_build`] for fallible construction).
    pub fn build(self) -> RocketConfig {
        self.try_build().expect("invalid RocketConfig")
    }

    /// Finalizes, returning an error message for invalid settings.
    pub fn try_build(self) -> Result<RocketConfig, String> {
        self.config.validate()?;
        Ok(self.config)
    }
}

/// Summary of a configuration (for experiment manifests). Plain data so a
/// serializer can be layered on once one is available offline.
#[derive(Debug, Clone, PartialEq)]
pub struct ConfigSummary {
    /// Device names.
    pub devices: Vec<String>,
    /// Device cache slots.
    pub device_cache_slots: usize,
    /// Host cache slots.
    pub host_cache_slots: usize,
    /// Concurrent job limit.
    pub concurrent_job_limit: usize,
    /// Distributed cache on/off.
    pub distributed_cache: bool,
    /// Hop limit.
    pub distributed_hops: usize,
    /// Seed.
    pub seed: u64,
}

impl From<&RocketConfig> for ConfigSummary {
    fn from(c: &RocketConfig) -> Self {
        Self {
            devices: c.devices.iter().map(|d| d.name.clone()).collect(),
            device_cache_slots: c.device_cache_slots,
            host_cache_slots: c.host_cache_slots,
            concurrent_job_limit: c.concurrent_job_limit,
            distributed_cache: c.distributed_cache,
            distributed_hops: c.distributed_hops,
            seed: c.seed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_validate() {
        let c = RocketConfig::builder().build();
        assert_eq!(c.devices.len(), 1);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn builder_overrides() {
        let c = RocketConfig::builder()
            .devices(2)
            .device_cache_slots(8)
            .host_cache_slots(32)
            .concurrent_job_limit(4)
            .distributed_hops(3)
            .distributed_cache(false)
            .seed(42)
            .build();
        assert_eq!(c.devices.len(), 2);
        assert_eq!(c.device_cache_slots, 8);
        assert_eq!(c.distributed_hops, 3);
        assert!(!c.distributed_cache);
        assert_eq!(c.seed, 42);
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(RocketConfig::builder().devices(0).try_build().is_err());
        assert!(RocketConfig::builder()
            .device_cache_slots(1)
            .try_build()
            .is_err());
        assert!(RocketConfig::builder()
            .concurrent_job_limit(0)
            .try_build()
            .is_err());
        assert!(RocketConfig::builder().cpu_threads(0).try_build().is_err());
        assert!(RocketConfig::builder()
            .distributed_hops(0)
            .try_build()
            .is_err());
    }

    #[test]
    fn summary_reflects_config() {
        let c = RocketConfig::builder().devices(2).seed(7).build();
        let s = ConfigSummary::from(&c);
        assert_eq!(s.devices.len(), 2);
        assert_eq!(s.seed, 7);
    }
}
