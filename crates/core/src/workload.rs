//! Workload descriptions: the stage-time and size characteristics a
//! [`crate::Scenario`] carries.
//!
//! A [`WorkloadProfile`] statistically describes one all-pairs workload —
//! item counts and sizes plus per-stage service-time distributions. The
//! discrete-event simulator samples the distributions; the threaded
//! runtime executes a real [`crate::Application`] and uses only the item
//! count. The paper's three measured profiles (Table 1 / Fig 7) are
//! constructed in `rocket_apps::profiles`.

use rocket_stats::Dist;

/// Statistical description of one all-pairs workload.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadProfile {
    /// Application name.
    pub name: &'static str,
    /// Number of input files (the paper's n).
    pub items: u64,
    /// Average file size on disk in bytes.
    pub file_bytes: u64,
    /// Pre-processed item size in bytes (= cache slot size).
    pub item_bytes: u64,
    /// Parse time on the CPU, seconds.
    pub parse: Dist,
    /// Pre-processing kernel time on the baseline GPU, seconds (`None` for
    /// applications without a pre-processing stage).
    pub preprocess: Option<Dist>,
    /// Comparison kernel time on the baseline GPU, seconds.
    pub compare: Dist,
    /// Post-processing time on the CPU, seconds.
    pub postprocess: Dist,
    /// Device cache slots used in the paper's single-node baseline.
    pub paper_device_slots: usize,
    /// Host cache slots used in the paper's single-node baseline.
    pub paper_host_slots: usize,
}

impl WorkloadProfile {
    /// A featureless workload of `items` items with zero-cost stages.
    ///
    /// Lets threaded-runtime scenarios describe cluster topology without
    /// measured stage statistics — the real [`crate::Application`] supplies
    /// the actual compute. Simulating such a workload is legal but
    /// degenerate (every stage takes zero virtual time).
    pub fn items_only(items: u64) -> Self {
        Self {
            name: "custom",
            items,
            file_bytes: 1,
            item_bytes: 1,
            parse: Dist::Constant(0.0),
            preprocess: None,
            compare: Dist::Constant(0.0),
            postprocess: Dist::Constant(0.0),
            paper_device_slots: 2,
            paper_host_slots: 2,
        }
    }

    /// Total number of pairs `n(n−1)/2`.
    pub fn pairs(&self) -> u64 {
        self.items * (self.items - 1) / 2
    }

    /// Mean time of one full load `ℓ` (parse + pre-process), seconds.
    pub fn mean_load_seconds(&self) -> f64 {
        use rocket_stats::Distribution;
        self.parse.mean() + self.preprocess.as_ref().map_or(0.0, |d| d.mean())
    }

    /// Scales the data-set size by `1/scale`, preserving both the
    /// cache-slots to items ratio (what the reuse factor R depends on) and
    /// the compute-to-load balance. `scale = 1` is the paper's full size.
    ///
    /// Comparisons are quadratic in n while loads are linear, so shrinking
    /// n alone would make loading look artificially expensive; multiplying
    /// the comparison time by the same factor keeps
    /// `pairs·t_cmp : n·t_load` invariant.
    pub fn scaled(&self, scale: u64) -> WorkloadProfile {
        assert!(scale >= 1);
        let mut p = self.clone();
        p.items = (p.items / scale).max(4);
        p.compare = p.compare.scaled_by(scale as f64);
        let s = |slots: usize| ((slots as u64 / scale) as usize).max(2);
        p.paper_device_slots = s(p.paper_device_slots);
        p.paper_host_slots = s(p.paper_host_slots);
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn items_only_is_minimal_but_valid() {
        let w = WorkloadProfile::items_only(12);
        assert_eq!(w.items, 12);
        assert_eq!(w.pairs(), 66);
        assert_eq!(w.mean_load_seconds(), 0.0);
        assert!(w.preprocess.is_none());
    }

    #[test]
    fn scaling_shrinks_items_and_slots() {
        let mut w = WorkloadProfile::items_only(100);
        w.paper_device_slots = 50;
        w.paper_host_slots = 80;
        let s = w.scaled(10);
        assert_eq!(s.items, 10);
        assert_eq!(s.paper_device_slots, 5);
        assert_eq!(s.paper_host_slots, 8);
        // Floor of 4 items.
        assert_eq!(w.scaled(1000).items, 4);
    }
}
