//! Parameter sweeps: a base [`Scenario`] expanded over named axes into a
//! validated cartesian grid.
//!
//! The paper's results are all *sweeps* — node counts, GPU counts, cache
//! levels on/off, workload scale (Figs. 11–15) — so the driver API treats
//! them as first-class objects instead of hand-rolled loops. A [`Sweep`]
//! couples one base scenario with a list of [`Axis`] values; expansion
//! yields one [`SweepCell`] per point of the cartesian product, each
//! tagged with its coordinates (axis name → [`AxisValue`]) and carrying
//! the fully-applied [`Scenario`].
//!
//! Determinism: cell order is a pure function of the axis declaration
//! order — the first axis varies slowest, the last fastest (row-major
//! odometer) — and every expansion of the same sweep yields the same
//! cells in the same order.
//!
//! Validation: [`SweepBuilder::try_build`] rejects empty axes, duplicate
//! axis names, and any cell whose applied scenario fails
//! [`Scenario::validate`] (e.g. a `transport = socket` axis crossed with a
//! node count beyond [`crate::MAX_SOCKET_NODES`]), naming the offending
//! cell's coordinates.
//!
//! ```
//! use rocket_core::{Axis, NodeSpec, Scenario, Sweep};
//!
//! let base = Scenario::builder()
//!     .items(64)
//!     .node(NodeSpec::uniform(1, 8, 16))
//!     .build();
//! let sweep = Sweep::over(base)
//!     .axis(Axis::nodes([1, 2, 4]))
//!     .axis(Axis::distributed_cache([true, false]))
//!     .try_build()
//!     .unwrap();
//! assert_eq!(sweep.len(), 6);
//! let cells = sweep.cells();
//! // First axis slowest: nodes=1 pairs with both cache settings first.
//! assert_eq!(cells[0].coords[0].1.to_string(), "1");
//! assert_eq!(cells[1].coords[1].1.to_string(), "false");
//! assert_eq!(cells[5].scenario.nodes.len(), 4);
//! ```

use std::fmt;
use std::sync::Arc;

use rocket_comm::TransportKind;

use crate::report::{json_f64, push_json_str};
use crate::scenario::Scenario;

/// One coordinate value of a sweep cell — printable, comparable, and
/// serializable without knowing which scenario knob it drove.
#[derive(Debug, Clone, PartialEq)]
pub enum AxisValue {
    /// An unsigned integer coordinate (node counts, item counts, hops…).
    U64(u64),
    /// A real-valued coordinate (cache sizes in GB…).
    F64(f64),
    /// An on/off coordinate (distributed cache…).
    Bool(bool),
    /// A named coordinate (application, transport, policy…).
    Str(String),
}

impl AxisValue {
    /// Serializes the value as a JSON scalar.
    pub fn to_json(&self) -> String {
        match self {
            AxisValue::U64(v) => v.to_string(),
            AxisValue::F64(v) => json_f64(*v),
            AxisValue::Bool(v) => v.to_string(),
            AxisValue::Str(s) => {
                let mut out = String::new();
                push_json_str(&mut out, s);
                out
            }
        }
    }
}

impl fmt::Display for AxisValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AxisValue::U64(v) => write!(f, "{v}"),
            AxisValue::F64(v) => write!(f, "{v}"),
            AxisValue::Bool(v) => write!(f, "{v}"),
            AxisValue::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<u64> for AxisValue {
    fn from(v: u64) -> Self {
        AxisValue::U64(v)
    }
}

impl From<usize> for AxisValue {
    fn from(v: usize) -> Self {
        AxisValue::U64(v as u64)
    }
}

impl From<f64> for AxisValue {
    fn from(v: f64) -> Self {
        AxisValue::F64(v)
    }
}

impl From<bool> for AxisValue {
    fn from(v: bool) -> Self {
        AxisValue::Bool(v)
    }
}

impl From<&str> for AxisValue {
    fn from(v: &str) -> Self {
        AxisValue::Str(v.to_string())
    }
}

impl From<String> for AxisValue {
    fn from(v: String) -> Self {
        AxisValue::Str(v)
    }
}

/// How one axis point modifies the base scenario.
type Apply = Arc<dyn Fn(&mut Scenario) + Send + Sync>;

#[derive(Clone)]
struct AxisPoint {
    value: AxisValue,
    apply: Apply,
}

/// One named dimension of a sweep: a list of values, each paired with the
/// scenario mutation it stands for.
///
/// Constructors exist for the common scenario knobs ([`Axis::nodes`],
/// [`Axis::distributed_cache`], [`Axis::transport`], …); [`Axis::points`]
/// builds fully custom axes (arbitrary value labels, arbitrary scenario
/// edits — later axes see the mutations of earlier ones), and
/// [`Axis::tag`] attaches label-only coordinates that leave the scenario
/// untouched (useful to mark sub-studies before concatenation).
#[derive(Clone)]
pub struct Axis {
    name: String,
    points: Vec<AxisPoint>,
}

impl fmt::Debug for Axis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Axis")
            .field("name", &self.name)
            .field(
                "values",
                &self.points.iter().map(|p| &p.value).collect::<Vec<_>>(),
            )
            .finish()
    }
}

impl Axis {
    /// A fully custom axis: each point is a value label plus the scenario
    /// mutation it performs. Mutations run in axis declaration order, so a
    /// later axis may derive its effect from what earlier axes set (e.g. a
    /// cache-size axis computing slot counts from the workload an `app`
    /// axis selected).
    pub fn points<I, F>(name: impl Into<String>, points: I) -> Self
    where
        I: IntoIterator<Item = (AxisValue, F)>,
        F: Fn(&mut Scenario) + Send + Sync + 'static,
    {
        Self {
            name: name.into(),
            points: points
                .into_iter()
                .map(|(value, f)| AxisPoint {
                    value,
                    apply: Arc::new(f),
                })
                .collect(),
        }
    }

    /// A label-only axis: coordinates are recorded on every cell but the
    /// scenario is not modified.
    pub fn tag<I, V>(name: impl Into<String>, values: I) -> Self
    where
        I: IntoIterator<Item = V>,
        V: Into<AxisValue>,
    {
        Self::points(
            name,
            values
                .into_iter()
                .map(|v| (v.into(), |_: &mut Scenario| {})),
        )
    }

    /// Node-count axis (`nodes`): the topology becomes `count` copies of
    /// the (possibly axis-modified) scenario's first node.
    pub fn nodes(counts: impl IntoIterator<Item = usize>) -> Self {
        Self::points(
            "nodes",
            counts.into_iter().map(|count| {
                (AxisValue::from(count), move |s: &mut Scenario| {
                    if let Some(template) = s.nodes.first().cloned() {
                        s.nodes = vec![template; count];
                    }
                })
            }),
        )
    }

    /// GPUs-per-node axis (`gpus_per_node`): every node's GPU list becomes
    /// `count` copies of its own first device profile.
    pub fn gpus_per_node(counts: impl IntoIterator<Item = usize>) -> Self {
        Self::points(
            "gpus_per_node",
            counts.into_iter().map(|count| {
                (AxisValue::from(count), move |s: &mut Scenario| {
                    for node in &mut s.nodes {
                        if let Some(gpu) = node.gpus.first().cloned() {
                            node.gpus = vec![gpu; count];
                        }
                    }
                })
            }),
        )
    }

    /// Data-set-size axis (`n_items`): sets the workload's item count.
    pub fn items(counts: impl IntoIterator<Item = u64>) -> Self {
        Self::points(
            "n_items",
            counts.into_iter().map(|items| {
                (AxisValue::from(items), move |s: &mut Scenario| {
                    s.workload.items = items;
                })
            }),
        )
    }

    /// Level-3 distributed cache on/off axis (`distributed_cache`).
    pub fn distributed_cache(values: impl IntoIterator<Item = bool>) -> Self {
        Self::points(
            "distributed_cache",
            values.into_iter().map(|on| {
                (AxisValue::from(on), move |s: &mut Scenario| {
                    s.distributed_cache = on;
                })
            }),
        )
    }

    /// Cluster-transport axis (`transport`), labelled by
    /// [`TransportKind::label`].
    pub fn transport(kinds: impl IntoIterator<Item = TransportKind>) -> Self {
        Self::points(
            "transport",
            kinds.into_iter().map(|kind| {
                (AxisValue::from(kind.label()), move |s: &mut Scenario| {
                    s.transport = kind;
                })
            }),
        )
    }

    /// Distributed-lookup hop-limit axis (`hops`).
    pub fn hops(values: impl IntoIterator<Item = usize>) -> Self {
        Self::points(
            "hops",
            values.into_iter().map(|h| {
                (AxisValue::from(h), move |s: &mut Scenario| {
                    s.hops = h;
                })
            }),
        )
    }

    /// The axis name (one CSV column / JSON key per axis).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The value labels, in declaration order.
    pub fn values(&self) -> Vec<AxisValue> {
        self.points.iter().map(|p| p.value.clone()).collect()
    }

    /// Number of points on this axis.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the axis has no points (rejected by
    /// [`SweepBuilder::try_build`]).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

/// One point of an expanded sweep: its flat index, its coordinates, and
/// the scenario with every axis mutation applied.
#[derive(Debug, Clone)]
pub struct SweepCell {
    /// Flat cell index in expansion order (row-major, first axis slowest).
    pub index: usize,
    /// `(axis name, value)` pairs, in axis declaration order.
    pub coords: Vec<(String, AxisValue)>,
    /// The base scenario with this cell's axis mutations applied.
    pub scenario: Scenario,
}

/// A base [`Scenario`] plus named axes, expanded once at construction
/// into a validated cartesian grid of [`SweepCell`]s. Build with
/// [`Sweep::over`]; run with [`crate::Study`].
#[derive(Debug, Clone)]
pub struct Sweep {
    base: Scenario,
    axes: Vec<Axis>,
    cells: Vec<SweepCell>,
}

/// Row-major expansion (first axis slowest, last axis fastest).
fn expand(base: &Scenario, axes: &[Axis]) -> Vec<SweepCell> {
    let total = axes.iter().map(|a| a.len()).product();
    let mut cells = Vec::with_capacity(total);
    for index in 0..total {
        // Row-major decode: the last axis has stride 1.
        let mut coords = Vec::with_capacity(axes.len());
        let mut scenario = base.clone();
        let mut stride = total;
        for axis in axes {
            stride /= axis.len();
            let point = &axis.points[(index / stride) % axis.len()];
            coords.push((axis.name.clone(), point.value.clone()));
            (point.apply)(&mut scenario);
        }
        cells.push(SweepCell {
            index,
            coords,
            scenario,
        });
    }
    cells
}

impl Sweep {
    /// Starts building a sweep around `base` (a sweep with no axes is a
    /// single cell: the base itself).
    pub fn over(base: Scenario) -> SweepBuilder {
        SweepBuilder {
            base,
            axes: Vec::new(),
        }
    }

    /// The base scenario axes mutate.
    pub fn base(&self) -> &Scenario {
        &self.base
    }

    /// The axes, in declaration order.
    pub fn axes(&self) -> &[Axis] {
        &self.axes
    }

    /// Axis names in declaration order (the coordinate/CSV column order).
    pub fn axis_names(&self) -> Vec<String> {
        self.axes.iter().map(|a| a.name.clone()).collect()
    }

    /// Number of grid cells (product of axis lengths; 1 with no axes).
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the grid is empty (never true for a built sweep — empty
    /// axes are rejected at construction).
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// The expanded grid — exactly the cells `try_build` validated.
    /// Deterministic and ordered: the same sweep always yields the same
    /// cells in the same row-major order (first axis slowest, last axis
    /// fastest).
    pub fn cells(&self) -> &[SweepCell] {
        &self.cells
    }
}

/// Builder for [`Sweep`] (see [`Sweep::over`]).
#[derive(Debug, Clone)]
pub struct SweepBuilder {
    base: Scenario,
    axes: Vec<Axis>,
}

impl SweepBuilder {
    /// Appends one axis to the grid.
    pub fn axis(mut self, axis: Axis) -> Self {
        self.axes.push(axis);
        self
    }

    /// Finalizes the sweep, validating the base scenario, the axis set
    /// (non-empty axes, unique names), and every expanded cell's
    /// scenario. The grid is expanded exactly once, here; the built
    /// [`Sweep`] carries the validated cells.
    pub fn try_build(self) -> Result<Sweep, String> {
        self.base
            .validate()
            .map_err(|e| format!("invalid base scenario: {e}"))?;
        for (i, axis) in self.axes.iter().enumerate() {
            if axis.is_empty() {
                return Err(format!("axis `{}` has no values", axis.name));
            }
            if self.axes[..i].iter().any(|a| a.name == axis.name) {
                return Err(format!("duplicate axis name `{}`", axis.name));
            }
        }
        let cells = expand(&self.base, &self.axes);
        for cell in &cells {
            cell.scenario.validate().map_err(|e| {
                let coords = cell
                    .coords
                    .iter()
                    .map(|(name, value)| format!("{name}={value}"))
                    .collect::<Vec<_>>()
                    .join(", ");
                format!("invalid cell {} ({coords}): {e}", cell.index)
            })?;
        }
        Ok(Sweep {
            base: self.base,
            axes: self.axes,
            cells,
        })
    }

    /// Finalizes the sweep (panics on invalid grids; use
    /// [`SweepBuilder::try_build`] for fallible construction).
    pub fn build(self) -> Sweep {
        self.try_build().expect("invalid Sweep")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::NodeSpec;

    fn base() -> Scenario {
        Scenario::builder()
            .items(32)
            .node(NodeSpec::uniform(1, 8, 16))
            .seed(7)
            .build()
    }

    #[test]
    fn expansion_is_row_major_and_deterministic() {
        let sweep = Sweep::over(base())
            .axis(Axis::nodes([1, 2]))
            .axis(Axis::distributed_cache([true, false]))
            .axis(Axis::hops([1, 2, 3]))
            .try_build()
            .unwrap();
        assert_eq!(sweep.len(), 12);
        assert_eq!(
            sweep.axis_names(),
            vec!["nodes", "distributed_cache", "hops"]
        );
        let cells = sweep.cells();
        assert_eq!(cells.len(), 12);
        // First axis slowest, last fastest.
        assert_eq!(cells[0].scenario.nodes.len(), 1);
        assert!(cells[0].scenario.distributed_cache);
        assert_eq!(cells[0].scenario.hops, 1);
        assert_eq!(cells[1].scenario.hops, 2);
        assert_eq!(cells[3].scenario.hops, 1);
        assert!(!cells[3].scenario.distributed_cache);
        assert_eq!(cells[6].scenario.nodes.len(), 2);
        // Cell indices are their positions; repeated expansion is
        // identical.
        for (i, cell) in cells.iter().enumerate() {
            assert_eq!(cell.index, i);
        }
        let again = sweep.cells();
        assert_eq!(format!("{cells:?}"), format!("{again:?}"));
    }

    #[test]
    fn coords_follow_axis_declaration_order() {
        let sweep = Sweep::over(base())
            .axis(Axis::distributed_cache([false]))
            .axis(Axis::nodes([4]))
            .try_build()
            .unwrap();
        let cells = sweep.cells();
        assert_eq!(cells[0].coords[0].0, "distributed_cache");
        assert_eq!(cells[0].coords[0].1, AxisValue::Bool(false));
        assert_eq!(cells[0].coords[1].0, "nodes");
        assert_eq!(cells[0].coords[1].1, AxisValue::U64(4));
        assert_eq!(cells[0].scenario.nodes.len(), 4);
        assert!(!cells[0].scenario.distributed_cache);
    }

    #[test]
    fn empty_and_duplicate_axes_rejected() {
        let err = Sweep::over(base())
            .axis(Axis::nodes(std::iter::empty()))
            .try_build()
            .unwrap_err();
        assert!(err.contains("no values"), "{err}");
        let err = Sweep::over(base())
            .axis(Axis::nodes([1]))
            .axis(Axis::nodes([2]))
            .try_build()
            .unwrap_err();
        assert!(err.contains("duplicate axis"), "{err}");
    }

    #[test]
    fn invalid_cells_rejected_with_coordinates() {
        // hops = 0 is an invalid scenario; the error names the cell.
        let err = Sweep::over(base())
            .axis(Axis::hops([1, 0]))
            .try_build()
            .unwrap_err();
        assert!(err.contains("hops=0"), "{err}");
        // Socket transport crossed with an oversized node count.
        let err = Sweep::over(base())
            .axis(Axis::transport([TransportKind::Socket]))
            .axis(Axis::nodes([crate::MAX_SOCKET_NODES + 1]))
            .try_build()
            .unwrap_err();
        assert!(err.contains("socket transport"), "{err}");
        assert!(err.contains("transport=socket"), "{err}");
    }

    #[test]
    fn invalid_base_rejected() {
        let mut bad = base();
        bad.nodes.clear();
        let err = Sweep::over(bad).try_build().unwrap_err();
        assert!(err.contains("invalid base scenario"), "{err}");
    }

    #[test]
    fn no_axes_is_a_single_cell() {
        let sweep = Sweep::over(base()).try_build().unwrap();
        assert_eq!(sweep.len(), 1);
        let cells = sweep.cells();
        assert_eq!(cells.len(), 1);
        assert!(cells[0].coords.is_empty());
        assert_eq!(cells[0].scenario, base());
    }

    #[test]
    fn later_axes_see_earlier_mutations() {
        // A custom axis that doubles whatever node count the first axis
        // set — order of application is declaration order.
        let doubler = Axis::points(
            "doubled",
            [(AxisValue::from(true), |s: &mut Scenario| {
                let n = s.nodes.len() * 2;
                let t = s.nodes[0].clone();
                s.nodes = vec![t; n];
            })],
        );
        let sweep = Sweep::over(base())
            .axis(Axis::nodes([3]))
            .axis(doubler)
            .try_build()
            .unwrap();
        assert_eq!(sweep.cells()[0].scenario.nodes.len(), 6);
    }

    #[test]
    fn tag_axes_label_without_mutating() {
        let sweep = Sweep::over(base())
            .axis(Axis::tag("policy", ["fixed8"]))
            .try_build()
            .unwrap();
        let cells = sweep.cells();
        assert_eq!(cells[0].scenario, base());
        assert_eq!(cells[0].coords[0].1, AxisValue::Str("fixed8".into()));
    }

    #[test]
    fn axis_values_serialize_and_display() {
        assert_eq!(AxisValue::from(3usize).to_json(), "3");
        assert_eq!(AxisValue::from(true).to_json(), "true");
        assert_eq!(AxisValue::from(2.5).to_json(), "2.5");
        assert_eq!(AxisValue::from("socket").to_json(), "\"socket\"");
        assert_eq!(AxisValue::from(f64::NAN).to_json(), "null");
        assert_eq!(AxisValue::from("a\"b").to_json(), "\"a\\\"b\"");
        assert_eq!(AxisValue::from(16u64).to_string(), "16");
        assert_eq!(AxisValue::from("local").to_string(), "local");
    }

    #[test]
    fn gpus_and_items_axes_apply() {
        let sweep = Sweep::over(base())
            .axis(Axis::gpus_per_node([4]))
            .axis(Axis::items([100]))
            .try_build()
            .unwrap();
        let cell = &sweep.cells()[0];
        assert_eq!(cell.scenario.nodes[0].gpus.len(), 4);
        assert_eq!(cell.scenario.workload.items, 100);
        assert_eq!(cell.coords[1].0, "n_items");
    }
}
