//! Micro-benchmarks for the wire codec (Ibis-substitute message layer).

use bytes::Bytes;
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use rocket_cache::DirectoryMsg;
use rocket_comm::Wire;
use rocket_core::engine::messages::NodeMsg;

fn bench_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("codec");
    let probe = NodeMsg::Dir(DirectoryMsg::Probe {
        item: 123_456,
        requester: 7,
        rest: [1, 2, 3].into_iter().collect(),
        hop: 2,
    });
    group.bench_function("encode_probe", |b| {
        b.iter(|| black_box(&probe).to_bytes());
    });
    let encoded = probe.to_bytes();
    group.bench_function("decode_probe", |b| {
        b.iter(|| NodeMsg::from_bytes(black_box(encoded.clone())).unwrap());
    });

    let reply = NodeMsg::FetchReply {
        item: 42,
        data: Some(Bytes::from(vec![0u8; 1_000_000])),
    };
    group.throughput(Throughput::Bytes(1_000_000));
    group.bench_function("encode_1mb_fetch_reply", |b| {
        b.iter(|| black_box(&reply).to_bytes());
    });
    let encoded = reply.to_bytes();
    group.bench_function("decode_1mb_fetch_reply", |b| {
        b.iter(|| NodeMsg::from_bytes(black_box(encoded.clone())).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench_codec);
criterion_main!(benches);
