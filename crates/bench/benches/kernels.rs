//! Micro-benchmarks for the three applications' computational kernels
//! (the black boxes of §5, reimplemented in Rust).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use rocket_apps::bioinfo::{composition_vector, sparse_correlation};
use rocket_apps::forensics::ForensicsApp;
use rocket_apps::microscopy::{gmm_l2_score, register, rotate, Metric};
use rocket_stats::Xoshiro256;

fn bench_forensics(c: &mut Criterion) {
    let mut group = c.benchmark_group("forensics");
    let (w, h) = (128usize, 128usize);
    let mut rng = Xoshiro256::seed_from(1);
    let image: Vec<f32> = (0..w * h).map(|_| rng.f64() as f32).collect();
    group.throughput(Throughput::Elements((w * h) as u64));
    group.bench_function("residual_extraction_128x128", |b| {
        b.iter(|| ForensicsApp::extract_residual(black_box(&image), w, h));
    });
    let a = ForensicsApp::extract_residual(&image, w, h);
    let image2: Vec<f32> = (0..w * h).map(|_| rng.f64() as f32).collect();
    let bb = ForensicsApp::extract_residual(&image2, w, h);
    group.bench_function("ncc_dot_128x128", |b| {
        b.iter(|| {
            let dot: f64 = black_box(&a)
                .iter()
                .zip(black_box(&bb))
                .map(|(&x, &y)| (x * y) as f64)
                .sum();
            dot
        });
    });
    group.finish();
}

fn bench_bioinfo(c: &mut Criterion) {
    let mut group = c.benchmark_group("bioinfo");
    let mut rng = Xoshiro256::seed_from(2);
    let codes: Vec<u8> = (0..20_000).map(|_| rng.below(20) as u8).collect();
    group.bench_function("composition_vector_k3_20k", |b| {
        b.iter(|| composition_vector(black_box(&codes), 3));
    });
    let cv_a = composition_vector(&codes, 3);
    let codes_b: Vec<u8> = (0..20_000).map(|_| rng.below(20) as u8).collect();
    let cv_b = composition_vector(&codes_b, 3);
    group.throughput(Throughput::Elements((cv_a.len() + cv_b.len()) as u64));
    group.bench_function("sparse_correlation", |b| {
        b.iter(|| sparse_correlation(black_box(&cv_a), black_box(&cv_b)));
    });
    group.finish();
}

fn bench_microscopy(c: &mut Criterion) {
    let mut group = c.benchmark_group("microscopy");
    let mut rng = Xoshiro256::seed_from(3);
    let particle: Vec<(f32, f32)> = (0..100)
        .map(|_| (rng.f64() as f32 * 2.0, rng.f64() as f32 * 2.0))
        .collect();
    let other = rotate(&particle, 0.7);
    group.bench_function("gmm_l2_score_100x100", |b| {
        b.iter(|| gmm_l2_score(black_box(&particle), black_box(&other), 0.1));
    });
    group.bench_function("register_grid24_100pts", |b| {
        b.iter(|| {
            register(
                black_box(&particle),
                black_box(&other),
                Metric::GmmL2,
                24,
                0.1,
            )
        });
    });
    group.finish();
}

criterion_group!(benches, bench_forensics, bench_bioinfo, bench_microscopy);
criterion_main!(benches);
