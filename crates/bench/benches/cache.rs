//! Micro-benchmarks for the slot cache (§4.1's central data structure):
//! hit path, miss + eviction churn, and the distributed-cache directory.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use rocket_cache::{Directory, Lookup, SlotCache};
use rocket_stats::Xoshiro256;

fn bench_hits(c: &mut Criterion) {
    let mut group = c.benchmark_group("slot_cache");
    group.throughput(Throughput::Elements(1));

    group.bench_function("hit_release", |b| {
        let mut cache: SlotCache<u32> = SlotCache::new(1024);
        for item in 0..1024u64 {
            if let Lookup::MustLoad(slot) = cache.get(item, || 0) {
                cache.publish(slot);
            }
        }
        let mut rng = Xoshiro256::seed_from(1);
        b.iter(|| {
            let item = rng.below(1024) as u64;
            if let Lookup::Hit(slot) = cache.get(black_box(item), || 0) {
                cache.release(slot);
            }
        });
    });

    group.bench_function("miss_evict_publish", |b| {
        // Working set twice the cache: every access evicts.
        let mut cache: SlotCache<u32> = SlotCache::new(512);
        let mut rng = Xoshiro256::seed_from(2);
        b.iter(|| {
            let item = rng.below(4096) as u64;
            match cache.get(black_box(item), || 0) {
                Lookup::Hit(slot) => {
                    cache.release(slot);
                }
                Lookup::MustLoad(slot) => {
                    cache.publish(slot);
                }
                _ => {}
            }
        });
    });

    group.bench_function("lru_scan_resistance_1m_slots", |b| {
        // O(1) eviction must hold at Fig 9's extreme slot counts.
        let mut cache: SlotCache<u32> = SlotCache::new(1_000_000);
        for item in 0..1_000_000u64 {
            if let Lookup::MustLoad(slot) = cache.get(item, || 0) {
                cache.publish(slot);
            }
        }
        let mut next = 1_000_000u64;
        b.iter(|| {
            if let Lookup::MustLoad(slot) = cache.get(black_box(next), || 0) {
                cache.publish(slot);
            }
            next += 1;
        });
    });
    group.finish();
}

fn bench_directory(c: &mut Criterion) {
    let mut group = c.benchmark_group("directory");
    group.throughput(Throughput::Elements(1));
    group.bench_function("lookup_roundtrip_16_nodes", |b| {
        let mut dirs: Vec<Directory> = (0..16).map(|n| Directory::new(n, 16, 3)).collect();
        let mut item = 0u64;
        b.iter(|| {
            let requester = (item % 16) as usize;
            let (mut to, mut msg) = dirs[requester].begin_lookup(black_box(item));
            loop {
                let (outgoing, res) = dirs[to].handle(msg, |_| false);
                if to == requester && res != rocket_cache::Resolution::InFlight {
                    break;
                }
                let Some((next_to, next_msg)) = outgoing.into_iter().next() else {
                    break;
                };
                to = next_to;
                msg = next_msg;
            }
            item += 1;
        });
    });
    group.finish();
}

criterion_group!(benches, bench_hits, bench_directory);
criterion_main!(benches);
