//! Micro-benchmarks for the work decomposition (§4.2): quadrant counting,
//! splitting, leaf iteration, and end-to-end pool throughput.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use rocket_steal::{Block, StealPool, StealPoolConfig, TaskDeque, WorkerTopology};
use std::sync::atomic::{AtomicU64, Ordering};

fn bench_blocks(c: &mut Criterion) {
    let mut group = c.benchmark_group("quadrant");
    group.bench_function("count_closed_form", |b| {
        let block = Block {
            row_lo: 123,
            row_hi: 40_000,
            col_lo: 5_000,
            col_hi: 90_000,
        };
        b.iter(|| black_box(block).count());
    });
    group.bench_function("split_root_4980", |b| {
        let root = Block::root(4980);
        b.iter(|| black_box(root).split());
    });
    group.bench_function("full_decomposition_n512", |b| {
        // Split until leaves ≤ 64 pairs, counting leaves.
        b.iter(|| {
            let mut deque = TaskDeque::new();
            deque.push(Block::root(512));
            let mut leaves = 0u64;
            while let Some(block) = deque.pop() {
                if block.count() <= 64 {
                    leaves += block.count();
                } else {
                    for child in block.split() {
                        deque.push(child);
                    }
                }
            }
            assert_eq!(leaves, 512 * 511 / 2);
            leaves
        });
    });
    group.finish();
}

fn bench_pool(c: &mut Criterion) {
    let mut group = c.benchmark_group("steal_pool");
    let n = 256u64;
    group.throughput(Throughput::Elements(n * (n - 1) / 2));
    group.bench_function("run_n256_2workers", |b| {
        b.iter(|| {
            let count = AtomicU64::new(0);
            StealPool::run(
                n,
                &WorkerTopology::single_node(2),
                &StealPoolConfig {
                    leaf_pairs: 32,
                    ..Default::default()
                },
                |_, _| {
                    count.fetch_add(1, Ordering::Relaxed);
                },
            );
            count.load(Ordering::Relaxed)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_blocks, bench_pool);
criterion_main!(benches);
