//! Micro-benchmarks for the discrete-event simulator: raw event-queue
//! throughput (both schedulers) and full cluster-simulation rate (pairs
//! simulated/second) through the unified `Scenario`/`Backend` API.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use rocket_core::{Backend, NodeSpec, Scenario, WorkloadProfile};
use rocket_sim::{CalendarQueue, EventQueue, SimBackend, SlabEventQueue};
use rocket_stats::Dist;

fn bench_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue");
    group.throughput(Throughput::Elements(1));
    group.bench_function("schedule_pop", |b| {
        let mut q: SlabEventQueue<u64> = SlabEventQueue::new();
        let mut t = 0u64;
        // Keep a standing population of 1024 events.
        for i in 0..1024 {
            q.schedule_at(i, i);
        }
        b.iter(|| {
            let (at, _) = q.pop().expect("event");
            t = at + 1000;
            q.schedule_at(black_box(t), t);
        });
    });
    group.bench_function("schedule_pop_calendar", |b| {
        let mut q: CalendarQueue<u64> = CalendarQueue::new();
        let mut t = 0u64;
        for i in 0..1024 {
            q.schedule_at(i, i);
        }
        b.iter(|| {
            let (at, _) = q.pop().expect("event");
            t = at + 1000;
            q.schedule_at(black_box(t), t);
        });
    });
    group.finish();
}

fn toy_workload(items: u64) -> WorkloadProfile {
    WorkloadProfile {
        name: "bench",
        items,
        file_bytes: 1_000_000,
        item_bytes: 10_000_000,
        parse: Dist::Constant(10e-3),
        preprocess: Some(Dist::Constant(5e-3)),
        compare: Dist::Constant(1e-3),
        postprocess: Dist::Constant(0.0),
        paper_device_slots: 16,
        paper_host_slots: 64,
    }
}

fn scenario(items: u64, nodes: usize, node: NodeSpec) -> Scenario {
    Scenario::builder()
        .workload(toy_workload(items))
        .nodes(nodes, node)
        .build()
}

fn run_pairs(s: &Scenario) -> u64 {
    SimBackend::new().run(black_box(s)).expect("sim run").pairs
}

fn bench_cluster(c: &mut Criterion) {
    let mut group = c.benchmark_group("cluster_sim");
    group.sample_size(10);
    let n = 96u64;
    group.throughput(Throughput::Elements(n * (n - 1) / 2));
    group.bench_function("single_node_n96", |b| {
        let s = scenario(n, 1, NodeSpec::uniform(1, 32, 64));
        b.iter(|| run_pairs(&s));
    });
    group.bench_function("four_nodes_n96_distcache", |b| {
        let s = scenario(n, 4, NodeSpec::uniform(1, 16, 32));
        b.iter(|| run_pairs(&s));
    });
    group.finish();
}

fn bench_large_cluster(c: &mut Criterion) {
    // The scaling configuration the hot-path overhaul targets: 64 GPUs over
    // 16 nodes, n=256 items (32 640 pairs), distributed cache on — once per
    // event scheduler (results are identical; speed may differ).
    let mut group = c.benchmark_group("cluster_sim");
    group.sample_size(10);
    let n = 256u64;
    group.throughput(Throughput::Elements(n * (n - 1) / 2));
    group.bench_function("sixteen_nodes_4gpu_n256_distcache", |b| {
        let s = scenario(n, 16, NodeSpec::uniform(4, 24, 96));
        b.iter(|| run_pairs(&s));
    });
    group.bench_function("sixteen_nodes_4gpu_n256_distcache_calendar", |b| {
        let mut s = scenario(n, 16, NodeSpec::uniform(4, 24, 96));
        s.calendar_queue = true;
        b.iter(|| run_pairs(&s));
    });
    group.finish();
}

criterion_group!(benches, bench_queue, bench_cluster, bench_large_cluster);
criterion_main!(benches);
