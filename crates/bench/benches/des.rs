//! Micro-benchmarks for the discrete-event simulator: raw event-queue
//! throughput and full cluster-simulation rate (pairs simulated/second).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use rocket_apps::WorkloadProfile;
use rocket_sim::{simulate, EventQueue, SimConfig, SimNodeConfig};
use rocket_stats::Dist;

fn bench_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue");
    group.throughput(Throughput::Elements(1));
    group.bench_function("schedule_pop", |b| {
        let mut q: EventQueue<u64> = EventQueue::new();
        let mut t = 0u64;
        // Keep a standing population of 1024 events.
        for i in 0..1024 {
            q.schedule_at(i, i);
        }
        b.iter(|| {
            let (at, _) = q.pop().expect("event");
            t = at + 1000;
            q.schedule_at(black_box(t), t);
        });
    });
    group.finish();
}

fn toy_workload(items: u64) -> WorkloadProfile {
    WorkloadProfile {
        name: "bench",
        items,
        file_bytes: 1_000_000,
        item_bytes: 10_000_000,
        parse: Dist::Constant(10e-3),
        preprocess: Some(Dist::Constant(5e-3)),
        compare: Dist::Constant(1e-3),
        postprocess: Dist::Constant(0.0),
        paper_device_slots: 16,
        paper_host_slots: 64,
    }
}

fn bench_cluster(c: &mut Criterion) {
    let mut group = c.benchmark_group("cluster_sim");
    group.sample_size(10);
    let n = 96u64;
    group.throughput(Throughput::Elements(n * (n - 1) / 2));
    group.bench_function("single_node_n96", |b| {
        let cfg = SimConfig::cluster(toy_workload(n), vec![SimNodeConfig::uniform(1, 32, 64)]);
        b.iter(|| simulate(black_box(&cfg)).pairs);
    });
    group.bench_function("four_nodes_n96_distcache", |b| {
        let cfg = SimConfig::cluster(toy_workload(n), vec![SimNodeConfig::uniform(1, 16, 32); 4]);
        b.iter(|| simulate(black_box(&cfg)).pairs);
    });
    group.finish();
}

fn bench_large_cluster(c: &mut Criterion) {
    // The scaling configuration the hot-path overhaul targets: 64 GPUs over
    // 16 nodes, n=256 items (32 640 pairs), distributed cache on.
    let mut group = c.benchmark_group("cluster_sim");
    group.sample_size(10);
    let n = 256u64;
    group.throughput(Throughput::Elements(n * (n - 1) / 2));
    group.bench_function("sixteen_nodes_4gpu_n256_distcache", |b| {
        let cfg = SimConfig::cluster(toy_workload(n), vec![SimNodeConfig::uniform(4, 24, 96); 16]);
        b.iter(|| simulate(black_box(&cfg)).pairs);
    });
    group.finish();
}

criterion_group!(benches, bench_queue, bench_cluster, bench_large_cluster);
criterion_main!(benches);
