//! Micro-benchmarks for the discrete-event simulator: raw event-queue
//! throughput (both schedulers) and full cluster-simulation rate (pairs
//! simulated/second) through the unified `Scenario`/`Backend` API.
//!
//! The cluster scenarios are the canonical anchors from
//! [`rocket_bench::anchors`] — the same configurations the committed
//! `BENCH_8.json` snapshot and the shard-equivalence tests use, so a
//! bench regression and a correctness regression point at the same
//! scenario.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use rocket_bench::anchors;
use rocket_core::{Backend, Scenario};
use rocket_sim::{CalendarQueue, EventQueue, SimBackend, SlabEventQueue};

fn bench_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue");
    group.throughput(Throughput::Elements(1));
    group.bench_function("schedule_pop", |b| {
        let mut q: SlabEventQueue<u64> = SlabEventQueue::new();
        let mut t = 0u64;
        // Keep a standing population of 1024 events.
        for i in 0..1024 {
            q.schedule_at(i, i);
        }
        b.iter(|| {
            let (at, _) = q.pop().expect("event");
            t = at + 1000;
            q.schedule_at(black_box(t), t);
        });
    });
    group.bench_function("schedule_pop_calendar", |b| {
        let mut q: CalendarQueue<u64> = CalendarQueue::new();
        let mut t = 0u64;
        for i in 0..1024 {
            q.schedule_at(i, i);
        }
        b.iter(|| {
            let (at, _) = q.pop().expect("event");
            t = at + 1000;
            q.schedule_at(black_box(t), t);
        });
    });
    group.finish();
}

fn run_pairs(backend: &SimBackend, s: &Scenario) -> u64 {
    backend.run(black_box(s)).expect("sim run").pairs
}

fn bench_cluster(c: &mut Criterion) {
    let mut group = c.benchmark_group("cluster_sim");
    group.sample_size(10);
    let n = 96u64;
    group.throughput(Throughput::Elements(n * (n - 1) / 2));
    group.bench_function("single_node_n96", |b| {
        let s = anchors::single_node_n96();
        b.iter(|| run_pairs(&SimBackend::new(), &s));
    });
    group.bench_function("four_nodes_n96_distcache", |b| {
        let s = anchors::four_nodes_n96_distcache();
        b.iter(|| run_pairs(&SimBackend::new(), &s));
    });
    group.bench_function("four_nodes_n96_distcache_4shards", |b| {
        let s = anchors::four_nodes_n96_distcache();
        b.iter(|| run_pairs(&SimBackend::sharded(4), &s));
    });
    group.finish();
}

fn bench_large_cluster(c: &mut Criterion) {
    // The scaling configuration the hot-path overhaul targets: 64 GPUs over
    // 16 nodes, n=256 items (32 640 pairs), distributed cache on — once per
    // event scheduler (results are identical; speed may differ).
    let mut group = c.benchmark_group("cluster_sim");
    group.sample_size(10);
    let n = 256u64;
    group.throughput(Throughput::Elements(n * (n - 1) / 2));
    group.bench_function("sixteen_nodes_4gpu_n256_distcache", |b| {
        let s = anchors::sixteen_nodes_4gpu_n256_distcache();
        b.iter(|| run_pairs(&SimBackend::new(), &s));
    });
    group.bench_function("sixteen_nodes_4gpu_n256_distcache_calendar", |b| {
        let mut s = anchors::sixteen_nodes_4gpu_n256_distcache();
        s.calendar_queue = true;
        b.iter(|| run_pairs(&SimBackend::new(), &s));
    });
    group.finish();
}

fn bench_thousand_nodes(c: &mut Criterion) {
    // The thousands-of-nodes anchor the sharded engine targets: 1024
    // single-GPU nodes, 523 776 pairs, cloud-scale network latency.
    // Sequential vs 8 shards on the steal pool — the results are
    // byte-identical, only wall-clock differs (the parallel win needs
    // hardware threads; see BENCH_8.json's host_parallelism field).
    let mut group = c.benchmark_group("cluster_sim");
    group.sample_size(10);
    let n = 1024u64;
    group.throughput(Throughput::Elements(n * (n - 1) / 2));
    group.bench_function("thousand_nodes", |b| {
        let s = anchors::thousand_nodes();
        b.iter(|| run_pairs(&SimBackend::new(), &s));
    });
    group.bench_function("thousand_nodes_8shards", |b| {
        let s = anchors::thousand_nodes();
        b.iter(|| run_pairs(&SimBackend::sharded(8), &s));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_queue,
    bench_cluster,
    bench_large_cluster,
    bench_thousand_nodes
);
criterion_main!(benches);
