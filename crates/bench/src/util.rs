//! Report formatting and CSV output helpers.

use std::path::{Path, PathBuf};

/// A simple fixed-width text table builder for terminal reports.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Self {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header width).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Renders with aligned columns (delegates to the driver API's shared
    /// renderer, so experiment tables and study tables look alike).
    pub fn render(&self) -> String {
        rocket_core::study::render_table(&self.header, &self.rows)
    }

    /// Renders as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        out.push_str(
            &self
                .header
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats seconds compactly (ms / s / min / h).
pub fn fmt_secs(s: f64) -> String {
    if s < 1.0 {
        format!("{:.1} ms", s * 1e3)
    } else if s < 120.0 {
        format!("{s:.2} s")
    } else if s < 7200.0 {
        format!("{:.1} min", s / 60.0)
    } else {
        format!("{:.2} h", s / 3600.0)
    }
}

/// Formats bytes compactly.
pub fn fmt_bytes(b: u64) -> String {
    const KB: f64 = 1e3;
    const MB: f64 = 1e6;
    const GB: f64 = 1e9;
    let b = b as f64;
    if b >= GB {
        format!("{:.1} GB", b / GB)
    } else if b >= MB {
        format!("{:.1} MB", b / MB)
    } else if b >= KB {
        format!("{:.1} KB", b / KB)
    } else {
        format!("{b:.0} B")
    }
}

/// Writes `content` under the results directory, creating it as needed;
/// returns the path.
pub fn write_result(dir: &Path, name: &str, content: &str) -> PathBuf {
    std::fs::create_dir_all(dir).expect("create results dir");
    let path = dir.join(name);
    std::fs::write(&path, content).expect("write result file");
    path
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "200".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[2].ends_with("1"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_rejects_bad_rows() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = Table::new(&["k", "v"]);
        t.row(vec!["a,b".into(), "plain".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\",plain"));
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_secs(0.0011), "1.1 ms");
        assert_eq!(fmt_secs(2.5), "2.50 s");
        assert_eq!(fmt_secs(600.0), "10.0 min");
        assert_eq!(fmt_secs(14400.0), "4.00 h");
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(38_100_000), "38.1 MB");
        assert_eq!(fmt_bytes(19_400_000_000), "19.4 GB");
    }

    #[test]
    fn write_result_creates_file() {
        let dir = std::env::temp_dir().join(format!("rocket-results-{}", std::process::id()));
        let p = write_result(&dir, "x.txt", "hello");
        assert_eq!(std::fs::read_to_string(&p).unwrap(), "hello");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
