//! Drivers reproducing every table and figure of the paper's evaluation
//! (§6). Each driver returns a human-readable report and writes CSV series
//! under the results directory.
//!
//! Every driver describes its runs as [`Scenario`]s and executes them
//! through the unified [`Backend`] API: the multi-node experiments run on
//! [`SimBackend`] (the discrete-event simulator parameterized with the
//! paper's Table 1 stage times); `table1` and part of `fig7` run the
//! *real* applications through [`ThreadedBackend`] on synthetic data.
//! Data-set sizes are divided by a per-experiment scale factor (cache
//! slots scale along, preserving the slots-to-items ratio that the reuse
//! factor R depends on).

use std::path::PathBuf;
use std::sync::Arc;

use rocket_apps::{profiles, WorkloadProfile};
use rocket_apps::{BioApp, BioConfig, BioDataset};
use rocket_apps::{ForensicsApp, ForensicsConfig, ForensicsDataset};
use rocket_apps::{MicroscopyApp, MicroscopyConfig, MicroscopyDataset};
use rocket_core::{
    Application, Backend, NodeSpec, Replications, RunReport, Scenario, ThreadedBackend,
    TransportKind,
};
use rocket_gpu::DeviceProfile;
use rocket_sim::{model, SimBackend};
use rocket_stats::{Distribution, Histogram, OnlineStats, Xoshiro256};
use rocket_trace::TaskKind;

use crate::util::{fmt_bytes, fmt_secs, write_result, Table};

/// One reproducible experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Experiment {
    /// Table 1: application characteristics.
    Table1,
    /// Fig 7: comparison-kernel run-time histograms.
    Fig7,
    /// Fig 8: per-thread busy time vs run time and T_min, one node.
    Fig8,
    /// Fig 9: efficiency and R vs cache size.
    Fig9,
    /// Fig 10: per-thread time for shrinking host caches (forensics).
    Fig10,
    /// Fig 11: distributed-cache hits per hop, h = 3, 16 nodes.
    Fig11,
    /// Fig 12: speedup / efficiency / R / I-O vs node count, cache on+off.
    Fig12,
    /// Fig 13: heterogeneous nodes, individual vs combined throughput.
    Fig13,
    /// Fig 14: per-GPU throughput over time (microscopy, heterogeneous).
    Fig14,
    /// Fig 15: large-scale run, 1–48 nodes × 2 GPUs.
    Fig15,
    /// Cartesius-scale 96-GPU distributed-cache sweep with replicated
    /// confidence intervals (beyond the paper's figures).
    Cartesius96,
    /// Threaded runtime over both cluster transports (in-process channels
    /// vs loopback TCP sockets): same results, measured wire traffic.
    Transports,
    /// §6.1 model sanity: closed form vs simulation at R = 1.
    Model,
}

/// All experiments with their CLI names.
pub const ALL_EXPERIMENTS: &[(&str, Experiment)] = &[
    ("table1", Experiment::Table1),
    ("fig7", Experiment::Fig7),
    ("fig8", Experiment::Fig8),
    ("fig9", Experiment::Fig9),
    ("fig10", Experiment::Fig10),
    ("fig11", Experiment::Fig11),
    ("fig12", Experiment::Fig12),
    ("fig13", Experiment::Fig13),
    ("fig14", Experiment::Fig14),
    ("fig15", Experiment::Fig15),
    ("cartesius96", Experiment::Cartesius96),
    ("transports", Experiment::Transports),
    ("model", Experiment::Model),
];

/// Options shared by all experiments.
#[derive(Debug, Clone)]
pub struct ExpOptions {
    /// Extra scale divisor on top of each experiment's default (1 = the
    /// defaults documented in EXPERIMENTS.md).
    pub extra_scale: u64,
    /// Output directory for reports and CSVs.
    pub out_dir: PathBuf,
    /// Seed for every randomized component.
    pub seed: u64,
    /// Append every run/replication report to this JSON-Lines file
    /// (`{"experiment":..,"report":..}` per line) — the raw material for
    /// cross-PR performance tracking. `None` disables persistence.
    pub json_out: Option<PathBuf>,
}

impl Default for ExpOptions {
    fn default() -> Self {
        Self {
            extra_scale: 1,
            out_dir: PathBuf::from("results"),
            seed: 0xC0FFEE,
            json_out: None,
        }
    }
}

/// Appends one report line to the JSON-Lines sink, when configured.
fn log_json(opts: &ExpOptions, experiment: &str, report_json: &str) {
    let Some(path) = &opts.json_out else {
        return;
    };
    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        let _ = std::fs::create_dir_all(parent);
    }
    let line = format!("{{\"experiment\":\"{experiment}\",\"report\":{report_json}}}\n");
    let written = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .and_then(|mut f| std::io::Write::write_all(&mut f, line.as_bytes()));
    if let Err(e) = written {
        eprintln!(
            "warning: could not persist report to {}: {e}",
            path.display()
        );
    }
}

/// Default data-set scale divisors (relative to the paper's full sizes)
/// chosen so each experiment runs in seconds-to-minutes on a laptop core.
fn default_scale(w: &WorkloadProfile) -> u64 {
    match w.name {
        "forensics" => 10,
        "bioinformatics" => 5,
        _ => 1,
    }
}

fn scaled(w: WorkloadProfile, opts: &ExpOptions) -> (WorkloadProfile, u64) {
    let scale = default_scale(&w) * opts.extra_scale.max(1);
    (w.scaled(scale), scale)
}

/// Device-cache slots a GPU with `mem_bytes` fits at the paper's scale,
/// mapped into the scaled data set (slot count shrinks with the same
/// factor, preserving the slots/items ratio).
fn slots_for(mem_bytes: f64, w: &WorkloadProfile, scale: u64) -> usize {
    ((mem_bytes / w.item_bytes as f64 / scale as f64) as usize).max(2)
}

/// The paper's single-node baseline: one TitanX Maxwell with ~11 GB of
/// usable device memory and a 40 GB host cache.
fn baseline_node(w: &WorkloadProfile, scale: u64) -> NodeSpec {
    NodeSpec {
        gpus: vec![DeviceProfile::titanx_maxwell()],
        device_slots: slots_for(11e9, w, scale),
        host_slots: slots_for(40e9, w, scale),
    }
}

/// A simulation scenario over explicit (possibly heterogeneous) nodes with
/// the experiment seed applied.
fn scenario_of(w: &WorkloadProfile, nodes: Vec<NodeSpec>, opts: &ExpOptions) -> Scenario {
    let mut b = Scenario::builder().workload(w.clone()).seed(opts.seed);
    for node in nodes {
        b = b.node(node);
    }
    b.build()
}

/// Runs one scenario on the simulator backend, persisting the report to
/// the JSON-Lines sink (when one is configured) under `experiment`.
fn sim_run(scenario: &Scenario, opts: &ExpOptions, experiment: &str) -> RunReport {
    let report = SimBackend::new().run(scenario).expect("simulation run");
    log_json(opts, experiment, &report.to_json());
    report
}

/// Runs one experiment, writes its artifacts, and returns the report text.
pub fn run_experiment(exp: Experiment, opts: &ExpOptions) -> String {
    let report = match exp {
        Experiment::Table1 => table1(opts),
        Experiment::Fig7 => fig7(opts),
        Experiment::Fig8 => fig8(opts),
        Experiment::Fig9 => fig9(opts),
        Experiment::Fig10 => fig10(opts),
        Experiment::Fig11 => fig11(opts),
        Experiment::Fig12 => fig12(opts),
        Experiment::Fig13 => fig13(opts),
        Experiment::Fig14 => fig14(opts),
        Experiment::Fig15 => fig15(opts),
        Experiment::Cartesius96 => cartesius96(opts),
        Experiment::Transports => transports(opts),
        Experiment::Model => model_check(opts),
    };
    let name = ALL_EXPERIMENTS
        .iter()
        .find(|&&(_, e)| e == exp)
        .map(|&(n, _)| n)
        .expect("registered experiment");
    write_result(&opts.out_dir, &format!("{name}.txt"), &report);
    report
}

// ---------------------------------------------------------------------------
// Table 1 — real applications through the threaded runtime
// ---------------------------------------------------------------------------

struct AppRun {
    name: &'static str,
    items: u64,
    raw_bytes: u64,
    item_bytes: u64,
    pairs: u64,
    parse: OnlineStats,
    preprocess: Option<OnlineStats>,
    compare: OnlineStats,
    r_factor: f64,
    failed: usize,
}

fn run_real_app<A: Application>(
    app: Arc<A>,
    store: Arc<dyn rocket_storage::ObjectStore>,
    devices: usize,
) -> AppRun
where
    A::Output: std::fmt::Debug,
{
    let raw_bytes = store.total_bytes();
    let n = app.item_count();
    let scenario = Scenario::builder()
        .items(n)
        .node(NodeSpec::uniform(
            devices,
            (n as usize / 2).max(4),
            n as usize,
        ))
        .job_limit(16)
        .cpu_threads(2)
        .tracing(true)
        .build();
    let item_bytes = app.item_bytes() as u64;
    let has_pre = app.has_preprocess();
    let report = ThreadedBackend::new(app, store)
        .run_app(&scenario)
        .expect("run");
    let timeline = report.timeline();
    let stat_of = |kind: TaskKind| {
        let mut s = OnlineStats::new();
        for span in timeline.spans().iter().filter(|sp| sp.kind == kind) {
            s.push(span.duration_ns() as f64 / 1e6); // ms
        }
        s
    };
    AppRun {
        name: "",
        items: n,
        raw_bytes,
        item_bytes,
        pairs: report.outputs.len() as u64,
        parse: stat_of(TaskKind::Parse),
        preprocess: has_pre.then(|| stat_of(TaskKind::Preprocess)),
        compare: stat_of(TaskKind::Compare),
        r_factor: report.r_factor(),
        failed: report.failed().len(),
    }
}

fn table1(opts: &ExpOptions) -> String {
    let f_cfg = ForensicsConfig {
        images: 24,
        cameras: 4,
        width: 64,
        height: 64,
        seed: opts.seed,
        ..Default::default()
    };
    let b_cfg = BioConfig {
        species: 16,
        clusters: 4,
        proteome_len: 3000,
        seed: opts.seed,
        ..Default::default()
    };
    let m_cfg = MicroscopyConfig {
        particles: 12,
        seed: opts.seed,
        ..Default::default()
    };

    let mut runs = Vec::new();
    {
        let ds = ForensicsDataset::generate(f_cfg.clone());
        let mut r = run_real_app(Arc::new(ForensicsApp::new(&f_cfg)), Arc::new(ds.store), 1);
        r.name = "forensics";
        runs.push(r);
    }
    {
        let ds = BioDataset::generate(b_cfg.clone());
        let mut r = run_real_app(Arc::new(BioApp::new(&b_cfg)), Arc::new(ds.store), 1);
        r.name = "bioinformatics";
        runs.push(r);
    }
    {
        let ds = MicroscopyDataset::generate(m_cfg.clone());
        let mut r = run_real_app(Arc::new(MicroscopyApp::new(&m_cfg)), Arc::new(ds.store), 1);
        r.name = "microscopy";
        runs.push(r);
    }

    let mut t = Table::new(&[
        "characteristic",
        "forensics",
        "bioinformatics",
        "microscopy",
    ]);
    let col = |f: &dyn Fn(&AppRun) -> String| -> Vec<String> { runs.iter().map(f).collect() };
    let mut push = |label: &str, f: &dyn Fn(&AppRun) -> String| {
        let vals = col(f);
        t.row(vec![
            label.to_string(),
            vals[0].clone(),
            vals[1].clone(),
            vals[2].clone(),
        ]);
    };
    push("no. of input files (n)", &|r| r.items.to_string());
    push("raw data on disk", &|r| fmt_bytes(r.raw_bytes));
    push("preprocessed in memory", &|r| {
        fmt_bytes(r.items * r.item_bytes)
    });
    push("no. of pairs", &|r| r.pairs.to_string());
    push("cache slot size", &|r| fmt_bytes(r.item_bytes));
    push("parse CPU (ms avg±std)", &|r| r.parse.avg_pm_std());
    push("preprocess GPU (ms)", &|r| {
        r.preprocess
            .as_ref()
            .map_or("N/A".into(), |s| s.avg_pm_std())
    });
    push("compare GPU (ms)", &|r| r.compare.avg_pm_std());
    push("R factor", &|r| format!("{:.2}", r.r_factor));
    push("failed pairs", &|r| r.failed.to_string());

    write_result(&opts.out_dir, "table1.csv", &t.to_csv());
    format!(
        "Table 1 — application characteristics (synthetic data, threaded runtime)\n\
         Paper sizes: n = 4980 / 2500 / 256; synthetic runs are scaled down\n\
         but exercise the full pipeline with real kernels.\n\n{}",
        t.render()
    )
}

// ---------------------------------------------------------------------------
// Fig 7 — comparison-time histograms
// ---------------------------------------------------------------------------

fn fig7(opts: &ExpOptions) -> String {
    let mut out = String::from(
        "Fig 7 — distribution of comparison-kernel run times\n\
         (profile-parameterized samples; paper Table 1 moments)\n\n",
    );
    let mut csv = String::from("app,bin_center_ms,count\n");
    for w in profiles::all() {
        let mut rng = Xoshiro256::seed_from(opts.seed ^ w.items);
        let mut stats = OnlineStats::new();
        let samples: Vec<f64> = (0..50_000)
            .map(|_| w.compare.sample(&mut rng) * 1e3)
            .collect();
        for &s in &samples {
            stats.push(s);
        }
        let hi = stats.max() * 1.02;
        let mut hist = Histogram::new(0.0, hi.max(1e-6), 40);
        for &s in &samples {
            hist.push(s);
        }
        out.push_str(&format!(
            "{:<16} mean {:>8.2} ms  std {:>8.2} ms  min {:>7.2}  max {:>8.2}\n  |{}|\n  0 ms {}{:.0} ms\n\n",
            w.name,
            stats.mean(),
            stats.std(),
            stats.min(),
            stats.max(),
            hist.ascii(1),
            " ".repeat(34),
            hi,
        ));
        for (center, count) in hist.centers() {
            csv.push_str(&format!("{},{:.4},{}\n", w.name, center, count));
        }
    }
    out.push_str(
        "Shape check: forensics is tightly peaked (regular); bioinformatics is\n\
         right-skewed; microscopy is heavy-tailed over ~0–2000 ms (irregular).\n",
    );
    write_result(&opts.out_dir, "fig7.csv", &csv);
    out
}

// ---------------------------------------------------------------------------
// Fig 8 / Fig 10 — per-thread busy time on one node
// ---------------------------------------------------------------------------

fn fig8(opts: &ExpOptions) -> String {
    let mut out =
        String::from("Fig 8 — processing time per thread class, one node (TitanX Maxwell)\n\n");
    let mut csv = String::from("app,class,busy_s,runtime_s,tmin_s\n");
    for w in profiles::all() {
        let (w, scale) = scaled(w, opts);
        let node = baseline_node(&w, scale);
        let sc = scenario_of(&w, vec![node], opts);
        let r = sim_run(&sc, opts, "fig8");
        let tmin = model::t_min(&w);
        let eff = model::system_efficiency(&w, &sc.all_gpus(), r.elapsed);
        out.push_str(&format!(
            "{} (scale 1/{scale}): runtime {} | T_min {} | efficiency {:.1}%\n",
            w.name,
            fmt_secs(r.elapsed),
            fmt_secs(tmin),
            eff * 100.0
        ));
        let mut t = Table::new(&["thread class", "busy", "fraction of runtime"]);
        for (label, busy) in r.busy.rows() {
            t.row(vec![
                label.to_string(),
                fmt_secs(busy),
                format!("{:.1}%", busy / r.elapsed * 100.0),
            ]);
            csv.push_str(&format!(
                "{},{},{:.4},{:.4},{:.4}\n",
                w.name, label, busy, r.elapsed, tmin
            ));
        }
        out.push_str(&t.render());
        out.push('\n');
    }
    out.push_str(
        "Shape check: GPU busy ≈ overall runtime for every app (asynchronous\n\
         processing hides CPU, transfer, and I/O time behind the GPU).\n",
    );
    write_result(&opts.out_dir, "fig8.csv", &csv);
    out
}

fn fig10(opts: &ExpOptions) -> String {
    let (w, scale) = scaled(profiles::forensics(), opts);
    let mut out =
        format!("Fig 10 — forensics per-thread time vs host cache size (scale 1/{scale})\n\n");
    let mut csv = String::from("host_cache_gb,class,busy_s,runtime_s\n");
    for gb in [20.0, 10.0, 5.0] {
        let node = NodeSpec {
            gpus: vec![DeviceProfile::titanx_maxwell()],
            device_slots: slots_for(11e9, &w, scale).min(slots_for(gb * 1e9, &w, scale)),
            host_slots: slots_for(gb * 1e9, &w, scale),
        };
        let sc = scenario_of(&w, vec![node], opts);
        let r = sim_run(&sc, opts, "fig10");
        out.push_str(&format!(
            "host cache {gb} GB: runtime {} | R = {:.1}\n",
            fmt_secs(r.elapsed),
            r.r_factor()
        ));
        let mut t = Table::new(&["thread class", "busy"]);
        for (label, busy) in r.busy.rows() {
            t.row(vec![label.to_string(), fmt_secs(busy)]);
            csv.push_str(&format!("{gb},{label},{busy:.4},{:.4}\n", r.elapsed));
        }
        out.push_str(&t.render());
        out.push('\n');
    }
    out.push_str("Shape check: every class's busy time grows as the cache shrinks\n(items are re-loaded more often).\n");
    write_result(&opts.out_dir, "fig10.csv", &csv);
    out
}

// ---------------------------------------------------------------------------
// Fig 9 — efficiency and R vs cache size
// ---------------------------------------------------------------------------

fn fig9(opts: &ExpOptions) -> String {
    let mut out = String::from(
        "Fig 9 — system efficiency and R vs total cache size, one node\n\
         (sizes are paper-equivalent GB; device limit 11 GB)\n\n",
    );
    let mut csv = String::from("app,cache_gb,device_slots,host_slots,efficiency,r_factor\n");
    let sizes_gb = [0.5, 1.0, 2.0, 4.0, 6.0, 8.0, 11.0, 15.0, 20.0, 28.0, 40.0];
    for w in profiles::all() {
        let (w, scale) = scaled(w, opts);
        let paper_slot = |gb: f64| slots_for(gb * 1e9, &w, scale);
        let mut t = Table::new(&["cache", "dev slots", "host slots", "efficiency", "R"]);
        for &gb in &sizes_gb {
            // Below the device limit: device-only cache of size S (host
            // disabled ≈ 2 slots). Above: device pinned at 11 GB, host = S.
            let (dev, host) = if gb <= 11.0 {
                (paper_slot(gb), 2)
            } else {
                (paper_slot(11.0), paper_slot(gb))
            };
            let node = NodeSpec {
                gpus: vec![DeviceProfile::titanx_maxwell()],
                device_slots: dev,
                host_slots: host,
            };
            let sc = scenario_of(&w, vec![node], opts);
            let r = sim_run(&sc, opts, "fig9");
            let eff = model::system_efficiency(&w, &sc.all_gpus(), r.elapsed);
            t.row(vec![
                format!("{gb} GB"),
                dev.to_string(),
                host.to_string(),
                format!("{:.1}%", eff * 100.0),
                format!("{:.1}", r.r_factor()),
            ]);
            csv.push_str(&format!(
                "{},{gb},{dev},{host},{:.4},{:.4}\n",
                w.name,
                eff,
                r.r_factor()
            ));
        }
        out.push_str(&format!("{} (scale 1/{scale}):\n{}\n", w.name, t.render()));
    }
    out.push_str(
        "Shape check: microscopy is flat (fits in any cache); the other two\n\
         degrade as the cache shrinks while R grows hyperbolically.\n",
    );
    write_result(&opts.out_dir, "fig9.csv", &csv);
    out
}

// ---------------------------------------------------------------------------
// Fig 11 — distributed-cache hops
// ---------------------------------------------------------------------------

fn fig11(opts: &ExpOptions) -> String {
    let mut out = String::from("Fig 11 — distributed-cache request outcomes (h = 3, 16 nodes)\n\n");
    let mut t = Table::new(&["app", "hit@1", "hit@2", "hit@3", "miss", "lookups"]);
    let mut csv = String::from("app,hop1,hop2,hop3,miss\n");
    for w in profiles::all() {
        let (w, scale) = scaled(w, opts);
        let nodes = vec![baseline_node(&w, scale); 16];
        let mut sc = scenario_of(&w, nodes, opts);
        sc.hops = 3;
        let r = sim_run(&sc, opts, "fig11");
        let lookups = r.directory.lookups().max(1);
        let pct = |x: u64| x as f64 / lookups as f64 * 100.0;
        let hop = |i: usize| r.directory.hits_at_hop.get(i).copied().unwrap_or(0);
        t.row(vec![
            w.name.to_string(),
            format!("{:.1}%", pct(hop(0))),
            format!("{:.1}%", pct(hop(1))),
            format!("{:.1}%", pct(hop(2))),
            format!("{:.1}%", pct(r.directory.misses)),
            lookups.to_string(),
        ]);
        csv.push_str(&format!(
            "{},{:.4},{:.4},{:.4},{:.4}\n",
            w.name,
            pct(hop(0)),
            pct(hop(1)),
            pct(hop(2)),
            pct(r.directory.misses)
        ));
    }
    out.push_str(&t.render());
    out.push_str(
        "\nShape check: the vast majority of requests either hit at the first\n\
         hop or miss; later hops contribute little (the paper's argument for\n\
         running with h = 1).\n",
    );
    write_result(&opts.out_dir, "fig11.csv", &csv);
    out
}

// ---------------------------------------------------------------------------
// Fig 12 — scalability 1..16 nodes, distributed cache on/off
// ---------------------------------------------------------------------------

fn fig12(opts: &ExpOptions) -> String {
    let mut out = String::from(
        "Fig 12 — speedup, efficiency, R, and I/O usage vs node count\n\
         (1 TitanX Maxwell per node; dist = level-3 distributed cache)\n\n",
    );
    let mut csv =
        String::from("app,dist_cache,nodes,runtime_s,speedup,efficiency,r_factor,io_mbps\n");
    let node_counts = [1usize, 2, 4, 8, 12, 16];
    for w in profiles::all() {
        let (w, scale) = scaled(w, opts);
        out.push_str(&format!("{} (scale 1/{scale}):\n", w.name));
        let mut t = Table::new(&[
            "nodes",
            "dist",
            "runtime",
            "speedup",
            "efficiency",
            "R",
            "IO MB/s",
        ]);
        for &dist in &[true, false] {
            let mut t1 = None;
            for &p in &node_counts {
                let nodes = vec![baseline_node(&w, scale); p];
                let mut sc = scenario_of(&w, nodes, opts);
                sc.distributed_cache = dist;
                let r = sim_run(&sc, opts, "fig12");
                let t1v = *t1.get_or_insert(r.elapsed);
                let speedup = t1v / r.elapsed;
                let eff = model::system_efficiency(&w, &sc.all_gpus(), r.elapsed);
                t.row(vec![
                    p.to_string(),
                    if dist { "on" } else { "off" }.to_string(),
                    fmt_secs(r.elapsed),
                    format!("{speedup:.2}x"),
                    format!("{:.1}%", eff * 100.0),
                    format!("{:.2}", r.r_factor()),
                    format!("{:.1}", r.avg_io_mbps()),
                ]);
                csv.push_str(&format!(
                    "{},{},{},{:.4},{:.4},{:.4},{:.4},{:.4}\n",
                    w.name,
                    dist,
                    p,
                    r.elapsed,
                    speedup,
                    eff,
                    r.r_factor(),
                    r.avg_io_mbps()
                ));
            }
        }
        out.push_str(&t.render());
        out.push('\n');
    }
    out.push_str(
        "Shape check: data-intensive apps (forensics, bioinformatics) scale\n\
         better with the distributed cache on — R falls with node count and\n\
         speedup can exceed the node count; with it off, R grows with node\n\
         count and I/O pressure rises sharply. Microscopy is insensitive.\n",
    );
    write_result(&opts.out_dir, "fig12.csv", &csv);
    out
}

// ---------------------------------------------------------------------------
// Fig 13 / Fig 14 — heterogeneous platform (§6.5)
// ---------------------------------------------------------------------------

/// The four heterogeneous nodes of §6.5.
fn heterogeneous_nodes(w: &WorkloadProfile, scale: u64) -> Vec<NodeSpec> {
    let mk = |gpus: Vec<DeviceProfile>| {
        let min_mem = gpus
            .iter()
            .map(|g| g.memory_bytes as f64 * 0.92)
            .fold(f64::INFINITY, f64::min);
        NodeSpec {
            device_slots: slots_for(min_mem, w, scale),
            host_slots: slots_for(40e9, w, scale),
            gpus,
        }
    };
    vec![
        mk(vec![DeviceProfile::k20m()]),
        mk(vec![
            DeviceProfile::gtx980(),
            DeviceProfile::titanx_pascal(),
        ]),
        mk(vec![DeviceProfile::rtx2080ti(), DeviceProfile::rtx2080ti()]),
        mk(vec![
            DeviceProfile::gtx_titan(),
            DeviceProfile::titanx_pascal(),
        ]),
    ]
}

fn fig13(opts: &ExpOptions) -> String {
    let mut out = String::from(
        "Fig 13 — heterogeneous nodes: individual vs combined throughput\n\
         node I: K20m | II: GTX980 + TitanX-Pascal | III: 2x RTX2080Ti |\n\
         node IV: GTX-Titan + TitanX-Pascal\n\n",
    );
    let mut csv = String::from("app,config,throughput_pairs_per_s\n");
    for w in profiles::all() {
        let (w, scale) = scaled(w, opts);
        let nodes = heterogeneous_nodes(&w, scale);
        let mut t = Table::new(&["config", "throughput (pairs/s)"]);
        let mut sum = 0.0;
        for (i, node) in nodes.iter().enumerate() {
            let sc = scenario_of(&w, vec![node.clone()], opts);
            let r = sim_run(&sc, opts, "fig13");
            sum += r.throughput();
            t.row(vec![
                format!("node {}", ["I", "II", "III", "IV"][i]),
                format!("{:.1}", r.throughput()),
            ]);
            csv.push_str(&format!(
                "{},node-{},{:.4}\n",
                w.name,
                i + 1,
                r.throughput()
            ));
        }
        let sc = scenario_of(&w, nodes, opts);
        let all = sim_run(&sc, opts, "fig13");
        t.row(vec!["sum of nodes".into(), format!("{sum:.1}")]);
        t.row(vec![
            "all (4 nodes)".into(),
            format!("{:.1}", all.throughput()),
        ]);
        csv.push_str(&format!("{},sum,{sum:.4}\n", w.name));
        csv.push_str(&format!("{},all,{:.4}\n", w.name, all.throughput()));
        out.push_str(&format!(
            "{} (scale 1/{scale}): combined = {:.0}% of sum\n{}\n",
            w.name,
            all.throughput() / sum * 100.0,
            t.render()
        ));
    }
    out.push_str(
        "Shape check: the combined run reaches (or exceeds, thanks to the\n\
         distributed cache) the sum of the individual nodes.\n",
    );
    write_result(&opts.out_dir, "fig13.csv", &csv);
    out
}

fn fig14(opts: &ExpOptions) -> String {
    let (w, scale) = scaled(profiles::microscopy(), opts);
    let nodes = heterogeneous_nodes(&w, scale);
    let gpu_names: Vec<String> = nodes
        .iter()
        .enumerate()
        .flat_map(|(n, nc)| {
            nc.gpus
                .iter()
                .map(move |g| format!("{} (node {})", g.name, ["I", "II", "III", "IV"][n]))
        })
        .collect();
    let mut sc = scenario_of(&w, nodes, opts);
    sc.record_completions = true;
    let r = sim_run(&sc, opts, "fig14");
    let series = r.completions.as_ref().expect("completions recorded");
    let end_ns = (r.elapsed * 1e9) as u64;
    let window = 60_000_000_000u64; // 1-minute rolling average, like the paper
    let step = window / 2;
    let mut csv = String::from("gpu,t_s,pairs_per_s\n");
    let mut t = Table::new(&["GPU", "avg pairs/s", "total pairs"]);
    for (gid, name) in gpu_names.iter().enumerate() {
        for (ts, rate) in series.rolling(gid as u32, window, step, end_ns) {
            csv.push_str(&format!("{name},{ts:.1},{rate:.4}\n"));
        }
        t.row(vec![
            name.clone(),
            format!("{:.2}", series.average(gid as u32, end_ns)),
            series.total(gid as u32).to_string(),
        ]);
    }
    write_result(&opts.out_dir, "fig14.csv", &csv);
    format!(
        "Fig 14 — per-GPU throughput, microscopy on 7 heterogeneous GPUs\n\
         (scale 1/{scale}; rolling 1-minute average in fig14.csv)\n\n{}\n\
         Shape check: all GPUs stay busy until the end (balanced finish) and\n\
         faster GPUs sustain proportionally higher rates.\n",
        t.render()
    )
}

// ---------------------------------------------------------------------------
// Fig 15 — large-scale (Cartesius) run
// ---------------------------------------------------------------------------

fn fig15(opts: &ExpOptions) -> String {
    let scale = 10 * opts.extra_scale.max(1);
    let w = profiles::bioinformatics_large().scaled(scale);
    let mut out = format!(
        "Fig 15 — large-scale bioinformatics (all 6818 proteomes, scale 1/{scale})\n\
         Cartesius nodes: 2x Tesla K40m, 80 GB host cache\n\n",
    );
    let mut csv = String::from("nodes,gpus,runtime_s,speedup,r_factor,efficiency\n");
    let mut t = Table::new(&["nodes", "GPUs", "runtime", "speedup", "R", "efficiency"]);
    let node = |w: &WorkloadProfile| NodeSpec {
        gpus: vec![DeviceProfile::k40m(), DeviceProfile::k40m()],
        device_slots: slots_for(11e9, w, scale),
        host_slots: slots_for(80e9, w, scale),
    };
    let mut t1 = None;
    for &p in &[1usize, 8, 16, 24, 32, 40, 48] {
        let sc = scenario_of(&w, vec![node(&w); p], opts);
        let r = sim_run(&sc, opts, "fig15");
        let t1v = *t1.get_or_insert(r.elapsed);
        let speedup = t1v / r.elapsed;
        let eff = model::system_efficiency(&w, &sc.all_gpus(), r.elapsed);
        t.row(vec![
            p.to_string(),
            (2 * p).to_string(),
            fmt_secs(r.elapsed),
            format!("{speedup:.1}x"),
            format!("{:.1}", r.r_factor()),
            format!("{:.1}%", eff * 100.0),
        ]);
        csv.push_str(&format!(
            "{p},{},{:.4},{speedup:.4},{:.4},{eff:.4}\n",
            2 * p,
            r.elapsed,
            r.r_factor()
        ));
    }
    out.push_str(&t.render());
    out.push_str(
        "\nShape check: R falls steeply with node count (paper: 31.9 → 2.7\n\
         going 1 → 48 nodes) and speedup stays super-linear throughout.\n",
    );
    write_result(&opts.out_dir, "fig15.csv", &csv);
    out
}

// ---------------------------------------------------------------------------
// Cartesius 96-GPU sweep (beyond the paper's figures)
// ---------------------------------------------------------------------------

/// Distributed-cache sweep up to the full Cartesius allocation (48 nodes ×
/// 2 Tesla K40m = 96 GPUs) on the large bioinformatics workload, plus a
/// replicated confidence-interval run at the 96-GPU point: 8 independent
/// seeds in parallel on the thread pool, reported as mean ± 95% CI.
fn cartesius96(opts: &ExpOptions) -> String {
    let scale = 10 * opts.extra_scale.max(1);
    let w = profiles::bioinformatics_large().scaled(scale);
    let node = NodeSpec {
        gpus: vec![DeviceProfile::k40m(), DeviceProfile::k40m()],
        device_slots: slots_for(11e9, &w, scale),
        host_slots: slots_for(80e9, &w, scale),
    };
    let mut out = format!(
        "Cartesius 96-GPU sweep — bioinformatics-large (scale 1/{scale}),\n\
         2x Tesla K40m per node, distributed cache on vs off, calendar-queue\n\
         scheduler at the largest sizes\n\n",
    );
    let mut csv = String::from("dist_cache,nodes,gpus,runtime_s,r_factor,throughput,io_mbps\n");
    let mut t = Table::new(&[
        "nodes", "GPUs", "dist", "runtime", "R", "pairs/s", "IO MB/s",
    ]);
    for &dist in &[true, false] {
        for &p in &[12usize, 24, 48] {
            let mut sc = scenario_of(&w, vec![node.clone(); p], opts);
            sc.distributed_cache = dist;
            // The calendar queue is built for exactly this population size;
            // results are identical to the slab heap (tested), so the sweep
            // doubles as a large-scale exercise of that scheduler.
            sc.calendar_queue = p >= 48;
            let r = sim_run(&sc, opts, "cartesius96");
            t.row(vec![
                p.to_string(),
                (2 * p).to_string(),
                if dist { "on" } else { "off" }.to_string(),
                fmt_secs(r.elapsed),
                format!("{:.2}", r.r_factor()),
                format!("{:.1}", r.throughput()),
                format!("{:.1}", r.avg_io_mbps()),
            ]);
            csv.push_str(&format!(
                "{dist},{p},{},{:.4},{:.4},{:.4},{:.4}\n",
                2 * p,
                r.elapsed,
                r.r_factor(),
                r.throughput(),
                r.avg_io_mbps()
            ));
        }
    }
    out.push_str(&t.render());

    // Replicated 96-GPU point: stage times are stochastic, so report the
    // headline metrics with confidence intervals over 8 seeds.
    let sc = scenario_of(&w, vec![node; 48], opts);
    let reps = Replications::new(opts.seed, 8)
        .run(&SimBackend::new(), &sc)
        .expect("replicated runs");
    log_json(opts, "cartesius96", &reps.to_json());
    out.push_str(&format!(
        "\n96-GPU point, {}:\n  runtime    {} s\n  R          {}\n  throughput {} pairs/s\n",
        reps.summary().split('|').next().unwrap_or("").trim(),
        reps.elapsed.avg_pm_ci95(),
        reps.r_factor.avg_pm_ci95(),
        reps.throughput.avg_pm_ci95(),
    ));

    // The same point under adaptive replication: keep adding batches of
    // seeds until the runtime CI half-width is within 10% of the mean
    // (capped at 16 runs) — usually fewer runs than the fixed-count
    // schedule needs for the same confidence.
    let adaptive = Replications::until_ci(opts.seed, 0.10, 16)
        .run(&SimBackend::new(), &sc)
        .expect("adaptive runs");
    log_json(opts, "cartesius96", &adaptive.to_json());
    out.push_str(&format!(
        "  adaptive   stopped after {} replications (target: CI ≤ 10% of mean): runtime {} s\n",
        adaptive.replications(),
        adaptive.elapsed.avg_pm_ci95(),
    ));
    let mut rep_csv = String::from("seed,runtime_s,r_factor,throughput\n");
    for (seed, run) in reps.seeds.iter().zip(&reps.runs) {
        rep_csv.push_str(&format!(
            "{seed},{:.4},{:.4},{:.4}\n",
            run.elapsed,
            run.r_factor(),
            run.throughput()
        ));
    }
    out.push_str(
        "\nShape check: with the distributed cache on, the 96-GPU run keeps\n\
         R low and I/O flat; off, R and I/O grow with node count. CI widths\n\
         are small relative to the means (the workload is stochastic but\n\
         well-averaged).\n",
    );
    write_result(&opts.out_dir, "cartesius96.csv", &csv);
    write_result(&opts.out_dir, "cartesius96_replications.csv", &rep_csv);
    out
}

// ---------------------------------------------------------------------------
// Transports — threaded runtime over channels vs sockets
// ---------------------------------------------------------------------------

/// Runs a real application on a 4-node threaded cluster twice — once over
/// in-process channels, once over loopback TCP — and compares results and
/// wire traffic. The pair accounting must match exactly (the work
/// assignment is statically partitioned, so it is deterministic); the
/// socket run additionally reports genuine payload bytes on the wire.
fn transports(opts: &ExpOptions) -> String {
    let cfg = ForensicsConfig {
        images: 24,
        cameras: 4,
        width: 32,
        height: 32,
        seed: opts.seed,
        ..Default::default()
    };
    let ds = ForensicsDataset::generate(cfg.clone());
    let app = Arc::new(ForensicsApp::new(&cfg));
    let items = app.item_count();
    let backend = ThreadedBackend::new(app, Arc::new(ds.store));

    let mut out = String::from(
        "Cluster transports — forensics on 4 threaded nodes, in-process\n\
         channels vs loopback TCP sockets (static partition, distributed\n\
         cache on)\n\n",
    );
    let mut csv =
        String::from("transport,backend,pairs,failed,r_factor,net_msgs,net_bytes,runtime_s\n");
    let mut t = Table::new(&[
        "transport",
        "backend",
        "pairs",
        "R",
        "net msgs",
        "net bytes",
        "runtime",
    ]);
    let mut pair_splits = Vec::new();
    for kind in [TransportKind::Local, TransportKind::Socket] {
        let scenario = Scenario::builder()
            .items(items)
            .nodes(4, NodeSpec::uniform(1, 8, items as usize))
            .job_limit(8)
            .cpu_threads(2)
            .leaf_pairs(8)
            .static_partition(true)
            .transport(kind)
            .seed(opts.seed)
            .build();
        let rep = backend.run_app(&scenario).expect("threaded run");
        let comm = rep.comm_totals();
        let r = rep.unified(&scenario);
        log_json(opts, "transports", &r.to_json());
        t.row(vec![
            kind.label().to_string(),
            r.backend.to_string(),
            r.pairs.to_string(),
            format!("{:.2}", r.r_factor()),
            comm.msgs_sent.to_string(),
            fmt_bytes(comm.bytes_sent),
            fmt_secs(r.elapsed),
        ]);
        csv.push_str(&format!(
            "{},{},{},{},{:.4},{},{},{:.4}\n",
            kind.label(),
            r.backend,
            r.pairs,
            r.failed_pairs,
            r.r_factor(),
            comm.msgs_sent,
            comm.bytes_sent,
            r.elapsed,
        ));
        pair_splits.push((r.pairs, r.failed_pairs, r.pairs_per_node.clone()));
    }
    out.push_str(&t.render());
    assert_eq!(
        pair_splits[0], pair_splits[1],
        "transports disagree on pair accounting"
    );
    out.push_str(
        "\nShape check: both transports complete every pair with the same\n\
         per-node split; the socket run moves the directory/fetch protocol\n\
         over real TCP (non-zero wire bytes) and is somewhat slower — the\n\
         transport is the only difference between the two rows.\n",
    );
    write_result(&opts.out_dir, "transports.csv", &csv);
    out
}

// ---------------------------------------------------------------------------
// Model sanity
// ---------------------------------------------------------------------------

fn model_check(opts: &ExpOptions) -> String {
    let mut out = String::from("§6.1 performance model vs simulation (R = 1 configurations)\n\n");
    let mut t = Table::new(&["app", "T_min (model)", "runtime (sim)", "ratio"]);
    let mut csv = String::from("app,tmin_s,sim_s,ratio\n");
    for w in profiles::all() {
        let (w, _) = scaled(w, opts);
        // Caches big enough for the whole (scaled) data set → R = 1.
        let node = NodeSpec::uniform(1, w.items as usize, w.items as usize);
        let sc = scenario_of(&w, vec![node], opts);
        let r = sim_run(&sc, opts, "model");
        assert!(
            (r.r_factor() - 1.0).abs() < 1e-9,
            "{}: R = {}",
            w.name,
            r.r_factor()
        );
        let tmin = model::t_min(&w);
        let ratio = r.elapsed / tmin;
        t.row(vec![
            w.name.to_string(),
            fmt_secs(tmin),
            fmt_secs(r.elapsed),
            format!("{ratio:.3}"),
        ]);
        csv.push_str(&format!(
            "{},{tmin:.4},{:.4},{ratio:.4}\n",
            w.name, r.elapsed
        ));
    }
    out.push_str(&t.render());
    out.push_str(
        "\nShape check: with perfect reuse the simulated runtime sits within a\n\
         few percent of the modelled lower bound (perfect overlap).\n",
    );
    write_result(&opts.out_dir, "model.csv", &csv);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_opts() -> ExpOptions {
        ExpOptions {
            extra_scale: 20, // shrink everything hard: tests must be quick
            out_dir: std::env::temp_dir().join(format!("rocket-exp-{}", std::process::id())),
            seed: 7,
            json_out: None,
        }
    }

    #[test]
    fn model_check_runs_and_validates() {
        let report = model_check(&tiny_opts());
        assert!(report.contains("T_min"));
        assert!(report.contains("forensics"));
    }

    #[test]
    fn fig7_reports_all_apps() {
        let report = fig7(&tiny_opts());
        for name in ["forensics", "bioinformatics", "microscopy"] {
            assert!(report.contains(name), "missing {name}");
        }
    }

    #[test]
    fn fig11_percentages_sum_to_one() {
        let opts = tiny_opts();
        let report = fig11(&opts);
        assert!(report.contains("hit@1"));
        let csv = std::fs::read_to_string(opts.out_dir.join("fig11.csv")).unwrap();
        for line in csv.lines().skip(1) {
            let parts: Vec<f64> = line
                .split(',')
                .skip(1)
                .map(|v| v.parse().unwrap())
                .collect();
            let total: f64 = parts.iter().sum();
            assert!((total - 100.0).abs() < 1.0, "outcomes sum to {total}");
        }
    }

    #[test]
    fn experiment_registry_is_complete() {
        assert_eq!(ALL_EXPERIMENTS.len(), 13);
        let names: Vec<&str> = ALL_EXPERIMENTS.iter().map(|&(n, _)| n).collect();
        assert!(names.contains(&"table1"));
        assert!(names.contains(&"fig15"));
        assert!(names.contains(&"cartesius96"));
        assert!(names.contains(&"transports"));
    }

    #[test]
    fn transports_agree_and_sockets_carry_bytes() {
        let opts = ExpOptions {
            json_out: Some(
                std::env::temp_dir()
                    .join(format!("rocket-transports-{}.jsonl", std::process::id())),
            ),
            ..tiny_opts()
        };
        let report = transports(&opts);
        assert!(report.contains("threaded+socket"), "{report}");
        let csv = std::fs::read_to_string(opts.out_dir.join("transports.csv")).unwrap();
        let rows: Vec<&str> = csv.lines().skip(1).collect();
        assert_eq!(rows.len(), 2);
        let field = |row: &str, i: usize| row.split(',').nth(i).unwrap().to_string();
        // Identical pair counts, zero failures on both transports.
        assert_eq!(field(rows[0], 2), field(rows[1], 2));
        assert_eq!(field(rows[0], 3), "0");
        assert_eq!(field(rows[1], 3), "0");
        // The socket row carries real traffic; both rows logged JSON.
        let socket_bytes: u64 = field(rows[1], 6).parse().unwrap();
        assert!(socket_bytes > 0);
        let json = std::fs::read_to_string(opts.json_out.as_ref().unwrap()).unwrap();
        let _ = std::fs::remove_file(opts.json_out.as_ref().unwrap());
        assert_eq!(json.lines().count(), 2);
        assert!(json
            .lines()
            .all(|l| l.contains("\"experiment\":\"transports\"")));
        assert!(json.contains("\"backend\":\"threaded+socket\""));
    }

    #[test]
    fn cartesius96_runs_at_tiny_scale() {
        // extra_scale 20 shrinks the workload to 34 items; the sweep and
        // its 8-seed replication must still complete and report CIs.
        let opts = ExpOptions {
            extra_scale: 20,
            ..tiny_opts()
        };
        let report = cartesius96(&opts);
        assert!(report.contains("96"), "missing gpu column: {report}");
        assert!(report.contains('±'), "missing CI: {report}");
        assert!(
            report.contains("adaptive"),
            "missing adaptive run: {report}"
        );
        let csv =
            std::fs::read_to_string(opts.out_dir.join("cartesius96_replications.csv")).unwrap();
        assert_eq!(csv.lines().count(), 9, "8 replications + header");
    }
}
