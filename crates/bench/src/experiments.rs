//! Drivers reproducing every table and figure of the paper's evaluation
//! (§6), expressed as first-class parameter sweeps.
//!
//! Every driver describes its runs as a [`Sweep`] — a base [`Scenario`]
//! plus named axes — and executes the grid through a [`Study`] on the
//! unified [`Backend`] API: the multi-node experiments run on
//! [`SimBackend`] (the discrete-event simulator parameterized with the
//! paper's Table 1 stage times); `table1` and `transports` run the *real*
//! applications through [`ThreadedBackend`] on synthetic data. Each
//! driver returns the structured [`StudyReport`] (one record per grid
//! cell, tagged with its axis coordinates); the figure-specific narrative
//! and CSV series ride along as report notes and files under the results
//! directory. Formatting and persistence of the study itself (text
//! rendering, JSON-Lines, CSV) belong to the caller — see the `repro`
//! binary.
//!
//! Data-set sizes are divided by a per-experiment scale factor (cache
//! slots scale along, preserving the slots-to-items ratio that the reuse
//! factor R depends on); [`ExpOptions::extra_scale`] divides further and
//! applies to **every** experiment, including the threaded-runtime ones
//! (synthetic data-set sizes shrink by the same factor, floored so every
//! experiment stays meaningful).

use std::path::PathBuf;
use std::sync::{Arc, Mutex};

use rocket_apps::{profiles, WorkloadProfile};
use rocket_apps::{BioApp, BioConfig, BioDataset};
use rocket_apps::{ForensicsApp, ForensicsConfig, ForensicsDataset};
use rocket_apps::{MicroscopyApp, MicroscopyConfig, MicroscopyDataset};
use rocket_core::{
    Application, Axis, AxisValue, Backend, NodeSpec, ReplicationPolicy, RocketError, RunReport,
    Scenario, Study, StudyReport, Sweep, ThreadedBackend, TransportKind,
};
use rocket_gpu::DeviceProfile;
use rocket_sim::{model, SimBackend};
use rocket_stats::{Distribution, Histogram, OnlineStats, Xoshiro256};
use rocket_trace::TaskKind;

use crate::anchors;
use crate::util::{fmt_bytes, fmt_secs, write_result, Table};
use rocket_core::clock::stopwatch;

/// One reproducible experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Experiment {
    /// Table 1: application characteristics.
    Table1,
    /// Fig 7: comparison-kernel run-time histograms.
    Fig7,
    /// Fig 8: per-thread busy time vs run time and T_min, one node.
    Fig8,
    /// Fig 9: efficiency and R vs cache size.
    Fig9,
    /// Fig 10: per-thread time for shrinking host caches (forensics).
    Fig10,
    /// Fig 11: distributed-cache hits per hop, h = 3, 16 nodes.
    Fig11,
    /// Fig 12: speedup / efficiency / R / I-O vs node count, cache on+off.
    Fig12,
    /// Fig 13: heterogeneous nodes, individual vs combined throughput.
    Fig13,
    /// Fig 14: per-GPU throughput over time (microscopy, heterogeneous).
    Fig14,
    /// Fig 15: large-scale run, 1–48 nodes × 2 GPUs.
    Fig15,
    /// Cartesius-scale 96-GPU distributed-cache sweep with replicated
    /// confidence intervals (beyond the paper's figures).
    Cartesius96,
    /// Threaded runtime over both cluster transports (in-process channels
    /// vs loopback TCP sockets): same results, measured wire traffic.
    Transports,
    /// §6.1 model sanity: closed form vs simulation at R = 1.
    Model,
    /// Sharded-DES scaling on the 1024-node bench anchor: wall-clock vs
    /// shard count, identical virtual-time results (beyond the paper).
    Scale1k,
}

impl Experiment {
    /// One-line description (what `repro --list` prints).
    pub fn description(self) -> &'static str {
        match self {
            Experiment::Table1 => {
                "Table 1: application characteristics (real apps, threaded runtime)"
            }
            Experiment::Fig7 => "Fig 7: comparison-kernel run-time histograms per application",
            Experiment::Fig8 => "Fig 8: per-thread busy time vs run time and T_min, one node",
            Experiment::Fig9 => "Fig 9: system efficiency and R vs cache size, one node",
            Experiment::Fig10 => "Fig 10: per-thread time for shrinking host caches (forensics)",
            Experiment::Fig11 => "Fig 11: distributed-cache hits per hop (h = 3, 16 nodes)",
            Experiment::Fig12 => "Fig 12: speedup/efficiency/R/IO vs node count, cache on+off",
            Experiment::Fig13 => "Fig 13: heterogeneous nodes, individual vs combined throughput",
            Experiment::Fig14 => "Fig 14: per-GPU throughput over time (microscopy, 7 GPUs)",
            Experiment::Fig15 => "Fig 15: large-scale run, 1-48 nodes x 2 GPUs (Cartesius)",
            Experiment::Cartesius96 => {
                "Cartesius 96-GPU sweep with fixed + adaptive replication CIs"
            }
            Experiment::Transports => {
                "threaded runtime over channels vs sockets: same results, wire traffic"
            }
            Experiment::Model => "S6.1 model sanity: closed form vs simulation at R = 1",
            Experiment::Scale1k => "sharded DES on the 1024-node anchor: wall-clock vs shard count",
        }
    }
}

/// All experiments with their CLI names.
pub const ALL_EXPERIMENTS: &[(&str, Experiment)] = &[
    ("table1", Experiment::Table1),
    ("fig7", Experiment::Fig7),
    ("fig8", Experiment::Fig8),
    ("fig9", Experiment::Fig9),
    ("fig10", Experiment::Fig10),
    ("fig11", Experiment::Fig11),
    ("fig12", Experiment::Fig12),
    ("fig13", Experiment::Fig13),
    ("fig14", Experiment::Fig14),
    ("fig15", Experiment::Fig15),
    ("cartesius96", Experiment::Cartesius96),
    ("transports", Experiment::Transports),
    ("model", Experiment::Model),
    ("scale1k", Experiment::Scale1k),
];

/// Options shared by all experiments.
#[derive(Debug, Clone)]
pub struct ExpOptions {
    /// Extra scale divisor on top of each experiment's default (1 = the
    /// documented defaults). Applies to every experiment: simulated
    /// workloads shrink via [`WorkloadProfile::scaled`], synthetic
    /// data-set sizes of the threaded experiments divide by the same
    /// factor (floored to stay runnable), and fig7's sample count scales
    /// down too.
    pub extra_scale: u64,
    /// Output directory for figure-specific CSV series and artifacts.
    pub out_dir: PathBuf,
    /// Seed for every randomized component.
    pub seed: u64,
    /// When set, every study records per-cell perf logs into this
    /// directory (see [`Study::perf_log_dir`]) and the report carries
    /// per-cell rollups. `None` (the default) leaves instrumentation
    /// disabled — the zero-cost path.
    pub perf_log: Option<PathBuf>,
}

impl Default for ExpOptions {
    fn default() -> Self {
        Self {
            extra_scale: 1,
            out_dir: PathBuf::from("results"),
            seed: 0xC0FFEE,
            perf_log: None,
        }
    }
}

/// A [`Study`] named `name` with the shared experiment options applied:
/// the perf-log directory when `--perf-log` is set, nothing otherwise.
/// Experiments that build several studies pass distinct names so their
/// perf-log files never collide in the shared directory.
fn study(name: impl Into<String>, opts: &ExpOptions) -> Study {
    let mut s = Study::new(name);
    if let Some(dir) = &opts.perf_log {
        s = s.perf_log_dir(dir);
    }
    s
}

/// Default data-set scale divisors (relative to the paper's full sizes)
/// chosen so each experiment runs in seconds-to-minutes on a laptop core.
fn default_scale(w: &WorkloadProfile) -> u64 {
    match w.name {
        "forensics" => 10,
        "bioinformatics" => 5,
        _ => 1,
    }
}

/// The effective scale divisor for a workload: its per-app default times
/// the extra CLI factor. Keyed on the profile *name* only — the one field
/// [`WorkloadProfile::scaled`] is guaranteed to preserve — so drivers may
/// re-derive the scale from a cell's already-scaled workload (axis
/// closures do exactly that). Keep `default_scale` name-keyed.
fn scale_of(w: &WorkloadProfile, extra: u64) -> u64 {
    default_scale(w) * extra.max(1)
}

fn scaled(w: WorkloadProfile, opts: &ExpOptions) -> (WorkloadProfile, u64) {
    let scale = scale_of(&w, opts.extra_scale);
    (w.scaled(scale), scale)
}

/// Device-cache slots a GPU with `mem_bytes` fits at the paper's scale,
/// mapped into the scaled data set (slot count shrinks with the same
/// factor, preserving the slots/items ratio).
fn slots_for(mem_bytes: f64, w: &WorkloadProfile, scale: u64) -> usize {
    ((mem_bytes / w.item_bytes as f64 / scale as f64) as usize).max(2)
}

/// The paper's single-node baseline: one TitanX Maxwell with ~11 GB of
/// usable device memory and a 40 GB host cache.
fn baseline_node(w: &WorkloadProfile, scale: u64) -> NodeSpec {
    NodeSpec {
        gpus: vec![DeviceProfile::titanx_maxwell()],
        device_slots: slots_for(11e9, w, scale),
        host_slots: slots_for(40e9, w, scale),
    }
}

/// A simulation scenario over explicit (possibly heterogeneous) nodes with
/// the experiment seed applied.
fn scenario_of(w: &WorkloadProfile, nodes: Vec<NodeSpec>, opts: &ExpOptions) -> Scenario {
    let mut b = Scenario::builder().workload(w.clone()).seed(opts.seed);
    for node in nodes {
        b = b.node(node);
    }
    b.build()
}

/// Base scenario for app-axis simulator sweeps: the first profile on its
/// baseline node (every `app` axis point replaces workload + topology).
fn sim_base(opts: &ExpOptions) -> Scenario {
    let (w, scale) = scaled(profiles::forensics(), opts);
    scenario_of(&w, vec![baseline_node(&w, scale)], opts)
}

/// The `app` axis all per-application simulator sweeps share: each point
/// installs one paper workload (scaled) and its single baseline node.
/// Later axes (node counts, cache sizes, …) mutate from there.
fn app_axis(opts: &ExpOptions) -> Axis {
    let points: Vec<_> = profiles::all()
        .into_iter()
        .map(|w| {
            let (w, scale) = scaled(w, opts);
            let node = baseline_node(&w, scale);
            (w.name, w, node)
        })
        .collect();
    Axis::points(
        "app",
        points.into_iter().map(|(name, w, node)| {
            (AxisValue::from(name), move |s: &mut Scenario| {
                s.workload = w.clone();
                s.nodes = vec![node.clone()];
            })
        }),
    )
}

/// Runs one experiment and returns its structured study report (one
/// record per grid cell). Figure CSV series land under
/// [`ExpOptions::out_dir`]; text rendering and study persistence belong
/// to the caller ([`StudyReport::render`] / [`StudyReport::json_lines`] /
/// [`StudyReport::to_csv`]).
pub fn run_experiment(exp: Experiment, opts: &ExpOptions) -> StudyReport {
    match exp {
        Experiment::Table1 => table1(opts),
        Experiment::Fig7 => fig7(opts),
        Experiment::Fig8 => fig8(opts),
        Experiment::Fig9 => fig9(opts),
        Experiment::Fig10 => fig10(opts),
        Experiment::Fig11 => fig11(opts),
        Experiment::Fig12 => fig12(opts),
        Experiment::Fig13 => fig13(opts),
        Experiment::Fig14 => fig14(opts),
        Experiment::Fig15 => fig15(opts),
        Experiment::Cartesius96 => cartesius96(opts),
        Experiment::Transports => transports(opts),
        Experiment::Model => model_check(opts),
        Experiment::Scale1k => scale1k(opts),
    }
}

// ---------------------------------------------------------------------------
// Table 1 — real applications through the threaded runtime
// ---------------------------------------------------------------------------

/// Per-application facts Table 1 reports beyond the unified run report
/// (per-stage span statistics need the typed [`rocket_core::AppReport`]).
struct AppRun {
    name: &'static str,
    items: u64,
    raw_bytes: u64,
    item_bytes: u64,
    pairs: u64,
    parse: OnlineStats,
    preprocess: Option<OnlineStats>,
    compare: OnlineStats,
    r_factor: f64,
    failed: usize,
}

/// One backend over all three real applications, dispatching on the
/// scenario's workload name — what lets Table 1 run as a single study
/// with an `app` axis even though each application is a different
/// [`ThreadedBackend`] type. Each run stashes the figure-specific
/// [`AppRun`] facts (from the typed report's trace) for the driver.
struct Table1Backend {
    forensics: ThreadedBackend<ForensicsApp>,
    bio: ThreadedBackend<BioApp>,
    micro: ThreadedBackend<MicroscopyApp>,
    runs: Mutex<Vec<AppRun>>,
}

impl Table1Backend {
    fn run_one<A: Application>(
        &self,
        backend: &ThreadedBackend<A>,
        scenario: &Scenario,
    ) -> Result<RunReport, RocketError>
    where
        A::Output: std::fmt::Debug,
    {
        let app_report = backend.run_app(scenario)?;
        let timeline = app_report.timeline();
        let stat_of = |kind: TaskKind| {
            let mut s = OnlineStats::new();
            for span in timeline.spans().iter().filter(|sp| sp.kind == kind) {
                s.push(span.duration_ns() as f64 / 1e6); // ms
            }
            s
        };
        let app = backend.app();
        self.runs.lock().expect("table1 stash").push(AppRun {
            name: scenario.workload.name,
            items: app.item_count(),
            raw_bytes: backend.store().total_bytes(),
            item_bytes: app.item_bytes() as u64,
            pairs: app_report.outputs.len() as u64,
            parse: stat_of(TaskKind::Parse),
            preprocess: app.has_preprocess().then(|| stat_of(TaskKind::Preprocess)),
            compare: stat_of(TaskKind::Compare),
            r_factor: app_report.r_factor(),
            failed: app_report.failed().len(),
        });
        Ok(app_report.unified(scenario))
    }
}

impl Backend for Table1Backend {
    fn name(&self) -> &'static str {
        "threaded"
    }

    fn run(&self, scenario: &Scenario) -> Result<RunReport, RocketError> {
        match scenario.workload.name {
            "forensics" => self.run_one(&self.forensics, scenario),
            "bioinformatics" => self.run_one(&self.bio, scenario),
            "microscopy" => self.run_one(&self.micro, scenario),
            other => Err(RocketError::Config(format!(
                "no application registered for workload `{other}`"
            ))),
        }
    }
}

fn table1(opts: &ExpOptions) -> StudyReport {
    let extra = opts.extra_scale.max(1);
    let f_cfg = ForensicsConfig {
        images: (24 / extra).max(8),
        cameras: 4,
        width: 64,
        height: 64,
        seed: opts.seed,
        ..Default::default()
    };
    let b_cfg = BioConfig {
        species: (16 / extra).max(8),
        clusters: 4,
        proteome_len: 3000,
        seed: opts.seed,
        ..Default::default()
    };
    let m_cfg = MicroscopyConfig {
        particles: (12 / extra).max(6),
        seed: opts.seed,
        ..Default::default()
    };

    let f_ds = ForensicsDataset::generate(f_cfg.clone());
    let b_ds = BioDataset::generate(b_cfg.clone());
    let m_ds = MicroscopyDataset::generate(m_cfg.clone());
    let backend = Table1Backend {
        forensics: ThreadedBackend::new(Arc::new(ForensicsApp::new(&f_cfg)), Arc::new(f_ds.store)),
        bio: ThreadedBackend::new(Arc::new(BioApp::new(&b_cfg)), Arc::new(b_ds.store)),
        micro: ThreadedBackend::new(Arc::new(MicroscopyApp::new(&m_cfg)), Arc::new(m_ds.store)),
        runs: Mutex::new(Vec::new()),
    };

    // One cell per application; each point installs the app's item count
    // and the single-node topology the old driver used.
    let apps: [(&'static str, u64); 3] = [
        ("forensics", backend.forensics.app().item_count()),
        ("bioinformatics", backend.bio.app().item_count()),
        ("microscopy", backend.micro.app().item_count()),
    ];
    let app_points = Axis::points(
        "app",
        apps.into_iter().map(|(name, n)| {
            (AxisValue::from(name), move |s: &mut Scenario| {
                s.workload = rocket_core::WorkloadProfile::items_only(n);
                s.workload.name = name;
                s.nodes = vec![NodeSpec::uniform(1, (n as usize / 2).max(4), n as usize)];
            })
        }),
    );
    let base = Scenario::builder()
        .items(apps[0].1)
        .node(NodeSpec::uniform(
            1,
            (apps[0].1 as usize / 2).max(4),
            apps[0].1 as usize,
        ))
        .job_limit(16)
        .cpu_threads(2)
        .tracing(true)
        .seed(opts.seed)
        .build();
    let sweep = Sweep::over(base)
        .axis(app_points)
        .try_build()
        .expect("table1 sweep");
    let mut report = study("table1", opts)
        .run(&backend, &sweep)
        .expect("table1 study");

    // Column order is fixed regardless of which order the cells ran in.
    let mut runs = backend.runs.into_inner().expect("table1 stash");
    runs.sort_by_key(|r| apps.iter().position(|&(name, _)| name == r.name));
    let mut t = Table::new(&[
        "characteristic",
        "forensics",
        "bioinformatics",
        "microscopy",
    ]);
    let col = |f: &dyn Fn(&AppRun) -> String| -> Vec<String> { runs.iter().map(f).collect() };
    let mut push = |label: &str, f: &dyn Fn(&AppRun) -> String| {
        let vals = col(f);
        t.row(vec![
            label.to_string(),
            vals[0].clone(),
            vals[1].clone(),
            vals[2].clone(),
        ]);
    };
    push("no. of input files (n)", &|r| r.items.to_string());
    push("raw data on disk", &|r| fmt_bytes(r.raw_bytes));
    push("preprocessed in memory", &|r| {
        fmt_bytes(r.items * r.item_bytes)
    });
    push("no. of pairs", &|r| r.pairs.to_string());
    push("cache slot size", &|r| fmt_bytes(r.item_bytes));
    push("parse CPU (ms avg±std)", &|r| r.parse.avg_pm_std());
    push("preprocess GPU (ms)", &|r| {
        r.preprocess
            .as_ref()
            .map_or("N/A".into(), |s| s.avg_pm_std())
    });
    push("compare GPU (ms)", &|r| r.compare.avg_pm_std());
    push("R factor", &|r| format!("{:.2}", r.r_factor));
    push("failed pairs", &|r| r.failed.to_string());

    write_result(&opts.out_dir, "table1.csv", &t.to_csv());
    report.push_notes(&format!(
        "Table 1 — application characteristics (synthetic data, threaded runtime)\n\
         Paper sizes: n = 4980 / 2500 / 256; synthetic runs are scaled down\n\
         but exercise the full pipeline with real kernels.\n\n{}",
        t.render()
    ));
    report
}

// ---------------------------------------------------------------------------
// Fig 7 — comparison-time histograms
// ---------------------------------------------------------------------------

fn fig7(opts: &ExpOptions) -> StudyReport {
    let sweep = Sweep::over(sim_base(opts))
        .axis(app_axis(opts))
        .try_build()
        .expect("fig7 sweep");
    let mut report = study("fig7", opts)
        .run(&SimBackend::new(), &sweep)
        .expect("fig7 study");

    // The figure itself is sampled straight from the paper's Table 1
    // moments (unscaled profiles); the study cells complement it with one
    // simulated baseline run per application.
    let samples_n = (50_000 / opts.extra_scale.max(1)).max(2_000);
    let mut out = String::from(
        "Fig 7 — distribution of comparison-kernel run times\n\
         (profile-parameterized samples; paper Table 1 moments)\n\n",
    );
    let mut csv = String::from("app,bin_center_ms,count\n");
    for w in profiles::all() {
        let mut rng = Xoshiro256::seed_from(opts.seed ^ w.items);
        let mut stats = OnlineStats::new();
        let samples: Vec<f64> = (0..samples_n)
            .map(|_| w.compare.sample(&mut rng) * 1e3)
            .collect();
        for &s in &samples {
            stats.push(s);
        }
        let hi = stats.max() * 1.02;
        let mut hist = Histogram::new(0.0, hi.max(1e-6), 40);
        for &s in &samples {
            hist.push(s);
        }
        out.push_str(&format!(
            "{:<16} mean {:>8.2} ms  std {:>8.2} ms  min {:>7.2}  max {:>8.2}\n  |{}|\n  0 ms {}{:.0} ms\n\n",
            w.name,
            stats.mean(),
            stats.std(),
            stats.min(),
            stats.max(),
            hist.ascii(1),
            " ".repeat(34),
            hi,
        ));
        for (center, count) in hist.centers() {
            csv.push_str(&format!("{},{:.4},{}\n", w.name, center, count));
        }
    }
    out.push_str(
        "Shape check: forensics is tightly peaked (regular); bioinformatics is\n\
         right-skewed; microscopy is heavy-tailed over ~0–2000 ms (irregular).\n",
    );
    write_result(&opts.out_dir, "fig7.csv", &csv);
    report.push_notes(&out);
    report
}

// ---------------------------------------------------------------------------
// Fig 8 / Fig 10 — per-thread busy time on one node
// ---------------------------------------------------------------------------

fn fig8(opts: &ExpOptions) -> StudyReport {
    let sweep = Sweep::over(sim_base(opts))
        .axis(app_axis(opts))
        .try_build()
        .expect("fig8 sweep");
    let mut report = study("fig8", opts)
        .run(&SimBackend::new(), &sweep)
        .expect("fig8 study");

    let mut out =
        String::from("Fig 8 — processing time per thread class, one node (TitanX Maxwell)\n\n");
    let mut csv = String::from("app,class,busy_s,runtime_s,tmin_s\n");
    for cell in &report.cells {
        let w = &cell.scenario.workload;
        let scale = scale_of(w, opts.extra_scale);
        let r = cell.run();
        let tmin = model::t_min(w);
        let eff = model::system_efficiency(w, &cell.scenario.all_gpus(), r.elapsed);
        out.push_str(&format!(
            "{} (scale 1/{scale}): runtime {} | T_min {} | efficiency {:.1}%\n",
            w.name,
            fmt_secs(r.elapsed),
            fmt_secs(tmin),
            eff * 100.0
        ));
        let mut t = Table::new(&["thread class", "busy", "fraction of runtime"]);
        for (label, busy) in r.busy.rows() {
            t.row(vec![
                label.to_string(),
                fmt_secs(busy),
                format!("{:.1}%", busy / r.elapsed * 100.0),
            ]);
            csv.push_str(&format!(
                "{},{},{:.4},{:.4},{:.4}\n",
                w.name, label, busy, r.elapsed, tmin
            ));
        }
        out.push_str(&t.render());
        out.push('\n');
    }
    out.push_str(
        "Shape check: GPU busy ≈ overall runtime for every app (asynchronous\n\
         processing hides CPU, transfer, and I/O time behind the GPU).\n",
    );
    write_result(&opts.out_dir, "fig8.csv", &csv);
    report.push_notes(&out);
    report
}

fn fig10(opts: &ExpOptions) -> StudyReport {
    let (w, scale) = scaled(profiles::forensics(), opts);
    let sizes_gb = [20.0f64, 10.0, 5.0];
    let cache_axis = Axis::points(
        "host_cache_gb",
        sizes_gb.into_iter().map(|gb| {
            let w = w.clone();
            (AxisValue::from(gb), move |s: &mut Scenario| {
                s.nodes = vec![NodeSpec {
                    gpus: vec![DeviceProfile::titanx_maxwell()],
                    device_slots: slots_for(11e9, &w, scale).min(slots_for(gb * 1e9, &w, scale)),
                    host_slots: slots_for(gb * 1e9, &w, scale),
                }];
            })
        }),
    );
    let base = scenario_of(&w, vec![baseline_node(&w, scale)], opts);
    let sweep = Sweep::over(base)
        .axis(cache_axis)
        .try_build()
        .expect("fig10 sweep");
    let mut report = study("fig10", opts)
        .run(&SimBackend::new(), &sweep)
        .expect("fig10 study");

    let mut out =
        format!("Fig 10 — forensics per-thread time vs host cache size (scale 1/{scale})\n\n");
    let mut csv = String::from("host_cache_gb,class,busy_s,runtime_s\n");
    for (cell, gb) in report.cells.iter().zip(sizes_gb) {
        let r = cell.run();
        out.push_str(&format!(
            "host cache {gb} GB: runtime {} | R = {:.1}\n",
            fmt_secs(r.elapsed),
            r.r_factor()
        ));
        let mut t = Table::new(&["thread class", "busy"]);
        for (label, busy) in r.busy.rows() {
            t.row(vec![label.to_string(), fmt_secs(busy)]);
            csv.push_str(&format!("{gb},{label},{busy:.4},{:.4}\n", r.elapsed));
        }
        out.push_str(&t.render());
        out.push('\n');
    }
    out.push_str("Shape check: every class's busy time grows as the cache shrinks\n(items are re-loaded more often).\n");
    write_result(&opts.out_dir, "fig10.csv", &csv);
    report.push_notes(&out);
    report
}

// ---------------------------------------------------------------------------
// Fig 9 — efficiency and R vs cache size
// ---------------------------------------------------------------------------

const FIG9_SIZES_GB: [f64; 11] = [0.5, 1.0, 2.0, 4.0, 6.0, 8.0, 11.0, 15.0, 20.0, 28.0, 40.0];

fn fig9(opts: &ExpOptions) -> StudyReport {
    let extra = opts.extra_scale.max(1);
    // The cache axis derives slot counts from whatever workload the app
    // axis installed — later axes see earlier mutations.
    let cache_axis = Axis::points(
        "cache_gb",
        FIG9_SIZES_GB.into_iter().map(move |gb| {
            (AxisValue::from(gb), move |s: &mut Scenario| {
                let scale = scale_of(&s.workload, extra);
                let paper_slot = |g: f64| slots_for(g * 1e9, &s.workload, scale);
                // Below the device limit: device-only cache of size S (host
                // disabled ≈ 2 slots). Above: device pinned at 11 GB, host = S.
                let (dev, host) = if gb <= 11.0 {
                    (paper_slot(gb), 2)
                } else {
                    (paper_slot(11.0), paper_slot(gb))
                };
                for node in &mut s.nodes {
                    node.device_slots = dev;
                    node.host_slots = host;
                }
            })
        }),
    );
    let sweep = Sweep::over(sim_base(opts))
        .axis(app_axis(opts))
        .axis(cache_axis)
        .try_build()
        .expect("fig9 sweep");
    let mut report = study("fig9", opts)
        .run(&SimBackend::new(), &sweep)
        .expect("fig9 study");

    let mut out = String::from(
        "Fig 9 — system efficiency and R vs total cache size, one node\n\
         (sizes are paper-equivalent GB; device limit 11 GB)\n\n",
    );
    let mut csv = String::from("app,cache_gb,device_slots,host_slots,efficiency,r_factor\n");
    for app_cells in report.cells.chunks(FIG9_SIZES_GB.len()) {
        let w = &app_cells[0].scenario.workload;
        let scale = scale_of(w, extra);
        let mut t = Table::new(&["cache", "dev slots", "host slots", "efficiency", "R"]);
        for (cell, gb) in app_cells.iter().zip(FIG9_SIZES_GB) {
            let r = cell.run();
            let dev = cell.scenario.nodes[0].device_slots;
            let host = cell.scenario.nodes[0].host_slots;
            let eff = model::system_efficiency(w, &cell.scenario.all_gpus(), r.elapsed);
            t.row(vec![
                format!("{gb} GB"),
                dev.to_string(),
                host.to_string(),
                format!("{:.1}%", eff * 100.0),
                format!("{:.1}", r.r_factor()),
            ]);
            csv.push_str(&format!(
                "{},{gb},{dev},{host},{:.4},{:.4}\n",
                w.name,
                eff,
                r.r_factor()
            ));
        }
        out.push_str(&format!("{} (scale 1/{scale}):\n{}\n", w.name, t.render()));
    }
    out.push_str(
        "Shape check: microscopy is flat (fits in any cache); the other two\n\
         degrade as the cache shrinks while R grows hyperbolically.\n",
    );
    write_result(&opts.out_dir, "fig9.csv", &csv);
    report.push_notes(&out);
    report
}

// ---------------------------------------------------------------------------
// Fig 11 — distributed-cache hops
// ---------------------------------------------------------------------------

fn fig11(opts: &ExpOptions) -> StudyReport {
    let mut base = sim_base(opts);
    base.hops = 3;
    let sweep = Sweep::over(base)
        .axis(app_axis(opts))
        .axis(Axis::nodes([16]))
        .try_build()
        .expect("fig11 sweep");
    let mut report = study("fig11", opts)
        .run(&SimBackend::new(), &sweep)
        .expect("fig11 study");

    let mut out = String::from("Fig 11 — distributed-cache request outcomes (h = 3, 16 nodes)\n\n");
    let mut t = Table::new(&["app", "hit@1", "hit@2", "hit@3", "miss", "lookups"]);
    let mut csv = String::from("app,hop1,hop2,hop3,miss\n");
    for cell in &report.cells {
        let w = &cell.scenario.workload;
        let r = cell.run();
        let lookups = r.directory.lookups().max(1);
        let pct = |x: u64| x as f64 / lookups as f64 * 100.0;
        let hop = |i: usize| r.directory.hits_at_hop.get(i).copied().unwrap_or(0);
        t.row(vec![
            w.name.to_string(),
            format!("{:.1}%", pct(hop(0))),
            format!("{:.1}%", pct(hop(1))),
            format!("{:.1}%", pct(hop(2))),
            format!("{:.1}%", pct(r.directory.misses)),
            lookups.to_string(),
        ]);
        csv.push_str(&format!(
            "{},{:.4},{:.4},{:.4},{:.4}\n",
            w.name,
            pct(hop(0)),
            pct(hop(1)),
            pct(hop(2)),
            pct(r.directory.misses)
        ));
    }
    out.push_str(&t.render());
    out.push_str(
        "\nShape check: the vast majority of requests either hit at the first\n\
         hop or miss; later hops contribute little (the paper's argument for\n\
         running with h = 1).\n",
    );
    write_result(&opts.out_dir, "fig11.csv", &csv);
    report.push_notes(&out);
    report
}

// ---------------------------------------------------------------------------
// Fig 12 — scalability 1..16 nodes, distributed cache on/off
// ---------------------------------------------------------------------------

const FIG12_NODES: [usize; 6] = [1, 2, 4, 8, 12, 16];

fn fig12(opts: &ExpOptions) -> StudyReport {
    let sweep = Sweep::over(sim_base(opts))
        .axis(app_axis(opts))
        .axis(Axis::distributed_cache([true, false]))
        .axis(Axis::nodes(FIG12_NODES))
        .try_build()
        .expect("fig12 sweep");
    let mut report = study("fig12", opts)
        .run(&SimBackend::new(), &sweep)
        .expect("fig12 study");

    let mut out = String::from(
        "Fig 12 — speedup, efficiency, R, and I/O usage vs node count\n\
         (1 TitanX Maxwell per node; dist = level-3 distributed cache)\n\n",
    );
    let mut csv =
        String::from("app,dist_cache,nodes,runtime_s,speedup,efficiency,r_factor,io_mbps\n");
    for app_cells in report.cells.chunks(2 * FIG12_NODES.len()) {
        let w = &app_cells[0].scenario.workload;
        let scale = scale_of(w, opts.extra_scale);
        out.push_str(&format!("{} (scale 1/{scale}):\n", w.name));
        let mut t = Table::new(&[
            "nodes",
            "dist",
            "runtime",
            "speedup",
            "efficiency",
            "R",
            "IO MB/s",
        ]);
        for dist_cells in app_cells.chunks(FIG12_NODES.len()) {
            let dist = dist_cells[0].scenario.distributed_cache;
            let mut t1 = None;
            for (cell, p) in dist_cells.iter().zip(FIG12_NODES) {
                let r = cell.run();
                let t1v = *t1.get_or_insert(r.elapsed);
                let speedup = t1v / r.elapsed;
                let eff = model::system_efficiency(w, &cell.scenario.all_gpus(), r.elapsed);
                t.row(vec![
                    p.to_string(),
                    if dist { "on" } else { "off" }.to_string(),
                    fmt_secs(r.elapsed),
                    format!("{speedup:.2}x"),
                    format!("{:.1}%", eff * 100.0),
                    format!("{:.2}", r.r_factor()),
                    format!("{:.1}", r.avg_io_mbps()),
                ]);
                csv.push_str(&format!(
                    "{},{},{},{:.4},{:.4},{:.4},{:.4},{:.4}\n",
                    w.name,
                    dist,
                    p,
                    r.elapsed,
                    speedup,
                    eff,
                    r.r_factor(),
                    r.avg_io_mbps()
                ));
            }
        }
        out.push_str(&t.render());
        out.push('\n');
    }
    out.push_str(
        "Shape check: data-intensive apps (forensics, bioinformatics) scale\n\
         better with the distributed cache on — R falls with node count and\n\
         speedup can exceed the node count; with it off, R grows with node\n\
         count and I/O pressure rises sharply. Microscopy is insensitive.\n",
    );
    write_result(&opts.out_dir, "fig12.csv", &csv);
    report.push_notes(&out);
    report
}

// ---------------------------------------------------------------------------
// Fig 13 / Fig 14 — heterogeneous platform (§6.5)
// ---------------------------------------------------------------------------

/// The four heterogeneous nodes of §6.5.
fn heterogeneous_nodes(w: &WorkloadProfile, scale: u64) -> Vec<NodeSpec> {
    let mk = |gpus: Vec<DeviceProfile>| {
        let min_mem = gpus
            .iter()
            .map(|g| g.memory_bytes as f64 * 0.92)
            .fold(f64::INFINITY, f64::min);
        NodeSpec {
            device_slots: slots_for(min_mem, w, scale),
            host_slots: slots_for(40e9, w, scale),
            gpus,
        }
    };
    vec![
        mk(vec![DeviceProfile::k20m()]),
        mk(vec![
            DeviceProfile::gtx980(),
            DeviceProfile::titanx_pascal(),
        ]),
        mk(vec![DeviceProfile::rtx2080ti(), DeviceProfile::rtx2080ti()]),
        mk(vec![
            DeviceProfile::gtx_titan(),
            DeviceProfile::titanx_pascal(),
        ]),
    ]
}

const FIG13_CONFIGS: [&str; 5] = ["node-1", "node-2", "node-3", "node-4", "all"];

fn fig13(opts: &ExpOptions) -> StudyReport {
    let extra = opts.extra_scale.max(1);
    let config_axis = Axis::points(
        "config",
        (0..FIG13_CONFIGS.len()).map(move |i| {
            (
                AxisValue::from(FIG13_CONFIGS[i]),
                move |s: &mut Scenario| {
                    let scale = scale_of(&s.workload, extra);
                    let nodes = heterogeneous_nodes(&s.workload, scale);
                    s.nodes = if i < 4 { vec![nodes[i].clone()] } else { nodes };
                },
            )
        }),
    );
    let sweep = Sweep::over(sim_base(opts))
        .axis(app_axis(opts))
        .axis(config_axis)
        .try_build()
        .expect("fig13 sweep");
    let mut report = study("fig13", opts)
        .run(&SimBackend::new(), &sweep)
        .expect("fig13 study");

    let mut out = String::from(
        "Fig 13 — heterogeneous nodes: individual vs combined throughput\n\
         node I: K20m | II: GTX980 + TitanX-Pascal | III: 2x RTX2080Ti |\n\
         node IV: GTX-Titan + TitanX-Pascal\n\n",
    );
    let mut csv = String::from("app,config,throughput_pairs_per_s\n");
    for app_cells in report.cells.chunks(FIG13_CONFIGS.len()) {
        let w = &app_cells[0].scenario.workload;
        let scale = scale_of(w, extra);
        let mut t = Table::new(&["config", "throughput (pairs/s)"]);
        let mut sum = 0.0;
        for (i, cell) in app_cells[..4].iter().enumerate() {
            let r = cell.run();
            sum += r.throughput();
            t.row(vec![
                format!("node {}", ["I", "II", "III", "IV"][i]),
                format!("{:.1}", r.throughput()),
            ]);
            csv.push_str(&format!(
                "{},node-{},{:.4}\n",
                w.name,
                i + 1,
                r.throughput()
            ));
        }
        let all = app_cells[4].run();
        t.row(vec!["sum of nodes".into(), format!("{sum:.1}")]);
        t.row(vec![
            "all (4 nodes)".into(),
            format!("{:.1}", all.throughput()),
        ]);
        csv.push_str(&format!("{},sum,{sum:.4}\n", w.name));
        csv.push_str(&format!("{},all,{:.4}\n", w.name, all.throughput()));
        out.push_str(&format!(
            "{} (scale 1/{scale}): combined = {:.0}% of sum\n{}\n",
            w.name,
            all.throughput() / sum * 100.0,
            t.render()
        ));
    }
    out.push_str(
        "Shape check: the combined run reaches (or exceeds, thanks to the\n\
         distributed cache) the sum of the individual nodes.\n",
    );
    write_result(&opts.out_dir, "fig13.csv", &csv);
    report.push_notes(&out);
    report
}

fn fig14(opts: &ExpOptions) -> StudyReport {
    let (w, scale) = scaled(profiles::microscopy(), opts);
    let nodes = heterogeneous_nodes(&w, scale);
    let gpu_names: Vec<String> = nodes
        .iter()
        .enumerate()
        .flat_map(|(n, nc)| {
            nc.gpus
                .iter()
                .map(move |g| format!("{} (node {})", g.name, ["I", "II", "III", "IV"][n]))
        })
        .collect();
    let mut base = scenario_of(&w, nodes, opts);
    base.record_completions = true;
    let sweep = Sweep::over(base)
        .axis(Axis::tag("config", ["heterogeneous"]))
        .try_build()
        .expect("fig14 sweep");
    let mut report = study("fig14", opts)
        .run(&SimBackend::new(), &sweep)
        .expect("fig14 study");

    let r = report.cells[0].run();
    let series = r.completions.as_ref().expect("completions recorded");
    let end_ns = (r.elapsed * 1e9) as u64;
    let window = 60_000_000_000u64; // 1-minute rolling average, like the paper
    let step = window / 2;
    let mut csv = String::from("gpu,t_s,pairs_per_s\n");
    let mut t = Table::new(&["GPU", "avg pairs/s", "total pairs"]);
    for (gid, name) in gpu_names.iter().enumerate() {
        for (ts, rate) in series.rolling(gid as u32, window, step, end_ns) {
            csv.push_str(&format!("{name},{ts:.1},{rate:.4}\n"));
        }
        t.row(vec![
            name.clone(),
            format!("{:.2}", series.average(gid as u32, end_ns)),
            series.total(gid as u32).to_string(),
        ]);
    }
    write_result(&opts.out_dir, "fig14.csv", &csv);
    report.push_notes(&format!(
        "Fig 14 — per-GPU throughput, microscopy on 7 heterogeneous GPUs\n\
         (scale 1/{scale}; rolling 1-minute average in fig14.csv)\n\n{}\n\
         Shape check: all GPUs stay busy until the end (balanced finish) and\n\
         faster GPUs sustain proportionally higher rates.\n",
        t.render()
    ));
    report
}

// ---------------------------------------------------------------------------
// Fig 15 — large-scale (Cartesius) run
// ---------------------------------------------------------------------------

const FIG15_NODES: [usize; 7] = [1, 8, 16, 24, 32, 40, 48];

fn fig15(opts: &ExpOptions) -> StudyReport {
    let scale = 10 * opts.extra_scale.max(1);
    let w = profiles::bioinformatics_large().scaled(scale);
    let node = NodeSpec {
        gpus: vec![DeviceProfile::k40m(), DeviceProfile::k40m()],
        device_slots: slots_for(11e9, &w, scale),
        host_slots: slots_for(80e9, &w, scale),
    };
    let base = scenario_of(&w, vec![node], opts);
    let sweep = Sweep::over(base)
        .axis(Axis::nodes(FIG15_NODES))
        .try_build()
        .expect("fig15 sweep");
    let mut report = study("fig15", opts)
        .run(&SimBackend::new(), &sweep)
        .expect("fig15 study");

    let mut out = format!(
        "Fig 15 — large-scale bioinformatics (all 6818 proteomes, scale 1/{scale})\n\
         Cartesius nodes: 2x Tesla K40m, 80 GB host cache\n\n",
    );
    let mut csv = String::from("nodes,gpus,runtime_s,speedup,r_factor,efficiency\n");
    let mut t = Table::new(&["nodes", "GPUs", "runtime", "speedup", "R", "efficiency"]);
    let mut t1 = None;
    for (cell, p) in report.cells.iter().zip(FIG15_NODES) {
        let r = cell.run();
        let t1v = *t1.get_or_insert(r.elapsed);
        let speedup = t1v / r.elapsed;
        let eff = model::system_efficiency(&w, &cell.scenario.all_gpus(), r.elapsed);
        t.row(vec![
            p.to_string(),
            (2 * p).to_string(),
            fmt_secs(r.elapsed),
            format!("{speedup:.1}x"),
            format!("{:.1}", r.r_factor()),
            format!("{:.1}%", eff * 100.0),
        ]);
        csv.push_str(&format!(
            "{p},{},{:.4},{speedup:.4},{:.4},{eff:.4}\n",
            2 * p,
            r.elapsed,
            r.r_factor()
        ));
    }
    out.push_str(&t.render());
    out.push_str(
        "\nShape check: R falls steeply with node count (paper: 31.9 → 2.7\n\
         going 1 → 48 nodes) and speedup stays super-linear throughout.\n",
    );
    write_result(&opts.out_dir, "fig15.csv", &csv);
    report.push_notes(&out);
    report
}

// ---------------------------------------------------------------------------
// Cartesius 96-GPU sweep (beyond the paper's figures)
// ---------------------------------------------------------------------------

const C96_NODES: [usize; 3] = [12, 24, 48];

/// Distributed-cache sweep up to the full Cartesius allocation (48 nodes ×
/// 2 Tesla K40m = 96 GPUs) on the large bioinformatics workload, plus the
/// 96-GPU point under two replication policies: a fixed 8-seed run
/// reported as mean ± 95% CI and an adaptive run that stops once the
/// runtime CI is within 10% of the mean. Three sub-studies (tagged by a
/// `policy` axis) concatenated into one report.
fn cartesius96(opts: &ExpOptions) -> StudyReport {
    let scale = 10 * opts.extra_scale.max(1);
    let w = profiles::bioinformatics_large().scaled(scale);
    let node = NodeSpec {
        gpus: vec![DeviceProfile::k40m(), DeviceProfile::k40m()],
        device_slots: slots_for(11e9, &w, scale),
        host_slots: slots_for(80e9, &w, scale),
    };

    // The grid: distributed cache on/off × node count, one run per cell.
    // The calendar queue is built for exactly the largest population size;
    // results are identical to the slab heap (tested), so the sweep
    // doubles as a large-scale exercise of that scheduler.
    let grid = Sweep::over(scenario_of(&w, vec![node.clone()], opts))
        .axis(Axis::distributed_cache([true, false]))
        .axis(Axis::points(
            "nodes",
            C96_NODES.into_iter().map(|p| {
                (AxisValue::from(p), move |s: &mut Scenario| {
                    if let Some(template) = s.nodes.first().cloned() {
                        s.nodes = vec![template; p];
                    }
                    s.calendar_queue = p >= 48;
                })
            }),
        ))
        .axis(Axis::tag("policy", ["once"]))
        .try_build()
        .expect("cartesius96 sweep");
    let grid_report = study("cartesius96", opts)
        .run(&SimBackend::new(), &grid)
        .expect("cartesius96 grid");

    // Replicated 96-GPU point: stage times are stochastic, so report the
    // headline metrics with confidence intervals over 8 seeds.
    let point = scenario_of(&w, vec![node; 48], opts);
    let point_sweep = |policy_label: &str| {
        Sweep::over(point.clone())
            .axis(Axis::tag("distributed_cache", [true]))
            .axis(Axis::tag("nodes", [48usize]))
            .axis(Axis::tag("policy", [policy_label]))
            .try_build()
            .expect("cartesius96 point sweep")
    };
    let fixed_report = study("cartesius96-fixed8", opts)
        .replication(ReplicationPolicy::fixed(8))
        .run(&SimBackend::new(), &point_sweep("fixed8"))
        .expect("cartesius96 replicated point");
    // The same point under adaptive replication: keep adding batches of
    // seeds until the runtime CI half-width is within 10% of the mean
    // (capped at 16 runs) — usually fewer runs than the fixed-count
    // schedule needs for the same confidence.
    let adaptive_report = study("cartesius96-untilci", opts)
        .replication(ReplicationPolicy::until_ci(0.10, 16))
        .run(&SimBackend::new(), &point_sweep("until_ci"))
        .expect("cartesius96 adaptive point");

    let mut out = format!(
        "Cartesius 96-GPU sweep — bioinformatics-large (scale 1/{scale}),\n\
         2x Tesla K40m per node, distributed cache on vs off, calendar-queue\n\
         scheduler at the largest sizes\n\n",
    );
    let mut csv = String::from("dist_cache,nodes,gpus,runtime_s,r_factor,throughput,io_mbps\n");
    let mut t = Table::new(&[
        "nodes", "GPUs", "dist", "runtime", "R", "pairs/s", "IO MB/s",
    ]);
    for cell in &grid_report.cells {
        let dist = cell.scenario.distributed_cache;
        let p = cell.scenario.nodes.len();
        let r = cell.run();
        t.row(vec![
            p.to_string(),
            (2 * p).to_string(),
            if dist { "on" } else { "off" }.to_string(),
            fmt_secs(r.elapsed),
            format!("{:.2}", r.r_factor()),
            format!("{:.1}", r.throughput()),
            format!("{:.1}", r.avg_io_mbps()),
        ]);
        csv.push_str(&format!(
            "{dist},{p},{},{:.4},{:.4},{:.4},{:.4}\n",
            2 * p,
            r.elapsed,
            r.r_factor(),
            r.throughput(),
            r.avg_io_mbps()
        ));
    }
    out.push_str(&t.render());

    let reps = &fixed_report.cells[0].report;
    out.push_str(&format!(
        "\n96-GPU point, {}:\n  runtime    {} s\n  R          {}\n  throughput {} pairs/s\n",
        reps.summary().split('|').next().unwrap_or("").trim(),
        reps.elapsed.avg_pm_ci95(),
        reps.r_factor.avg_pm_ci95(),
        reps.throughput.avg_pm_ci95(),
    ));
    let adaptive = &adaptive_report.cells[0].report;
    out.push_str(&format!(
        "  adaptive   stopped after {} replications (target: CI ≤ 10% of mean): runtime {} s\n",
        adaptive.replications(),
        adaptive.elapsed.avg_pm_ci95(),
    ));
    let mut rep_csv = String::from("seed,runtime_s,r_factor,throughput\n");
    for (seed, run) in reps.seeds.iter().zip(&reps.runs) {
        rep_csv.push_str(&format!(
            "{seed},{:.4},{:.4},{:.4}\n",
            run.elapsed,
            run.r_factor(),
            run.throughput()
        ));
    }
    out.push_str(
        "\nShape check: with the distributed cache on, the 96-GPU run keeps\n\
         R low and I/O flat; off, R and I/O grow with node count. CI widths\n\
         are small relative to the means (the workload is stochastic but\n\
         well-averaged).\n",
    );
    write_result(&opts.out_dir, "cartesius96.csv", &csv);
    write_result(&opts.out_dir, "cartesius96_replications.csv", &rep_csv);

    let mut report = StudyReport::concat(
        "cartesius96",
        vec![grid_report, fixed_report, adaptive_report],
    )
    .expect("cartesius96 concat");
    report.push_notes(&out);
    report
}

// ---------------------------------------------------------------------------
// Transports — threaded runtime over channels vs sockets
// ---------------------------------------------------------------------------

/// Runs a real application on a 4-node threaded cluster twice — once over
/// in-process channels, once over loopback TCP — and compares results and
/// wire traffic. The pair accounting must match exactly (the work
/// assignment is statically partitioned, so it is deterministic); the
/// socket run additionally reports genuine payload bytes on the wire.
fn transports(opts: &ExpOptions) -> StudyReport {
    let cfg = ForensicsConfig {
        images: (24 / opts.extra_scale.max(1)).max(8),
        cameras: 4,
        width: 32,
        height: 32,
        seed: opts.seed,
        ..Default::default()
    };
    let ds = ForensicsDataset::generate(cfg.clone());
    let app = Arc::new(ForensicsApp::new(&cfg));
    let items = app.item_count();
    let backend = ThreadedBackend::new(app, Arc::new(ds.store));

    let base = Scenario::builder()
        .items(items)
        .nodes(4, NodeSpec::uniform(1, 8, items as usize))
        .job_limit(8)
        .cpu_threads(2)
        .leaf_pairs(8)
        .static_partition(true)
        .seed(opts.seed)
        .build();
    let sweep = Sweep::over(base)
        .axis(Axis::transport([
            TransportKind::Local,
            TransportKind::Socket,
        ]))
        .try_build()
        .expect("transports sweep");
    let mut report = study("transports", opts)
        .run(&backend, &sweep)
        .expect("transports study");

    let mut out = String::from(
        "Cluster transports — forensics on 4 threaded nodes, in-process\n\
         channels vs loopback TCP sockets (static partition, distributed\n\
         cache on)\n\n",
    );
    let mut csv =
        String::from("transport,backend,pairs,failed,r_factor,net_msgs,net_bytes,runtime_s\n");
    let mut t = Table::new(&[
        "transport",
        "backend",
        "pairs",
        "R",
        "net msgs",
        "net bytes",
        "runtime",
    ]);
    let mut pair_splits = Vec::new();
    for cell in &report.cells {
        let label = cell
            .coord("transport")
            .expect("transport coord")
            .to_string();
        let r = cell.run();
        t.row(vec![
            label.clone(),
            r.backend.to_string(),
            r.pairs.to_string(),
            format!("{:.2}", r.r_factor()),
            r.net_msgs.to_string(),
            fmt_bytes(r.net_bytes),
            fmt_secs(r.elapsed),
        ]);
        csv.push_str(&format!(
            "{},{},{},{},{:.4},{},{},{:.4}\n",
            label,
            r.backend,
            r.pairs,
            r.failed_pairs,
            r.r_factor(),
            r.net_msgs,
            r.net_bytes,
            r.elapsed,
        ));
        pair_splits.push((r.pairs, r.failed_pairs, r.pairs_per_node.clone()));
    }
    out.push_str(&t.render());
    assert_eq!(
        pair_splits[0], pair_splits[1],
        "transports disagree on pair accounting"
    );
    out.push_str(
        "\nShape check: both transports complete every pair with the same\n\
         per-node split; the socket run moves the directory/fetch protocol\n\
         over real TCP (non-zero wire bytes) and is somewhat slower — the\n\
         transport is the only difference between the two rows.\n",
    );
    write_result(&opts.out_dir, "transports.csv", &csv);
    report.push_notes(&out);
    report
}

// ---------------------------------------------------------------------------
// Model sanity
// ---------------------------------------------------------------------------

fn model_check(opts: &ExpOptions) -> StudyReport {
    // Caches big enough for the whole (scaled) data set → R = 1.
    let points: Vec<_> = profiles::all()
        .into_iter()
        .map(|w| {
            let (w, _) = scaled(w, opts);
            (w.name, w)
        })
        .collect();
    let full_cache_axis = Axis::points(
        "app",
        points.into_iter().map(|(name, w)| {
            (AxisValue::from(name), move |s: &mut Scenario| {
                s.nodes = vec![NodeSpec::uniform(1, w.items as usize, w.items as usize)];
                s.workload = w.clone();
            })
        }),
    );
    let sweep = Sweep::over(sim_base(opts))
        .axis(full_cache_axis)
        .try_build()
        .expect("model sweep");
    let mut report = study("model", opts)
        .run(&SimBackend::new(), &sweep)
        .expect("model study");

    let mut out = String::from("§6.1 performance model vs simulation (R = 1 configurations)\n\n");
    let mut t = Table::new(&["app", "T_min (model)", "runtime (sim)", "ratio"]);
    let mut csv = String::from("app,tmin_s,sim_s,ratio\n");
    for cell in &report.cells {
        let w = &cell.scenario.workload;
        let r = cell.run();
        assert!(
            (r.r_factor() - 1.0).abs() < 1e-9,
            "{}: R = {}",
            w.name,
            r.r_factor()
        );
        let tmin = model::t_min(w);
        let ratio = r.elapsed / tmin;
        t.row(vec![
            w.name.to_string(),
            fmt_secs(tmin),
            fmt_secs(r.elapsed),
            format!("{ratio:.3}"),
        ]);
        csv.push_str(&format!(
            "{},{tmin:.4},{:.4},{ratio:.4}\n",
            w.name, r.elapsed
        ));
    }
    out.push_str(&t.render());
    out.push_str(
        "\nShape check: with perfect reuse the simulated runtime sits within a\n\
         few percent of the modelled lower bound (perfect overlap).\n",
    );
    write_result(&opts.out_dir, "model.csv", &csv);
    report.push_notes(&out);
    report
}

// ---------------------------------------------------------------------------
// scale1k — sharded DES on the thousand-node bench anchor (beyond the paper)
// ---------------------------------------------------------------------------

const SCALE1K_SHARDS: [usize; 4] = [1, 2, 4, 8];

/// Sharded-DES scaling on the `thousand_nodes` bench anchor: the same
/// 1024-node scenario simulated at 1/2/4/8 shards. Virtual-time results
/// are byte-identical across shard counts (asserted here; the simulator's
/// shard-equivalence suite covers it exhaustively) — only wall-clock
/// differs, and the note and CSV report it per shard count. The committed
/// `BENCH_8.json` snapshot records the same measurement from the bench
/// side.
fn scale1k(opts: &ExpOptions) -> StudyReport {
    let scale = opts.extra_scale.max(1);
    let mut base = anchors::thousand_nodes();
    // The extra CLI factor shrinks the cluster and the data set together,
    // preserving per-node load (at the default scale this is the full
    // 1024-node anchor).
    base.workload = base.workload.scaled(scale);
    let nodes = (base.nodes.len() as u64 / scale).max(8) as usize;
    base.nodes.truncate(nodes);
    base.seed = opts.seed;

    // One single-cell study per shard count so each cell's wall-clock can
    // be measured around its run; concatenated under a `sim_shards` axis.
    let mut parts = Vec::new();
    let mut walls = Vec::new();
    for k in SCALE1K_SHARDS {
        let sweep = Sweep::over(base.clone())
            .axis(Axis::points(
                "sim_shards",
                [(AxisValue::from(k), move |s: &mut Scenario| {
                    s.sim_shards = k;
                })],
            ))
            .try_build()
            .expect("scale1k sweep");
        let sw = stopwatch();
        let part = study(format!("scale1k-k{k}"), opts)
            .run(&SimBackend::new(), &sweep)
            .expect("scale1k study");
        walls.push(sw.elapsed_secs());
        parts.push(part);
    }
    let mut report = StudyReport::concat("scale1k", parts).expect("scale1k concat");

    let (seq_pairs, seq_elapsed) = {
        let r = report.cells[0].run();
        (r.pairs, r.elapsed)
    };
    let mut csv = String::from("sim_shards,windows,wall_s,speedup,virtual_runtime_s\n");
    let mut t = Table::new(&["shards", "windows", "wall", "speedup", "virtual runtime"]);
    for (cell, (&k, &wall)) in report.cells.iter().zip(SCALE1K_SHARDS.iter().zip(&walls)) {
        let r = cell.run();
        assert_eq!(r.pairs, seq_pairs, "sharded run diverged at K = {k}");
        assert_eq!(
            r.elapsed.to_bits(),
            seq_elapsed.to_bits(),
            "sharded run diverged at K = {k}"
        );
        let speedup = walls[0] / wall;
        t.row(vec![
            k.to_string(),
            r.sim_windows.to_string(),
            format!("{wall:.2}s"),
            format!("{speedup:.2}x"),
            fmt_secs(r.elapsed),
        ]);
        csv.push_str(&format!(
            "{k},{},{wall:.4},{speedup:.4},{:.4}\n",
            r.sim_windows, r.elapsed
        ));
    }
    let threads = std::thread::available_parallelism().map_or(1, usize::from);
    write_result(&opts.out_dir, "scale1k.csv", &csv);
    report.push_notes(&format!(
        "scale1k — sharded DES on the 1024-node anchor (scale 1/{scale}, \
         {seq_pairs} pairs)\nHost parallelism: {threads} hardware threads\n\n{}\n\
         Shape check: identical virtual-time results at every shard count\n\
         (asserted above); wall-clock speedup tracks hardware threads, so a\n\
         1-thread host shows ~1.0x while the window structure stays intact.\n",
        t.render()
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use rocket_apps::json::Json;

    fn tiny_opts() -> ExpOptions {
        ExpOptions {
            extra_scale: 20, // shrink everything hard: tests must be quick
            out_dir: std::env::temp_dir().join(format!("rocket-exp-{}", std::process::id())),
            seed: 7,
            perf_log: None,
        }
    }

    /// Asserts the study's JSON-Lines records parse with a real JSON
    /// parser and carry one record per grid cell with its coordinates.
    fn assert_round_trips(report: &StudyReport) {
        let lines = report.json_lines();
        assert_eq!(lines.len(), report.cells.len(), "one record per cell");
        for (i, line) in lines.iter().enumerate() {
            let v = Json::parse(line).unwrap_or_else(|e| panic!("bad JSON line {i}: {e}\n{line}"));
            assert_eq!(
                v.get("experiment").and_then(|j| match j {
                    Json::Str(s) => Some(s.as_str()),
                    _ => None,
                }),
                Some(report.experiment.as_str())
            );
            assert_eq!(v.get("cell").and_then(Json::as_f64), Some(i as f64));
            for axis in &report.axes {
                assert!(
                    v.get("coords").and_then(|c| c.get(axis)).is_some(),
                    "cell {i} missing coordinate `{axis}`"
                );
            }
            assert!(v.get("report").and_then(|r| r.get("runs")).is_some());
        }
        // The whole-study document parses too.
        let doc = Json::parse(&report.to_json()).expect("study JSON parses");
        assert_eq!(
            doc.get("cells").and_then(Json::as_arr).map(<[Json]>::len),
            Some(report.cells.len())
        );
    }

    #[test]
    fn model_check_runs_and_validates() {
        let report = model_check(&tiny_opts());
        assert_eq!(report.axes, vec!["app"]);
        assert_eq!(report.cells.len(), 3);
        let text = report.render();
        assert!(text.contains("T_min"));
        assert!(text.contains("forensics"));
        assert_round_trips(&report);
    }

    #[test]
    fn fig7_reports_all_apps() {
        let report = fig7(&tiny_opts());
        let text = report.render();
        for name in ["forensics", "bioinformatics", "microscopy"] {
            assert!(text.contains(name), "missing {name}");
        }
        assert_round_trips(&report);
    }

    #[test]
    fn fig11_percentages_sum_to_one() {
        let opts = tiny_opts();
        let report = fig11(&opts);
        assert!(report.render().contains("hit@1"));
        assert_eq!(report.axes, vec!["app", "nodes"]);
        for cell in &report.cells {
            assert_eq!(cell.scenario.nodes.len(), 16);
            assert_eq!(cell.scenario.hops, 3);
        }
        let csv = std::fs::read_to_string(opts.out_dir.join("fig11.csv")).unwrap();
        for line in csv.lines().skip(1) {
            let parts: Vec<f64> = line
                .split(',')
                .skip(1)
                .map(|v| v.parse().unwrap())
                .collect();
            let total: f64 = parts.iter().sum();
            assert!((total - 100.0).abs() < 1.0, "outcomes sum to {total}");
        }
        assert_round_trips(&report);
    }

    #[test]
    fn experiment_registry_is_complete() {
        assert_eq!(ALL_EXPERIMENTS.len(), 14);
        let names: Vec<&str> = ALL_EXPERIMENTS.iter().map(|&(n, _)| n).collect();
        assert!(names.contains(&"table1"));
        assert!(names.contains(&"fig15"));
        assert!(names.contains(&"cartesius96"));
        assert!(names.contains(&"transports"));
        assert!(names.contains(&"scale1k"));
        for &(name, exp) in ALL_EXPERIMENTS {
            assert!(!exp.description().is_empty(), "{name} lacks a description");
        }
    }

    #[test]
    fn scale1k_shard_counts_agree() {
        let opts = tiny_opts();
        let report = scale1k(&opts);
        assert_eq!(report.axes, vec!["sim_shards"]);
        assert_eq!(report.cells.len(), SCALE1K_SHARDS.len());
        // The driver itself asserts identical virtual-time results across
        // shard counts; here check the surfaced shard metadata and files.
        for (cell, k) in report.cells.iter().zip(SCALE1K_SHARDS) {
            assert_eq!(cell.scenario.sim_shards, k);
            assert_eq!(cell.run().sim_shards, k as u32);
            assert!(cell.run().sim_windows > 0, "K = {k} counted no windows");
        }
        let csv = std::fs::read_to_string(opts.out_dir.join("scale1k.csv")).unwrap();
        assert_eq!(csv.lines().count(), 1 + SCALE1K_SHARDS.len());
        assert_round_trips(&report);
    }

    #[test]
    fn transports_agree_and_sockets_carry_bytes() {
        let opts = tiny_opts();
        let report = transports(&opts);
        assert!(report.render().contains("threaded+socket"), "bad report");
        assert_eq!(report.axes, vec!["transport"]);
        assert_eq!(report.cells.len(), 2);
        // Identical pair counts, zero failures on both transports.
        let (local, socket) = (report.cells[0].run(), report.cells[1].run());
        assert_eq!(local.pairs, socket.pairs);
        assert_eq!(local.failed_pairs, 0);
        assert_eq!(socket.failed_pairs, 0);
        assert_eq!(local.pairs_per_node, socket.pairs_per_node);
        // The socket row carries real traffic and names its backend.
        assert_eq!(socket.backend, "threaded+socket");
        assert!(socket.net_bytes > 0);
        assert!(socket.net_msgs > 0);
        let csv = std::fs::read_to_string(opts.out_dir.join("transports.csv")).unwrap();
        assert_eq!(csv.lines().count(), 3, "header + one row per transport");
        assert_round_trips(&report);
    }

    #[test]
    fn cartesius96_runs_at_tiny_scale() {
        // extra_scale 20 shrinks the workload to 34 items; the sweep and
        // its replicated points must still complete and report CIs.
        let opts = tiny_opts();
        let report = cartesius96(&opts);
        let text = report.render();
        assert!(text.contains("96"), "missing gpu column: {text}");
        assert!(text.contains('±'), "missing CI: {text}");
        assert!(text.contains("adaptive"), "missing adaptive run: {text}");
        // 6 grid cells + fixed point + adaptive point, uniform axes.
        assert_eq!(report.cells.len(), 8);
        assert_eq!(report.axes, vec!["distributed_cache", "nodes", "policy"]);
        assert_eq!(report.cells[6].report.replications(), 8);
        assert!(report.cells[7].report.replications() >= 2);
        let csv =
            std::fs::read_to_string(opts.out_dir.join("cartesius96_replications.csv")).unwrap();
        assert_eq!(csv.lines().count(), 9, "8 replications + header");
        assert_round_trips(&report);
    }

    #[test]
    fn extra_scale_shrinks_every_experiment_family() {
        // The scale knob must reach the threaded experiments and fig7 too
        // (they historically ignored it).
        let opts = tiny_opts();
        let report = transports(&opts);
        assert_eq!(report.cells[0].run().items, 8, "images shrink with scale");
        let t1 = table1(&opts);
        let items: Vec<u64> = t1.cells.iter().map(|c| c.run().items).collect();
        assert_eq!(items, vec![8, 8, 6]);
        assert_round_trips(&t1);
    }
}
