//! Paper-figure reproduction harness and benchmark support for Rocket.
//!
//! Each table and figure of the paper's evaluation (§6) has a driver in
//! [`experiments`]; the `repro` binary dispatches to them and writes both a
//! human-readable report and CSV series under `results/`. Criterion
//! micro-benchmarks for the framework components live under `benches/`.

#![warn(missing_docs)]

pub mod anchors;
pub mod experiments;
pub mod util;

pub use experiments::{run_experiment, Experiment, ALL_EXPERIMENTS};
