//! Writes (or checks) the committed bench snapshot `BENCH_8.json`.
//!
//! The snapshot records the median wall-clock time of each canonical
//! bench anchor (`rocket_bench::anchors`) plus the sharded-DES speedup on
//! the `thousand_nodes` anchor, with enough host metadata to interpret
//! the numbers later. It is the committed waypoint of the performance
//! trajectory: PRs that touch the simulator re-run it and the diff shows
//! the cost or win.
//!
//! ```text
//! rocket-bench-snapshot                  # measure, write BENCH_8.json
//! rocket-bench-snapshot --out FILE       # measure, write FILE
//! rocket-bench-snapshot --samples 7     # odd sample count per bench
//! rocket-bench-snapshot --check [FILE]   # CI: validate an existing snapshot
//! ```
//!
//! `--check` fails (exit 1) when the snapshot is missing or malformed —
//! every anchor must be present with a positive median. It never re-runs
//! the benches, so it is cheap enough for every CI run.

use std::process::ExitCode;

use rocket_bench::anchors;
use rocket_core::clock::stopwatch;
use rocket_core::Backend;
use rocket_sim::SimBackend;

/// Snapshot rows: every sequential anchor, plus `thousand_nodes` on 8
/// shards (the parallel-DES headline measurement).
const SHARDED_ROW: &str = "thousand_nodes_8shards";

fn median_ns(samples: &mut [u128]) -> u128 {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn measure(backend: &SimBackend, scenario: &rocket_core::Scenario, samples: usize) -> u128 {
    let mut times: Vec<u128> = (0..samples)
        .map(|_| {
            let sw = stopwatch();
            let r = backend.run(scenario).expect("bench anchor run");
            assert!(r.pairs > 0, "anchor simulated no work");
            sw.elapsed().as_nanos()
        })
        .collect();
    median_ns(&mut times)
}

fn write_snapshot(out: &str, samples: usize) {
    let mut rows = Vec::new();
    for (name, make) in anchors::ALL {
        let s = make();
        eprintln!("measuring {name} ({samples} samples)…");
        let ns = measure(&SimBackend::new(), &s, samples);
        rows.push((name.to_string(), ns, s.workload.pairs()));
    }
    let thousand = anchors::thousand_nodes();
    eprintln!("measuring {SHARDED_ROW} ({samples} samples)…");
    let sharded_ns = measure(&SimBackend::sharded(8), &thousand, samples);
    rows.push((SHARDED_ROW.into(), sharded_ns, thousand.workload.pairs()));

    let seq_ns = rows
        .iter()
        .find(|(n, ..)| n == "thousand_nodes")
        .map(|&(_, ns, _)| ns)
        .expect("thousand_nodes row");
    let speedup = seq_ns as f64 / sharded_ns as f64;
    let threads = std::thread::available_parallelism().map_or(1, usize::from);

    let mut json = String::from("{\n");
    json.push_str("  \"schema\": 1,\n  \"pr\": 8,\n");
    json.push_str(&format!("  \"samples\": {samples},\n"));
    json.push_str(&format!("  \"host_parallelism\": {threads},\n"));
    json.push_str(&format!(
        "  \"thousand_nodes_speedup_8shards\": {speedup:.3},\n"
    ));
    json.push_str("  \"benches\": {\n");
    for (i, (name, ns, pairs)) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    \"{name}\": {{\"median_ns\": {ns}, \"pairs\": {pairs}}}{}\n",
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  }\n}\n");
    std::fs::write(out, &json).expect("write snapshot");
    println!("wrote {out} (speedup x{speedup:.2} on {threads} hardware threads)");
}

/// Validates a snapshot without re-measuring: parses the hand-rolled
/// layout far enough to know every anchor row exists with a positive
/// median.
fn check_snapshot(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    if !text.contains("\"schema\": 1") {
        return Err(format!("{path}: missing/unknown schema marker"));
    }
    let mut names: Vec<&str> = anchors::ALL.iter().map(|&(n, _)| n).collect();
    names.push(SHARDED_ROW);
    for name in names {
        let needle = format!("\"{name}\": {{\"median_ns\": ");
        let at = text
            .find(&needle)
            .ok_or_else(|| format!("{path}: missing bench row {name}"))?;
        let digits: String = text[at + needle.len()..]
            .chars()
            .take_while(char::is_ascii_digit)
            .collect();
        let ns: u128 = digits
            .parse()
            .map_err(|_| format!("{path}: non-numeric median for {name}"))?;
        if ns == 0 {
            return Err(format!("{path}: zero median for {name}"));
        }
    }
    if !text.contains("\"thousand_nodes_speedup_8shards\":") {
        return Err(format!("{path}: missing sharded speedup"));
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out = "BENCH_8.json".to_string();
    let mut samples = 5usize;
    let mut check = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--check" => check = true,
            "--out" => match it.next() {
                Some(v) => out = v.clone(),
                None => {
                    eprintln!("--out needs a path");
                    return ExitCode::FAILURE;
                }
            },
            "--samples" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) if v > 0 => samples = v,
                _ => {
                    eprintln!("--samples needs a positive integer");
                    return ExitCode::FAILURE;
                }
            },
            other if !other.starts_with('-') && check => out = other.to_string(),
            other => {
                eprintln!(
                    "unknown argument {other}\n\
                     usage: rocket-bench-snapshot [--out FILE] [--samples N] | --check [FILE]"
                );
                return ExitCode::FAILURE;
            }
        }
    }
    if check {
        match check_snapshot(&out) {
            Ok(()) => {
                println!("{out}: snapshot ok");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("{e}");
                ExitCode::FAILURE
            }
        }
    } else {
        write_snapshot(&out, samples);
        ExitCode::SUCCESS
    }
}
