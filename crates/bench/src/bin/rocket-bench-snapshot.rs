//! Writes, checks, or *compares against* the committed bench snapshot
//! `BENCH_8.json`.
//!
//! The snapshot records the median wall-clock time of each canonical
//! bench anchor (`rocket_bench::anchors`) plus the sharded-DES speedup on
//! the `thousand_nodes` anchor, with enough host metadata to interpret
//! the numbers later. It is the committed waypoint of the performance
//! trajectory: PRs that touch the simulator re-run it and the diff shows
//! the cost or win.
//!
//! ```text
//! rocket-bench-snapshot                   # measure, write BENCH_8.json
//! rocket-bench-snapshot --out FILE        # measure, write FILE
//! rocket-bench-snapshot --samples 7       # odd sample count per bench
//! rocket-bench-snapshot --check [FILE]    # CI: validate snapshot shape
//! rocket-bench-snapshot --compare [FILE]  # CI: re-measure, gate on noise band
//!     [--tolerance [NAME=]X] [--min-samples N] [--json-out FILE]
//! ```
//!
//! `--check` fails (exit 1) when the snapshot is missing or malformed —
//! every anchor must be present with a positive median. It never re-runs
//! the benches, so it is cheap enough for every CI run.
//!
//! `--compare` re-measures every row and classifies each fresh median
//! against the committed one with a relative noise band (default ±10%,
//! per-bench overridable via repeated `--tolerance name=0.15`). Exit
//! codes are distinct so CI can gate asymmetrically:
//!
//! * `0` — every gated row within its band,
//! * `1` — snapshot missing/malformed (drift),
//! * `2` — at least one gated row regressed beyond its band,
//! * `3` — no regression, at least one gated row *improved* beyond its
//!   band (time to re-record the snapshot).
//!
//! Two interpretation rules keep the gate honest. A row whose committed
//! median was taken from fewer than `--min-samples` samples (default 3)
//! is reported but not gated — medians of tiny samples are noise. And the
//! sharded row gates only when the current host falls in the same
//! parallelism class (single-core vs multi-core) as the recording host:
//! `BENCH_8.json` was recorded at `host_parallelism: 1`, where 8 shards
//! measure ~0.925× sequential (barrier overhead, nothing to parallelize
//! onto) — a multi-core host comparing against that number would read a
//! healthy parallel speedup as a huge "improvement", and vice versa a
//! single-core host would flag a multi-core snapshot as a regression.

use std::process::ExitCode;

use rocket_bench::anchors;
use rocket_core::clock::stopwatch;
use rocket_core::Backend;
use rocket_sim::SimBackend;

/// Snapshot rows: every sequential anchor, plus `thousand_nodes` on 8
/// shards (the parallel-DES headline measurement).
const SHARDED_ROW: &str = "thousand_nodes_8shards";

/// Default relative noise band for `--compare`.
const DEFAULT_TOLERANCE: f64 = 0.10;

/// Default sample floor: committed medians from fewer samples inform but
/// never gate.
const DEFAULT_MIN_SAMPLES: u64 = 3;

fn median_ns(samples: &mut [u128]) -> u128 {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn measure(backend: &SimBackend, scenario: &rocket_core::Scenario, samples: usize) -> u128 {
    let mut times: Vec<u128> = (0..samples)
        .map(|_| {
            let sw = stopwatch();
            let r = backend.run(scenario).expect("bench anchor run");
            assert!(r.pairs > 0, "anchor simulated no work");
            sw.elapsed().as_nanos()
        })
        .collect();
    median_ns(&mut times)
}

/// Measures every snapshot row: the sequential anchors, then the sharded
/// headline. Shared by the writer and the comparator.
fn measure_all(samples: usize) -> Vec<(String, u128, u64)> {
    let mut rows = Vec::new();
    for (name, make) in anchors::ALL {
        let s = make();
        eprintln!("measuring {name} ({samples} samples)…");
        let ns = measure(&SimBackend::new(), &s, samples);
        rows.push((name.to_string(), ns, s.workload.pairs()));
    }
    let thousand = anchors::thousand_nodes();
    eprintln!("measuring {SHARDED_ROW} ({samples} samples)…");
    let sharded_ns = measure(&SimBackend::sharded(8), &thousand, samples);
    rows.push((SHARDED_ROW.into(), sharded_ns, thousand.workload.pairs()));
    rows
}

fn write_snapshot(out: &str, samples: usize) {
    let rows = measure_all(samples);
    let seq_ns = rows
        .iter()
        .find(|(n, ..)| n == "thousand_nodes")
        .map(|&(_, ns, _)| ns)
        .expect("thousand_nodes row");
    let sharded_ns = rows
        .iter()
        .find(|(n, ..)| n == SHARDED_ROW)
        .map(|&(_, ns, _)| ns)
        .expect("sharded row");
    let speedup = seq_ns as f64 / sharded_ns as f64;
    let threads = std::thread::available_parallelism().map_or(1, usize::from);

    let mut json = String::from("{\n");
    json.push_str("  \"schema\": 1,\n  \"pr\": 9,\n");
    json.push_str(&format!("  \"samples\": {samples},\n"));
    json.push_str(&format!("  \"host_parallelism\": {threads},\n"));
    json.push_str(&format!(
        "  \"thousand_nodes_speedup_8shards\": {speedup:.3},\n"
    ));
    json.push_str("  \"benches\": {\n");
    for (i, (name, ns, pairs)) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    \"{name}\": {{\"median_ns\": {ns}, \"pairs\": {pairs}}}{}\n",
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  }\n}\n");
    std::fs::write(out, &json).expect("write snapshot");
    println!("wrote {out} (speedup x{speedup:.2} on {threads} hardware threads)");
}

/// Extracts the integer following `"key": ` in the snapshot text.
fn snapshot_u64(text: &str, path: &str, key: &str) -> Result<u64, String> {
    let needle = format!("\"{key}\": ");
    let at = text
        .find(&needle)
        .ok_or_else(|| format!("{path}: missing {key}"))?;
    let digits: String = text[at + needle.len()..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits
        .parse()
        .map_err(|_| format!("{path}: non-numeric {key}"))
}

/// The committed snapshot, parsed far enough to compare against.
struct Committed {
    /// Samples behind each committed median.
    samples: u64,
    /// `available_parallelism` of the recording host.
    host_parallelism: u64,
    /// `(row name, median_ns)` for every expected row.
    rows: Vec<(String, u128)>,
}

fn parse_committed(path: &str) -> Result<Committed, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    if !text.contains("\"schema\": 1") {
        return Err(format!("{path}: missing/unknown schema marker"));
    }
    if !text.contains("\"thousand_nodes_speedup_8shards\":") {
        return Err(format!("{path}: missing sharded speedup"));
    }
    let mut names: Vec<&str> = anchors::ALL.iter().map(|&(n, _)| n).collect();
    names.push(SHARDED_ROW);
    let mut rows = Vec::with_capacity(names.len());
    for name in names {
        let needle = format!("\"{name}\": {{\"median_ns\": ");
        let at = text
            .find(&needle)
            .ok_or_else(|| format!("{path}: missing bench row {name}"))?;
        let digits: String = text[at + needle.len()..]
            .chars()
            .take_while(char::is_ascii_digit)
            .collect();
        let ns: u128 = digits
            .parse()
            .map_err(|_| format!("{path}: non-numeric median for {name}"))?;
        if ns == 0 {
            return Err(format!("{path}: zero median for {name}"));
        }
        rows.push((name.to_string(), ns));
    }
    Ok(Committed {
        samples: snapshot_u64(&text, path, "samples")?,
        host_parallelism: snapshot_u64(&text, path, "host_parallelism")?,
        rows,
    })
}

/// Validates a snapshot without re-measuring: parses the hand-rolled
/// layout far enough to know every anchor row exists with a positive
/// median.
fn check_snapshot(path: &str) -> Result<(), String> {
    parse_committed(path).map(|_| ())
}

/// One row of a `--compare` verdict.
struct RowVerdict {
    name: String,
    committed_ns: u128,
    fresh_ns: u128,
    tolerance: f64,
    gated: bool,
    /// Why the row is not gated (empty when it is).
    reason: String,
    /// `within` / `regression` / `improvement`.
    status: &'static str,
}

impl RowVerdict {
    fn ratio(&self) -> f64 {
        self.fresh_ns as f64 / self.committed_ns as f64
    }
}

/// Noise-band comparison settings (CLI-provided).
struct CompareOpts {
    samples: usize,
    min_samples: u64,
    default_tolerance: f64,
    /// Per-bench `(name, tolerance)` overrides.
    tolerances: Vec<(String, f64)>,
    json_out: Option<String>,
}

fn compare_snapshot(path: &str, opts: &CompareOpts) -> Result<Vec<RowVerdict>, String> {
    let committed = parse_committed(path)?;
    let current_parallelism = std::thread::available_parallelism().map_or(1, usize::from) as u64;
    // Apples-to-apples rule for the sharded row: barrier overhead vs real
    // parallel speedup depends on the parallelism *class* of the host, so
    // the row gates only when recorder and checker fall in the same class.
    let same_class = (current_parallelism >= 2) == (committed.host_parallelism >= 2);
    let fresh = measure_all(opts.samples);
    let mut verdicts = Vec::with_capacity(committed.rows.len());
    for (name, committed_ns) in committed.rows {
        let fresh_ns = fresh
            .iter()
            .find(|(n, ..)| *n == name)
            .map(|&(_, ns, _)| ns)
            .ok_or_else(|| format!("fresh measurement missing row {name}"))?;
        let tolerance = opts
            .tolerances
            .iter()
            .rev() // last override wins
            .find(|(n, _)| *n == name)
            .map(|&(_, t)| t)
            .unwrap_or(opts.default_tolerance);
        let (mut gated, mut reason) = (true, String::new());
        if committed.samples < opts.min_samples {
            gated = false;
            reason = format!(
                "committed median from {} samples, below the {}-sample floor",
                committed.samples, opts.min_samples
            );
        } else if name == SHARDED_ROW && !same_class {
            gated = false;
            reason = format!(
                "host parallelism class changed (committed {}, current {current_parallelism})",
                committed.host_parallelism
            );
        }
        let ratio = fresh_ns as f64 / committed_ns as f64;
        let status = if ratio > 1.0 + tolerance {
            "regression"
        } else if ratio < 1.0 - tolerance {
            "improvement"
        } else {
            "within"
        };
        verdicts.push(RowVerdict {
            name,
            committed_ns,
            fresh_ns,
            tolerance,
            gated,
            reason,
            status,
        });
    }
    Ok(verdicts)
}

fn comparison_json(
    path: &str,
    opts: &CompareOpts,
    verdicts: &[RowVerdict],
    result: &str,
) -> String {
    let mut out = String::from("{\n  \"schema\": 1,\n");
    out.push_str(&format!("  \"committed\": \"{path}\",\n"));
    out.push_str(&format!("  \"fresh_samples\": {},\n", opts.samples));
    out.push_str(&format!("  \"min_samples\": {},\n", opts.min_samples));
    out.push_str(&format!(
        "  \"host_parallelism\": {},\n",
        std::thread::available_parallelism().map_or(1, usize::from)
    ));
    out.push_str(&format!("  \"result\": \"{result}\",\n  \"rows\": [\n"));
    for (i, v) in verdicts.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"committed_ns\": {}, \"fresh_ns\": {}, \
             \"ratio\": {:.4}, \"tolerance\": {}, \"gated\": {}, \"status\": \"{}\"\
             {}}}{}\n",
            v.name,
            v.committed_ns,
            v.fresh_ns,
            v.ratio(),
            v.tolerance,
            v.gated,
            v.status,
            if v.reason.is_empty() {
                String::new()
            } else {
                format!(", \"reason\": \"{}\"", v.reason)
            },
            if i + 1 < verdicts.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn run_compare(path: &str, opts: &CompareOpts) -> ExitCode {
    let verdicts = match compare_snapshot(path, opts) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let gated = |status: &str| verdicts.iter().any(|v| v.gated && v.status == status);
    let result = if gated("regression") {
        "regression"
    } else if gated("improvement") {
        "improvement"
    } else {
        "within"
    };
    println!(
        "{:<36} {:>14} {:>14} {:>7} {:>6}  verdict",
        "bench", "committed_ns", "fresh_ns", "ratio", "band"
    );
    for v in &verdicts {
        println!(
            "{:<36} {:>14} {:>14} {:>7.3} {:>5.0}%  {}{}",
            v.name,
            v.committed_ns,
            v.fresh_ns,
            v.ratio(),
            v.tolerance * 100.0,
            if v.gated { "" } else { "(info) " },
            if v.reason.is_empty() {
                v.status.to_string()
            } else {
                format!("{} — {}", v.status, v.reason)
            },
        );
    }
    println!("comparison result: {result}");
    if let Some(json_path) = &opts.json_out {
        let json = comparison_json(path, opts, &verdicts, result);
        if let Err(e) = std::fs::write(json_path, json) {
            eprintln!("cannot write {json_path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {json_path}");
    }
    match result {
        "regression" => ExitCode::from(2),
        "improvement" => ExitCode::from(3),
        _ => ExitCode::SUCCESS,
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out = "BENCH_8.json".to_string();
    let mut samples = 5usize;
    let mut check = false;
    let mut compare = false;
    let mut opts = CompareOpts {
        samples: 0, // filled from --samples below
        min_samples: DEFAULT_MIN_SAMPLES,
        default_tolerance: DEFAULT_TOLERANCE,
        tolerances: Vec::new(),
        json_out: None,
    };
    let usage = "usage: rocket-bench-snapshot [--out FILE] [--samples N] \
                 | --check [FILE] \
                 | --compare [FILE] [--samples N] [--tolerance [NAME=]X] \
                 [--min-samples N] [--json-out FILE]";
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--check" => check = true,
            "--compare" => compare = true,
            "--out" => match it.next() {
                Some(v) => out = v.clone(),
                None => {
                    eprintln!("--out needs a path");
                    return ExitCode::FAILURE;
                }
            },
            "--samples" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) if v > 0 => samples = v,
                _ => {
                    eprintln!("--samples needs a positive integer");
                    return ExitCode::FAILURE;
                }
            },
            "--min-samples" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => opts.min_samples = v,
                None => {
                    eprintln!("--min-samples needs a non-negative integer");
                    return ExitCode::FAILURE;
                }
            },
            "--tolerance" => match it.next() {
                Some(v) => {
                    let parsed = match v.split_once('=') {
                        Some((name, t)) => {
                            t.parse::<f64>().ok().map(|t| (Some(name.to_string()), t))
                        }
                        None => v.parse::<f64>().ok().map(|t| (None, t)),
                    };
                    match parsed {
                        Some((name, t)) if t > 0.0 && t < 1.0 => match name {
                            Some(n) => opts.tolerances.push((n, t)),
                            None => opts.default_tolerance = t,
                        },
                        _ => {
                            eprintln!("--tolerance needs [NAME=]X with 0 < X < 1");
                            return ExitCode::FAILURE;
                        }
                    }
                }
                None => {
                    eprintln!("--tolerance needs a value");
                    return ExitCode::FAILURE;
                }
            },
            "--json-out" => match it.next() {
                Some(v) => opts.json_out = Some(v.clone()),
                None => {
                    eprintln!("--json-out needs a path");
                    return ExitCode::FAILURE;
                }
            },
            other if !other.starts_with('-') && (check || compare) => out = other.to_string(),
            other => {
                eprintln!("unknown argument {other}\n{usage}");
                return ExitCode::FAILURE;
            }
        }
    }
    if check && compare {
        eprintln!("--check and --compare are mutually exclusive\n{usage}");
        return ExitCode::FAILURE;
    }
    if check {
        match check_snapshot(&out) {
            Ok(()) => {
                println!("{out}: snapshot ok");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("{e}");
                ExitCode::FAILURE
            }
        }
    } else if compare {
        opts.samples = samples;
        run_compare(&out, &opts)
    } else {
        write_snapshot(&out, samples);
        ExitCode::SUCCESS
    }
}
