//! `repro` — regenerate the Rocket paper's tables and figures.
//!
//! ```text
//! repro <experiment|all> [--scale N] [--out DIR] [--seed S] [--json PATH] [--csv PATH]
//!       [--perf-log DIR]
//! repro --list
//! ```
//!
//! Every experiment is a parameter *study*: a `Sweep` (base scenario ×
//! named axes) driven through a `Backend`, yielding a structured
//! `StudyReport` with one record per grid cell. This binary owns all
//! formatting and persistence of those reports:
//!
//! * stdout + `--out DIR/<name>.txt` — the rendered report (comparison
//!   table plus the figure narrative); figure-specific CSV series land in
//!   the same directory,
//! * `--json PATH` — one JSON-Lines record per grid cell
//!   (`{"experiment":…,"cell":…,"coords":…,"report":…}`) — the durable
//!   format for cross-PR performance tracking; the file is truncated at
//!   startup so one invocation produces one coherent snapshot,
//! * `--csv PATH` — the study grid as CSV (axis columns + headline
//!   replication statistics); with multiple experiments the file holds
//!   one header+rows section per study, separated by blank lines,
//! * `--perf-log DIR` — per-cell perf logs: every study cell records the
//!   engine's structured perf samples to
//!   `DIR/<study>-cell<N>.perflog.jsonl` and its JSON/CSV rows gain
//!   p50/p99 stage rollups (see `docs/perf-log.md`). Recording never
//!   changes results — instrumentation stays out-of-band.
//!
//! `--list` prints every experiment with a one-line description; unknown
//! experiment names suggest the closest match.

use std::path::PathBuf;
use std::process::ExitCode;

use rocket_bench::experiments::{run_experiment, ExpOptions, ALL_EXPERIMENTS};
use rocket_bench::util::write_result;

fn usage() -> ExitCode {
    eprintln!(
        "usage: repro <experiment|all> [--scale N] [--out DIR] [--seed S] [--json PATH] [--csv PATH] [--perf-log DIR]"
    );
    eprintln!("       repro --list");
    eprintln!("experiments:");
    for (name, _) in ALL_EXPERIMENTS {
        eprintln!("  {name}");
    }
    ExitCode::FAILURE
}

fn list() -> ExitCode {
    let width = ALL_EXPERIMENTS
        .iter()
        .map(|(n, _)| n.len())
        .max()
        .unwrap_or(0);
    for (name, exp) in ALL_EXPERIMENTS {
        println!("{name:<width$}  {}", exp.description());
    }
    ExitCode::SUCCESS
}

/// Levenshtein edit distance (iterative two-row DP) for closest-match
/// suggestions on unknown experiment names.
fn edit_distance(a: &str, b: &str) -> usize {
    let (a, b): (Vec<char>, Vec<char>) = (a.chars().collect(), b.chars().collect());
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let subst = prev[j] + usize::from(ca != cb);
            cur[j + 1] = subst.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// The known experiment name closest to `target` (including `all`), if
/// any is close enough to plausibly be a typo.
fn closest_experiment(target: &str) -> Option<&'static str> {
    ALL_EXPERIMENTS
        .iter()
        .map(|&(n, _)| n)
        .chain(std::iter::once("all"))
        .map(|n| (edit_distance(target, n), n))
        .min()
        .filter(|&(d, n)| d <= n.len().max(target.len()) / 2)
        .map(|(_, n)| n)
}

/// Truncates `path` (creating parent directories), so appended records
/// form one coherent snapshot per invocation.
fn start_fresh(path: &PathBuf) -> Result<(), std::io::Error> {
    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, "")
}

fn append(path: &PathBuf, content: &str) {
    let written = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .and_then(|mut f| std::io::Write::write_all(&mut f, content.as_bytes()));
    if let Err(e) = written {
        eprintln!("warning: could not persist to {}: {e}", path.display());
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        return usage();
    }
    if args.iter().any(|a| a == "--list") {
        return list();
    }
    let mut target = String::new();
    let mut opts = ExpOptions::default();
    let mut json_out: Option<PathBuf> = None;
    let mut csv_out: Option<PathBuf> = None;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => opts.extra_scale = v,
                None => return usage(),
            },
            "--out" => match it.next() {
                Some(v) => opts.out_dir = PathBuf::from(v),
                None => return usage(),
            },
            "--seed" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => opts.seed = v,
                None => return usage(),
            },
            "--json" => match it.next() {
                Some(v) => json_out = Some(PathBuf::from(v)),
                None => return usage(),
            },
            "--csv" => match it.next() {
                Some(v) => csv_out = Some(PathBuf::from(v)),
                None => return usage(),
            },
            "--perf-log" => match it.next() {
                Some(v) => opts.perf_log = Some(PathBuf::from(v)),
                None => return usage(),
            },
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            name if target.is_empty() => target = name.to_string(),
            _ => return usage(),
        }
    }
    let selected: Vec<_> = if target == "all" {
        ALL_EXPERIMENTS.to_vec()
    } else {
        match ALL_EXPERIMENTS.iter().find(|&&(n, _)| n == target) {
            Some(&entry) => vec![entry],
            None => {
                eprintln!("unknown experiment '{target}'");
                if let Some(suggestion) = closest_experiment(&target) {
                    eprintln!("did you mean '{suggestion}'?");
                }
                return usage();
            }
        }
    };
    // One invocation = one snapshot: start the sink files fresh.
    for path in [&json_out, &csv_out].into_iter().flatten() {
        if let Err(e) = start_fresh(path) {
            eprintln!("cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }
    let mut first_csv = true;
    for (name, exp) in selected {
        eprintln!("== running {name} ==");
        let t0 = std::time::Instant::now();
        let report = run_experiment(exp, &opts);
        let rendered = report.render();
        println!("{rendered}");
        write_result(&opts.out_dir, &format!("{name}.txt"), &rendered);
        if let Some(path) = &json_out {
            let mut lines = report.json_lines().join("\n");
            lines.push('\n');
            append(path, &lines);
        }
        if let Some(path) = &csv_out {
            let mut section = String::new();
            if !first_csv {
                section.push('\n');
            }
            section.push_str(&report.to_csv());
            append(path, &section);
            first_csv = false;
        }
        eprintln!(
            "== {name} done in {:.1}s ({} cells, written to {}) ==\n",
            t0.elapsed().as_secs_f64(),
            report.cells.len(),
            opts.out_dir.join(format!("{name}.txt")).display()
        );
    }
    ExitCode::SUCCESS
}
