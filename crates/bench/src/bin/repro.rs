//! `repro` — regenerate the Rocket paper's tables and figures.
//!
//! ```text
//! repro <experiment|all> [--scale N] [--out DIR] [--seed S] [--json PATH]
//! ```
//!
//! Experiments: table1, fig7, fig8, fig9, fig10, fig11, fig12, fig13,
//! fig14, fig15, cartesius96, transports, model. Reports print to stdout
//! and land in `--out` (default `results/`) alongside CSV series for
//! plotting. `--json PATH` appends every run/replication report as one
//! JSON-Lines record (`{"experiment":..,"report":..}`) — the durable
//! format for cross-PR performance tracking; the file is truncated at
//! startup so one invocation produces one coherent snapshot.

use std::path::PathBuf;
use std::process::ExitCode;

use rocket_bench::experiments::{run_experiment, ExpOptions, ALL_EXPERIMENTS};

fn usage() -> ExitCode {
    eprintln!("usage: repro <experiment|all> [--scale N] [--out DIR] [--seed S] [--json PATH]");
    eprintln!("experiments:");
    for (name, _) in ALL_EXPERIMENTS {
        eprintln!("  {name}");
    }
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        return usage();
    }
    let mut target = String::new();
    let mut opts = ExpOptions::default();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => opts.extra_scale = v,
                None => return usage(),
            },
            "--out" => match it.next() {
                Some(v) => opts.out_dir = PathBuf::from(v),
                None => return usage(),
            },
            "--seed" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => opts.seed = v,
                None => return usage(),
            },
            "--json" => match it.next() {
                Some(v) => opts.json_out = Some(PathBuf::from(v)),
                None => return usage(),
            },
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            name if target.is_empty() => target = name.to_string(),
            _ => return usage(),
        }
    }
    let selected: Vec<_> = if target == "all" {
        ALL_EXPERIMENTS.to_vec()
    } else {
        match ALL_EXPERIMENTS.iter().find(|&&(n, _)| n == target) {
            Some(&entry) => vec![entry],
            None => {
                eprintln!("unknown experiment '{target}'");
                return usage();
            }
        }
    };
    // One invocation = one snapshot: start the JSON-Lines file fresh
    // (experiments append to it as they run).
    if let Some(path) = &opts.json_out {
        let prepared = match path.parent().filter(|p| !p.as_os_str().is_empty()) {
            Some(parent) => std::fs::create_dir_all(parent),
            None => Ok(()),
        }
        .and_then(|()| std::fs::write(path, ""));
        if let Err(e) = prepared {
            eprintln!("cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }
    for (name, exp) in selected {
        eprintln!("== running {name} ==");
        let t0 = std::time::Instant::now();
        let report = run_experiment(exp, &opts);
        println!("{report}");
        eprintln!(
            "== {name} done in {:.1}s (written to {}) ==\n",
            t0.elapsed().as_secs_f64(),
            opts.out_dir.join(format!("{name}.txt")).display()
        );
    }
    ExitCode::SUCCESS
}
