//! Canonical benchmark scenarios ("anchors") shared by the criterion
//! benches (`benches/des.rs`), the `rocket-bench-snapshot` binary, and the
//! simulator's shard-equivalence tests.
//!
//! Keeping these in one place means the committed snapshot
//! (`BENCH_8.json`), the CI smoke runs, and the equivalence suite all
//! exercise the *same* configurations — a bench regression and a
//! correctness regression point at the same scenario.

use rocket_core::{NodeSpec, Scenario, WorkloadProfile};
use rocket_stats::Dist;

/// The deterministic synthetic workload every anchor runs: constant stage
/// times so run-to-run noise is zero and only engine overhead varies.
pub fn toy_workload(items: u64) -> WorkloadProfile {
    WorkloadProfile {
        name: "bench",
        items,
        file_bytes: 1_000_000,
        item_bytes: 10_000_000,
        parse: Dist::Constant(10e-3),
        preprocess: Some(Dist::Constant(5e-3)),
        compare: Dist::Constant(1e-3),
        postprocess: Dist::Constant(0.0),
        paper_device_slots: 16,
        paper_host_slots: 64,
    }
}

/// A uniform cluster over the toy workload.
pub fn scenario(items: u64, nodes: usize, node: NodeSpec) -> Scenario {
    Scenario::builder()
        .workload(toy_workload(items))
        .nodes(nodes, node)
        .build()
}

/// One node, one GPU, n = 96 (4 560 pairs): the single-node baseline.
pub fn single_node_n96() -> Scenario {
    scenario(96, 1, NodeSpec::uniform(1, 32, 64))
}

/// Four single-GPU nodes, n = 96, distributed cache on.
pub fn four_nodes_n96_distcache() -> Scenario {
    scenario(96, 4, NodeSpec::uniform(1, 16, 32))
}

/// Sixteen 4-GPU nodes (64 GPUs), n = 256 (32 640 pairs), distributed
/// cache on: the hot-path scaling anchor.
pub fn sixteen_nodes_4gpu_n256_distcache() -> Scenario {
    scenario(256, 16, NodeSpec::uniform(4, 24, 96))
}

/// 1 024 single-GPU nodes, n = 1 024 (523 776 pairs): the
/// thousands-of-nodes anchor the sharded engine targets. Network latency
/// is cloud-scale (200 µs instead of the InfiniBand default) — that widens
/// the conservative lookahead window, so the parallel engine synchronizes
/// thousands of times instead of millions.
pub fn thousand_nodes() -> Scenario {
    let mut s = scenario(1024, 1024, NodeSpec::uniform(1, 8, 16));
    s.net_latency = 200e-6;
    s
}

/// A named anchor: snapshot/bench name plus its scenario constructor.
pub type Anchor = (&'static str, fn() -> Scenario);

/// Every anchor with its snapshot/bench name.
pub const ALL: &[Anchor] = &[
    ("single_node_n96", single_node_n96),
    ("four_nodes_n96_distcache", four_nodes_n96_distcache),
    (
        "sixteen_nodes_4gpu_n256_distcache",
        sixteen_nodes_4gpu_n256_distcache,
    ),
    ("thousand_nodes", thousand_nodes),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anchors_validate() {
        for (name, make) in ALL {
            let s = make();
            assert!(s.validate().is_ok(), "{name} invalid");
        }
    }

    #[test]
    fn thousand_nodes_shape() {
        let s = thousand_nodes();
        assert_eq!(s.nodes.len(), 1024);
        assert_eq!(s.total_gpus(), 1024);
        assert_eq!(s.workload.pairs(), 1024 * 1023 / 2);
    }
}
