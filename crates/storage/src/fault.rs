//! Deterministic fault injection for robustness testing.

use std::sync::atomic::{AtomicU64, Ordering};

use bytes::Bytes;

use crate::store::{ObjectStore, Result, StorageError};

/// Wraps a store and fails every `period`-th read deterministically
/// (1-indexed: with `period = 3`, reads 3, 6, 9, … fail).
///
/// Failures are transient — retrying the same key succeeds unless the retry
/// itself lands on a failing tick — which models the flaky shared file
/// server Rocket must tolerate.
pub struct FaultStore<S> {
    inner: S,
    period: u64,
    counter: AtomicU64,
}

impl<S: ObjectStore> FaultStore<S> {
    /// Creates a wrapper failing every `period`-th read; `period = 0`
    /// disables injection.
    pub fn every(inner: S, period: u64) -> Self {
        Self {
            inner,
            period,
            counter: AtomicU64::new(0),
        }
    }

    /// Number of reads attempted so far.
    pub fn attempts(&self) -> u64 {
        self.counter.load(Ordering::Relaxed)
    }

    /// Access to the wrapped store.
    pub fn inner(&self) -> &S {
        &self.inner
    }
}

impl<S: ObjectStore> ObjectStore for FaultStore<S> {
    fn list(&self) -> Vec<String> {
        self.inner.list()
    }

    fn size(&self, key: &str) -> Result<u64> {
        self.inner.size(key)
    }

    fn read(&self, key: &str) -> Result<Bytes> {
        let n = self.counter.fetch_add(1, Ordering::Relaxed) + 1;
        if self.period != 0 && n.is_multiple_of(self.period) {
            return Err(StorageError::Unavailable(format!(
                "injected fault on read #{n} (key {key})"
            )));
        }
        self.inner.read(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemStore;

    fn base() -> MemStore {
        MemStore::from_iter([("k", vec![9u8; 4])])
    }

    #[test]
    fn fails_on_schedule() {
        let s = FaultStore::every(base(), 3);
        assert!(s.read("k").is_ok());
        assert!(s.read("k").is_ok());
        assert!(s.read("k").is_err());
        assert!(s.read("k").is_ok());
        assert_eq!(s.attempts(), 4);
    }

    #[test]
    fn zero_period_never_fails() {
        let s = FaultStore::every(base(), 0);
        for _ in 0..10 {
            assert!(s.read("k").is_ok());
        }
    }

    #[test]
    fn size_and_list_unaffected() {
        let s = FaultStore::every(base(), 1);
        assert_eq!(s.list(), vec!["k"]);
        assert_eq!(s.size("k").unwrap(), 4);
        // Every read fails with period 1.
        assert!(s.read("k").is_err());
    }
}
