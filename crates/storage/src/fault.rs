//! Deterministic fault injection and retry for robustness testing.
//!
//! [`FaultStore`] wraps any [`ObjectStore`] and injects transient failures
//! on a deterministic schedule — either every Nth read, or a seeded
//! probabilistic stream covering both reads and writes. [`RetryStore`]
//! composes any store with a [`Retry`] policy so transient failures are
//! absorbed the way Rocket's worker-side I/O path absorbs a flaky shared
//! file server.

use std::sync::atomic::{AtomicU64, Ordering};

use bytes::Bytes;
use rocket_stats::{splitmix64, Retry};

use crate::store::{ObjectStore, Result, StorageError};

/// Which operations fail, and on what schedule.
#[derive(Debug, Clone)]
enum Schedule {
    /// Fail every `period`-th read (1-indexed); writes pass through.
    Every { period: u64 },
    /// Fail each read with probability `read_p` and each write with
    /// probability `write_p`, decided by a seeded hash of the operation
    /// index — fully deterministic for a given seed.
    Seeded {
        seed: u64,
        read_p: f64,
        write_p: f64,
    },
}

/// Wraps a store and fails operations deterministically.
///
/// Two schedules are available:
///
/// * [`FaultStore::every`] — fails every `period`-th read (1-indexed: with
///   `period = 3`, reads 3, 6, 9, … fail). Writes are unaffected, matching
///   the original read-only injection behaviour.
/// * [`FaultStore::seeded`] — fails reads/writes with given probabilities,
///   decided by `splitmix64(seed ^ op_index)`; the failure pattern is a pure
///   function of the seed, so replays are bit-identical.
///
/// Failures are transient — retrying the same key succeeds unless the retry
/// itself lands on a failing tick — which models the flaky shared file
/// server Rocket must tolerate.
pub struct FaultStore<S> {
    inner: S,
    schedule: Schedule,
    reads: AtomicU64,
    writes: AtomicU64,
}

impl<S: ObjectStore> FaultStore<S> {
    /// Creates a wrapper failing every `period`-th read; `period = 0`
    /// disables injection.
    pub fn every(inner: S, period: u64) -> Self {
        Self {
            inner,
            schedule: Schedule::Every { period },
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
        }
    }

    /// Creates a wrapper failing each read with probability `read_p` and
    /// each write with probability `write_p`, deterministically from `seed`.
    pub fn seeded(inner: S, seed: u64, read_p: f64, write_p: f64) -> Self {
        assert!((0.0..=1.0).contains(&read_p) && (0.0..=1.0).contains(&write_p));
        Self {
            inner,
            schedule: Schedule::Seeded {
                seed,
                read_p,
                write_p,
            },
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
        }
    }

    /// Number of reads attempted so far.
    pub fn attempts(&self) -> u64 {
        self.reads.load(Ordering::Relaxed)
    }

    /// Number of writes attempted so far.
    pub fn write_attempts(&self) -> u64 {
        self.writes.load(Ordering::Relaxed)
    }

    /// Access to the wrapped store.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Deterministic coin flip for operation `n` on stream `salt`.
    fn flip(seed: u64, salt: u64, n: u64, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        let mut state = seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ n;
        let u = splitmix64(&mut state) as f64 / u64::MAX as f64;
        u < p
    }
}

impl<S: ObjectStore> ObjectStore for FaultStore<S> {
    fn list(&self) -> Vec<String> {
        self.inner.list()
    }

    fn size(&self, key: &str) -> Result<u64> {
        self.inner.size(key)
    }

    fn read(&self, key: &str) -> Result<Bytes> {
        let n = self.reads.fetch_add(1, Ordering::Relaxed) + 1;
        let fail = match self.schedule {
            Schedule::Every { period } => period != 0 && n.is_multiple_of(period),
            Schedule::Seeded { seed, read_p, .. } => Self::flip(seed, 1, n, read_p),
        };
        if fail {
            return Err(StorageError::Unavailable(format!(
                "injected fault on read #{n} (key {key})"
            )));
        }
        self.inner.read(key)
    }

    fn write(&self, key: &str, data: Bytes) -> Result<()> {
        let n = self.writes.fetch_add(1, Ordering::Relaxed) + 1;
        let fail = match self.schedule {
            Schedule::Every { .. } => false,
            Schedule::Seeded { seed, write_p, .. } => Self::flip(seed, 2, n, write_p),
        };
        if fail {
            return Err(StorageError::Unavailable(format!(
                "injected fault on write #{n} (key {key})"
            )));
        }
        self.inner.write(key, data)
    }
}

/// Wraps a store with a [`Retry`] policy: transient failures
/// ([`StorageError::Unavailable`] and [`StorageError::Io`]) are retried with
/// exponential backoff; [`StorageError::NotFound`] fails immediately since
/// retrying cannot make an object exist.
pub struct RetryStore<S> {
    inner: S,
    policy: Retry,
}

impl<S: ObjectStore> RetryStore<S> {
    /// Wraps `inner` with `policy`.
    pub fn new(inner: S, policy: Retry) -> Self {
        Self { inner, policy }
    }

    /// Access to the wrapped store.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    fn with_retry<T>(&self, op: impl Fn() -> Result<T>) -> Result<T> {
        let delays = self.policy.delays();
        let mut last = None;
        for attempt in 0..self.policy.attempts() {
            if attempt > 0 {
                let d = delays[attempt as usize - 1];
                if !d.is_zero() {
                    std::thread::sleep(d);
                }
            }
            match op() {
                Ok(v) => return Ok(v),
                // Retrying cannot make a missing object appear.
                Err(e @ StorageError::NotFound(_)) => return Err(e),
                Err(e) => last = Some(e),
            }
        }
        Err(last.expect("at least one attempt runs"))
    }
}

impl<S: ObjectStore> ObjectStore for RetryStore<S> {
    fn list(&self) -> Vec<String> {
        self.inner.list()
    }

    fn size(&self, key: &str) -> Result<u64> {
        self.with_retry(|| self.inner.size(key))
    }

    fn read(&self, key: &str) -> Result<Bytes> {
        self.with_retry(|| self.inner.read(key))
    }

    fn write(&self, key: &str, data: Bytes) -> Result<()> {
        self.with_retry(|| self.inner.write(key, data.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemStore;
    use std::time::Duration;

    fn base() -> MemStore {
        MemStore::from_iter([("k", vec![9u8; 4])])
    }

    #[test]
    fn fails_on_schedule() {
        let s = FaultStore::every(base(), 3);
        assert!(s.read("k").is_ok());
        assert!(s.read("k").is_ok());
        assert!(s.read("k").is_err());
        assert!(s.read("k").is_ok());
        assert_eq!(s.attempts(), 4);
    }

    #[test]
    fn zero_period_never_fails() {
        let s = FaultStore::every(base(), 0);
        for _ in 0..10 {
            assert!(s.read("k").is_ok());
        }
    }

    #[test]
    fn size_and_list_unaffected() {
        let s = FaultStore::every(base(), 1);
        assert_eq!(s.list(), vec!["k"]);
        assert_eq!(s.size("k").unwrap(), 4);
        // Every read fails with period 1.
        assert!(s.read("k").is_err());
    }

    #[test]
    fn every_mode_leaves_writes_alone() {
        let s = FaultStore::every(base(), 1);
        for i in 0..5 {
            assert!(s.write(&format!("w{i}"), Bytes::from_static(b"x")).is_ok());
        }
        assert_eq!(s.write_attempts(), 5);
    }

    #[test]
    fn seeded_schedule_is_reproducible() {
        let pattern = |seed: u64| -> Vec<bool> {
            let s = FaultStore::seeded(base(), seed, 0.3, 0.0);
            (0..64).map(|_| s.read("k").is_err()).collect()
        };
        let a = pattern(7);
        assert_eq!(a, pattern(7));
        assert_ne!(a, pattern(8));
        let fails = a.iter().filter(|&&f| f).count();
        assert!((5..28).contains(&fails), "p=0.3 over 64 reads: {fails}");
    }

    #[test]
    fn seeded_write_injection() {
        let s = FaultStore::seeded(base(), 11, 0.0, 1.0);
        assert!(s.read("k").is_ok(), "read_p = 0 never fails reads");
        assert!(matches!(
            s.write("w", Bytes::new()),
            Err(StorageError::Unavailable(_))
        ));
        let s = FaultStore::seeded(base(), 11, 0.0, 0.0);
        assert!(s.write("w", Bytes::from_static(b"ok")).is_ok());
        assert_eq!(s.inner().read("w").unwrap().as_ref(), b"ok");
    }

    #[test]
    fn retry_store_absorbs_transient_faults() {
        // period 2 → every other read fails; one retry always recovers.
        let faulty = FaultStore::every(base(), 2);
        let s = RetryStore::new(faulty, Retry::new(3, Duration::ZERO));
        for _ in 0..8 {
            assert!(s.read("k").is_ok());
        }
        assert!(s.inner().attempts() > 8, "retries hit the inner store");
    }

    #[test]
    fn retry_store_gives_up_after_attempts() {
        let faulty = FaultStore::every(base(), 1); // every read fails
        let s = RetryStore::new(faulty, Retry::new(4, Duration::ZERO));
        assert!(matches!(s.read("k"), Err(StorageError::Unavailable(_))));
        assert_eq!(s.inner().attempts(), 4);
    }

    #[test]
    fn retry_store_roundtrips_writes() {
        let faulty = FaultStore::seeded(base(), 3, 0.0, 0.5);
        let s = RetryStore::new(faulty, Retry::new(6, Duration::ZERO));
        s.write("out", Bytes::from_static(b"payload")).unwrap();
        assert_eq!(s.read("out").unwrap().as_ref(), b"payload");
    }

    #[test]
    fn retry_store_not_found_is_not_retried() {
        let s = RetryStore::new(base(), Retry::new(5, Duration::ZERO));
        assert!(matches!(s.read("nope"), Err(StorageError::NotFound(_))));
    }
}
