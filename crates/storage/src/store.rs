//! The [`ObjectStore`] trait and the basic in-memory / on-disk backends.

use std::collections::BTreeMap;
use std::fmt;
use std::io;
use std::path::PathBuf;

use bytes::Bytes;
use rocket_sanitize::RwLock;

/// Errors produced by storage backends.
#[derive(Debug)]
pub enum StorageError {
    /// The requested object does not exist.
    NotFound(String),
    /// An underlying I/O failure (on-disk backend, injected faults).
    Io(io::Error),
    /// The store rejected the request (e.g. injected fault).
    Unavailable(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::NotFound(key) => write!(f, "object not found: {key}"),
            StorageError::Io(e) => write!(f, "storage I/O error: {e}"),
            StorageError::Unavailable(why) => write!(f, "storage unavailable: {why}"),
        }
    }
}

impl std::error::Error for StorageError {}

impl From<io::Error> for StorageError {
    fn from(e: io::Error) -> Self {
        if e.kind() == io::ErrorKind::NotFound {
            StorageError::NotFound(e.to_string())
        } else {
            StorageError::Io(e)
        }
    }
}

/// Result alias for storage operations.
pub type Result<T> = std::result::Result<T, StorageError>;

/// An object store keyed by string paths.
///
/// Implementations must be thread-safe: Rocket's I/O thread and tests hit
/// stores concurrently. Reads are the primary operation; stores that can
/// persist results additionally override [`write`](ObjectStore::write)
/// (the default rejects writes as `Unavailable`).
pub trait ObjectStore: Send + Sync {
    /// Lists all object keys (sorted).
    fn list(&self) -> Vec<String>;

    /// Returns an object's size in bytes without reading it.
    fn size(&self, key: &str) -> Result<u64>;

    /// Reads an entire object.
    fn read(&self, key: &str) -> Result<Bytes>;

    /// Writes (or replaces) an entire object. Read-only stores keep the
    /// default, which fails with [`StorageError::Unavailable`].
    fn write(&self, key: &str, _data: Bytes) -> Result<()> {
        Err(StorageError::Unavailable(format!(
            "read-only store rejects write of {key}"
        )))
    }

    /// Sum of all object sizes ("size of raw data on disk", Table 1).
    fn total_bytes(&self) -> u64 {
        self.list().iter().filter_map(|k| self.size(k).ok()).sum()
    }
}

/// In-memory object store. Cheap clones of stored [`Bytes`] make reads
/// zero-copy.
#[derive(Debug)]
pub struct MemStore {
    objects: RwLock<BTreeMap<String, Bytes>>,
}

impl Default for MemStore {
    fn default() -> Self {
        Self::new()
    }
}

impl MemStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self {
            objects: RwLock::named("objects", BTreeMap::new()),
        }
    }

    /// Inserts (or replaces) an object.
    pub fn put(&self, key: impl Into<String>, data: impl Into<Bytes>) {
        self.objects.write().insert(key.into(), data.into());
    }

    /// Builds a store from an iterator of `(key, bytes)` pairs.
    ///
    /// Not `FromIterator`: the generic `(K, V)` bounds (rather than a fixed
    /// item type) make an inherent constructor clearer at call sites.
    #[allow(clippy::should_implement_trait)]
    pub fn from_iter<K, V>(items: impl IntoIterator<Item = (K, V)>) -> Self
    where
        K: Into<String>,
        V: Into<Bytes>,
    {
        let store = Self::new();
        for (k, v) in items {
            store.put(k, v);
        }
        store
    }

    /// Number of objects.
    pub fn len(&self) -> usize {
        self.objects.read().len()
    }

    /// True if the store holds no objects.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl ObjectStore for MemStore {
    fn list(&self) -> Vec<String> {
        self.objects.read().keys().cloned().collect()
    }

    fn size(&self, key: &str) -> Result<u64> {
        self.objects
            .read()
            .get(key)
            .map(|b| b.len() as u64)
            .ok_or_else(|| StorageError::NotFound(key.to_string()))
    }

    fn read(&self, key: &str) -> Result<Bytes> {
        self.objects
            .read()
            .get(key)
            .cloned()
            .ok_or_else(|| StorageError::NotFound(key.to_string()))
    }

    fn write(&self, key: &str, data: Bytes) -> Result<()> {
        self.put(key, data);
        Ok(())
    }
}

/// Filesystem-backed store rooted at a directory. Keys are paths relative to
/// the root; only regular files directly under the root (recursively) are
/// listed.
#[derive(Debug)]
pub struct DirStore {
    root: PathBuf,
}

impl DirStore {
    /// Creates a store rooted at `root`.
    pub fn new(root: impl Into<PathBuf>) -> Self {
        Self { root: root.into() }
    }

    /// The root directory.
    pub fn root(&self) -> &PathBuf {
        &self.root
    }

    fn resolve(&self, key: &str) -> Result<PathBuf> {
        // Reject path traversal: keys must stay under the root.
        if key.split('/').any(|c| c == "..") || key.starts_with('/') {
            return Err(StorageError::Unavailable(format!(
                "key escapes store root: {key}"
            )));
        }
        Ok(self.root.join(key))
    }

    fn walk(dir: &PathBuf, prefix: &str, out: &mut Vec<String>) {
        let Ok(entries) = std::fs::read_dir(dir) else {
            return;
        };
        for entry in entries.flatten() {
            let name = entry.file_name().to_string_lossy().into_owned();
            let rel = if prefix.is_empty() {
                name.clone()
            } else {
                format!("{prefix}/{name}")
            };
            let path = entry.path();
            if path.is_dir() {
                Self::walk(&path, &rel, out);
            } else if path.is_file() {
                out.push(rel);
            }
        }
    }
}

impl ObjectStore for DirStore {
    fn list(&self) -> Vec<String> {
        let mut out = Vec::new();
        Self::walk(&self.root, "", &mut out);
        out.sort_unstable();
        out
    }

    fn size(&self, key: &str) -> Result<u64> {
        let path = self.resolve(key)?;
        Ok(std::fs::metadata(path)?.len())
    }

    fn read(&self, key: &str) -> Result<Bytes> {
        let path = self.resolve(key)?;
        Ok(Bytes::from(std::fs::read(path)?))
    }

    fn write(&self, key: &str, data: Bytes) -> Result<()> {
        let path = self.resolve(key)?;
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        Ok(std::fs::write(path, &data)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memstore_roundtrip() {
        let s = MemStore::new();
        s.put("a.bin", vec![1, 2, 3]);
        s.put("b.bin", vec![4; 10]);
        assert_eq!(s.list(), vec!["a.bin", "b.bin"]);
        assert_eq!(s.size("a.bin").unwrap(), 3);
        assert_eq!(s.read("a.bin").unwrap().as_ref(), &[1, 2, 3]);
        assert_eq!(s.total_bytes(), 13);
    }

    #[test]
    fn memstore_missing_key() {
        let s = MemStore::new();
        assert!(matches!(s.read("nope"), Err(StorageError::NotFound(_))));
        assert!(matches!(s.size("nope"), Err(StorageError::NotFound(_))));
    }

    #[test]
    fn memstore_from_iter() {
        let s = MemStore::from_iter([("x", vec![0u8; 4]), ("y", vec![1u8; 2])]);
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
    }

    #[test]
    fn dirstore_lists_and_reads() {
        let dir = std::env::temp_dir().join(format!("rocket-dirstore-{}", std::process::id()));
        let sub = dir.join("sub");
        std::fs::create_dir_all(&sub).unwrap();
        std::fs::write(dir.join("one.txt"), b"hello").unwrap();
        std::fs::write(sub.join("two.txt"), b"world!").unwrap();

        let s = DirStore::new(&dir);
        assert_eq!(s.list(), vec!["one.txt", "sub/two.txt"]);
        assert_eq!(s.size("one.txt").unwrap(), 5);
        assert_eq!(s.read("sub/two.txt").unwrap().as_ref(), b"world!");

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn dirstore_rejects_traversal() {
        let s = DirStore::new("/tmp");
        assert!(matches!(
            s.read("../etc/passwd"),
            Err(StorageError::Unavailable(_))
        ));
        assert!(matches!(
            s.read("/etc/passwd"),
            Err(StorageError::Unavailable(_))
        ));
    }

    #[test]
    fn memstore_write_roundtrip() {
        let s = MemStore::new();
        s.write("w.bin", Bytes::from_static(b"abc")).unwrap();
        assert_eq!(s.read("w.bin").unwrap().as_ref(), b"abc");
    }

    #[test]
    fn dirstore_write_creates_parents() {
        let dir = std::env::temp_dir().join(format!("rocket-dirstore-w-{}", std::process::id()));
        let s = DirStore::new(&dir);
        s.write("deep/nested/out.bin", Bytes::from_static(b"xyz"))
            .unwrap();
        assert_eq!(s.read("deep/nested/out.bin").unwrap().as_ref(), b"xyz");
        assert!(matches!(
            s.write("../escape.bin", Bytes::new()),
            Err(StorageError::Unavailable(_))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn default_write_rejects() {
        struct ReadOnly;
        impl ObjectStore for ReadOnly {
            fn list(&self) -> Vec<String> {
                Vec::new()
            }
            fn size(&self, key: &str) -> Result<u64> {
                Err(StorageError::NotFound(key.into()))
            }
            fn read(&self, key: &str) -> Result<Bytes> {
                Err(StorageError::NotFound(key.into()))
            }
        }
        assert!(matches!(
            ReadOnly.write("k", Bytes::new()),
            Err(StorageError::Unavailable(_))
        ));
    }

    #[test]
    fn dirstore_missing_file_maps_to_not_found() {
        let s = DirStore::new(std::env::temp_dir());
        assert!(matches!(
            s.read("definitely-not-here-3141592.bin"),
            Err(StorageError::NotFound(_))
        ));
    }
}
