//! Latency/bandwidth-modelled store wrapper and aggregate I/O accounting.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;

use crate::store::{ObjectStore, Result};

/// Aggregate I/O counters shared across the cluster.
///
/// The paper's Fig 12 (bottom row) reports "average I/O usage": total bytes
/// transferred by all nodes divided by total run time. `IoStats` accumulates
/// the numerator; the caller supplies the run time.
#[derive(Debug, Default)]
pub struct IoStats {
    requests: AtomicU64,
    bytes: AtomicU64,
    errors: AtomicU64,
}

impl IoStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a successful read of `n` bytes.
    pub fn record_read(&self, n: u64) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(n, Ordering::Relaxed);
    }

    /// Records a failed request.
    pub fn record_error(&self) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of requests issued.
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Total bytes read.
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Number of failed requests.
    pub fn errors(&self) -> u64 {
        self.errors.load(Ordering::Relaxed)
    }

    /// Average I/O usage in MB/s over `runtime_secs` (Fig 12's metric).
    pub fn average_mbps(&self, runtime_secs: f64) -> f64 {
        if runtime_secs <= 0.0 {
            return 0.0;
        }
        self.bytes() as f64 / 1e6 / runtime_secs
    }
}

/// Wraps a store with a per-request latency and a shared bandwidth cap,
/// emulating a central file server (the paper's MinIO over InfiniBand).
///
/// With `sleep` enabled the wrapper actually delays the calling thread — the
/// threaded runtime uses this to make I/O overlap observable. The simulator
/// never sleeps: it asks [`ModeledStore::modelled_read_time`] for the cost
/// and advances virtual time itself.
pub struct ModeledStore<S> {
    inner: S,
    latency: Duration,
    bandwidth_bytes_per_sec: f64,
    sleep: bool,
    stats: Arc<IoStats>,
}

impl<S: ObjectStore> ModeledStore<S> {
    /// Wraps `inner` with `latency` per request and a bandwidth cap in
    /// bytes/second (`f64::INFINITY` for unlimited).
    pub fn new(inner: S, latency: Duration, bandwidth_bytes_per_sec: f64) -> Self {
        Self {
            inner,
            latency,
            bandwidth_bytes_per_sec,
            sleep: false,
            stats: Arc::new(IoStats::new()),
        }
    }

    /// Enables real sleeping in `read` (threaded-runtime mode).
    pub fn with_sleep(mut self, sleep: bool) -> Self {
        self.sleep = sleep;
        self
    }

    /// Shares these counters (e.g. one `IoStats` across many node stores).
    pub fn with_stats(mut self, stats: Arc<IoStats>) -> Self {
        self.stats = stats;
        self
    }

    /// The shared I/O counters.
    pub fn stats(&self) -> Arc<IoStats> {
        Arc::clone(&self.stats)
    }

    /// The modelled wall time to read `bytes` bytes: latency + transfer.
    pub fn modelled_read_time(&self, bytes: u64) -> Duration {
        let transfer = if self.bandwidth_bytes_per_sec.is_finite() {
            Duration::from_secs_f64(bytes as f64 / self.bandwidth_bytes_per_sec)
        } else {
            Duration::ZERO
        };
        self.latency + transfer
    }

    /// Access to the wrapped store.
    pub fn inner(&self) -> &S {
        &self.inner
    }
}

impl<S: ObjectStore> ObjectStore for ModeledStore<S> {
    fn list(&self) -> Vec<String> {
        self.inner.list()
    }

    fn size(&self, key: &str) -> Result<u64> {
        self.inner.size(key)
    }

    fn read(&self, key: &str) -> Result<Bytes> {
        match self.inner.read(key) {
            Ok(data) => {
                self.stats.record_read(data.len() as u64);
                if self.sleep {
                    std::thread::sleep(self.modelled_read_time(data.len() as u64));
                }
                Ok(data)
            }
            Err(e) => {
                self.stats.record_error();
                Err(e)
            }
        }
    }

    fn write(&self, key: &str, data: Bytes) -> Result<()> {
        self.inner.write(key, data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemStore;
    use std::time::Instant;

    fn store_with(data: &[(&str, usize)]) -> MemStore {
        MemStore::from_iter(data.iter().map(|&(k, n)| (k, vec![0u8; n])))
    }

    #[test]
    fn stats_accumulate() {
        let m = ModeledStore::new(
            store_with(&[("a", 100), ("b", 50)]),
            Duration::ZERO,
            f64::INFINITY,
        );
        m.read("a").unwrap();
        m.read("b").unwrap();
        assert!(m.read("missing").is_err());
        let stats = m.stats();
        assert_eq!(stats.requests(), 3);
        assert_eq!(stats.bytes(), 150);
        assert_eq!(stats.errors(), 1);
    }

    #[test]
    fn average_mbps() {
        let s = IoStats::new();
        s.record_read(10_000_000);
        assert!((s.average_mbps(2.0) - 5.0).abs() < 1e-9);
        assert_eq!(s.average_mbps(0.0), 0.0);
    }

    #[test]
    fn modelled_time_includes_latency_and_transfer() {
        let m = ModeledStore::new(store_with(&[]), Duration::from_millis(5), 1e6);
        let t = m.modelled_read_time(2_000_000);
        assert!((t.as_secs_f64() - 2.005).abs() < 1e-9);
    }

    #[test]
    fn infinite_bandwidth_is_latency_only() {
        let m = ModeledStore::new(store_with(&[]), Duration::from_millis(3), f64::INFINITY);
        assert_eq!(m.modelled_read_time(u64::MAX), Duration::from_millis(3));
    }

    #[test]
    fn sleep_mode_actually_delays() {
        let m = ModeledStore::new(
            store_with(&[("a", 10)]),
            Duration::from_millis(20),
            f64::INFINITY,
        )
        .with_sleep(true);
        let t0 = Instant::now();
        m.read("a").unwrap();
        assert!(t0.elapsed() >= Duration::from_millis(19));
    }

    #[test]
    fn shared_stats_across_wrappers() {
        let shared = Arc::new(IoStats::new());
        let a = ModeledStore::new(store_with(&[("x", 7)]), Duration::ZERO, f64::INFINITY)
            .with_stats(Arc::clone(&shared));
        let b = ModeledStore::new(store_with(&[("y", 5)]), Duration::ZERO, f64::INFINITY)
            .with_stats(Arc::clone(&shared));
        a.read("x").unwrap();
        b.read("y").unwrap();
        assert_eq!(shared.bytes(), 12);
        assert_eq!(shared.requests(), 2);
    }
}
