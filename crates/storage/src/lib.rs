//! Object-storage substrate for Rocket — the stand-in for the paper's
//! Xenon library + MinIO central file server.
//!
//! Rocket's load pipeline `ℓ(i)` begins by reading the i-th input file from
//! (possibly remote) storage. The runtime only needs three operations —
//! list, size, read — expressed by the [`ObjectStore`] trait. Backends:
//!
//! * [`MemStore`] — in-memory objects (synthetic data sets, tests),
//! * [`DirStore`] — a directory on the local filesystem,
//! * [`ModeledStore`] — wraps any store with request latency and a shared
//!   bandwidth cap, emulating a loaded central file server; it also keeps the
//!   aggregate I/O counters behind the paper's Fig 12 (average I/O usage),
//! * [`FaultStore`] — deterministic failure injection for robustness tests,
//! * [`RetryStore`] — composes any store with a bounded backoff-and-jitter
//!   [`rocket_stats::Retry`] policy so transient faults are absorbed.

#![warn(missing_docs)]

pub mod fault;
pub mod modeled;
pub mod store;

pub use fault::{FaultStore, RetryStore};
pub use modeled::{IoStats, ModeledStore};
pub use store::{DirStore, MemStore, ObjectStore, StorageError};
