//! Continuous probability distributions.
//!
//! The offline crate set does not include `rand_distr`, so the distributions
//! Rocket needs are implemented here directly on [`Xoshiro256`]:
//!
//! * normal via the Marsaglia polar method,
//! * log-normal, parameterized by the *target* mean/std (the moment-matching
//!   form used when fitting Table 1's `avg ± std` stage times),
//! * gamma via Marsaglia–Tsang squeeze (with the `alpha < 1` boost),
//! * exponential, uniform, constant, and a truncation combinator.
//!
//! The simulator samples stage service times from these; the paper's Fig 7
//! histograms motivate the families (tight normal for forensics, right-skewed
//! gamma/log-normal for bioinformatics and microscopy).

use crate::rng::Xoshiro256;

/// A continuous distribution over `f64` sampled from a [`Xoshiro256`].
pub trait Distribution {
    /// Draws one sample.
    fn sample(&self, rng: &mut Xoshiro256) -> f64;

    /// The distribution mean (exact where closed-form, used by the
    /// performance model of §6.1).
    fn mean(&self) -> f64;
}

/// A concrete, clonable distribution. An enum (rather than trait objects)
/// keeps simulator configuration plain data: serializable, comparable, and
/// cheap to copy into per-node samplers.
#[derive(Debug, Clone, PartialEq)]
pub enum Dist {
    /// Always returns the value.
    Constant(f64),
    /// Uniform over `[lo, hi)`.
    Uniform {
        /// Inclusive lower bound.
        lo: f64,
        /// Exclusive upper bound.
        hi: f64,
    },
    /// Normal with the given mean and standard deviation.
    Normal {
        /// Mean.
        mean: f64,
        /// Standard deviation (must be ≥ 0).
        std: f64,
    },
    /// Log-normal parameterized by the mean/std of the *resulting* variable
    /// (not of the underlying normal).
    LogNormal {
        /// Target mean of the log-normal variable.
        mean: f64,
        /// Target standard deviation of the log-normal variable.
        std: f64,
    },
    /// Gamma with shape `k` and scale `theta` (mean `k·theta`).
    Gamma {
        /// Shape parameter (k > 0).
        shape: f64,
        /// Scale parameter (θ > 0).
        scale: f64,
    },
    /// Exponential with the given mean (= 1/λ).
    Exponential {
        /// Mean of the distribution.
        mean: f64,
    },
    /// Any inner distribution clamped to `[lo, hi]` by rejection (falls back
    /// to clamping after 64 rejected draws so sampling always terminates).
    Truncated {
        /// The distribution being truncated.
        inner: Box<Dist>,
        /// Inclusive lower bound.
        lo: f64,
        /// Inclusive upper bound.
        hi: f64,
    },
}

impl Dist {
    /// Normal truncated at zero: the standard choice for service times whose
    /// `avg ± std` comes from Table 1 of the paper.
    pub fn normal_nonneg(mean: f64, std: f64) -> Dist {
        Dist::Truncated {
            inner: Box::new(Dist::Normal { mean, std }),
            lo: 0.0,
            hi: f64::INFINITY,
        }
    }

    /// Gamma distribution matched to a target mean and standard deviation.
    ///
    /// Solves `k·θ = mean`, `k·θ² = std²`.
    pub fn gamma_from_moments(mean: f64, std: f64) -> Dist {
        assert!(mean > 0.0 && std > 0.0);
        let shape = (mean / std).powi(2);
        let scale = std * std / mean;
        Dist::Gamma { shape, scale }
    }

    /// The distribution of `c·X`: every sample (and the mean) multiplied by
    /// `c > 0`. Shape-preserving for all families.
    pub fn scaled_by(&self, c: f64) -> Dist {
        assert!(c > 0.0, "scale factor must be positive");
        match self {
            Dist::Constant(v) => Dist::Constant(v * c),
            Dist::Uniform { lo, hi } => Dist::Uniform {
                lo: lo * c,
                hi: hi * c,
            },
            Dist::Normal { mean, std } => Dist::Normal {
                mean: mean * c,
                std: std * c,
            },
            Dist::LogNormal { mean, std } => Dist::LogNormal {
                mean: mean * c,
                std: std * c,
            },
            Dist::Gamma { shape, scale } => Dist::Gamma {
                shape: *shape,
                scale: scale * c,
            },
            Dist::Exponential { mean } => Dist::Exponential { mean: mean * c },
            Dist::Truncated { inner, lo, hi } => Dist::Truncated {
                inner: Box::new(inner.scaled_by(c)),
                lo: lo * c,
                hi: hi * c,
            },
        }
    }
}

/// Draws a standard normal via the Marsaglia polar method.
#[inline]
fn standard_normal(rng: &mut Xoshiro256) -> f64 {
    loop {
        let u = 2.0 * rng.f64() - 1.0;
        let v = 2.0 * rng.f64() - 1.0;
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

/// Marsaglia–Tsang gamma sampler for shape ≥ 1.
fn gamma_mt(rng: &mut Xoshiro256, shape: f64) -> f64 {
    debug_assert!(shape >= 1.0);
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = standard_normal(rng);
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u = rng.f64();
        if u < 1.0 - 0.0331 * x.powi(4) {
            return d * v;
        }
        if u > 0.0 && u.ln() < 0.5 * x * x + d * (1.0 - v + v.ln()) {
            return d * v;
        }
    }
}

impl Distribution for Dist {
    fn sample(&self, rng: &mut Xoshiro256) -> f64 {
        match self {
            Dist::Constant(v) => *v,
            Dist::Uniform { lo, hi } => rng.range_f64(*lo, *hi),
            Dist::Normal { mean, std } => mean + std * standard_normal(rng),
            Dist::LogNormal { mean, std } => {
                if *std <= 0.0 {
                    return *mean;
                }
                // Moment matching: if X ~ LogNormal(mu, sigma), then
                // E[X] = exp(mu + sigma^2/2), Var[X] = (exp(sigma^2)-1)E[X]^2.
                let cv2 = (std / mean).powi(2);
                let sigma2 = (1.0 + cv2).ln();
                let mu = mean.ln() - sigma2 / 2.0;
                (mu + sigma2.sqrt() * standard_normal(rng)).exp()
            }
            Dist::Gamma { shape, scale } => {
                if *shape >= 1.0 {
                    gamma_mt(rng, *shape) * scale
                } else {
                    // Boost: Gamma(k) = Gamma(k+1) · U^{1/k}.
                    let g = gamma_mt(rng, shape + 1.0);
                    let u: f64 = rng.f64().max(f64::MIN_POSITIVE);
                    g * u.powf(1.0 / shape) * scale
                }
            }
            Dist::Exponential { mean } => {
                let u = (1.0 - rng.f64()).max(f64::MIN_POSITIVE);
                -mean * u.ln()
            }
            Dist::Truncated { inner, lo, hi } => {
                for _ in 0..64 {
                    let x = inner.sample(rng);
                    if x >= *lo && x <= *hi {
                        return x;
                    }
                }
                inner.sample(rng).clamp(*lo, *hi)
            }
        }
    }

    fn mean(&self) -> f64 {
        match self {
            Dist::Constant(v) => *v,
            Dist::Uniform { lo, hi } => (lo + hi) / 2.0,
            Dist::Normal { mean, .. } => *mean,
            Dist::LogNormal { mean, .. } => *mean,
            Dist::Gamma { shape, scale } => shape * scale,
            Dist::Exponential { mean } => *mean,
            // Approximation: for the mildly truncated service-time
            // distributions Rocket uses, the untruncated mean is close.
            Dist::Truncated { inner, .. } => inner.mean(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::online::OnlineStats;

    fn moments(d: &Dist, n: usize, seed: u64) -> OnlineStats {
        let mut rng = Xoshiro256::seed_from(seed);
        let mut stats = OnlineStats::new();
        for _ in 0..n {
            stats.push(d.sample(&mut rng));
        }
        stats
    }

    #[test]
    fn constant_is_constant() {
        let s = moments(&Dist::Constant(3.5), 100, 1);
        assert_eq!(s.mean(), 3.5);
        assert_eq!(s.std(), 0.0);
    }

    #[test]
    fn uniform_moments() {
        let s = moments(&Dist::Uniform { lo: 2.0, hi: 6.0 }, 100_000, 2);
        assert!((s.mean() - 4.0).abs() < 0.02);
        // std of U(2,6) = 4/sqrt(12) ≈ 1.1547
        assert!((s.std() - 1.1547).abs() < 0.02);
    }

    #[test]
    fn normal_moments() {
        let d = Dist::Normal {
            mean: 130.8,
            std: 14.11,
        };
        let s = moments(&d, 200_000, 3);
        assert!((s.mean() - 130.8).abs() < 0.2);
        assert!((s.std() - 14.11).abs() < 0.2);
    }

    #[test]
    fn lognormal_moment_matching() {
        let d = Dist::LogNormal {
            mean: 564.3,
            std: 348.0,
        };
        let s = moments(&d, 400_000, 4);
        assert!((s.mean() - 564.3).abs() / 564.3 < 0.02, "mean {}", s.mean());
        assert!((s.std() - 348.0).abs() / 348.0 < 0.05, "std {}", s.std());
        assert!(s.min() > 0.0, "log-normal produced non-positive sample");
    }

    #[test]
    fn gamma_moments_high_shape() {
        let d = Dist::Gamma {
            shape: 9.0,
            scale: 0.5,
        };
        let s = moments(&d, 200_000, 5);
        assert!((s.mean() - 4.5).abs() < 0.05);
        assert!((s.std() - 1.5).abs() < 0.05);
    }

    #[test]
    fn gamma_moments_low_shape() {
        let d = Dist::Gamma {
            shape: 0.5,
            scale: 2.0,
        };
        let s = moments(&d, 400_000, 6);
        assert!((s.mean() - 1.0).abs() < 0.03, "mean {}", s.mean());
        // std = sqrt(k)·θ = sqrt(0.5)·2 = √2
        assert!(
            (s.std() - std::f64::consts::SQRT_2).abs() < 0.05,
            "std {}",
            s.std()
        );
    }

    #[test]
    fn gamma_from_moments_roundtrip() {
        let d = Dist::gamma_from_moments(2.1, 0.79);
        let s = moments(&d, 200_000, 7);
        assert!((s.mean() - 2.1).abs() < 0.02);
        assert!((s.std() - 0.79).abs() < 0.02);
    }

    #[test]
    fn exponential_moments() {
        let d = Dist::Exponential { mean: 10.0 };
        let s = moments(&d, 200_000, 8);
        assert!((s.mean() - 10.0).abs() < 0.15);
        assert!((s.std() - 10.0).abs() < 0.2);
        assert!(s.min() >= 0.0);
    }

    #[test]
    fn truncated_respects_bounds() {
        let d = Dist::Truncated {
            inner: Box::new(Dist::Normal {
                mean: 0.0,
                std: 5.0,
            }),
            lo: -1.0,
            hi: 1.0,
        };
        let mut rng = Xoshiro256::seed_from(9);
        for _ in 0..10_000 {
            let x = d.sample(&mut rng);
            assert!((-1.0..=1.0).contains(&x));
        }
    }

    #[test]
    fn normal_nonneg_never_negative() {
        let d = Dist::normal_nonneg(1.1, 0.9);
        let mut rng = Xoshiro256::seed_from(10);
        for _ in 0..50_000 {
            assert!(d.sample(&mut rng) >= 0.0);
        }
    }

    #[test]
    fn means_reported() {
        assert_eq!(Dist::Constant(2.0).mean(), 2.0);
        assert_eq!(Dist::Uniform { lo: 0.0, hi: 4.0 }.mean(), 2.0);
        assert_eq!(
            Dist::Gamma {
                shape: 3.0,
                scale: 2.0
            }
            .mean(),
            6.0
        );
        assert_eq!(Dist::Exponential { mean: 7.0 }.mean(), 7.0);
    }
}
