//! Deterministic random-number generation, probability distributions, and
//! summary statistics for the Rocket framework.
//!
//! Everything in the Rocket workspace that needs randomness — synthetic data
//! generators, victim selection in the work-stealing scheduler, service-time
//! sampling in the discrete-event simulator — draws from this crate so that
//! every experiment is reproducible from a single `u64` seed.
//!
//! The crate provides:
//!
//! * [`rng`] — a self-contained `xoshiro256**` generator ([`rng::Xoshiro256`])
//!   implementing [`rand::RngCore`], plus [`rng::SeedSequence`] for deriving
//!   independent child seeds for sub-components,
//! * [`dist`] — continuous distributions (normal, log-normal, gamma,
//!   exponential, …) implemented directly on top of the generator since
//!   `rand_distr` is not available offline,
//! * [`online`] — streaming mean/variance/min/max (Welford),
//! * [`histogram`] — fixed-bin histograms and percentile summaries used by
//!   the figure reproduction harness,
//! * [`retry`] — a bounded exponential-backoff policy with seeded jitter,
//!   shared by the storage and transport fault-tolerance paths.

#![warn(missing_docs)]

pub mod dist;
pub mod histogram;
pub mod online;
pub mod retry;
pub mod rng;

pub use dist::{Dist, Distribution};
pub use histogram::{Histogram, Percentiles};
pub use online::OnlineStats;
pub use retry::Retry;
pub use rng::{splitmix64, SeedSequence, Xoshiro256};
