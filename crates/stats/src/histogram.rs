//! Fixed-bin histograms and percentile summaries.
//!
//! Used by the reproduction harness for Fig 7 (comparison-time histograms)
//! and for reporting run-time distributions in EXPERIMENTS.md.

/// A histogram with uniform bins over `[lo, hi)`.
///
/// Samples outside the range are counted in saturating under/overflow bins so
/// no observation is silently dropped.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` uniform bins over `[lo, hi)`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(hi > lo, "histogram range must be non-empty");
        assert!(bins > 0, "histogram needs at least one bin");
        Self {
            lo,
            hi,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
            count: 0,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let w = (self.hi - self.lo) / self.bins.len() as f64;
            let idx = ((x - self.lo) / w) as usize;
            // Floating-point edge: (hi - eps) can round up to bins.len().
            let idx = idx.min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Total number of observations (including out-of-range).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Counts below `lo` / at-or-above `hi`.
    pub fn out_of_range(&self) -> (u64, u64) {
        (self.underflow, self.overflow)
    }

    /// The raw bin counts.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// `(bin_center, count)` pairs, for plotting / CSV export.
    pub fn centers(&self) -> Vec<(f64, u64)> {
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        self.bins
            .iter()
            .enumerate()
            .map(|(i, &c)| (self.lo + (i as f64 + 0.5) * w, c))
            .collect()
    }

    /// Index of the fullest bin (mode), if any sample landed in range.
    pub fn mode_bin(&self) -> Option<usize> {
        if self.bins.iter().all(|&c| c == 0) {
            return None;
        }
        self.bins
            .iter()
            .enumerate()
            .max_by_key(|&(_, &c)| c)
            .map(|(i, _)| i)
    }

    /// Renders a compact ASCII sparkline-style row, used in `repro fig7`.
    pub fn ascii(&self, width_per_bin: usize) -> String {
        let max = self.bins.iter().copied().max().unwrap_or(0).max(1);
        let glyphs = [' ', '▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
        let mut out = String::new();
        for &c in &self.bins {
            let level = (c as f64 / max as f64 * 8.0).round() as usize;
            for _ in 0..width_per_bin.max(1) {
                out.push(glyphs[level.min(8)]);
            }
        }
        out
    }
}

/// Percentile summary of a sample set (exact, by sorting a copy).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Percentiles {
    /// 50th percentile (median).
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
}

impl Percentiles {
    /// Computes percentiles of a non-empty sample set using the
    /// nearest-rank method on a sorted copy.
    pub fn of(samples: &[f64]) -> Option<Percentiles> {
        if samples.is_empty() {
            return None;
        }
        let mut v = samples.to_vec();
        v.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
        let rank = |p: f64| -> f64 {
            let idx = ((p / 100.0) * v.len() as f64).ceil() as usize;
            v[idx.clamp(1, v.len()) - 1]
        };
        Some(Percentiles {
            p50: rank(50.0),
            p90: rank(90.0),
            p99: rank(99.0),
            min: v[0],
            max: v[v.len() - 1],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_and_range() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for i in 0..10 {
            h.push(i as f64 + 0.5);
        }
        assert_eq!(h.count(), 10);
        assert!(h.bins().iter().all(|&c| c == 1));
        assert_eq!(h.out_of_range(), (0, 0));
    }

    #[test]
    fn out_of_range_counted() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.push(-0.1);
        h.push(1.0); // hi is exclusive
        h.push(5.0);
        h.push(0.5);
        assert_eq!(h.count(), 4);
        assert_eq!(h.out_of_range(), (1, 2));
    }

    #[test]
    fn edge_just_below_hi_lands_in_last_bin() {
        let mut h = Histogram::new(0.0, 1.0, 3);
        h.push(1.0 - 1e-12);
        assert_eq!(h.bins()[2], 1);
    }

    #[test]
    fn mode_bin_found() {
        let mut h = Histogram::new(0.0, 3.0, 3);
        h.push(1.5);
        h.push(1.6);
        h.push(0.5);
        assert_eq!(h.mode_bin(), Some(1));
    }

    #[test]
    fn mode_bin_empty() {
        let h = Histogram::new(0.0, 3.0, 3);
        assert_eq!(h.mode_bin(), None);
    }

    #[test]
    fn centers_are_midpoints() {
        let h = Histogram::new(0.0, 4.0, 4);
        let centers: Vec<f64> = h.centers().iter().map(|&(c, _)| c).collect();
        assert_eq!(centers, vec![0.5, 1.5, 2.5, 3.5]);
    }

    #[test]
    fn percentiles_of_known_set() {
        let samples: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let p = Percentiles::of(&samples).unwrap();
        assert_eq!(p.p50, 50.0);
        assert_eq!(p.p90, 90.0);
        assert_eq!(p.p99, 99.0);
        assert_eq!(p.min, 1.0);
        assert_eq!(p.max, 100.0);
    }

    #[test]
    fn percentiles_empty_is_none() {
        assert!(Percentiles::of(&[]).is_none());
    }

    #[test]
    fn percentiles_single_sample() {
        let p = Percentiles::of(&[7.0]).unwrap();
        assert_eq!(p.p50, 7.0);
        assert_eq!(p.p99, 7.0);
        assert_eq!(p.min, 7.0);
        assert_eq!(p.max, 7.0);
    }

    #[test]
    fn ascii_output_has_expected_len() {
        let mut h = Histogram::new(0.0, 1.0, 8);
        h.push(0.1);
        let s = h.ascii(2);
        assert_eq!(s.chars().count(), 16);
    }
}
