//! Deterministic pseudo-random number generation.
//!
//! The workspace standardizes on `xoshiro256**` seeded via SplitMix64, which
//! is stable across `rand` versions (unlike `StdRng`, whose algorithm is
//! explicitly unspecified). [`SeedSequence`] derives statistically
//! independent child seeds so each node / worker / generator in a simulation
//! gets its own stream.

use rand::{Error, RngCore, SeedableRng};

/// SplitMix64 step: used to expand a single `u64` seed into a full
/// `xoshiro256**` state, as recommended by the xoshiro authors.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// `xoshiro256**` generator (Blackman & Vigna). 256 bits of state, period
/// 2^256 − 1, passes BigCrush; more than adequate for simulation workloads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Creates a generator from a single `u64` seed via SplitMix64 expansion.
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // An all-zero state would be a fixed point; SplitMix64 cannot produce
        // four consecutive zeros, but guard anyway for safety.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Self { s }
    }

    /// Advances the generator and returns the next 64 random bits.
    ///
    /// Deliberately named like (but distinct from) `Iterator::next`: this
    /// is the conventional name for a raw generator step and the type does
    /// not implement `Iterator`.
    #[allow(clippy::should_implement_trait)]
    #[inline]
    pub fn next(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` using the top 53 bits.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `usize` in `[0, bound)`. `bound` must be non-zero.
    ///
    /// Uses Lemire's multiply-shift rejection method for unbiased results.
    #[inline]
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "below(0) is meaningless");
        let bound = bound as u64;
        loop {
            let x = self.next();
            let m = (x as u128).wrapping_mul(bound as u128);
            let low = m as u64;
            if low >= bound {
                return (m >> 64) as usize;
            }
            // Rejection zone: only taken when low < bound.
            let threshold = bound.wrapping_neg() % bound;
            if low >= threshold {
                return (m >> 64) as usize;
            }
        }
    }

    /// Uniform `u64` in `[lo, hi)`.
    #[inline]
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        lo + self.below((hi - lo) as usize) as u64
    }

    /// Uniform `f64` in `[lo, hi)`.
    #[inline]
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.f64()
    }

    /// Bernoulli trial with probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i + 1);
            items.swap(i, j);
        }
    }

    /// Picks a uniformly random element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len())]
    }
}

impl RngCore for Xoshiro256 {
    fn next_u32(&mut self) -> u32 {
        (self.next() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        self.next()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl SeedableRng for Xoshiro256 {
    type Seed = [u8; 8];

    fn from_seed(seed: Self::Seed) -> Self {
        Self::seed_from(u64::from_le_bytes(seed))
    }

    fn seed_from_u64(state: u64) -> Self {
        Self::seed_from(state)
    }
}

/// Derives independent child seeds from a root seed.
///
/// Each `(root, label)` pair maps to a distinct stream; labels are hashed so
/// that adding a component never perturbs the streams of existing ones —
/// essential for comparing simulator configurations under a fixed seed.
#[derive(Debug, Clone)]
pub struct SeedSequence {
    root: u64,
}

impl SeedSequence {
    /// Creates a sequence rooted at `seed`.
    pub fn new(seed: u64) -> Self {
        Self { root: seed }
    }

    /// Returns the root seed.
    pub fn root(&self) -> u64 {
        self.root
    }

    /// Derives the child seed for a string label (FNV-1a mixed with the root).
    pub fn derive(&self, label: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ self.root;
        for &b in label.as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut s = h;
        splitmix64(&mut s)
    }

    /// Derives the child seed for a `(label, index)` pair, e.g. per node.
    pub fn derive_indexed(&self, label: &str, index: u64) -> u64 {
        let mut s = self.derive(label) ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        splitmix64(&mut s)
    }

    /// Convenience: a generator for a string label.
    pub fn rng(&self, label: &str) -> Xoshiro256 {
        Xoshiro256::seed_from(self.derive(label))
    }

    /// Convenience: a generator for a `(label, index)` pair.
    pub fn rng_indexed(&self, label: &str, index: u64) -> Xoshiro256 {
        Xoshiro256::seed_from(self.derive_indexed(label, index))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = Xoshiro256::seed_from(42);
        let mut b = Xoshiro256::seed_from(42);
        for _ in 0..100 {
            assert_eq!(a.next(), b.next());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Xoshiro256::seed_from(1);
        let mut b = Xoshiro256::seed_from(2);
        let same = (0..64).filter(|_| a.next() == b.next()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Xoshiro256::seed_from(7);
        for _ in 0..10_000 {
            let x = rng.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_is_unbiased_enough() {
        let mut rng = Xoshiro256::seed_from(11);
        let mut counts = [0usize; 7];
        let trials = 70_000;
        for _ in 0..trials {
            counts[rng.below(7)] += 1;
        }
        let expected = trials / 7;
        for &c in &counts {
            assert!(
                (c as i64 - expected as i64).abs() < (expected as i64) / 10,
                "bucket count {c} too far from {expected}"
            );
        }
    }

    #[test]
    fn below_respects_bound_one() {
        let mut rng = Xoshiro256::seed_from(3);
        for _ in 0..100 {
            assert_eq!(rng.below(1), 0);
        }
    }

    #[test]
    fn fill_bytes_handles_remainders() {
        let mut rng = Xoshiro256::seed_from(5);
        for len in 0..=17 {
            let mut buf = vec![0u8; len];
            rng.fill_bytes(&mut buf);
            if len >= 8 {
                assert!(buf.iter().any(|&b| b != 0), "len {len} produced all zeros");
            }
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Xoshiro256::seed_from(9);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..100).collect::<Vec<_>>(),
            "shuffle left input unchanged"
        );
    }

    #[test]
    fn seed_sequence_labels_independent() {
        let seq = SeedSequence::new(1234);
        assert_ne!(seq.derive("a"), seq.derive("b"));
        assert_ne!(seq.derive_indexed("node", 0), seq.derive_indexed("node", 1));
        // Stable: the same label always yields the same seed.
        assert_eq!(seq.derive("node"), seq.derive("node"));
    }

    #[test]
    fn range_u64_endpoints() {
        let mut rng = Xoshiro256::seed_from(21);
        for _ in 0..1000 {
            let x = rng.range_u64(10, 20);
            assert!((10..20).contains(&x));
        }
    }
}
