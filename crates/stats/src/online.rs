//! Streaming summary statistics (Welford's online algorithm).

/// Online mean / variance / min / max accumulator.
///
/// Uses Welford's numerically stable update; `merge` implements the parallel
/// (Chan et al.) combination rule so per-worker accumulators can be reduced.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    sum: f64,
}

impl Default for OnlineStats {
    fn default() -> Self {
        Self::new()
    }
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        self.sum += x;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Arithmetic mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 if fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample variance with Bessel's correction (0 if fewer than 2).
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn std(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observation (+inf if empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observation (−inf if empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Formats as the paper's `avg ± std` notation.
    pub fn avg_pm_std(&self) -> String {
        format!("{:.1} ± {:.2}", self.mean(), self.std())
    }

    /// Half-width of the two-sided 95% confidence interval of the mean:
    /// `t₀.₉₇₅,ₙ₋₁ · s/√n` (Student's t for small samples, 1.96 beyond
    /// 30 degrees of freedom; 0 with fewer than two observations).
    pub fn ci95_half_width(&self) -> f64 {
        if self.count < 2 {
            return 0.0;
        }
        /// Two-sided 97.5th-percentile t values for df = 1..=30.
        const T975: [f64; 30] = [
            12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179,
            2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064,
            2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
        ];
        let df = (self.count - 1) as usize;
        let t = if df <= T975.len() {
            T975[df - 1]
        } else {
            1.960
        };
        t * (self.sample_variance() / self.count as f64).sqrt()
    }

    /// `(mean, ci95_half_width)` — the `mean ± ci` pair replication
    /// reports print.
    pub fn mean_ci95(&self) -> (f64, f64) {
        (self.mean(), self.ci95_half_width())
    }

    /// Formats as `mean ± 95% CI`.
    pub fn avg_pm_ci95(&self) -> String {
        format!("{:.3} ± {:.3}", self.mean(), self.ci95_half_width())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_zeroish() {
        let s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
    }

    #[test]
    fn known_values() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.std() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert_eq!(s.sum(), 40.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<f64> = (0..1000).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = OnlineStats::new();
        for &x in &data {
            whole.push(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &data[..373] {
            a.push(x);
        }
        for &x in &data[373..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.push(1.0);
        a.push(3.0);
        let before = a;
        a.merge(&OnlineStats::new());
        assert_eq!(a, before);

        let mut e = OnlineStats::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn ci95_known_value() {
        // n = 4, values 1..4: mean 2.5, sample std ≈ 1.2910, SE ≈ 0.6455,
        // t₀.₉₇₅,₃ = 3.182 → half-width ≈ 2.054.
        let mut s = OnlineStats::new();
        for x in [1.0, 2.0, 3.0, 4.0] {
            s.push(x);
        }
        let (mean, hw) = s.mean_ci95();
        assert!((mean - 2.5).abs() < 1e-12);
        assert!((hw - 2.054).abs() < 1e-3, "half width {hw}");
    }

    #[test]
    fn ci95_edge_cases() {
        let mut s = OnlineStats::new();
        assert_eq!(s.ci95_half_width(), 0.0);
        s.push(5.0);
        assert_eq!(s.ci95_half_width(), 0.0);
        // Large n uses the normal quantile.
        let mut big = OnlineStats::new();
        for i in 0..1000 {
            big.push((i % 10) as f64);
        }
        let se = (big.sample_variance() / 1000.0).sqrt();
        assert!((big.ci95_half_width() - 1.960 * se).abs() < 1e-12);
    }

    #[test]
    fn avg_pm_std_format() {
        let mut s = OnlineStats::new();
        s.push(1.0);
        s.push(3.0);
        assert_eq!(s.avg_pm_std(), "2.0 ± 1.00");
    }
}
