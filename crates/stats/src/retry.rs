//! Bounded retry with exponential backoff and deterministic jitter.
//!
//! Rocket's distributed paths — worker-side storage reads against a flaky
//! shared file server, transport connect/handshake against peers that are
//! still booting — all retry the same way: a bounded number of attempts,
//! exponentially growing delays, and a seeded jitter so replays of the same
//! experiment back off identically. [`Retry`] captures that policy once so
//! `rocket-storage` and `rocket-comm` share it instead of growing ad-hoc
//! sleep loops.

use std::time::Duration;

use crate::rng::splitmix64;

/// A bounded exponential-backoff retry policy with deterministic jitter.
///
/// The delay before attempt `k` (zero-indexed; no delay precedes attempt 0)
/// is `min(base * factor^(k-1), cap)`, scaled by a jitter factor drawn
/// uniformly from `[1 - jitter, 1 + jitter]` using a seeded `splitmix64`
/// stream — two policies built with the same parameters produce the same
/// delay schedule.
///
/// ```
/// use rocket_stats::Retry;
/// use std::time::Duration;
///
/// let policy = Retry::new(4, Duration::from_millis(10));
/// let delays = policy.delays();
/// assert_eq!(delays.len(), 3); // attempts 1..4 each wait before running
/// assert_eq!(delays, Retry::new(4, Duration::from_millis(10)).delays());
/// ```
#[derive(Debug, Clone)]
pub struct Retry {
    attempts: u32,
    base: Duration,
    factor: f64,
    cap: Duration,
    jitter: f64,
    seed: u64,
}

impl Retry {
    /// A policy of `attempts` total tries with delays doubling from `base`,
    /// capped at 100× the base, with ±25% jitter and a fixed default seed.
    pub fn new(attempts: u32, base: Duration) -> Self {
        Self {
            attempts,
            base,
            factor: 2.0,
            cap: base.saturating_mul(100),
            jitter: 0.25,
            seed: 0x5EED_BACC_0FF5,
        }
    }

    /// A policy that tries exactly once: no retries, no delays.
    pub fn once() -> Self {
        Self::new(1, Duration::ZERO)
    }

    /// Sets the multiplicative backoff factor (default 2.0).
    pub fn factor(mut self, factor: f64) -> Self {
        assert!(factor >= 1.0, "backoff factor must be >= 1");
        self.factor = factor;
        self
    }

    /// Sets the maximum single delay (default 100× the base).
    pub fn cap(mut self, cap: Duration) -> Self {
        self.cap = cap;
        self
    }

    /// Sets the jitter fraction in `[0, 1)`; each delay is scaled by a
    /// factor drawn from `[1 - jitter, 1 + jitter]` (default 0.25).
    pub fn jitter(mut self, jitter: f64) -> Self {
        assert!((0.0..1.0).contains(&jitter), "jitter must be in [0, 1)");
        self.jitter = jitter;
        self
    }

    /// Sets the seed for the jitter stream.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Total number of attempts (at least one operation runs).
    pub fn attempts(&self) -> u32 {
        self.attempts.max(1)
    }

    /// The full jittered delay schedule: `attempts - 1` entries, where entry
    /// `i` is the wait before attempt `i + 1`.
    pub fn delays(&self) -> Vec<Duration> {
        let mut state = self.seed;
        (1..self.attempts())
            .map(|k| {
                let raw = self.base.as_secs_f64() * self.factor.powi(k as i32 - 1);
                let raw = raw.min(self.cap.as_secs_f64());
                let u = splitmix64(&mut state) as f64 / u64::MAX as f64;
                let scale = 1.0 - self.jitter + 2.0 * self.jitter * u;
                Duration::from_secs_f64(raw * scale)
            })
            .collect()
    }

    /// Runs `op` under this policy, sleeping between attempts. Returns the
    /// first `Ok`, or the last error once attempts are exhausted.
    pub fn run<T, E>(&self, op: impl FnMut(u32) -> Result<T, E>) -> Result<T, E> {
        self.run_with(std::thread::sleep, op)
    }

    /// Like [`run`](Self::run) but with an injectable sleep function, so
    /// tests can observe the schedule without waiting it out.
    pub fn run_with<T, E>(
        &self,
        mut sleep: impl FnMut(Duration),
        mut op: impl FnMut(u32) -> Result<T, E>,
    ) -> Result<T, E> {
        let delays = self.delays();
        let mut last_err = None;
        for attempt in 0..self.attempts() {
            if attempt > 0 {
                let d = delays[attempt as usize - 1];
                if !d.is_zero() {
                    sleep(d);
                }
            }
            match op(attempt) {
                Ok(v) => return Ok(v),
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.expect("at least one attempt runs"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_success_needs_no_sleep() {
        let policy = Retry::new(5, Duration::from_millis(50));
        let mut slept = Vec::new();
        let out: Result<i32, &str> = policy.run_with(|d| slept.push(d), |_| Ok(7));
        assert_eq!(out.unwrap(), 7);
        assert!(slept.is_empty());
    }

    #[test]
    fn retries_until_success() {
        let policy = Retry::new(5, Duration::from_millis(10)).jitter(0.0);
        let mut slept = Vec::new();
        let mut fails = 3;
        let out: Result<u32, &str> = policy.run_with(
            |d| slept.push(d),
            |attempt| {
                if fails > 0 {
                    fails -= 1;
                    Err("transient")
                } else {
                    Ok(attempt)
                }
            },
        );
        assert_eq!(out.unwrap(), 3);
        assert_eq!(
            slept,
            vec![
                Duration::from_millis(10),
                Duration::from_millis(20),
                Duration::from_millis(40),
            ]
        );
    }

    #[test]
    fn exhaustion_returns_last_error() {
        let policy = Retry::new(3, Duration::ZERO);
        let mut n = 0;
        let out: Result<(), String> = policy.run_with(
            |_| {},
            |attempt| {
                n += 1;
                Err(format!("fail {attempt}"))
            },
        );
        assert_eq!(out.unwrap_err(), "fail 2");
        assert_eq!(n, 3);
    }

    #[test]
    fn delays_are_deterministic_and_capped() {
        let a = Retry::new(8, Duration::from_millis(10))
            .cap(Duration::from_millis(50))
            .seed(42);
        let b = Retry::new(8, Duration::from_millis(10))
            .cap(Duration::from_millis(50))
            .seed(42);
        assert_eq!(a.delays(), b.delays());
        for d in a.delays() {
            // cap 50ms, jitter 25% → max 62.5ms
            assert!(d <= Duration::from_micros(62_500), "{d:?}");
        }
        let c = Retry::new(8, Duration::from_millis(10))
            .cap(Duration::from_millis(50))
            .seed(43);
        assert_ne!(a.delays(), c.delays());
    }

    #[test]
    fn zero_jitter_gives_exact_schedule() {
        let p = Retry::new(4, Duration::from_millis(100)).jitter(0.0);
        assert_eq!(
            p.delays(),
            vec![
                Duration::from_millis(100),
                Duration::from_millis(200),
                Duration::from_millis(400),
            ]
        );
    }

    #[test]
    fn once_never_sleeps() {
        let p = Retry::once();
        assert_eq!(p.attempts(), 1);
        assert!(p.delays().is_empty());
        let out: Result<(), &str> = p.run_with(|_| panic!("no sleep"), |_| Err("e"));
        assert!(out.is_err());
    }
}
