//! Lock-witness sanitizer: the dynamic half of `rocket-lint`'s
//! lock-order analysis.
//!
//! The static pass (`rocket-lint`, RL-L001/RL-B*) models lock
//! acquisition orders by name. This crate closes the loop at runtime:
//! instrumented code replaces `parking_lot::Mutex::new(v)` with
//! [`Mutex::named("label", v)`](Mutex::named), and every acquisition
//! then records *(held, acquired)* edges in a process-global graph,
//! asserting acyclicity online — a real lock-order inversion panics
//! with the witnessed cycle the moment it first happens, instead of
//! deadlocking a CI runner some day.
//!
//! With the `enabled` feature **off** (the default for every normal
//! build), the wrappers compile to the underlying parking_lot
//! primitives plus a zero-sized token with no `Drop` impl: no atomics,
//! no thread-locals, no branches on the lock path, so the bench
//! noise-band gate sees nothing.
//!
//! With `enabled` **on** (workspace feature `sanitize`, i.e.
//! `cargo test --features sanitize`):
//!
//! - a thread-local stack tracks which named locks the current thread
//!   holds; acquiring records edges from every held lock to the new one
//!   *before* blocking on it (so a deadlock-to-be still reports);
//! - the global graph is checked for cycles on every new edge;
//! - if `ROCKET_WITNESS_DIR` is set, each process keeps
//!   `witness-<pid>.json` there up to date (schema 1: `locks`,
//!   `edges`), which `rocket-lint --witness DIR` cross-checks against
//!   the static model (RL-X001/RL-X002).

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::time::{Duration, Instant};

pub use parking_lot::WaitTimeoutResult;

/// A named mutex. The name is the identity the witness graph records —
/// keep it in sync with the field name the static analyzer sees.
pub struct Mutex<T: ?Sized> {
    name: &'static str,
    inner: parking_lot::Mutex<T>,
}

/// RAII guard for [`Mutex`]; releases the witness token, then the lock.
pub struct MutexGuard<'a, T: ?Sized> {
    _token: track::Token,
    inner: parking_lot::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex whose acquisitions are witnessed under `name`.
    pub const fn named(name: &'static str, value: T) -> Self {
        Self {
            name,
            inner: parking_lot::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock. The witness edge is recorded *before*
    /// blocking, so a runtime lock-order inversion panics with the
    /// cycle instead of deadlocking.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let token = track::acquire(self.name);
        MutexGuard {
            _token: token,
            inner: self.inner.lock(),
        }
    }

    /// Attempts to acquire without blocking. A successful try-lock is a
    /// real acquisition and is witnessed like any other.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let inner = self.inner.try_lock()?;
        Some(MutexGuard {
            _token: track::acquire(self.name),
            inner,
        })
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut()
    }

    /// The witness label.
    pub fn name(&self) -> &'static str {
        self.name
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex")
            .field("name", &self.name)
            .field("inner", &self.inner)
            .finish()
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// A named reader-writer lock. Reads and writes witness identically:
/// the order hazard is the same either way.
pub struct RwLock<T: ?Sized> {
    name: &'static str,
    inner: parking_lot::RwLock<T>,
}

/// Shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    _token: track::Token,
    inner: parking_lot::RwLockReadGuard<'a, T>,
}

/// Exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    _token: track::Token,
    inner: parking_lot::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a lock whose acquisitions are witnessed under `name`.
    pub const fn named(name: &'static str, value: T) -> Self {
        Self {
            name,
            inner: parking_lot::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock (witnessed).
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let token = track::acquire(self.name);
        RwLockReadGuard {
            _token: token,
            inner: self.inner.read(),
        }
    }

    /// Acquires an exclusive write lock (witnessed).
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let token = track::acquire(self.name);
        RwLockWriteGuard {
            _token: token,
            inner: self.inner.write(),
        }
    }

    /// The witness label.
    pub fn name(&self) -> &'static str {
        self.name
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock")
            .field("name", &self.name)
            .field("inner", &self.inner)
            .finish()
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// A condition variable operating on sanitize [`MutexGuard`]s. The lock
/// stays on the thread's held stack across the wait — it is reacquired
/// before `wait` returns, and the same thread cannot interleave another
/// acquisition meanwhile.
#[derive(Debug, Default)]
pub struct Condvar(parking_lot::Condvar);

impl Condvar {
    /// Creates a condition variable.
    pub const fn new() -> Self {
        Self(parking_lot::Condvar::new())
    }

    /// Blocks until notified, atomically releasing and reacquiring the
    /// lock.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        self.0.wait(&mut guard.inner);
    }

    /// Blocks while `condition` returns true.
    pub fn wait_while<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        condition: impl FnMut(&mut T) -> bool,
    ) {
        self.0.wait_while(&mut guard.inner, condition);
    }

    /// Blocks until notified or `deadline` passes.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        self.0.wait_until(&mut guard.inner, deadline)
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        self.0.wait_for(&mut guard.inner, timeout)
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

#[cfg(feature = "enabled")]
pub use track::{edges, locks, reset, write_witness};

#[cfg(feature = "enabled")]
mod track {
    use std::cell::RefCell;
    use std::collections::BTreeSet;
    use std::io;
    use std::path::Path;
    use std::sync::{Mutex, OnceLock, PoisonError};

    /// Proof of a witnessed acquisition; dropping it pops the lock from
    /// the thread's held stack.
    pub(crate) struct Token {
        name: &'static str,
    }

    thread_local! {
        static HELD: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
    }

    #[derive(Default)]
    struct Graph {
        locks: BTreeSet<&'static str>,
        edges: BTreeSet<(&'static str, &'static str)>,
    }

    fn graph() -> &'static Mutex<Graph> {
        static GRAPH: OnceLock<Mutex<Graph>> = OnceLock::new();
        GRAPH.get_or_init(|| Mutex::new(Graph::default()))
    }

    pub(crate) fn acquire(name: &'static str) -> Token {
        let new_edges: Vec<(&'static str, &'static str)> = HELD.with(|h| {
            h.borrow()
                .iter()
                .filter(|&&held| held != name)
                .map(|&held| (held, name))
                .collect()
        });
        {
            let mut g = graph().lock().unwrap_or_else(PoisonError::into_inner);
            let mut changed = g.locks.insert(name);
            for e in new_edges {
                changed |= g.edges.insert(e);
            }
            if changed {
                if let Some(cycle) = find_cycle(&g.edges) {
                    panic!(
                        "rocket-sanitize: lock-order cycle witnessed at runtime: {} \
                         — two threads taking these locks in different orders can \
                         deadlock",
                        cycle.join(" -> ")
                    );
                }
                dump_if_configured(&g);
            }
        }
        HELD.with(|h| h.borrow_mut().push(name));
        Token { name }
    }

    impl Drop for Token {
        fn drop(&mut self) {
            HELD.with(|h| {
                let mut held = h.borrow_mut();
                // Guards may drop out of acquisition order; pop the last
                // matching entry, not the top.
                if let Some(pos) = held.iter().rposition(|&n| n == self.name) {
                    held.remove(pos);
                }
            });
        }
    }

    /// DFS over the edge set; returns one cycle path if any exists.
    fn find_cycle(edges: &BTreeSet<(&'static str, &'static str)>) -> Option<Vec<&'static str>> {
        let nodes: BTreeSet<&str> = edges.iter().flat_map(|(a, b)| [*a, *b]).collect();
        for &start in &nodes {
            let mut stack = vec![start];
            let mut path = vec![start];
            let mut visited: BTreeSet<&str> = BTreeSet::new();
            while let Some(&node) = stack.last() {
                let next = edges
                    .iter()
                    .filter(|(a, _)| *a == node)
                    .map(|(_, b)| *b)
                    .find(|b| *b == start || !visited.contains(b));
                match next {
                    Some(n) if n == start => {
                        path.push(start);
                        return Some(path);
                    }
                    Some(n) if visited.insert(n) => {
                        stack.push(n);
                        path.push(n);
                    }
                    _ => {
                        stack.pop();
                        path.pop();
                    }
                }
            }
        }
        None
    }

    fn render(g: &Graph) -> String {
        let mut out = String::from("{\n  \"schema\": 1,\n  \"locks\": [");
        for (i, l) in g.locks.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{l}\""));
        }
        out.push_str("],\n  \"edges\": [");
        for (i, (a, b)) in g.edges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    {{\"from\": \"{a}\", \"to\": \"{b}\"}}"));
        }
        if !g.edges.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }

    /// Rewrites this process's `witness-<pid>.json` when the graph grows
    /// and `ROCKET_WITNESS_DIR` is set (atomic temp + rename, so the
    /// lint cross-check never reads a torn file). This crate's own unit
    /// tests fabricate locks that would pollute a shared witness dir, so
    /// the test build of the lib never dumps (`cfg!(test)` is false in
    /// the lib every downstream crate links).
    fn dump_if_configured(g: &Graph) {
        if cfg!(test) {
            return;
        }
        let Ok(dir) = std::env::var("ROCKET_WITNESS_DIR") else {
            return;
        };
        let _ = std::fs::create_dir_all(&dir);
        let path = format!("{dir}/witness-{}.json", std::process::id());
        let tmp = format!("{path}.tmp");
        if std::fs::write(&tmp, render(g)).is_ok() {
            let _ = std::fs::rename(&tmp, &path);
        }
    }

    /// The witnessed edges so far, for in-process assertions.
    pub fn edges() -> Vec<(String, String)> {
        let g = graph().lock().unwrap_or_else(PoisonError::into_inner);
        g.edges
            .iter()
            .map(|(a, b)| (a.to_string(), b.to_string()))
            .collect()
    }

    /// The witnessed locks so far.
    pub fn locks() -> Vec<String> {
        let g = graph().lock().unwrap_or_else(PoisonError::into_inner);
        g.locks.iter().map(|l| l.to_string()).collect()
    }

    /// Writes the current witness JSON to `path`.
    pub fn write_witness(path: &Path) -> io::Result<()> {
        let g = graph().lock().unwrap_or_else(PoisonError::into_inner);
        std::fs::write(path, render(&g))
    }

    /// Clears the global graph (single-threaded test harness use only),
    /// and rewrites this process's witness dump so fabricated test locks
    /// do not outlive the experiment that created them.
    pub fn reset() {
        let mut g = graph().lock().unwrap_or_else(PoisonError::into_inner);
        g.locks.clear();
        g.edges.clear();
        dump_if_configured(&g);
    }
}

#[cfg(not(feature = "enabled"))]
mod track {
    /// Zero-sized, no-`Drop` stand-in: the compiler erases it entirely.
    pub(crate) struct Token;

    #[inline(always)]
    pub(crate) fn acquire(_name: &'static str) -> Token {
        Token
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guards_deref() {
        let m = Mutex::named("m", 41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.name(), "m");
        let l = RwLock::named("l", vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::named("cv_m", ());
        let cv = Condvar::new();
        let mut g = m.lock();
        assert!(cv.wait_for(&mut g, Duration::from_millis(5)).timed_out());
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn nested_acquisition_records_edge() {
        let a = Mutex::named("edge_a", ());
        let b = Mutex::named("edge_b", ());
        {
            let _ga = a.lock();
            let _gb = b.lock();
        }
        assert!(edges().contains(&("edge_a".to_string(), "edge_b".to_string())));
        assert!(locks().contains(&"edge_a".to_string()));
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn non_lifo_drop_keeps_stack_sane() {
        let a = Mutex::named("lifo_a", ());
        let b = Mutex::named("lifo_b", ());
        let ga = a.lock();
        let gb = b.lock();
        drop(ga); // out of order
        let c = Mutex::named("lifo_c", ());
        let _gc = c.lock();
        drop(gb);
        // b was still held when c was taken; a was not.
        assert!(edges().contains(&("lifo_b".to_string(), "lifo_c".to_string())));
        assert!(!edges().contains(&("lifo_a".to_string(), "lifo_c".to_string())));
    }
}
