//! Locality-aware work scheduling for Rocket (§4.2 of the paper) — the
//! stand-in for the Constellation work-stealing platform.
//!
//! The workload — all pairs `(i, j)` with `1 ≤ i < j ≤ n` — is the upper
//! triangle of an `n × n` matrix. [`block::Block`] represents a rectangular
//! piece of that triangle and splits recursively into quadrants (the paper's
//! Fig 5); processing blocks depth-first gives the data locality that makes
//! the caches effective, because neighbouring pairs share items.
//!
//! Load balancing is hierarchical random work-stealing:
//!
//! * workers pop their *newest, smallest* local task (depth-first descent),
//! * thieves steal the *oldest, largest* task — most work per steal,
//! * victims on the same node are preferred over remote nodes,
//! * a concurrent-job limit ([`limiter::JobLimiter`]) applies back-pressure
//!   so one fast worker cannot claim the whole matrix.
//!
//! [`deque::TaskDeque`] captures the pop-newest/steal-oldest policy as plain
//! data (shared with the simulator); [`pool::StealPool`] is the threaded
//! execution engine built on `crossbeam-deque`.

#![warn(missing_docs)]

pub mod block;
pub mod deque;
pub mod limiter;
pub mod pool;

pub use block::{Block, Pair};
pub use deque::TaskDeque;
pub use limiter::JobLimiter;
pub use pool::{StealPool, StealPoolConfig, StealStats, WorkerTopology};
