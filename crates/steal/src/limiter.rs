//! The concurrent-job limit (§4.2's back-pressure mechanism).
//!
//! Rocket's runtime is asynchronous: submitting a job never blocks on the
//! job's completion. Without back-pressure one node could claim the whole
//! matrix while others idle, and unbounded in-flight jobs would exhaust
//! cache slots. The limiter is a counting semaphore: workers acquire one
//! permit per submitted job; completions release it.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use rocket_sanitize::{Condvar, Mutex};

/// Counting semaphore bounding concurrently in-flight jobs.
#[derive(Debug)]
pub struct JobLimiter {
    limit: usize,
    available: Mutex<usize>,
    cond: Condvar,
    peak_waits: AtomicU64,
}

impl JobLimiter {
    /// Creates a limiter with `limit` permits (`limit ≥ 1`).
    pub fn new(limit: usize) -> Self {
        assert!(limit >= 1, "concurrent job limit must be positive");
        Self {
            limit,
            available: Mutex::named("available", limit),
            cond: Condvar::new(),
            peak_waits: AtomicU64::new(0),
        }
    }

    /// The configured limit.
    pub fn limit(&self) -> usize {
        self.limit
    }

    /// Permits currently available.
    pub fn available(&self) -> usize {
        *self.available.lock()
    }

    /// Acquires one permit, blocking while none are available.
    pub fn acquire(&self) {
        let mut avail = self.available.lock();
        if *avail == 0 {
            self.peak_waits.fetch_add(1, Ordering::Relaxed);
            // lint:allow(blocking) — the semaphore exists to block here;
            // the wait atomically releases `available` while parked.
            self.cond.wait_while(&mut avail, |a| *a == 0);
        }
        *avail -= 1;
    }

    /// Tries to acquire a permit within `timeout`; returns success.
    pub fn acquire_timeout(&self, timeout: Duration) -> bool {
        let mut avail = self.available.lock();
        if *avail == 0 {
            self.peak_waits.fetch_add(1, Ordering::Relaxed);
            // lint:allow(determinism) — wall-clock deadline for a blocking
            // acquire; back-pressure timing never feeds computed results.
            let deadline = std::time::Instant::now() + timeout;
            while *avail == 0 {
                // lint:allow(blocking) — bounded condvar wait; releases
                // `available` atomically while parked.
                if self.cond.wait_until(&mut avail, deadline).timed_out() {
                    return false;
                }
            }
        }
        *avail -= 1;
        true
    }

    /// Releases one permit.
    pub fn release(&self) {
        let mut avail = self.available.lock();
        assert!(*avail < self.limit, "release without matching acquire");
        *avail += 1;
        drop(avail);
        self.cond.notify_one();
    }

    /// How many acquisitions had to wait (back-pressure engagements).
    pub fn waits(&self) -> u64 {
        self.peak_waits.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn acquire_release_cycle() {
        let l = JobLimiter::new(2);
        l.acquire();
        l.acquire();
        assert_eq!(l.available(), 0);
        l.release();
        assert_eq!(l.available(), 1);
        l.release();
        assert_eq!(l.available(), 2);
    }

    #[test]
    fn acquire_timeout_fails_when_exhausted() {
        let l = JobLimiter::new(1);
        l.acquire();
        assert!(!l.acquire_timeout(Duration::from_millis(20)));
        l.release();
        assert!(l.acquire_timeout(Duration::from_millis(20)));
    }

    #[test]
    #[should_panic(expected = "release without matching acquire")]
    fn over_release_panics() {
        let l = JobLimiter::new(1);
        l.release();
    }

    #[test]
    fn blocks_until_release() {
        let l = Arc::new(JobLimiter::new(1));
        l.acquire();
        let l2 = Arc::clone(&l);
        let handle = std::thread::spawn(move || {
            l2.acquire(); // blocks until main releases
            l2.release();
        });
        std::thread::sleep(Duration::from_millis(30));
        l.release();
        handle.join().unwrap();
        assert_eq!(l.available(), 1);
        assert!(l.waits() >= 1);
    }

    #[test]
    fn many_threads_respect_limit() {
        let l = Arc::new(JobLimiter::new(4));
        let in_flight = Arc::new(AtomicU64::new(0));
        let max_seen = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let (l, in_flight, max_seen) = (
                Arc::clone(&l),
                Arc::clone(&in_flight),
                Arc::clone(&max_seen),
            );
            handles.push(std::thread::spawn(move || {
                for _ in 0..50 {
                    l.acquire();
                    let now = in_flight.fetch_add(1, Ordering::SeqCst) + 1;
                    max_seen.fetch_max(now, Ordering::SeqCst);
                    in_flight.fetch_sub(1, Ordering::SeqCst);
                    l.release();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(max_seen.load(Ordering::SeqCst) <= 4);
    }
}
