//! Threaded hierarchical work-stealing pool over `crossbeam-deque`.

use std::sync::atomic::{AtomicU64, Ordering};

use crossbeam::deque::{Steal, Stealer, Worker as Deque};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::block::{Block, Pair};

/// Maps each worker to the node it lives on; stealing prefers same-node
/// victims (§4.2: "workers first attempt to steal from a worker on the same
/// node before selecting a remote node").
#[derive(Debug, Clone)]
pub struct WorkerTopology {
    /// `node_of[w]` = node id of worker `w`.
    pub node_of: Vec<usize>,
}

impl WorkerTopology {
    /// `nodes` nodes × `workers_per_node` workers each (the paper launches
    /// one Constellation worker per GPU).
    pub fn uniform(nodes: usize, workers_per_node: usize) -> Self {
        let node_of = (0..nodes)
            .flat_map(|n| std::iter::repeat_n(n, workers_per_node))
            .collect();
        Self { node_of }
    }

    /// A single node with `workers` workers.
    pub fn single_node(workers: usize) -> Self {
        Self::uniform(1, workers)
    }

    /// Total workers.
    pub fn workers(&self) -> usize {
        self.node_of.len()
    }
}

/// Pool tuning knobs.
#[derive(Debug, Clone)]
pub struct StealPoolConfig {
    /// Blocks with at most this many pairs are processed as leaves.
    pub leaf_pairs: u64,
    /// Seed for victim selection.
    pub seed: u64,
    /// Same-node steal attempts before trying a remote victim.
    pub local_attempts: usize,
    /// Deterministic assignment mode: pre-split the pair triangle into at
    /// least one block per worker, deal the blocks out round-robin, and
    /// disable stealing. Work distribution (and therefore
    /// [`StealStats::pairs_per_worker`]) becomes a pure function of
    /// `(n, workers)` instead of depending on thread timing — what
    /// reproducibility-sensitive runs (e.g. transport-equivalence tests)
    /// need. Load balance is static, so leave this off for performance.
    pub static_partition: bool,
}

impl Default for StealPoolConfig {
    fn default() -> Self {
        Self {
            leaf_pairs: 1,
            seed: 0x9E3779B97F4A7C15,
            local_attempts: 2,
            static_partition: false,
        }
    }
}

/// Execution statistics of one pool run.
#[derive(Debug, Clone, Default)]
pub struct StealStats {
    /// Pairs processed by each worker.
    pub pairs_per_worker: Vec<u64>,
    /// Successful steals from same-node victims.
    pub local_steals: u64,
    /// Successful steals from remote-node victims.
    pub remote_steals: u64,
}

impl StealStats {
    /// Total pairs processed.
    pub fn total_pairs(&self) -> u64 {
        self.pairs_per_worker.iter().sum()
    }

    /// Ratio of the busiest worker's share to a perfect split (1.0 = ideal).
    pub fn imbalance(&self) -> f64 {
        let total = self.total_pairs();
        if total == 0 || self.pairs_per_worker.is_empty() {
            return 1.0;
        }
        let max = *self.pairs_per_worker.iter().max().unwrap() as f64;
        let ideal = total as f64 / self.pairs_per_worker.len() as f64;
        max / ideal
    }
}

/// The work-stealing pool. Stateless: `run` owns its threads for one
/// workload and joins them before returning.
pub struct StealPool;

impl StealPool {
    /// Runs `tasks` independent index-addressed tasks on up to `threads`
    /// worker threads (work-sharing over an atomic cursor), joining them
    /// before returning.
    ///
    /// This is the pool's coarse-grained sibling of [`StealPool::run`]:
    /// replication drivers use it to fan whole simulation runs out across
    /// cores. Each index is claimed by exactly one worker; the assignment
    /// of indices to threads is racy, so callers needing determinism must
    /// make each task independent and combine results by index afterwards.
    pub fn run_tasks<F>(tasks: usize, threads: usize, f: F)
    where
        F: Fn(usize) + Sync,
    {
        let threads = threads.max(1).min(tasks.max(1));
        if tasks == 0 {
            return;
        }
        if threads == 1 {
            for i in 0..tasks {
                f(i);
            }
            return;
        }
        let cursor = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed) as usize;
                    if i >= tasks {
                        break;
                    }
                    f(i);
                });
            }
        });
    }

    /// Runs `tasks` index-addressed tasks per *round* on up to `threads`
    /// persistent worker threads, calling `between()` exclusively on the
    /// caller thread after every round. Rounds repeat until `between`
    /// returns `false`.
    ///
    /// This is the barrier-style sibling of [`StealPool::run_tasks`] for
    /// lock-step algorithms (e.g. conservative time-window simulation):
    /// `run_tasks` spawns and joins threads per call, which is far too
    /// expensive to do once per window, so `run_rounds` keeps the workers
    /// alive across rounds and synchronizes them on a spin barrier. Within
    /// a round each index is claimed by exactly one worker (work-sharing
    /// over an atomic cursor); `between` runs while every worker is parked
    /// at the barrier, so it has exclusive access to whatever state the
    /// tasks touched.
    pub fn run_rounds<T, B>(tasks: usize, threads: usize, task: T, mut between: B)
    where
        T: Fn(usize) + Sync,
        B: FnMut() -> bool,
    {
        let threads = threads.max(1).min(tasks.max(1));
        if threads == 1 {
            loop {
                for i in 0..tasks {
                    task(i);
                }
                if !between() {
                    return;
                }
            }
        }
        let cursor = AtomicU64::new(0);
        let stop = std::sync::atomic::AtomicBool::new(false);
        // Two barrier phases per round: `start` releases the workers into
        // the round, `end` hands control back to the caller for `between`.
        let start = SpinBarrier::new(threads + 1);
        let end = SpinBarrier::new(threads + 1);
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    start.wait();
                    if stop.load(Ordering::Acquire) {
                        break;
                    }
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed) as usize;
                        if i >= tasks {
                            break;
                        }
                        task(i);
                    }
                    end.wait();
                });
            }
            loop {
                cursor.store(0, Ordering::Relaxed);
                start.wait();
                end.wait();
                if !between() {
                    stop.store(true, Ordering::Release);
                    start.wait();
                    break;
                }
            }
        });
    }

    /// Processes every pair of `n` items, calling `on_leaf(worker, pair)`
    /// from pool worker threads. `on_leaf` may block (that is how the
    /// concurrent-job limit applies back-pressure to the scheduler).
    pub fn run<F>(
        n: u64,
        topology: &WorkerTopology,
        config: &StealPoolConfig,
        on_leaf: F,
    ) -> StealStats
    where
        F: Fn(usize, Pair) + Sync,
    {
        let workers = topology.workers();
        assert!(workers > 0, "pool needs at least one worker");
        let total = n * n.saturating_sub(1) / 2;
        if total == 0 {
            return StealStats {
                pairs_per_worker: vec![0; workers],
                ..Default::default()
            };
        }

        let deques: Vec<Deque<Block>> = (0..workers).map(|_| Deque::new_lifo()).collect();
        let stealers: Vec<Stealer<Block>> = deques.iter().map(Deque::stealer).collect();
        if config.static_partition {
            for (i, block) in partition(n, workers).into_iter().enumerate() {
                deques[i % workers].push(block);
            }
        } else {
            deques[0].push(Block::root(n));
        }

        let processed = AtomicU64::new(0);
        let local_steals = AtomicU64::new(0);
        let remote_steals = AtomicU64::new(0);
        let per_worker: Vec<AtomicU64> = (0..workers).map(|_| AtomicU64::new(0)).collect();

        let run_worker = |worker: usize, deque: Deque<Block>| {
            let mut rng = StdRng::seed_from_u64(
                config.seed ^ (worker as u64).wrapping_mul(0x9E3779B97F4A7C15),
            );
            let my_node = topology.node_of[worker];
            let siblings: Vec<usize> = (0..workers)
                .filter(|&w| w != worker && topology.node_of[w] == my_node)
                .collect();
            let strangers: Vec<usize> = (0..workers)
                .filter(|&w| topology.node_of[w] != my_node)
                .collect();
            let mut idle_spins = 0u32;
            loop {
                if let Some(block) = deque.pop() {
                    idle_spins = 0;
                    if block.count() <= config.leaf_pairs {
                        let mut done = 0u64;
                        for pair in block.pairs() {
                            on_leaf(worker, pair);
                            done += 1;
                        }
                        per_worker[worker].fetch_add(done, Ordering::Relaxed);
                        processed.fetch_add(done, Ordering::Relaxed);
                    } else {
                        for child in block.split() {
                            deque.push(child);
                        }
                    }
                    continue;
                }
                if config.static_partition {
                    // Static assignment: an empty deque means this worker
                    // is done — nobody steals, nobody donates.
                    break;
                }
                // lint:allow(shared-state) — monotonic progress counter:
                // a stale read only delays this exit check by one loop
                // iteration, it can never un-finish the pool.
                if processed.load(Ordering::Relaxed) >= total {
                    break;
                }
                // Hierarchical steal: same node first, then remote.
                let mut stolen = false;
                for _ in 0..config.local_attempts {
                    if siblings.is_empty() {
                        break;
                    }
                    let victim = siblings[rng.gen_range(0..siblings.len())];
                    if let Steal::Success(block) = stealers[victim].steal() {
                        deque.push(block);
                        local_steals.fetch_add(1, Ordering::Relaxed);
                        stolen = true;
                        break;
                    }
                }
                if !stolen && !strangers.is_empty() {
                    let victim = strangers[rng.gen_range(0..strangers.len())];
                    if let Steal::Success(block) = stealers[victim].steal() {
                        deque.push(block);
                        remote_steals.fetch_add(1, Ordering::Relaxed);
                        stolen = true;
                    }
                }
                if !stolen {
                    idle_spins += 1;
                    if idle_spins > 64 {
                        // lint:allow(determinism) — idle backoff paces the
                        // steal loop; which pairs run where is decided by
                        // the deques, not by wake-up timing.
                        std::thread::sleep(std::time::Duration::from_micros(100));
                    } else {
                        std::thread::yield_now();
                    }
                }
            }
        };

        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for (worker, deque) in deques.into_iter().enumerate() {
                let run_worker = &run_worker;
                handles.push(scope.spawn(move || run_worker(worker, deque)));
            }
            for h in handles {
                h.join().expect("pool worker panicked");
            }
        });

        StealStats {
            pairs_per_worker: per_worker
                .iter()
                .map(|a| a.load(Ordering::Relaxed))
                .collect(),
            local_steals: local_steals.load(Ordering::Relaxed),
            remote_steals: remote_steals.load(Ordering::Relaxed),
        }
    }
}

/// A reusable spin barrier for tightly-coupled round synchronization.
///
/// `std::sync::Barrier` parks threads in the kernel, which costs tens of
/// microseconds per crossing — longer than an entire simulation window.
/// This barrier spins (with `spin_loop` hints, degrading to `yield_now`)
/// on a generation counter instead, keeping a barrier crossing in the
/// sub-microsecond range when all parties arrive promptly.
struct SpinBarrier {
    parties: usize,
    arrived: std::sync::atomic::AtomicUsize,
    generation: AtomicU64,
}

impl SpinBarrier {
    fn new(parties: usize) -> Self {
        Self {
            parties,
            arrived: std::sync::atomic::AtomicUsize::new(0),
            generation: AtomicU64::new(0),
        }
    }

    fn wait(&self) {
        let gen = self.generation.load(Ordering::Acquire);
        if self.arrived.fetch_add(1, Ordering::AcqRel) + 1 == self.parties {
            // Last arrival: reset the count and release the generation.
            self.arrived.store(0, Ordering::Release);
            self.generation
                .store(gen.wrapping_add(1), Ordering::Release);
            return;
        }
        let mut spins = 0u32;
        while self.generation.load(Ordering::Acquire) == gen {
            spins += 1;
            if spins < 10_000 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
    }
}

/// Splits the pair triangle of `n` items into at least `workers` non-empty
/// blocks (fewer when the triangle is too small to split that far), in a
/// deterministic breadth-first order.
fn partition(n: u64, workers: usize) -> Vec<Block> {
    let mut blocks = vec![Block::root(n)];
    while blocks.len() < workers {
        // Split the largest block; ties broken by position (deterministic).
        let pos = match blocks
            .iter()
            .enumerate()
            .filter(|(_, b)| b.count() > 1)
            .max_by_key(|(i, b)| (b.count(), usize::MAX - i))
        {
            Some((i, _)) => i,
            None => break, // nothing left to split
        };
        let children = blocks[pos].split();
        if children.is_empty() {
            break;
        }
        blocks.splice(pos..=pos, children);
    }
    blocks
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;
    use std::collections::HashSet;

    #[test]
    fn partition_covers_all_pairs_disjointly() {
        for (n, workers) in [(10u64, 4usize), (40, 8), (7, 16), (2, 3), (100, 1)] {
            let blocks = partition(n, workers);
            let mut seen = HashSet::new();
            for b in &blocks {
                assert!(b.count() > 0, "empty block for n={n}");
                for p in b.pairs() {
                    assert!(seen.insert(p), "pair {p:?} covered twice (n={n})");
                }
            }
            assert_eq!(seen.len() as u64, n * (n - 1) / 2, "n={n}");
        }
    }

    #[test]
    fn static_partition_is_deterministic_and_steal_free() {
        let topology = WorkerTopology::uniform(2, 2);
        let config = StealPoolConfig {
            leaf_pairs: 4,
            static_partition: true,
            ..Default::default()
        };
        let run = || StealPool::run(32, &topology, &config, |_, _| {});
        let first = run();
        assert_eq!(first.total_pairs(), 32 * 31 / 2);
        assert_eq!(first.local_steals + first.remote_steals, 0);
        // Every worker got a share, and re-runs reproduce it exactly.
        assert!(first.pairs_per_worker.iter().all(|&c| c > 0));
        for _ in 0..5 {
            assert_eq!(run().pairs_per_worker, first.pairs_per_worker);
        }
    }

    #[test]
    fn all_pairs_processed_exactly_once() {
        let seen = Mutex::new(HashSet::new());
        let n = 40u64;
        let stats = StealPool::run(
            n,
            &WorkerTopology::single_node(4),
            &StealPoolConfig::default(),
            |_, pair| {
                assert!(seen.lock().insert(pair), "duplicate pair {pair:?}");
            },
        );
        assert_eq!(seen.lock().len() as u64, n * (n - 1) / 2);
        assert_eq!(stats.total_pairs(), n * (n - 1) / 2);
    }

    #[test]
    fn single_worker_works() {
        let count = AtomicU64::new(0);
        let stats = StealPool::run(
            10,
            &WorkerTopology::single_node(1),
            &StealPoolConfig::default(),
            |w, _| {
                assert_eq!(w, 0);
                count.fetch_add(1, Ordering::Relaxed);
            },
        );
        assert_eq!(count.load(Ordering::Relaxed), 45);
        assert_eq!(stats.local_steals + stats.remote_steals, 0);
    }

    #[test]
    fn empty_and_tiny_inputs() {
        for n in [0u64, 1] {
            let stats = StealPool::run(
                n,
                &WorkerTopology::single_node(2),
                &StealPoolConfig::default(),
                |_, _| panic!("no pairs expected"),
            );
            assert_eq!(stats.total_pairs(), 0);
        }
        let stats = StealPool::run(
            2,
            &WorkerTopology::single_node(2),
            &StealPoolConfig::default(),
            |_, pair| assert_eq!(pair, Pair { left: 0, right: 1 }),
        );
        assert_eq!(stats.total_pairs(), 1);
    }

    #[test]
    fn work_is_shared_across_workers() {
        let n = 128u64;
        let stats = StealPool::run(
            n,
            &WorkerTopology::single_node(4),
            &StealPoolConfig {
                leaf_pairs: 16,
                ..Default::default()
            },
            |_, _| {
                // Sleep (not spin): on single-core machines this forces the
                // scheduler to rotate workers so stealing can engage.
                std::thread::sleep(std::time::Duration::from_micros(20));
            },
        );
        let active = stats.pairs_per_worker.iter().filter(|&&c| c > 0).count();
        assert!(
            active >= 2,
            "only {active} workers participated: {:?}",
            stats.pairs_per_worker
        );
        assert!(stats.local_steals + stats.remote_steals > 0);
    }

    #[test]
    fn multi_node_topology_prefers_local_steals() {
        let n = 200u64;
        let stats = StealPool::run(
            n,
            &WorkerTopology::uniform(2, 2),
            &StealPoolConfig {
                leaf_pairs: 8,
                ..Default::default()
            },
            |_, _| {
                std::thread::sleep(std::time::Duration::from_micros(10));
            },
        );
        assert_eq!(stats.total_pairs(), n * (n - 1) / 2);
        // Both nodes' workers processed something.
        assert!(stats.pairs_per_worker[0] + stats.pairs_per_worker[1] > 0);
        assert!(stats.pairs_per_worker[2] + stats.pairs_per_worker[3] > 0);
    }

    #[test]
    fn leaf_batching_respected() {
        let seen = AtomicU64::new(0);
        StealPool::run(
            32,
            &WorkerTopology::single_node(2),
            &StealPoolConfig {
                leaf_pairs: 64,
                ..Default::default()
            },
            |_, _| {
                seen.fetch_add(1, Ordering::Relaxed);
            },
        );
        assert_eq!(seen.load(Ordering::Relaxed), 32 * 31 / 2);
    }

    /// Every round must see all task indices exactly once, and `between`
    /// must run with every worker parked (exclusive access).
    fn check_run_rounds(tasks: usize, threads: usize) {
        let rounds = 5usize;
        let hits: Vec<AtomicU64> = (0..tasks).map(|_| AtomicU64::new(0)).collect();
        let mut round = 0usize;
        StealPool::run_rounds(
            tasks,
            threads,
            |i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            },
            || {
                round += 1;
                // Exclusive: every task has run exactly `round` times.
                for h in &hits {
                    assert_eq!(h.load(Ordering::Relaxed), round as u64);
                }
                round < rounds
            },
        );
        assert_eq!(round, rounds);
        for h in &hits {
            assert_eq!(h.load(Ordering::Relaxed), rounds as u64);
        }
    }

    #[test]
    fn run_rounds_inline_single_thread() {
        check_run_rounds(4, 1);
    }

    #[test]
    fn run_rounds_parallel() {
        check_run_rounds(8, 4);
        check_run_rounds(3, 8); // more threads than tasks
    }

    #[test]
    fn run_rounds_zero_tasks_terminates() {
        let mut calls = 0;
        StealPool::run_rounds(
            0,
            4,
            |_| panic!("no tasks"),
            || {
                calls += 1;
                calls < 3
            },
        );
        assert_eq!(calls, 3);
    }

    #[test]
    fn imbalance_metric() {
        let stats = StealStats {
            pairs_per_worker: vec![30, 10],
            ..Default::default()
        };
        assert!((stats.imbalance() - 1.5).abs() < 1e-12);
        let perfect = StealStats {
            pairs_per_worker: vec![20, 20],
            ..Default::default()
        };
        assert!((perfect.imbalance() - 1.0).abs() < 1e-12);
    }
}
