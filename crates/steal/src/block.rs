//! Quadrant decomposition of the all-pairs triangle (the paper's Fig 5).

/// One pair of item indices with `left < right`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Pair {
    /// The smaller item index (`i`).
    pub left: u64,
    /// The larger item index (`j`).
    pub right: u64,
}

impl Pair {
    /// Creates a pair, normalizing order. Panics if `a == b`.
    pub fn new(a: u64, b: u64) -> Self {
        assert_ne!(a, b, "a pair needs two distinct items");
        if a < b {
            Self { left: a, right: b }
        } else {
            Self { left: b, right: a }
        }
    }
}

/// A rectangular region `[row_lo, row_hi) × [col_lo, col_hi)` of the pair
/// matrix; only cells with `row < col` (the strict upper triangle) count as
/// work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Block {
    /// Inclusive start row.
    pub row_lo: u64,
    /// Exclusive end row.
    pub row_hi: u64,
    /// Inclusive start column.
    pub col_lo: u64,
    /// Exclusive end column.
    pub col_hi: u64,
}

impl Block {
    /// The root block covering all pairs of `n` items.
    pub fn root(n: u64) -> Self {
        Self {
            row_lo: 0,
            row_hi: n,
            col_lo: 0,
            col_hi: n,
        }
    }

    /// Number of valid pairs (upper-triangle cells) in this block.
    pub fn count(&self) -> u64 {
        // Σ_{i ∈ [row_lo, row_hi)} max(0, col_hi − max(col_lo, i+1)),
        // computed in closed form because blocks can span millions of rows.
        let (a, b) = (self.col_lo, self.col_hi);
        if a >= b || self.row_lo >= self.row_hi {
            return 0;
        }
        // Rows split into two regimes at i+1 <= a, i.e. i <= a−1:
        //   i ≤ a−1          → contributes (b − a)
        //   a−1 < i < b−1    → contributes (b − i − 1)
        //   i ≥ b−1          → contributes 0
        let r0 = self.row_lo;
        let r1 = self.row_hi;
        // Regime 1: i in [r0, min(r1, a))
        let full_rows = r1.min(a).saturating_sub(r0);
        let mut total = full_rows * (b - a);
        // Regime 2: i in [max(r0, a), min(r1, b.saturating_sub(1)))
        let lo = r0.max(a);
        let hi = r1.min(b.saturating_sub(1));
        if lo < hi {
            // Σ_{i=lo}^{hi-1} (b − 1 − i) — arithmetic series.
            let first = b - 1 - lo; // largest term
            let last = b - hi; // smallest term
            let terms = hi - lo;
            total += (first + last) * terms / 2;
        }
        total
    }

    /// Width and height.
    pub fn dims(&self) -> (u64, u64) {
        (
            self.row_hi.saturating_sub(self.row_lo),
            self.col_hi.saturating_sub(self.col_lo),
        )
    }

    /// Splits into up to four non-empty quadrants. Blocks with a single cell
    /// (or a single row/column that cannot be split) return an empty vector,
    /// meaning the block is a leaf at the finest granularity.
    pub fn split(&self) -> Vec<Block> {
        let (rows, cols) = self.dims();
        if rows <= 1 && cols <= 1 {
            return Vec::new();
        }
        let row_mid = self.row_lo + rows / 2;
        let col_mid = self.col_lo + cols / 2;
        let mut out = Vec::with_capacity(4);
        let candidates = [
            Block {
                row_lo: self.row_lo,
                row_hi: row_mid.max(self.row_lo + 1),
                col_lo: self.col_lo,
                col_hi: col_mid.max(self.col_lo + 1),
            },
            Block {
                row_lo: self.row_lo,
                row_hi: row_mid.max(self.row_lo + 1),
                col_lo: col_mid.max(self.col_lo + 1),
                col_hi: self.col_hi,
            },
            Block {
                row_lo: row_mid.max(self.row_lo + 1),
                row_hi: self.row_hi,
                col_lo: self.col_lo,
                col_hi: col_mid.max(self.col_lo + 1),
            },
            Block {
                row_lo: row_mid.max(self.row_lo + 1),
                row_hi: self.row_hi,
                col_lo: col_mid.max(self.col_lo + 1),
                col_hi: self.col_hi,
            },
        ];
        for c in candidates {
            if c.row_lo < c.row_hi && c.col_lo < c.col_hi && c.count() > 0 {
                out.push(c);
            }
        }
        // Degenerate guard: if splitting produced just ourselves (possible
        // for 1×k slivers when mids collapse), force progress by slicing
        // the longer axis.
        if out.len() == 1 && out[0] == *self {
            out.clear();
            if cols > 1 {
                let mid = self.col_lo + cols / 2;
                for c in [
                    Block {
                        col_hi: mid,
                        ..*self
                    },
                    Block {
                        col_lo: mid,
                        ..*self
                    },
                ] {
                    if c.count() > 0 {
                        out.push(c);
                    }
                }
            } else {
                let mid = self.row_lo + rows / 2;
                for c in [
                    Block {
                        row_hi: mid,
                        ..*self
                    },
                    Block {
                        row_lo: mid,
                        ..*self
                    },
                ] {
                    if c.count() > 0 {
                        out.push(c);
                    }
                }
            }
        }
        out
    }

    /// Iterates the valid pairs of this block in row-major order.
    pub fn pairs(&self) -> impl Iterator<Item = Pair> + '_ {
        let b = *self;
        (b.row_lo..b.row_hi).flat_map(move |i| {
            let start = b.col_lo.max(i + 1);
            (start..b.col_hi).map(move |j| Pair { left: i, right: j })
        })
    }

    /// The distinct items this block touches (for prefetch planning).
    pub fn items(&self) -> Vec<u64> {
        let mut v: Vec<u64> = (self.row_lo..self.row_hi)
            .chain(self.col_lo..self.col_hi)
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn root_counts_n_choose_2() {
        for n in [0u64, 1, 2, 3, 8, 100, 4980] {
            assert_eq!(Block::root(n).count(), n * n.saturating_sub(1) / 2, "n={n}");
        }
    }

    #[test]
    fn pair_normalizes() {
        assert_eq!(Pair::new(5, 2), Pair { left: 2, right: 5 });
    }

    #[test]
    #[should_panic]
    fn pair_rejects_equal() {
        let _ = Pair::new(3, 3);
    }

    #[test]
    fn count_matches_enumeration() {
        // All sub-blocks of a small matrix.
        let n = 9u64;
        for r0 in 0..n {
            for r1 in r0..=n {
                for c0 in 0..n {
                    for c1 in c0..=n {
                        let b = Block {
                            row_lo: r0,
                            row_hi: r1,
                            col_lo: c0,
                            col_hi: c1,
                        };
                        assert_eq!(b.count(), b.pairs().count() as u64, "block {b:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn split_partitions_pairs_exactly() {
        fn check(b: Block, seen: &mut HashSet<Pair>) {
            let children = b.split();
            if children.is_empty() {
                for p in b.pairs() {
                    assert!(seen.insert(p), "pair {p:?} produced twice");
                }
                return;
            }
            let child_total: u64 = children.iter().map(Block::count).sum();
            assert_eq!(
                child_total,
                b.count(),
                "split of {b:?} lost/duplicated work"
            );
            for c in children {
                check(c, seen);
            }
        }
        let n = 16u64;
        let mut seen = HashSet::new();
        check(Block::root(n), &mut seen);
        assert_eq!(seen.len() as u64, n * (n - 1) / 2);
        for i in 0..n {
            for j in (i + 1)..n {
                assert!(seen.contains(&Pair { left: i, right: j }));
            }
        }
    }

    #[test]
    fn split_always_progresses() {
        // Every non-leaf block's children are strictly smaller.
        fn check(b: Block, depth: usize) {
            assert!(depth < 64, "split recursion too deep at {b:?}");
            for c in b.split() {
                assert!(c.count() < b.count() || c != b, "no progress on {b:?}");
                check(c, depth + 1);
            }
        }
        check(Block::root(33), 0);
    }

    #[test]
    fn fig5_example_8x8() {
        // The paper's Fig 5 splits an 8×8 triangle; first level quadrants:
        let root = Block::root(8);
        let children = root.split();
        // Top-left (rows 0-4 × cols 0-4): triangle of 4 → 6 pairs.
        // Top-right (rows 0-4 × cols 4-8): full 4×4 rect → 16 pairs.
        // Bottom-left (rows 4-8 × cols 0-4): empty (below diagonal) → absent.
        // Bottom-right (rows 4-8 × cols 4-8): triangle of 4 → 6 pairs.
        assert_eq!(children.len(), 3);
        let counts: Vec<u64> = children.iter().map(Block::count).collect();
        assert_eq!(counts.iter().sum::<u64>(), 28);
        assert!(counts.contains(&16));
        assert_eq!(counts.iter().filter(|&&c| c == 6).count(), 2);
    }

    #[test]
    fn empty_blocks() {
        let below = Block {
            row_lo: 4,
            row_hi: 8,
            col_lo: 0,
            col_hi: 4,
        };
        assert_eq!(below.count(), 0);
        assert_eq!(below.pairs().count(), 0);
        let empty = Block {
            row_lo: 3,
            row_hi: 3,
            col_lo: 0,
            col_hi: 9,
        };
        assert_eq!(empty.count(), 0);
    }

    #[test]
    fn items_deduplicated() {
        let b = Block {
            row_lo: 0,
            row_hi: 3,
            col_lo: 2,
            col_hi: 5,
        };
        assert_eq!(b.items(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn single_cell_is_leaf() {
        let b = Block {
            row_lo: 2,
            row_hi: 3,
            col_lo: 7,
            col_hi: 8,
        };
        assert_eq!(b.count(), 1);
        assert!(b.split().is_empty());
        assert_eq!(
            b.pairs().collect::<Vec<_>>(),
            vec![Pair { left: 2, right: 7 }]
        );
    }
}
