//! The pop-newest / steal-oldest task deque policy as plain data.
//!
//! `crossbeam-deque` implements this policy lock-free for the threaded pool;
//! the discrete-event simulator needs the *same policy* but single-threaded
//! and deterministic, so it drives this plain `VecDeque`-backed version.
//! Keeping the policy in one shape in both engines is what makes simulator
//! results explanatory for the real runtime.

use std::collections::VecDeque;

use crate::block::Block;

/// A double-ended task queue of [`Block`]s.
///
/// * Owners `push`/`pop` at the back — depth-first descent into the
///   quadrant tree, so the local worker always handles the smallest,
///   most-local piece next (best cache affinity).
/// * Thieves `steal` from the front — the oldest entry is the highest-level
///   (largest) block, maximizing work transferred per steal (§4.2: "the
///   task stolen is always at the 'highest' level").
#[derive(Debug, Clone, Default)]
pub struct TaskDeque {
    items: VecDeque<Block>,
}

impl TaskDeque {
    /// Creates an empty deque.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pushes a block at the owner end.
    pub fn push(&mut self, block: Block) {
        self.items.push_back(block);
    }

    /// Pops the newest block (owner side).
    pub fn pop(&mut self) -> Option<Block> {
        self.items.pop_back()
    }

    /// Steals the oldest block (thief side).
    pub fn steal(&mut self) -> Option<Block> {
        self.items.pop_front()
    }

    /// Number of queued blocks.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True if no blocks are queued.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Total pairs across queued blocks (for balance diagnostics).
    pub fn pending_pairs(&self) -> u64 {
        self.items.iter().map(Block::count).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blk(n: u64) -> Block {
        Block::root(n)
    }

    #[test]
    fn owner_pops_lifo() {
        let mut d = TaskDeque::new();
        d.push(blk(2));
        d.push(blk(3));
        d.push(blk(4));
        assert_eq!(d.pop(), Some(blk(4)));
        assert_eq!(d.pop(), Some(blk(3)));
        assert_eq!(d.pop(), Some(blk(2)));
        assert_eq!(d.pop(), None);
    }

    #[test]
    fn thief_steals_fifo() {
        let mut d = TaskDeque::new();
        d.push(blk(2));
        d.push(blk(3));
        assert_eq!(d.steal(), Some(blk(2)));
        assert_eq!(d.steal(), Some(blk(3)));
        assert_eq!(d.steal(), None);
    }

    #[test]
    fn thief_gets_shallowest_block_in_divide_and_conquer() {
        // Simulate depth-first splitting: the owner pushes children of the
        // root, descends into the last child, and pushes its children. The
        // front of the deque (the steal end) then holds a depth-1 block —
        // the "highest level" task in the paper's wording — while the back
        // holds the small depth-2 blocks the owner works on next.
        let mut d = TaskDeque::new();
        let root = blk(64);
        let level1 = root.split();
        for &c in &level1 {
            d.push(c);
        }
        let deepest = d.pop().unwrap();
        let level2 = deepest.split();
        for &c in &level2 {
            d.push(c);
        }
        let stolen = d.steal().unwrap();
        assert!(level1.contains(&stolen), "thief must get a depth-1 block");
        // The owner's next pop is a depth-2 block (smaller than the steal).
        let popped = d.pop().unwrap();
        assert!(level2.contains(&popped));
        assert!(popped.count() < stolen.count());
    }

    #[test]
    fn pending_pairs_sums() {
        let mut d = TaskDeque::new();
        d.push(blk(4)); // 6 pairs
        d.push(blk(3)); // 3 pairs
        assert_eq!(d.pending_pairs(), 9);
        assert_eq!(d.len(), 2);
        assert!(!d.is_empty());
    }
}
