//! Length-prefixed framing for byte-stream transports.
//!
//! TCP delivers a byte stream, not messages; this module maps between the
//! two. Every frame is a little-endian `u32` payload length followed by
//! the payload bytes. [`FrameDecoder`] is an incremental decoder: feed it
//! stream chunks of any size (down to a single byte — TCP may tear a
//! frame anywhere) and it yields complete payloads in order.

use bytes::{BufMut, Bytes, BytesMut};

use crate::wire::WireError;

/// Consumed-prefix length that triggers compaction of the decoder buffer
/// (compaction runs at most once per [`FrameDecoder::extend`], so the
/// copy cost amortizes over the chunk, not over the frames in it).
const COMPACT_THRESHOLD: usize = 64 * 1024;

/// Maximum frame payload (guards against corrupt or hostile prefixes; an
/// item fetch reply carries one cache slot, far below this).
pub const MAX_FRAME: u32 = 1 << 30;

/// Bytes of framing overhead per message (the length prefix).
pub const FRAME_HEADER: usize = 4;

/// Encodes one frame (header + payload) into a standalone buffer.
pub fn encode_frame(payload: &[u8]) -> Bytes {
    assert!(payload.len() <= MAX_FRAME as usize, "frame too large");
    let mut buf = BytesMut::with_capacity(FRAME_HEADER + payload.len());
    buf.put_u32_le(payload.len() as u32);
    buf.put_slice(payload);
    buf.freeze()
}

/// Writes one frame to a byte sink (what the socket transport sends).
/// An oversized payload is an I/O error, not a panic: the send path runs
/// on fault-critical threads that must degrade, never abort.
pub fn write_frame<W: std::io::Write>(w: &mut W, payload: &[u8]) -> std::io::Result<()> {
    if payload.len() > MAX_FRAME as usize {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!("frame payload of {} bytes exceeds MAX_FRAME", payload.len()),
        ));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)
}

/// Incremental frame decoder over an arbitrary chunking of the stream.
///
/// Consumed frames advance a cursor instead of shifting the buffer, so
/// decoding `k` frames out of one received chunk costs `O(chunk + k)`
/// rather than `O(chunk · k)` — the receive path of the socket transport
/// decodes thousands of small directory messages per chunk.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Start of the undecoded region of `buf`.
    pos: usize,
}

impl FrameDecoder {
    /// Creates an empty decoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a stream chunk (any size, including one byte).
    pub fn extend(&mut self, chunk: &[u8]) {
        if self.pos >= self.buf.len() {
            self.buf.clear();
            self.pos = 0;
        } else if self.pos >= COMPACT_THRESHOLD {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(chunk);
    }

    /// Pops the next complete payload, `Ok(None)` if more bytes are
    /// needed, or [`WireError::BadLength`] on an implausible prefix (the
    /// connection should be dropped — the stream cannot resynchronize).
    pub fn next_frame(&mut self) -> Result<Option<Bytes>, WireError> {
        let avail = self.buf.get(self.pos..).unwrap_or_default();
        if avail.len() < FRAME_HEADER {
            return Ok(None);
        }
        let Some(head) = avail.get(..FRAME_HEADER) else {
            return Ok(None);
        };
        let mut header = [0u8; FRAME_HEADER];
        header.copy_from_slice(head);
        let len = u32::from_le_bytes(header);
        if len > MAX_FRAME {
            return Err(WireError::BadLength(len as u64));
        }
        let total = FRAME_HEADER + len as usize;
        if avail.len() < total {
            return Ok(None);
        }
        let Some(body) = avail.get(FRAME_HEADER..total) else {
            return Ok(None);
        };
        let payload = Bytes::from(body.to_vec());
        self.pos += total;
        Ok(Some(payload))
    }

    /// Bytes buffered but not yet consumed as frames.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_whole_frames() {
        let mut dec = FrameDecoder::new();
        for payload in [&b"hello"[..], b"", b"world!"] {
            dec.extend(&encode_frame(payload));
        }
        assert_eq!(dec.next_frame().unwrap().unwrap().as_ref(), b"hello");
        assert_eq!(dec.next_frame().unwrap().unwrap().as_ref(), b"");
        assert_eq!(dec.next_frame().unwrap().unwrap().as_ref(), b"world!");
        assert_eq!(dec.next_frame().unwrap(), None);
        assert_eq!(dec.pending(), 0);
    }

    #[test]
    fn torn_reads_one_byte_at_a_time() {
        let payloads: Vec<Vec<u8>> = (0..10u8).map(|i| vec![i; i as usize * 7]).collect();
        let mut stream = Vec::new();
        for p in &payloads {
            stream.extend_from_slice(&encode_frame(p));
        }
        let mut dec = FrameDecoder::new();
        let mut out = Vec::new();
        for &b in &stream {
            dec.extend(&[b]);
            while let Some(frame) = dec.next_frame().unwrap() {
                out.push(frame.to_vec());
            }
        }
        assert_eq!(out, payloads);
    }

    #[test]
    fn implausible_length_rejected() {
        let mut dec = FrameDecoder::new();
        dec.extend(&u32::MAX.to_le_bytes());
        assert!(matches!(dec.next_frame(), Err(WireError::BadLength(_))));
    }

    #[test]
    fn write_frame_matches_encode_frame() {
        let mut out = Vec::new();
        write_frame(&mut out, b"abc").unwrap();
        assert_eq!(out, encode_frame(b"abc").as_ref());
    }
}
