//! In-process node endpoints connected by crossbeam channels.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};

/// Cluster node identifier (rank).
pub type NodeId = usize;

/// Receive-side errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvError {
    /// No message arrived within the timeout.
    Timeout,
    /// All peers hung up and the queue is drained.
    Disconnected,
}

/// Per-cluster message counters.
#[derive(Debug, Default)]
pub struct CommStats {
    messages: AtomicU64,
    bytes: AtomicU64,
}

impl CommStats {
    /// Total messages delivered to channels.
    pub fn messages(&self) -> u64 {
        self.messages.load(Ordering::Relaxed)
    }

    /// Total payload bytes sent.
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }
}

/// An incoming message: sender plus payload.
#[derive(Debug, Clone)]
pub struct Incoming {
    /// Rank of the sending node.
    pub from: NodeId,
    /// Message payload.
    pub payload: Bytes,
}

/// One node's connection to the cluster.
///
/// Sends are non-blocking (unbounded queues); receive order from a single
/// peer is FIFO, matching Ibis's reliable ordered channels.
pub struct Endpoint {
    node: NodeId,
    peers: Vec<Sender<Incoming>>,
    inbox: Receiver<Incoming>,
    stats: Arc<CommStats>,
}

impl Endpoint {
    /// This endpoint's rank.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Number of nodes in the cluster.
    pub fn cluster_size(&self) -> usize {
        self.peers.len()
    }

    /// Sends `payload` to node `to` (which may be this node itself — the
    /// directory protocol produces self-addressed messages).
    pub fn send(&self, to: NodeId, payload: Bytes) -> Result<(), RecvError> {
        self.stats.messages.fetch_add(1, Ordering::Relaxed);
        self.stats
            .bytes
            .fetch_add(payload.len() as u64, Ordering::Relaxed);
        self.peers[to]
            .send(Incoming {
                from: self.node,
                payload,
            })
            .map_err(|_| RecvError::Disconnected)
    }

    /// Receives the next message, waiting up to `timeout`.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Incoming, RecvError> {
        self.inbox.recv_timeout(timeout).map_err(|e| match e {
            RecvTimeoutError::Timeout => RecvError::Timeout,
            RecvTimeoutError::Disconnected => RecvError::Disconnected,
        })
    }

    /// Receives without blocking.
    pub fn try_recv(&self) -> Option<Incoming> {
        self.inbox.try_recv().ok()
    }

    /// Shared counters of the cluster this endpoint belongs to.
    pub fn stats(&self) -> Arc<CommStats> {
        Arc::clone(&self.stats)
    }

    /// A clone of the inbox receiver, allowing a dedicated receive thread
    /// while the endpoint itself stays with the sender (receivers taken this
    /// way steal messages from each other — use one).
    pub fn receiver(&self) -> Receiver<Incoming> {
        self.inbox.clone()
    }
}

/// Builder for a set of interconnected [`Endpoint`]s.
pub struct LocalCluster;

impl LocalCluster {
    /// Creates `p` fully connected endpoints (index = rank).
    pub fn connect(p: usize) -> Vec<Endpoint> {
        assert!(p > 0);
        let stats = Arc::new(CommStats::default());
        let mut senders = Vec::with_capacity(p);
        let mut receivers = Vec::with_capacity(p);
        for _ in 0..p {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(rx);
        }
        receivers
            .into_iter()
            .enumerate()
            .map(|(node, inbox)| Endpoint {
                node,
                peers: senders.clone(),
                inbox,
                stats: Arc::clone(&stats),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_to_point_delivery() {
        let eps = LocalCluster::connect(3);
        eps[0].send(2, Bytes::from_static(b"hi")).unwrap();
        let msg = eps[2].recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(msg.from, 0);
        assert_eq!(msg.payload.as_ref(), b"hi");
        assert!(eps[1].try_recv().is_none());
    }

    #[test]
    fn self_send_works() {
        let eps = LocalCluster::connect(2);
        eps[1].send(1, Bytes::from_static(b"me")).unwrap();
        let msg = eps[1].try_recv().unwrap();
        assert_eq!(msg.from, 1);
    }

    #[test]
    fn fifo_per_sender() {
        let eps = LocalCluster::connect(2);
        for i in 0..10u8 {
            eps[0].send(1, Bytes::from(vec![i])).unwrap();
        }
        for i in 0..10u8 {
            let msg = eps[1].try_recv().unwrap();
            assert_eq!(msg.payload[0], i);
        }
    }

    #[test]
    fn timeout_when_quiet() {
        let eps = LocalCluster::connect(2);
        assert_eq!(
            eps[0].recv_timeout(Duration::from_millis(10)).unwrap_err(),
            RecvError::Timeout
        );
    }

    #[test]
    fn stats_count_messages_and_bytes() {
        let eps = LocalCluster::connect(2);
        eps[0].send(1, Bytes::from(vec![0u8; 100])).unwrap();
        eps[1].send(0, Bytes::from(vec![0u8; 50])).unwrap();
        let stats = eps[0].stats();
        assert_eq!(stats.messages(), 2);
        assert_eq!(stats.bytes(), 150);
    }

    #[test]
    fn cross_thread_messaging() {
        let mut eps = LocalCluster::connect(2);
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        let handle = std::thread::spawn(move || {
            // Echo server on node 1.
            let msg = b.recv_timeout(Duration::from_secs(5)).unwrap();
            b.send(msg.from, msg.payload).unwrap();
        });
        a.send(1, Bytes::from_static(b"ping")).unwrap();
        let reply = a.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(reply.payload.as_ref(), b"ping");
        assert_eq!(reply.from, 1);
        handle.join().unwrap();
    }
}
