//! The cluster [`Transport`] abstraction and its in-process implementation.
//!
//! A [`Transport`] is one node's connection to the cluster: reliable,
//! ordered, point-to-point messaging to every peer (what Ibis gave the
//! original Rocket), plus per-endpoint traffic counters. Two
//! implementations exist:
//!
//! * [`LocalTransport`] (here) — crossbeam channels between threads of one
//!   process; zero-copy, no serialization on the transport itself.
//! * [`crate::SocketTransport`] — length-prefixed frames over TCP; real
//!   sockets, one connection per peer pair, ordered per peer.
//!
//! The receive side is **single-consumer by convention**: exactly one
//! thread per node (the engine's comm pump) calls [`Transport::recv_timeout`]
//! / [`Transport::try_recv`]. There is deliberately no way to obtain a
//! second receiver handle — cloned receivers silently steal messages from
//! each other, which is how the old `Endpoint::receiver()` API was misused.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};

/// Cluster node identifier (rank).
pub type NodeId = usize;

/// Transport errors (both directions; sends to a departed peer report
/// [`RecvError::Disconnected`], matching graceful-shutdown semantics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvError {
    /// No message arrived within the timeout.
    Timeout,
    /// All peers hung up and the queue is drained (receive side), or the
    /// destination peer is gone (send side).
    Disconnected,
}

/// Per-endpoint message counters: what *this node* sent and received.
///
/// Both directions are counted so send/receive asymmetry is observable
/// (e.g. a node that serves many `Fetch` requests shows recv ≪ sent).
/// Byte counts are payload bytes — framing overhead of a byte-stream
/// transport is excluded so the two transports account identically, and
/// self-addressed messages (which every transport delivers in memory)
/// count like any other so totals stay comparable across transports.
/// Only successful sends are counted.
#[derive(Debug, Default)]
pub struct CommStats {
    msgs_sent: AtomicU64,
    bytes_sent: AtomicU64,
    msgs_recv: AtomicU64,
    bytes_recv: AtomicU64,
}

impl CommStats {
    /// Records one outgoing message of `bytes` payload bytes.
    pub fn record_send(&self, bytes: usize) {
        self.msgs_sent.fetch_add(1, Ordering::Relaxed);
        self.bytes_sent.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Records one delivered message of `bytes` payload bytes.
    pub fn record_recv(&self, bytes: usize) {
        self.msgs_recv.fetch_add(1, Ordering::Relaxed);
        self.bytes_recv.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Messages this endpoint sent.
    pub fn msgs_sent(&self) -> u64 {
        self.msgs_sent.load(Ordering::Relaxed)
    }

    /// Payload bytes this endpoint sent.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent.load(Ordering::Relaxed)
    }

    /// Messages delivered to this endpoint.
    pub fn msgs_recv(&self) -> u64 {
        self.msgs_recv.load(Ordering::Relaxed)
    }

    /// Payload bytes delivered to this endpoint.
    pub fn bytes_recv(&self) -> u64 {
        self.bytes_recv.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of all four counters.
    pub fn snapshot(&self) -> CommSnapshot {
        CommSnapshot {
            msgs_sent: self.msgs_sent(),
            bytes_sent: self.bytes_sent(),
            msgs_recv: self.msgs_recv(),
            bytes_recv: self.bytes_recv(),
        }
    }
}

/// A plain-data copy of [`CommStats`] (what per-node reports carry).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CommSnapshot {
    /// Messages sent by the endpoint.
    pub msgs_sent: u64,
    /// Payload bytes sent by the endpoint.
    pub bytes_sent: u64,
    /// Messages delivered to the endpoint.
    pub msgs_recv: u64,
    /// Payload bytes delivered to the endpoint.
    pub bytes_recv: u64,
}

impl CommSnapshot {
    /// Accumulates another endpoint's counters (cluster-wide totals).
    pub fn merge(&mut self, other: &CommSnapshot) {
        self.msgs_sent += other.msgs_sent;
        self.bytes_sent += other.bytes_sent;
        self.msgs_recv += other.msgs_recv;
        self.bytes_recv += other.bytes_recv;
    }
}

/// An incoming message: sender plus payload.
#[derive(Debug, Clone)]
pub struct Incoming {
    /// Rank of the sending node.
    pub from: NodeId,
    /// Message payload.
    pub payload: Bytes,
}

/// One node's connection to the cluster, independent of the medium.
///
/// Guarantees every implementation provides:
///
/// * **Reliable ordered delivery per peer** — messages from one sender
///   arrive in send order (Ibis's reliable ordered channels).
/// * **Self-sends** — a node may address itself (the directory protocol
///   produces self-addressed messages); delivery is in-memory.
/// * **Graceful shutdown** — once every peer has hung up and the inbox is
///   drained, receives report [`RecvError::Disconnected`]; sends to a
///   departed peer likewise.
///
/// Implementations are `Send + Sync` so one `Arc<dyn Transport>` can be
/// shared between the sending thread and the (single) receiving thread.
pub trait Transport: Send + Sync {
    /// This endpoint's rank.
    fn node(&self) -> NodeId;

    /// Number of nodes in the cluster (self included).
    fn cluster_size(&self) -> usize;

    /// Sends `payload` to node `to` (which may be this node itself).
    /// Non-blocking or briefly blocking (socket buffer); never waits for
    /// the receiver to consume the message.
    fn send(&self, to: NodeId, payload: Bytes) -> Result<(), RecvError>;

    /// Receives the next message, waiting up to `timeout`.
    fn recv_timeout(&self, timeout: Duration) -> Result<Incoming, RecvError>;

    /// Receives without blocking (`None` when the inbox is empty).
    fn try_recv(&self) -> Option<Incoming>;

    /// Whether the connection to `peer` is still believed up.
    ///
    /// A best-effort, non-blocking liveness hint: `false` means the
    /// transport has *positive* evidence the peer is gone (its connection
    /// dropped); `true` means no such evidence — not a guarantee. Mediums
    /// without per-peer connection state keep the default (always `true`)
    /// and rely on heartbeat deadlines above the transport.
    fn peer_alive(&self, _peer: NodeId) -> bool {
        true
    }

    /// This endpoint's traffic counters.
    fn stats(&self) -> Arc<CommStats>;
}

/// Selects the transport an in-process cluster run communicates over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TransportKind {
    /// Crossbeam channels between threads (the default; fastest).
    #[default]
    Local,
    /// Length-prefixed frames over loopback TCP sockets — the same wire
    /// path a multi-process deployment uses.
    Socket,
}

impl TransportKind {
    /// Short label (appears in backend names and reports).
    pub fn label(self) -> &'static str {
        match self {
            TransportKind::Local => "local",
            TransportKind::Socket => "socket",
        }
    }

    /// Creates `p` fully connected endpoints of this kind (index = rank).
    pub fn connect(self, p: usize) -> Result<Vec<Box<dyn Transport>>, String> {
        match self {
            TransportKind::Local => Ok(LocalCluster::connect(p)
                .into_iter()
                .map(|t| Box::new(t) as Box<dyn Transport>)
                .collect()),
            TransportKind::Socket => Ok(crate::SocketCluster::connect(p)
                .map_err(|e| format!("socket cluster setup failed: {e}"))?
                .into_iter()
                .map(|t| Box::new(t) as Box<dyn Transport>)
                .collect()),
        }
    }
}

/// In-process [`Transport`] over crossbeam channels.
///
/// Sends are non-blocking (unbounded queues); receive order from a single
/// peer is FIFO. Nodes are threads of one process; the latency/bandwidth
/// of a physical network is modelled by the simulator, not here.
pub struct LocalTransport {
    node: NodeId,
    peers: Vec<Sender<Incoming>>,
    inbox: Receiver<Incoming>,
    stats: Arc<CommStats>,
}

impl LocalTransport {
    /// This endpoint's rank.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Number of nodes in the cluster.
    pub fn cluster_size(&self) -> usize {
        self.peers.len()
    }

    /// Sends `payload` to node `to` (which may be this node itself — the
    /// directory protocol produces self-addressed messages).
    pub fn send(&self, to: NodeId, payload: Bytes) -> Result<(), RecvError> {
        let len = payload.len();
        self.peers[to]
            .send(Incoming {
                from: self.node,
                payload,
            })
            .map_err(|_| RecvError::Disconnected)?;
        self.stats.record_send(len);
        Ok(())
    }

    /// Receives the next message, waiting up to `timeout`.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Incoming, RecvError> {
        let msg = self.inbox.recv_timeout(timeout).map_err(|e| match e {
            RecvTimeoutError::Timeout => RecvError::Timeout,
            RecvTimeoutError::Disconnected => RecvError::Disconnected,
        })?;
        self.stats.record_recv(msg.payload.len());
        Ok(msg)
    }

    /// Receives without blocking.
    pub fn try_recv(&self) -> Option<Incoming> {
        let msg = self.inbox.try_recv().ok()?;
        self.stats.record_recv(msg.payload.len());
        Some(msg)
    }

    /// This endpoint's traffic counters.
    pub fn stats(&self) -> Arc<CommStats> {
        Arc::clone(&self.stats)
    }
}

impl Transport for LocalTransport {
    fn node(&self) -> NodeId {
        LocalTransport::node(self)
    }

    fn cluster_size(&self) -> usize {
        LocalTransport::cluster_size(self)
    }

    fn send(&self, to: NodeId, payload: Bytes) -> Result<(), RecvError> {
        LocalTransport::send(self, to, payload)
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Incoming, RecvError> {
        LocalTransport::recv_timeout(self, timeout)
    }

    fn try_recv(&self) -> Option<Incoming> {
        LocalTransport::try_recv(self)
    }

    fn stats(&self) -> Arc<CommStats> {
        LocalTransport::stats(self)
    }
}

/// Builder for a set of interconnected [`LocalTransport`]s.
pub struct LocalCluster;

impl LocalCluster {
    /// Creates `p` fully connected endpoints (index = rank), each with its
    /// own [`CommStats`].
    pub fn connect(p: usize) -> Vec<LocalTransport> {
        assert!(p > 0);
        let mut senders = Vec::with_capacity(p);
        let mut receivers = Vec::with_capacity(p);
        for _ in 0..p {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(rx);
        }
        receivers
            .into_iter()
            .enumerate()
            .map(|(node, inbox)| LocalTransport {
                node,
                peers: senders.clone(),
                inbox,
                stats: Arc::new(CommStats::default()),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_to_point_delivery() {
        let eps = LocalCluster::connect(3);
        eps[0].send(2, Bytes::from_static(b"hi")).unwrap();
        let msg = eps[2].recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(msg.from, 0);
        assert_eq!(msg.payload.as_ref(), b"hi");
        assert!(eps[1].try_recv().is_none());
    }

    #[test]
    fn self_send_works() {
        let eps = LocalCluster::connect(2);
        eps[1].send(1, Bytes::from_static(b"me")).unwrap();
        let msg = eps[1].try_recv().unwrap();
        assert_eq!(msg.from, 1);
    }

    #[test]
    fn fifo_per_sender() {
        let eps = LocalCluster::connect(2);
        for i in 0..10u8 {
            eps[0].send(1, Bytes::from(vec![i])).unwrap();
        }
        for i in 0..10u8 {
            let msg = eps[1].try_recv().unwrap();
            assert_eq!(msg.payload[0], i);
        }
    }

    #[test]
    fn timeout_when_quiet() {
        let eps = LocalCluster::connect(2);
        assert_eq!(
            eps[0].recv_timeout(Duration::from_millis(10)).unwrap_err(),
            RecvError::Timeout
        );
    }

    #[test]
    fn stats_track_both_directions_per_endpoint() {
        let eps = LocalCluster::connect(2);
        eps[0].send(1, Bytes::from(vec![0u8; 100])).unwrap();
        eps[1].send(0, Bytes::from(vec![0u8; 50])).unwrap();
        // Counters are per-endpoint: before any receive, only sends show.
        assert_eq!(eps[0].stats().msgs_sent(), 1);
        assert_eq!(eps[0].stats().bytes_sent(), 100);
        assert_eq!(eps[0].stats().msgs_recv(), 0);
        // Delivery counts on the receiving endpoint.
        eps[0].recv_timeout(Duration::from_secs(1)).unwrap();
        let snap = eps[0].stats().snapshot();
        assert_eq!(snap.msgs_recv, 1);
        assert_eq!(snap.bytes_recv, 50);
        // The asymmetry is observable: node 0 sent 100 B, received 50 B.
        assert_ne!(snap.bytes_sent, snap.bytes_recv);
    }

    #[test]
    fn snapshot_merge_accumulates() {
        let mut total = CommSnapshot::default();
        total.merge(&CommSnapshot {
            msgs_sent: 1,
            bytes_sent: 10,
            msgs_recv: 2,
            bytes_recv: 20,
        });
        total.merge(&CommSnapshot {
            msgs_sent: 3,
            bytes_sent: 30,
            msgs_recv: 4,
            bytes_recv: 40,
        });
        assert_eq!(
            total,
            CommSnapshot {
                msgs_sent: 4,
                bytes_sent: 40,
                msgs_recv: 6,
                bytes_recv: 60,
            }
        );
    }

    #[test]
    fn cross_thread_messaging() {
        let mut eps = LocalCluster::connect(2);
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        let handle = std::thread::spawn(move || {
            // Echo server on node 1.
            let msg = b.recv_timeout(Duration::from_secs(5)).unwrap();
            b.send(msg.from, msg.payload).unwrap();
        });
        a.send(1, Bytes::from_static(b"ping")).unwrap();
        let reply = a.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(reply.payload.as_ref(), b"ping");
        assert_eq!(reply.from, 1);
        handle.join().unwrap();
    }

    #[test]
    fn usable_through_trait_object() {
        let transports = TransportKind::Local.connect(2).unwrap();
        assert_eq!(transports[0].cluster_size(), 2);
        transports[0].send(1, Bytes::from_static(b"dyn")).unwrap();
        let msg = transports[1].recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(msg.from, 0);
        assert_eq!(msg.payload.as_ref(), b"dyn");
        assert_eq!(TransportKind::Local.label(), "local");
        assert_eq!(TransportKind::default(), TransportKind::Local);
    }
}
