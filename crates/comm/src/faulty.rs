//! [`FaultyTransport`]: deterministic fault injection on the send path.
//!
//! Mirrors `FaultStore`'s design in `rocket-storage`: a wrapper that makes
//! failures a pure function of a seed, so the cluster driver's loss
//! handling — re-deals, duplicate suppression, degraded reports — is
//! unit-testable in-process without real sockets or timing races.
//!
//! Faults are injected where the network would lose them, on *send*:
//!
//! * **drop** — the frame is silently discarded (send reports success, the
//!   peer never sees it), like a datagram lost by an overloaded switch;
//! * **delay** — the frame is held back and delivered *after* the next
//!   frame that passes unharmed to any peer, reordering the stream the
//!   way retransmission does;
//! * **disconnect** — after a configured number of sends the endpoint
//!   behaves like its process died: every later send (and, once the inbox
//!   drains, every receive) reports [`RecvError::Disconnected`] and
//!   [`Transport::peer_alive`] goes `false` for every peer.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use rocket_stats::splitmix64;

use crate::transport::{CommStats, Incoming, NodeId, RecvError, Transport};

/// What fraction of frames misbehave, and when the endpoint dies.
#[derive(Debug, Clone, Copy)]
pub struct FaultPlan {
    /// Seed for the per-frame fate stream.
    pub seed: u64,
    /// Probability a sent frame is silently dropped.
    pub drop_p: f64,
    /// Probability a sent frame is delayed behind the next healthy frame.
    pub delay_p: f64,
    /// After this many send calls, the endpoint acts dead (`None` = never).
    pub disconnect_after: Option<u64>,
}

impl FaultPlan {
    /// A plan that injects nothing (useful as a baseline in sweeps).
    pub fn none() -> Self {
        Self {
            seed: 0,
            drop_p: 0.0,
            delay_p: 0.0,
            disconnect_after: None,
        }
    }

    /// A plan dropping frames with probability `p` under `seed`.
    pub fn drops(seed: u64, p: f64) -> Self {
        Self {
            seed,
            drop_p: p,
            ..Self::none()
        }
    }

    /// A plan delaying frames with probability `p` under `seed`.
    pub fn delays(seed: u64, p: f64) -> Self {
        Self {
            seed,
            delay_p: p,
            ..Self::none()
        }
    }

    /// A plan that kills the endpoint after `n` sends.
    pub fn dies_after(n: u64) -> Self {
        Self {
            disconnect_after: Some(n),
            ..Self::none()
        }
    }
}

/// Counters of injected misbehaviour (for assertions in tests).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FaultCounts {
    /// Frames silently discarded.
    pub dropped: u64,
    /// Frames delivered late (behind a later frame).
    pub delayed: u64,
    /// Sends refused because the endpoint is "dead".
    pub refused: u64,
}

/// A [`Transport`] wrapper injecting seeded, reproducible faults on send.
///
/// The fate of the `n`-th send is `splitmix64(seed ^ n)` mapped onto
/// `[drop | delay | deliver]`, so two endpoints built with the same plan
/// misbehave identically — the property every deterministic failure-matrix
/// test in `rocket-cluster` leans on.
pub struct FaultyTransport<T> {
    inner: T,
    plan: FaultPlan,
    sends: AtomicU64,
    dropped: AtomicU64,
    delayed: AtomicU64,
    refused: AtomicU64,
    /// Frames held back by a delay fault, flushed after the next clean send.
    pending: std::sync::Mutex<Vec<(NodeId, Bytes)>>,
}

impl<T: Transport> FaultyTransport<T> {
    /// Wraps `inner` under `plan`.
    pub fn new(inner: T, plan: FaultPlan) -> Self {
        assert!((0.0..=1.0).contains(&plan.drop_p));
        assert!((0.0..=1.0).contains(&plan.delay_p));
        assert!(
            plan.drop_p + plan.delay_p <= 1.0,
            "fault probabilities overlap"
        );
        Self {
            inner,
            plan,
            sends: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            delayed: AtomicU64::new(0),
            refused: AtomicU64::new(0),
            pending: std::sync::Mutex::new(Vec::new()),
        }
    }

    /// Access to the wrapped transport.
    pub fn inner(&self) -> &T {
        &self.inner
    }

    /// Injected-fault counters so far.
    pub fn counts(&self) -> FaultCounts {
        FaultCounts {
            dropped: self.dropped.load(Ordering::Relaxed),
            delayed: self.delayed.load(Ordering::Relaxed),
            refused: self.refused.load(Ordering::Relaxed),
        }
    }

    /// True once the plan's disconnect point has been reached.
    pub fn is_dead(&self) -> bool {
        self.plan
            .disconnect_after
            .is_some_and(|n| self.sends.load(Ordering::Relaxed) >= n)
    }

    /// Delivers any delay-held frames immediately (deterministic teardown).
    pub fn flush(&self) -> Result<(), RecvError> {
        let held: Vec<_> = self.pending.lock().unwrap().drain(..).collect();
        for (to, payload) in held {
            self.inner.send(to, payload)?;
        }
        Ok(())
    }

    /// The fate of send number `n` (1-indexed): 0 = drop, 1 = delay,
    /// 2 = deliver.
    fn fate(&self, n: u64) -> u8 {
        let mut state = self.plan.seed ^ n.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let u = splitmix64(&mut state) as f64 / u64::MAX as f64;
        if u < self.plan.drop_p {
            0
        } else if u < self.plan.drop_p + self.plan.delay_p {
            1
        } else {
            2
        }
    }
}

impl<T: Transport> Transport for FaultyTransport<T> {
    fn node(&self) -> NodeId {
        self.inner.node()
    }

    fn cluster_size(&self) -> usize {
        self.inner.cluster_size()
    }

    fn send(&self, to: NodeId, payload: Bytes) -> Result<(), RecvError> {
        let n = self.sends.fetch_add(1, Ordering::Relaxed) + 1;
        if self.plan.disconnect_after.is_some_and(|limit| n > limit) {
            self.refused.fetch_add(1, Ordering::Relaxed);
            return Err(RecvError::Disconnected);
        }
        match self.fate(n) {
            0 => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
                Ok(()) // silently lost: the sender cannot tell
            }
            1 => {
                self.delayed.fetch_add(1, Ordering::Relaxed);
                self.pending.lock().unwrap().push((to, payload));
                Ok(())
            }
            _ => {
                self.inner.send(to, payload)?;
                // A clean frame went through; release anything held back,
                // now observable *after* the newer frame.
                self.flush()
            }
        }
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Incoming, RecvError> {
        if self.is_dead() {
            return match self.inner.try_recv() {
                Some(msg) => Ok(msg),
                None => Err(RecvError::Disconnected),
            };
        }
        self.inner.recv_timeout(timeout)
    }

    fn try_recv(&self) -> Option<Incoming> {
        self.inner.try_recv()
    }

    fn peer_alive(&self, peer: NodeId) -> bool {
        !self.is_dead() && self.inner.peer_alive(peer)
    }

    fn stats(&self) -> Arc<CommStats> {
        self.inner.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::LocalCluster;

    fn pair(
        plan: FaultPlan,
    ) -> (
        FaultyTransport<crate::LocalTransport>,
        crate::LocalTransport,
    ) {
        let mut eps = LocalCluster::connect(2);
        let b = eps.pop().unwrap();
        let a = eps.pop().unwrap();
        (FaultyTransport::new(a, plan), b)
    }

    #[test]
    fn no_faults_is_transparent() {
        let (a, b) = pair(FaultPlan::none());
        for i in 0..20u8 {
            a.send(1, Bytes::from(vec![i])).unwrap();
        }
        for i in 0..20u8 {
            assert_eq!(b.try_recv().unwrap().payload[0], i);
        }
        assert_eq!(a.counts(), FaultCounts::default());
    }

    #[test]
    fn drops_are_seeded_and_reproducible() {
        let run = |seed: u64| -> Vec<u8> {
            let (a, b) = pair(FaultPlan::drops(seed, 0.4));
            for i in 0..50u8 {
                a.send(1, Bytes::from(vec![i])).unwrap();
            }
            std::iter::from_fn(|| b.try_recv())
                .map(|m| m.payload[0])
                .collect()
        };
        let first = run(9);
        assert_eq!(first, run(9), "same seed, same losses");
        assert_ne!(first, run(10), "different seed, different losses");
        assert!(first.len() < 50, "p=0.4 loses something over 50 frames");
        assert!(!first.is_empty());
    }

    #[test]
    fn delayed_frames_arrive_late_but_arrive() {
        let (a, b) = pair(FaultPlan::delays(3, 0.3));
        for i in 0..50u8 {
            a.send(1, Bytes::from(vec![i])).unwrap();
        }
        a.flush().unwrap();
        let got: Vec<u8> = std::iter::from_fn(|| b.try_recv())
            .map(|m| m.payload[0])
            .collect();
        assert_eq!(got.len(), 50, "delay never loses frames");
        let mut sorted = got.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u8>>());
        assert!(a.counts().delayed > 0);
        assert_ne!(got, sorted, "some frames observably reordered");
    }

    #[test]
    fn disconnect_after_kills_endpoint() {
        let (a, b) = pair(FaultPlan::dies_after(3));
        for i in 0..3u8 {
            a.send(1, Bytes::from(vec![i])).unwrap();
        }
        assert_eq!(
            a.send(1, Bytes::from_static(b"x")).unwrap_err(),
            RecvError::Disconnected
        );
        assert!(a.is_dead());
        assert!(!a.peer_alive(1));
        assert_eq!(a.counts().refused, 1);
        // Frames sent before death were delivered.
        assert_eq!(std::iter::from_fn(|| b.try_recv()).count(), 3);
        // Receives drain nothing and then report disconnection.
        assert_eq!(
            a.recv_timeout(Duration::from_millis(1)).unwrap_err(),
            RecvError::Disconnected
        );
    }

    #[test]
    fn usable_as_trait_object() {
        let (a, b) = pair(FaultPlan::none());
        let dynamic: Box<dyn Transport> = Box::new(a);
        dynamic.send(1, Bytes::from_static(b"dyn")).unwrap();
        assert_eq!(b.try_recv().unwrap().payload.as_ref(), b"dyn");
    }
}
