//! Heartbeat bookkeeping for peers that may silently die.
//!
//! TCP alone does not tell a driver that a worker was `kill -9`ed: the
//! connection can sit half-open for minutes. [`Liveness`] layers the
//! classic heartbeat protocol over any [`crate::Transport`]: the owner
//! periodically pings each peer, counts *any* inbound frame as proof of
//! life, and declares a peer lost once nothing has been heard for a
//! deadline. The tracker is pure bookkeeping — it sends nothing itself and
//! takes every timestamp as an explicit argument, so tests can replay
//! arbitrary schedules without sleeping.

use std::time::{Duration, Instant};

use crate::transport::NodeId;

/// Per-peer heartbeat state: who to ping, who has gone quiet too long.
#[derive(Debug)]
pub struct Liveness {
    ping_interval: Duration,
    deadline: Duration,
    peers: Vec<PeerState>,
}

#[derive(Debug)]
struct PeerState {
    peer: NodeId,
    last_seen: Instant,
    last_ping: Instant,
    lost: bool,
}

impl Liveness {
    /// Tracks `peers`, all considered just-seen at `now`. Pings are due
    /// every `ping_interval`; a peer silent for `deadline` is lost.
    pub fn new(
        peers: impl IntoIterator<Item = NodeId>,
        ping_interval: Duration,
        deadline: Duration,
        now: Instant,
    ) -> Self {
        assert!(
            deadline > ping_interval,
            "deadline must outlast the ping interval"
        );
        Self {
            ping_interval,
            deadline,
            peers: peers
                .into_iter()
                .map(|peer| PeerState {
                    peer,
                    last_seen: now,
                    last_ping: now,
                    lost: false,
                })
                .collect(),
        }
    }

    /// Records proof of life from `peer` at `now` (any frame counts).
    /// Ignored for peers already declared lost — a late frame from a dead
    /// worker must not resurrect it.
    pub fn observe(&mut self, peer: NodeId, now: Instant) {
        if let Some(p) = self.peers.iter_mut().find(|p| p.peer == peer) {
            if !p.lost {
                p.last_seen = now;
            }
        }
    }

    /// The peers due a ping at `now`; their ping clocks reset so the next
    /// call returns them only after another interval.
    pub fn peers_to_ping(&mut self, now: Instant) -> Vec<NodeId> {
        self.peers
            .iter_mut()
            .filter(|p| !p.lost && now.duration_since(p.last_ping) >= self.ping_interval)
            .map(|p| {
                p.last_ping = now;
                p.peer
            })
            .collect()
    }

    /// The peers whose silence crossed the deadline at `now`, each reported
    /// exactly once and marked lost from then on.
    pub fn newly_lost(&mut self, now: Instant) -> Vec<NodeId> {
        self.peers
            .iter_mut()
            .filter(|p| !p.lost && now.duration_since(p.last_seen) >= self.deadline)
            .map(|p| {
                p.lost = true;
                p.peer
            })
            .collect()
    }

    /// Declares `peer` lost immediately (e.g. a send to it failed).
    /// Returns true if the peer was alive until now.
    pub fn mark_lost(&mut self, peer: NodeId) -> bool {
        match self.peers.iter_mut().find(|p| p.peer == peer) {
            Some(p) if !p.lost => {
                p.lost = true;
                true
            }
            _ => false,
        }
    }

    /// Whether `peer` has been declared lost.
    pub fn is_lost(&self, peer: NodeId) -> bool {
        self.peers.iter().any(|p| p.peer == peer && p.lost)
    }

    /// Number of peers still considered alive.
    pub fn alive(&self) -> usize {
        self.peers.iter().filter(|p| !p.lost).count()
    }

    /// All peers still considered alive.
    pub fn alive_peers(&self) -> Vec<NodeId> {
        self.peers
            .iter()
            .filter(|p| !p.lost)
            .map(|p| p.peer)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: Duration = Duration::from_millis(1);

    #[test]
    fn pings_come_due_per_interval() {
        let t0 = Instant::now();
        let mut l = Liveness::new([1, 2], 10 * MS, 50 * MS, t0);
        assert!(l.peers_to_ping(t0 + 5 * MS).is_empty());
        assert_eq!(l.peers_to_ping(t0 + 10 * MS), vec![1, 2]);
        // Clock reset: not due again until another interval passes.
        assert!(l.peers_to_ping(t0 + 15 * MS).is_empty());
        assert_eq!(l.peers_to_ping(t0 + 21 * MS), vec![1, 2]);
    }

    #[test]
    fn silence_past_deadline_loses_peer_once() {
        let t0 = Instant::now();
        let mut l = Liveness::new([1, 2], 10 * MS, 50 * MS, t0);
        l.observe(2, t0 + 40 * MS);
        assert_eq!(l.newly_lost(t0 + 55 * MS), vec![1], "1 silent, 2 observed");
        assert!(l.newly_lost(t0 + 60 * MS).is_empty(), "reported once");
        assert!(l.is_lost(1));
        assert_eq!(l.alive(), 1);
        assert_eq!(l.alive_peers(), vec![2]);
        // Peer 2 eventually goes quiet too.
        assert_eq!(l.newly_lost(t0 + 95 * MS), vec![2]);
        assert_eq!(l.alive(), 0);
    }

    #[test]
    fn observation_defers_loss() {
        let t0 = Instant::now();
        let mut l = Liveness::new([7], 10 * MS, 50 * MS, t0);
        for tick in 1..10 {
            l.observe(7, t0 + tick * 20 * MS);
            assert!(l.newly_lost(t0 + tick * 20 * MS + 10 * MS).is_empty());
        }
    }

    #[test]
    fn late_frames_do_not_resurrect() {
        let t0 = Instant::now();
        let mut l = Liveness::new([3], 10 * MS, 50 * MS, t0);
        assert_eq!(l.newly_lost(t0 + 50 * MS), vec![3]);
        l.observe(3, t0 + 51 * MS);
        assert!(l.is_lost(3), "late frame ignored");
        assert!(
            l.peers_to_ping(t0 + 100 * MS).is_empty(),
            "no pings to the dead"
        );
    }

    #[test]
    fn mark_lost_is_idempotent() {
        let t0 = Instant::now();
        let mut l = Liveness::new([1], 10 * MS, 50 * MS, t0);
        assert!(l.mark_lost(1));
        assert!(!l.mark_lost(1), "second mark reports nothing new");
        assert!(!l.mark_lost(9), "unknown peer reports nothing");
        assert!(l.newly_lost(t0 + 100 * MS).is_empty());
    }
}
