//! In-process cluster transport for Rocket — the stand-in for the paper's
//! Ibis communication library.
//!
//! Rocket's distributed pieces (the level-3 cache directory, remote item
//! fetches, work-steal requests) need exactly what Ibis gave the original:
//! reliable, ordered, point-to-point messages between cluster nodes, plus
//! accounting of bytes on the wire (the simulator and the I/O figures need
//! message sizes).
//!
//! * [`wire`] — a compact binary codec over [`bytes`] with exact encoded-size
//!   accounting; protocol messages implement [`wire::Wire`].
//! * [`transport`] — [`transport::LocalCluster`] wires `p` in-process node
//!   [`transport::Endpoint`]s together over crossbeam channels. Nodes are
//!   threads of one process; the latency/bandwidth of a physical network is
//!   modelled by the simulator, not here.

#![warn(missing_docs)]

pub mod transport;
pub mod wire;

pub use transport::{CommStats, Endpoint, LocalCluster, RecvError};
pub use wire::{Wire, WireError, WireReader, WireWriter};
