//! Cluster transport for Rocket — the stand-in for the paper's Ibis
//! communication library.
//!
//! Rocket's distributed pieces (the level-3 cache directory, remote item
//! fetches, work-steal requests) need exactly what Ibis gave the original:
//! reliable, ordered, point-to-point messages between cluster nodes, plus
//! accounting of bytes on the wire (the simulator and the I/O figures need
//! message sizes).
//!
//! * [`transport`] — the [`Transport`] trait (send / receive / stats) and
//!   [`LocalTransport`]: crossbeam channels between threads of one
//!   process. [`TransportKind`] selects an implementation by name.
//! * [`socket`] — [`SocketTransport`]: the same contract over per-peer
//!   TCP connections with a rank-exchanging handshake; what a
//!   multi-process deployment runs on ([`SocketTransport::join`]).
//! * [`frame`] — length-prefixed framing for byte-stream transports, with
//!   an incremental decoder that tolerates arbitrarily torn reads.
//! * [`wire`] — a compact binary codec over [`bytes`] with exact
//!   encoded-size accounting; protocol messages implement [`wire::Wire`].
//! * [`faulty`] — [`FaultyTransport`]: seeded drop/delay/disconnect
//!   injection on the send path, for in-process fault-tolerance tests.
//! * [`liveness`] — [`Liveness`]: heartbeat bookkeeping (ping schedules,
//!   per-peer silence deadlines) the cluster driver layers over a
//!   transport to detect killed workers.

#![warn(missing_docs)]

pub mod faulty;
pub mod frame;
pub mod liveness;
pub mod socket;
pub mod transport;
pub mod wire;

pub use faulty::{FaultCounts, FaultPlan, FaultyTransport};
pub use frame::{encode_frame, FrameDecoder, FRAME_HEADER, MAX_FRAME};
pub use liveness::Liveness;
pub use socket::{SocketCluster, SocketTransport};
pub use transport::{
    CommSnapshot, CommStats, Incoming, LocalCluster, LocalTransport, NodeId, RecvError, Transport,
    TransportKind,
};
pub use wire::{Wire, WireError, WireReader, WireWriter};
